"""Tests for World and the procedural environment generators."""

import numpy as np
import pytest

from repro.env import (
    ENVIRONMENTS,
    META_ENVIRONMENTS,
    TEST_ENVIRONMENTS,
    make_environment,
)
from repro.env.generators import META_FOR_TEST, _scatter_circles, _wall_with_door
from repro.env.geometry import Box
from repro.env.world import Pose, World


class TestWorld:
    def make_world(self):
        return World(
            name="test",
            bounds=Box(0, 0, 10, 10),
            boxes=[Box(4, 4, 6, 6)],
            d_min=1.0,
            max_range=20.0,
        )

    def test_clearance_outside_bounds_is_zero(self):
        assert self.make_world().clearance(-1.0, 5.0) == 0.0

    def test_clearance_inside_obstacle_is_zero(self):
        assert self.make_world().clearance(5.0, 5.0) == 0.0

    def test_clearance_near_wall(self):
        w = self.make_world()
        assert w.clearance(0.5, 5.0) == pytest.approx(0.5)

    def test_in_collision_radius(self):
        w = self.make_world()
        assert w.in_collision(3.8, 5.0, radius=0.3)
        assert not w.in_collision(3.0, 5.0, radius=0.3)

    def test_in_collision_validates_radius(self):
        with pytest.raises(ValueError):
            self.make_world().in_collision(1, 1, radius=0.0)

    def test_random_free_pose_is_free(self):
        w = self.make_world()
        rng = np.random.default_rng(0)
        for _ in range(20):
            pose = w.random_free_pose(rng, clearance=0.4)
            assert w.clearance(pose.x, pose.y) >= 0.4

    def test_cast_rays_relative_to_heading(self):
        w = World(name="t", bounds=Box(0, 0, 10, 10), d_min=1, max_range=20)
        # Facing +x from the centre: straight ray hits the x=10 wall at 5.
        d = w.cast_rays(Pose(5.0, 5.0, 0.0), np.array([0.0]))
        assert d[0] == pytest.approx(5.0)
        # Facing +y instead.
        d = w.cast_rays(Pose(5.0, 5.0, np.pi / 2), np.array([0.0]))
        assert d[0] == pytest.approx(5.0)

    def test_invalid_dmin(self):
        with pytest.raises(ValueError):
            World(name="t", bounds=Box(0, 0, 1, 1), d_min=0.0)

    def test_area(self):
        assert self.make_world().area == 100.0


class TestGeneratorHelpers:
    def test_wall_with_door_leaves_gap(self):
        walls = _wall_with_door(0, 0, 10, 0, door_at=0.5, door_width=2.0)
        assert len(walls) == 2
        total = sum(w.length for w in walls)
        assert total == pytest.approx(8.0)

    def test_wall_with_door_validations(self):
        with pytest.raises(ValueError):
            _wall_with_door(0, 0, 10, 0, door_at=1.5, door_width=1.0)
        with pytest.raises(ValueError):
            _wall_with_door(0, 0, 2, 0, door_at=0.5, door_width=5.0)

    def test_scatter_circles_respects_gap(self):
        rng = np.random.default_rng(0)
        circles = _scatter_circles(
            rng, Box(0, 0, 50, 50), count=20, radius_range=(0.5, 1.0),
            min_gap=2.0, margin=1.0,
        )
        assert len(circles) >= 10
        for i, a in enumerate(circles):
            for b in circles[i + 1 :]:
                centre_dist = np.hypot(a.cx - b.cx, a.cy - b.cy)
                assert centre_dist >= a.radius + b.radius + 2.0 - 1e-9


class TestEnvironmentRegistry:
    def test_four_test_environments(self):
        assert set(TEST_ENVIRONMENTS) == {
            "indoor-apartment",
            "indoor-house",
            "outdoor-forest",
            "outdoor-town",
        }

    def test_two_meta_environments(self):
        assert set(META_ENVIRONMENTS) == {"meta-indoor", "meta-outdoor"}

    def test_two_extra_environments(self):
        from repro.env.generators import EXTRA_ENVIRONMENTS

        assert set(EXTRA_ENVIRONMENTS) == {"indoor-warehouse", "outdoor-suburb"}

    def test_every_test_env_has_a_meta(self):
        from repro.env.generators import EXTRA_ENVIRONMENTS

        assert set(META_FOR_TEST) == set(TEST_ENVIRONMENTS) | set(EXTRA_ENVIRONMENTS)
        assert all(m in META_ENVIRONMENTS for m in META_FOR_TEST.values())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown environment"):
            make_environment("atlantis")

    @pytest.mark.parametrize("name", sorted(ENVIRONMENTS))
    def test_generators_are_deterministic(self, name):
        a = make_environment(name, seed=3)
        b = make_environment(name, seed=3)
        assert a.obstacle_count() == b.obstacle_count()
        assert [c.cx for c in a.circles] == [c.cx for c in b.circles]

    @pytest.mark.parametrize("name", sorted(ENVIRONMENTS))
    def test_different_seeds_differ(self, name):
        a = make_environment(name, seed=1)
        b = make_environment(name, seed=2)
        if a.circles and b.circles:
            assert [c.cx for c in a.circles] != [c.cx for c in b.circles]
        elif a.boxes and b.boxes:
            assert [x.xmin for x in a.boxes] != [x.xmin for x in b.boxes]

    def test_paper_dmin_values(self):
        # Fig. 1c: the full six-environment d_min ladder.
        assert make_environment("indoor-apartment").d_min == 0.7   # Indoor 1
        assert make_environment("indoor-house").d_min == 1.0       # Indoor 2
        assert make_environment("indoor-warehouse").d_min == 1.3   # Indoor 3
        assert make_environment("outdoor-forest").d_min == 3.0     # Outdoor 1
        assert make_environment("outdoor-suburb").d_min == 4.0     # Outdoor 2
        assert make_environment("outdoor-town").d_min == 5.0       # Outdoor 3

    def test_indoor_flag(self):
        assert make_environment("indoor-apartment").is_indoor
        assert not make_environment("outdoor-forest").is_indoor

    @pytest.mark.parametrize("name", sorted(ENVIRONMENTS))
    def test_spawnable(self, name):
        world = make_environment(name, seed=0)
        rng = np.random.default_rng(0)
        pose = world.random_free_pose(rng, clearance=0.5)
        assert world.clearance(pose.x, pose.y) >= 0.5

    def test_meta_larger_than_tests(self):
        meta = make_environment("meta-indoor")
        test = make_environment("indoor-apartment")
        assert meta.area > test.area
        assert meta.obstacle_count() > test.obstacle_count()

    def test_outdoor_sparser_than_indoor(self):
        indoor = make_environment("indoor-apartment")
        outdoor = make_environment("outdoor-town")
        assert (indoor.obstacle_count() / indoor.area) > (
            outdoor.obstacle_count() / outdoor.area
        )
