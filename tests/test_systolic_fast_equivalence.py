"""Fast path vs PE-loop oracle: outputs agree, cycle counters identical.

The vectorised systolic fast path (im2col + GEMM numerics, closed-form
cycle accounting) must be indistinguishable from the loop-level
ProcessingElement oracle over a randomized shape/stride/padding grid:

* conv outputs within float64 round-off (different BLAS summation
  orders), cycle statistics *exactly* equal as integers;
* FC forward/backward outputs within round-off, tile/MAC/drain counters
  exactly equal;
* the closed-form helpers in ``repro.systolic.cycles`` equal the
  counters the oracle accumulates, field for field.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.systolic import (
    ArrayConfig,
    conv_rowstationary_stats,
    fc_tile_stats,
    simulate_conv_rowstationary,
    simulate_fc_backward_transposed,
    simulate_fc_forward,
)

# A small array makes multi-pass/partial-pass schedules common even at
# test-sized shapes.
SMALL_ARRAY = ArrayConfig(rows=6, cols=5)


@settings(max_examples=40, deadline=None)
@given(
    c=st.integers(1, 3),
    oc=st.integers(1, 4),
    h=st.integers(4, 12),
    w=st.integers(4, 12),
    kh=st.integers(1, 4),
    kw=st.integers(1, 4),
    stride=st.integers(1, 3),
    pad=st.integers(0, 2),
    seed=st.integers(0, 10_000),
)
def test_conv_fast_equals_pe_oracle(c, oc, h, w, kh, kw, stride, pad, seed):
    if h + 2 * pad < kh or w + 2 * pad < kw or kh > SMALL_ARRAY.rows:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(c, h, w))
    weights = rng.normal(size=(oc, c, kh, kw))
    fast_out, fast_stats = simulate_conv_rowstationary(
        x, weights, stride=stride, pad=pad, config=SMALL_ARRAY, fidelity="fast"
    )
    pe_out, pe_stats = simulate_conv_rowstationary(
        x, weights, stride=stride, pad=pad, config=SMALL_ARRAY, fidelity="pe"
    )
    assert np.allclose(fast_out, pe_out, rtol=1e-10, atol=1e-10)
    # Closed-form accounting is exactly the oracle's loop charging.
    assert fast_stats == pe_stats
    closed = conv_rowstationary_stats(
        c, h + 2 * pad, w + 2 * pad, oc, kh, kw,
        stride=stride, config=SMALL_ARRAY,
    )
    assert closed == pe_stats


@settings(max_examples=40, deadline=None)
@given(
    in_f=st.integers(1, 40),
    out_f=st.integers(1, 40),
    batch=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_fc_fast_equals_pe_oracle(in_f, out_f, batch, seed):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(in_f, out_f))
    v_fwd = rng.normal(size=(batch, in_f))
    v_bwd = rng.normal(size=(batch, out_f))
    for simulate, vec in (
        (simulate_fc_forward, v_fwd),
        (simulate_fc_backward_transposed, v_bwd),
    ):
        fast = simulate(vec, m, array=SMALL_ARRAY, fidelity="fast")
        oracle = simulate(vec, m, array=SMALL_ARRAY, fidelity="pe")
        assert np.allclose(fast.output, oracle.output, rtol=1e-10, atol=1e-10)
        assert (fast.tiles, fast.mac_cycles, fast.drain_cycles, fast.load_cycles) == (
            oracle.tiles, oracle.mac_cycles, oracle.drain_cycles, oracle.load_cycles,
        )
    closed = fc_tile_stats(in_f, out_f, SMALL_ARRAY, batch=batch)
    assert (closed.tiles, closed.mac_cycles, closed.drain_cycles, closed.load_cycles) == (
        oracle.tiles, oracle.mac_cycles, oracle.drain_cycles, oracle.load_cycles,
    )


@pytest.mark.parametrize(
    "c,h,w,oc,kernel,stride,pad",
    [
        (3, 32, 32, 16, 3, 1, 0),   # the benchmark layer
        (1, 16, 16, 2, 5, 2, 2),    # strided + padded
        (2, 9, 9, 3, 3, 3, 1),      # stride > kernel overlap
    ],
)
def test_known_geometries_batch(c, h, w, oc, kernel, stride, pad):
    """Batched fast path == per-image oracle, cycles N x single image."""
    rng = np.random.default_rng(7)
    x = rng.normal(size=(2, c, h, w))
    weights = rng.normal(size=(oc, c, kernel, kernel))
    fast_out, fast_stats = simulate_conv_rowstationary(
        x, weights, stride=stride, pad=pad, fidelity="fast"
    )
    pe_out, pe_stats = simulate_conv_rowstationary(
        x, weights, stride=stride, pad=pad, fidelity="pe"
    )
    assert np.allclose(fast_out, pe_out, rtol=1e-10, atol=1e-10)
    assert fast_stats == pe_stats
