"""Tests for reward generation, the episode runner and the Fig. 1 model."""

import numpy as np
import pytest

from repro.env import (
    DMIN_TABLE,
    DepthCamera,
    NavigationEnv,
    RewardConfig,
    SafeFlightTracker,
    center_window_reward,
    fps_requirement_table,
    make_environment,
    max_safe_velocity,
    min_fps_for_collision_avoidance,
)
from repro.env.fps import PAPER_SPEEDS


class TestCenterWindowReward:
    def test_uniform_image(self):
        assert center_window_reward(np.full((9, 9), 0.6)) == pytest.approx(0.6)

    def test_uses_centre_only(self):
        img = np.zeros((9, 9))
        img[3:6, 3:6] = 1.0  # exactly the centre third
        assert center_window_reward(img, window_fraction=1 / 3) == pytest.approx(1.0)

    def test_full_window_is_global_mean(self, rng):
        img = rng.uniform(size=(8, 8))
        assert center_window_reward(img, window_fraction=1.0) == pytest.approx(
            img.mean()
        )

    def test_open_space_scores_higher(self):
        open_ahead = np.full((9, 9), 0.9)
        blocked = np.full((9, 9), 0.1)
        assert center_window_reward(open_ahead) > center_window_reward(blocked)

    def test_validation(self):
        with pytest.raises(ValueError):
            center_window_reward(np.zeros(5))
        with pytest.raises(ValueError):
            center_window_reward(np.zeros((5, 5)), window_fraction=0.0)

    def test_reward_config_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(window_fraction=2.0)
        with pytest.raises(ValueError):
            RewardConfig(crash_reward=1.0)


class TestSafeFlightTracker:
    def test_mean_of_segments(self):
        t = SafeFlightTracker()
        for d in (1.0, 1.0, 1.0):
            t.record_step(d)
        t.record_crash()
        t.record_step(5.0)
        t.record_crash()
        assert t.crash_count == 2
        assert t.safe_flight_distance == pytest.approx(4.0)

    def test_no_crash_reports_current(self):
        t = SafeFlightTracker()
        t.record_step(2.5)
        assert t.safe_flight_distance == pytest.approx(2.5)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SafeFlightTracker().record_step(-1.0)


class TestNavigationEnv:
    def make_env(self, name="indoor-apartment", seed=0):
        world = make_environment(name, seed=seed)
        return NavigationEnv(
            world, camera=DepthCamera(width=12, height=12), seed=seed
        )

    def test_reset_returns_observation(self):
        env = self.make_env()
        obs = env.reset()
        assert obs.shape == env.observation_shape == (1, 12, 12)

    def test_step_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            self.make_env().step(0)

    def test_invalid_action_raises(self):
        env = self.make_env()
        env.reset()
        with pytest.raises(ValueError):
            env.step(7)

    def test_step_returns_reward_in_range(self):
        env = self.make_env()
        env.reset()
        obs, reward, done, info = env.step(0)
        if done:
            assert reward == env.reward_config.crash_reward
        else:
            assert 0.0 <= reward <= 1.0

    def test_crash_gives_crash_reward_and_done(self):
        env = self.make_env()
        env.reset()
        # Drive forward until something is hit (bounded worlds guarantee it).
        for _ in range(400):
            _, reward, done, info = env.step(0)
            if done:
                assert reward == env.reward_config.crash_reward
                assert info["crashed"]
                break
        else:
            pytest.fail("drone never crashed driving straight")

    def test_crash_requires_reset(self):
        env = self.make_env()
        env.reset()
        for _ in range(400):
            _, _, done, _ = env.step(0)
            if done:
                break
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_default_dframe_quarter_dmin(self):
        env = self.make_env()
        assert env.d_frame == pytest.approx(env.world.d_min / 4.0)

    def test_distance_accounting(self):
        env = self.make_env()
        env.reset()
        _, _, done, info = env.step(0)
        if not done:
            assert info["distance"] == pytest.approx(env.d_frame)

    def test_deterministic_given_seed(self):
        env_a, env_b = self.make_env(seed=5), self.make_env(seed=5)
        obs_a, obs_b = env_a.reset(), env_b.reset()
        assert np.array_equal(obs_a, obs_b)
        sa = env_a.step(1)
        sb = env_b.step(1)
        assert np.array_equal(sa[0], sb[0])
        assert sa[1] == sb[1]


class TestFig1Model:
    # Fig. 1c grid, [2.5, 5, 7.5, 10] m/s per environment.
    PAPER_TABLE = {
        "Indoor 1": [3.571, 7.142, 10.71, 14.28],
        "Indoor 2": [2.5, 5.0, 7.5, 10.0],
        "Indoor 3": [1.923, 3.846, 5.769, 7.692],
        "Outdoor 1": [0.833, 1.666, 2.5, 3.333],
        "Outdoor 2": [0.625, 1.25, 1.875, 2.5],
        "Outdoor 3": [0.5, 1.0, 1.5, 2.0],
    }

    def test_law(self):
        assert min_fps_for_collision_avoidance(2.5, 0.7) == pytest.approx(3.571, abs=1e-3)

    @pytest.mark.parametrize("env", sorted(DMIN_TABLE))
    def test_reproduces_every_fig1c_cell(self, env):
        table = fps_requirement_table()
        # The paper's table truncates rather than rounds (14.28 for
        # 14.2857), so allow one unit in the last printed digit.
        assert np.allclose(table[env], self.PAPER_TABLE[env], atol=6e-3)

    def test_inverse_law(self):
        fps = min_fps_for_collision_avoidance(7.5, 1.3)
        assert max_safe_velocity(fps, 1.3) == pytest.approx(7.5)

    def test_paper_speeds(self):
        assert PAPER_SPEEDS == (2.5, 5.0, 7.5, 10.0)

    def test_dmin_table_values(self):
        assert DMIN_TABLE["Indoor 1"] == 0.7
        assert DMIN_TABLE["Outdoor 3"] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            min_fps_for_collision_avoidance(0.0, 1.0)
        with pytest.raises(ValueError):
            min_fps_for_collision_avoidance(1.0, 0.0)
        with pytest.raises(ValueError):
            max_safe_velocity(0.0, 1.0)

    def test_custom_dmin_table(self):
        table = fps_requirement_table(speeds=(1.0,), dmin_table={"X": 2.0})
        assert table["X"][0] == pytest.approx(0.5)
