"""Tests validating the Fig. 3a network arithmetic exactly."""

import pytest

from repro.nn import (
    ConvSpec,
    FCSpec,
    build_network,
    modified_alexnet_spec,
    parameter_table,
    scaled_drone_net_spec,
)

# Fig. 3a ground truth.
FIG3A_WEIGHTS = {
    "FC1": 37_752_832,
    "FC2": 8_390_656,
    "FC3": 4_196_352,
    "FC4": 2_098_176,
    "FC5": 5_125,
}
FIG3A_NEURONS = {"FC1": 9216, "FC2": 4096, "FC3": 2048, "FC4": 2048, "FC5": 1024}
FIG3A_PCT_TOTAL = {"FC1": 67.18, "FC2": 14.93, "FC3": 7.468, "FC4": 3.734, "FC5": 0.009}
FIG3A_PCT_CUMULATIVE = {"FC1": 93.33, "FC2": 26.14, "FC3": 11.21, "FC4": 3.743, "FC5": 0.009}
TOTAL_WEIGHTS = 56_190_341


class TestPaperScaleSpec:
    def test_total_weights(self, alexnet_spec):
        assert alexnet_spec.total_weights == TOTAL_WEIGHTS

    @pytest.mark.parametrize("layer,weights", FIG3A_WEIGHTS.items())
    def test_fc_weight_counts(self, alexnet_spec, layer, weights):
        assert alexnet_spec.layer(layer).weight_count == weights

    @pytest.mark.parametrize("layer,neurons", FIG3A_NEURONS.items())
    def test_fc_input_neurons(self, alexnet_spec, layer, neurons):
        assert alexnet_spec.layer(layer).in_features == neurons

    def test_conv_output_chain(self, alexnet_spec):
        conv1, conv2, conv3, conv4, conv5 = alexnet_spec.conv_layers
        assert (conv1.out_height, conv1.out_width) == (55, 55)
        assert (conv1.pooled_height, conv1.pooled_width) == (27, 27)
        assert (conv2.pooled_height, conv2.pooled_width) == (13, 13)
        assert (conv3.out_height, conv3.out_width) == (13, 13)
        assert (conv5.pooled_height, conv5.pooled_width) == (6, 6)

    def test_flatten_matches_fc1(self, alexnet_spec):
        conv5 = alexnet_spec.conv_layers[-1]
        flat = conv5.pooled_height * conv5.pooled_width * conv5.out_channels
        assert flat == alexnet_spec.layer("FC1").in_features == 9216

    def test_conv_weight_total(self, alexnet_spec):
        conv_total = sum(l.weight_count for l in alexnet_spec.conv_layers)
        assert conv_total == 3_747_200

    def test_output_actions(self, alexnet_spec):
        assert alexnet_spec.layer("FC5").out_features == 5

    def test_model_bytes_at_16_bits(self, alexnet_spec):
        assert alexnet_spec.total_weight_bytes == TOTAL_WEIGHTS * 2

    @pytest.mark.parametrize(
        "k,pct", [(2, 3.743), (3, 11.21), (4, 26.14), (None, 100.0)]
    )
    def test_trainable_fractions_fig3b(self, alexnet_spec, k, pct):
        assert 100 * alexnet_spec.trainable_fraction(k) == pytest.approx(pct, abs=0.01)

    def test_last_fc_selection(self, alexnet_spec):
        names = [l.name for l in alexnet_spec.last_fc(3)]
        assert names == ["FC3", "FC4", "FC5"]

    def test_last_fc_bounds(self, alexnet_spec):
        with pytest.raises(ValueError):
            alexnet_spec.last_fc(0)
        with pytest.raises(ValueError):
            alexnet_spec.last_fc(6)

    def test_unknown_layer(self, alexnet_spec):
        with pytest.raises(KeyError):
            alexnet_spec.layer("FC9")


class TestParameterTable:
    def test_matches_fig3a(self, alexnet_spec):
        rows = {r["layer"]: r for r in parameter_table(alexnet_spec)}
        for layer in FIG3A_WEIGHTS:
            assert rows[layer]["weights"] == FIG3A_WEIGHTS[layer]
            assert rows[layer]["neurons"] == FIG3A_NEURONS[layer]
            assert rows[layer]["pct_total"] == pytest.approx(
                FIG3A_PCT_TOTAL[layer], abs=0.01
            )
            assert rows[layer]["pct_cumulative"] == pytest.approx(
                FIG3A_PCT_CUMULATIVE[layer], abs=0.01
            )


class TestSpecs:
    def test_conv_spec_validation(self):
        with pytest.raises(ValueError):
            ConvSpec("bad", in_height=0, in_width=8, in_channels=1, out_channels=1, kernel=3)
        with pytest.raises(ValueError):
            ConvSpec("bad", in_height=8, in_width=8, in_channels=1, out_channels=1, kernel=0)

    def test_fc_spec_validation(self):
        with pytest.raises(ValueError):
            FCSpec("bad", in_features=0, out_features=5)

    def test_conv_macs(self):
        spec = ConvSpec(
            "c", in_height=8, in_width=8, in_channels=2, out_channels=4,
            kernel=3, stride=1, pad=0,
        )
        assert spec.macs == 6 * 6 * 4 * 9 * 2

    def test_pool_shrinks_output(self):
        spec = ConvSpec(
            "c", in_height=13, in_width=13, in_channels=1, out_channels=1,
            kernel=3, stride=1, pad=1, pool=3,
        )
        assert spec.pooled_height == 6


class TestScaledSpec:
    def test_has_five_fc_layers(self, scaled_spec):
        assert len(scaled_spec.fc_layers) == 5

    def test_output_actions(self, scaled_spec):
        assert scaled_spec.fc_layers[-1].out_features == 5

    def test_small_enough_to_train(self, scaled_spec):
        assert scaled_spec.total_weights < 100_000

    def test_trainable_fraction_ordering(self, scaled_spec):
        fracs = [scaled_spec.trainable_fraction(k) for k in (2, 3, 4)]
        assert fracs == sorted(fracs)
        assert all(0 < f < 1 for f in fracs)

    def test_buildable_and_consistent(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        assert net.weight_count == scaled_spec.total_weights

    def test_custom_input_side(self):
        spec = scaled_drone_net_spec(input_side=32)
        net = build_network(spec, seed=0)
        import numpy as np

        out = net.predict(np.zeros((1, 1, 32, 32)))
        assert out.shape == (1, 5)
