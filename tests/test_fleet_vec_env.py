"""Fleet engine: vectorized env semantics and batched-agent agreement."""

import numpy as np
import pytest

from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.episode import NavigationEnv, SafeFlightTracker, Transition
from repro.env.generators import make_environment
from repro.fleet import VecNavigationEnv
from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.rl.agent import EpsilonSchedule, QLearningAgent
from repro.rl.transfer import config_by_name

ENV_NAMES = (
    "indoor-apartment",
    "indoor-house",
    "outdoor-forest",
    "outdoor-town",
)


def build_env(i: int, side: int = 12, noise: bool = True) -> NavigationEnv:
    world = make_environment(ENV_NAMES[i % len(ENV_NAMES)], seed=i)
    camera = DepthCamera(
        width=side, height=side, noise=StereoNoiseModel() if noise else None
    )
    return NavigationEnv(world, camera=camera, seed=i + 7)


def make_agent(side: int = 16, seed: int = 0, **kwargs) -> QLearningAgent:
    network = build_network(scaled_drone_net_spec(input_side=side), seed=seed)
    return QLearningAgent(network, config=config_by_name("L4"), seed=seed, **kwargs)


class TestVectorizedEquivalence:
    """A fleet rollout is bitwise-identical to N sequential rollouts."""

    NUM_ENVS = 16
    STEPS = 40
    MAX_EPISODE_STEPS = 12

    def sequential_transitions(self, script):
        per_env = []
        for i in range(self.NUM_ENVS):
            env = build_env(i)
            state = env.reset()
            episode = 0
            transitions = []
            for t in range(self.STEPS):
                action = int(script[t, i])
                obs, reward, done, _info = env.step(action)
                transitions.append(Transition(state, action, reward, obs, done))
                episode += 1
                if done or episode >= self.MAX_EPISODE_STEPS:
                    state = env.reset()
                    episode = 0
                else:
                    state = obs
            per_env.append(transitions)
        return per_env

    def fleet_transitions(self, script):
        vec_env = VecNavigationEnv(
            [build_env(i) for i in range(self.NUM_ENVS)],
            max_episode_steps=self.MAX_EPISODE_STEPS,
        )
        states = vec_env.reset()
        per_env = [[] for _ in range(self.NUM_ENVS)]
        for t in range(self.STEPS):
            actions = script[t]
            next_states, rewards, dones, infos = vec_env.step(actions)
            batch = vec_env.make_transitions(
                states, actions, rewards, dones, next_states, infos
            )
            for i, transition in enumerate(batch):
                per_env[i].append(transition)
            states = next_states
        return per_env

    def test_bitwise_identical_transitions(self):
        script = np.random.default_rng(99).integers(
            5, size=(self.STEPS, self.NUM_ENVS)
        )
        sequential = self.sequential_transitions(script)
        fleet = self.fleet_transitions(script)
        crashes = 0
        for i in range(self.NUM_ENVS):
            for t in range(self.STEPS):
                a, b = sequential[i][t], fleet[i][t]
                assert np.array_equal(a.state, b.state), (i, t)
                assert np.array_equal(a.next_state, b.next_state), (i, t)
                assert a.reward == b.reward, (i, t)
                assert a.action == b.action and a.done == b.done, (i, t)
                crashes += a.done
        # The comparison must actually exercise crash/reset paths.
        assert crashes > 0

    def test_trackers_match_sequential(self):
        script = np.random.default_rng(7).integers(
            5, size=(self.STEPS, self.NUM_ENVS)
        )
        envs_seq = []
        for i in range(self.NUM_ENVS):
            env = build_env(i)
            env.reset()
            episode = 0
            for t in range(self.STEPS):
                _obs, _r, done, _ = env.step(int(script[t, i]))
                episode += 1
                if done or episode >= self.MAX_EPISODE_STEPS:
                    env.reset()
                    episode = 0
            envs_seq.append(env)
        vec_env = VecNavigationEnv(
            [build_env(i) for i in range(self.NUM_ENVS)],
            max_episode_steps=self.MAX_EPISODE_STEPS,
        )
        vec_env.reset()
        for t in range(self.STEPS):
            vec_env.step(script[t])
        for seq_env, fleet_env in zip(envs_seq, vec_env.envs):
            assert seq_env.tracker.crash_count == fleet_env.tracker.crash_count
            assert seq_env.tracker.distances == fleet_env.tracker.distances


class TestAutoReset:
    def drive_until_crash(self, vec_env, states, max_steps=400):
        for _ in range(max_steps):
            actions = np.zeros(vec_env.num_envs, dtype=np.int64)  # forward
            states, rewards, dones, infos = vec_env.step(actions)
            if dones.any():
                return states, rewards, dones, infos
        pytest.fail("no crash while driving straight")

    def test_crash_respawns_with_fresh_observation(self):
        vec_env = VecNavigationEnv([build_env(i) for i in range(4)])
        states = vec_env.reset()
        states, rewards, dones, infos = self.drive_until_crash(vec_env, states)
        i = int(np.argmax(dones))
        assert rewards[i] == vec_env.envs[i].reward_config.crash_reward
        assert infos[i]["crashed"]
        # The terminal frame is preserved, the returned state is fresh.
        assert infos[i]["final_observation"] is not None
        assert not np.array_equal(states[i], infos[i]["final_observation"])
        # The env is immediately steppable (auto-reset happened).
        vec_env.step(np.zeros(4, dtype=np.int64))

    def test_truncation_resets_without_done(self):
        vec_env = VecNavigationEnv(
            [build_env(i) for i in range(2)], max_episode_steps=3
        )
        vec_env.reset()
        saw_truncation = False
        for step in range(12):
            _states, _rewards, dones, infos = vec_env.step(
                np.full(2, 1, dtype=np.int64)  # turning avoids most crashes
            )
            for i in range(2):
                if infos[i]["truncated"]:
                    saw_truncation = True
                    assert not dones[i]
                    assert "final_observation" in infos[i]
                    assert vec_env.episode_steps[i] == 0
        assert saw_truncation

    def test_truncation_fires_once_without_auto_reset(self):
        vec_env = VecNavigationEnv(
            [build_env(i) for i in range(2)],
            max_episode_steps=2,
            auto_reset=False,
        )
        vec_env.reset()
        fired = np.zeros(2, dtype=int)
        for step in range(4):
            try:
                _s, _r, dones, infos = vec_env.step(np.full(2, 1, dtype=np.int64))
            except RuntimeError:  # a crash ended an episode early
                break
            fired += [int(info["truncated"]) for info in infos]
            if dones.any():
                break
        # Past the cap the episode keeps running but never re-fires.
        assert (fired <= 1).all()

    def test_no_auto_reset_requires_manual_reset(self):
        vec_env = VecNavigationEnv(
            [build_env(i) for i in range(2)], auto_reset=False
        )
        states = vec_env.reset()
        for _ in range(400):
            states, _r, dones, _ = vec_env.step(np.zeros(2, dtype=np.int64))
            if dones.any():
                break
        else:
            pytest.fail("no crash while driving straight")
        with pytest.raises(RuntimeError):
            for _ in range(2):
                vec_env.step(np.zeros(2, dtype=np.int64))

    def test_sfd_by_class_groups_worlds(self):
        vec_env = VecNavigationEnv([build_env(i) for i in range(8)])
        vec_env.reset()
        for _ in range(20):
            vec_env.step(np.zeros(8, dtype=np.int64))
        by_class = vec_env.sfd_by_class()
        assert set(by_class) == set(ENV_NAMES)
        assert all(v >= 0.0 for v in by_class.values())


class TestConstruction:
    def test_needs_envs(self):
        with pytest.raises(ValueError):
            VecNavigationEnv([])

    def test_rejects_mismatched_cameras(self):
        envs = [build_env(0), build_env(1, side=14)]
        with pytest.raises(ValueError):
            VecNavigationEnv(envs)

    def test_rejects_bad_action_shape(self):
        vec_env = VecNavigationEnv([build_env(i) for i in range(3)])
        vec_env.reset()
        with pytest.raises(ValueError):
            vec_env.step(np.zeros(2, dtype=np.int64))

    def test_from_names_cycles_and_seeds(self):
        vec_env = VecNavigationEnv.from_names(
            ["indoor-apartment", "outdoor-forest"], seeds=list(range(5))
        )
        assert vec_env.num_envs == 5
        names = vec_env.env_classes()
        assert names[0] == names[2] == names[4] == "indoor-apartment"
        assert names[1] == names[3] == "outdoor-forest"
        # Same class, different seeds -> different worlds.
        assert (
            vec_env.envs[0].world.obstacle_count()
            != vec_env.envs[2].world.obstacle_count()
            or vec_env.envs[0].world.boxes != vec_env.envs[2].world.boxes
        )


class TestActBatch:
    def test_greedy_batch_matches_single_state_actions(self):
        agent = make_agent()
        states = np.stack(
            [
                np.random.default_rng(i).random((1, 16, 16))
                for i in range(8)
            ]
        )
        batch_actions = agent.act_batch(states, greedy=True)
        single = [
            agent.select_action(states[i], greedy=True) for i in range(8)
        ]
        assert batch_actions.tolist() == single
        q_batch = agent.network.predict(states)
        for i in range(8):
            q_single = agent.q_values(states[i])
            assert np.allclose(q_batch[i], q_single, rtol=1e-9, atol=1e-12)

    def test_batch_advances_schedule_by_batch_size(self):
        agent = make_agent(epsilon=EpsilonSchedule(1.0, 0.1, 100))
        states = np.zeros((6, 1, 16, 16))
        agent.act_batch(states)
        assert agent.step_count == 6

    def test_schedule_values_match_value_past_decay(self):
        schedule = EpsilonSchedule(0.3, 0.05, 7)
        steps = np.arange(20)
        vectorised = schedule.values(steps)
        for step in steps:
            assert vectorised[step] == schedule.value(int(step))

    def test_full_exploration_uses_no_forward_pass(self):
        agent = make_agent(epsilon=EpsilonSchedule(1.0, 1.0, 1000))
        states = np.zeros((4, 1, 16, 16))
        actions = agent.act_batch(states)
        assert actions.shape == (4,)
        assert all(0 <= a < agent.num_actions for a in actions)

    def test_rejects_single_state(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            agent.act_batch(np.zeros(3))


class TestTrainStepBatch:
    def test_scaled_batch_trains(self):
        agent = make_agent(batch_size=4)
        rng = np.random.default_rng(0)
        for _ in range(16):
            state = rng.random((1, 16, 16))
            agent.observe(Transition(state, 1, 0.5, rng.random((1, 16, 16)), False))
        loss = agent.train_step_batch(12)
        assert np.isfinite(loss)
        assert agent.train_count == 1

    def test_insufficient_buffer_raises(self):
        agent = make_agent(batch_size=4)
        with pytest.raises(RuntimeError):
            agent.train_step_batch(4)

    def test_invalid_batch_size_rejected(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            agent.train_step_batch(0)

    def test_observe_batch_validates(self):
        agent = make_agent()
        good = Transition(
            np.zeros((1, 16, 16)), 0, 0.1, np.zeros((1, 16, 16)), False
        )
        bad = Transition(
            np.zeros((1, 16, 16)), 0, float("nan"), np.zeros((1, 16, 16)), False
        )
        with pytest.raises(ValueError):
            agent.observe_batch([good, bad])
        agent.observe_batch([good, good])
        assert len(agent.replay) == 2


class TestSafeFlightTrackerFlush:
    def test_flush_closes_crash_free_segment(self):
        tracker = SafeFlightTracker()
        tracker.record_step(3.0)
        tracker.record_crash()
        tracker.record_step(5.0)
        assert tracker.pending_distance == pytest.approx(5.0)
        flushed = tracker.flush()
        assert flushed == pytest.approx(5.0)
        # The crash-free segment counts toward the mean...
        assert tracker.safe_flight_distance == pytest.approx(4.0)
        # ...but not toward the crash count.
        assert tracker.crash_count == 1

    def test_flush_empty_segment_is_noop(self):
        tracker = SafeFlightTracker()
        tracker.record_step(2.0)
        tracker.record_crash()
        assert tracker.flush() == 0.0
        assert tracker.distances == [2.0]

    def test_total_distance_includes_pending(self):
        tracker = SafeFlightTracker()
        tracker.record_step(1.0)
        tracker.record_crash()
        tracker.record_step(0.5)
        assert tracker.total_distance == pytest.approx(1.5)

    def test_env_reset_flushes_truncated_segment(self):
        env = build_env(0)
        env.reset()
        moved = 0.0
        for _ in range(3):
            _obs, _r, done, info = env.step(1)
            if done:
                pytest.skip("crashed immediately; flush path not reachable")
            moved += info["distance"]
        env.reset()
        assert env.tracker.crash_count == 0
        assert env.tracker.distances == [pytest.approx(moved)]
