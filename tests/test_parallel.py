"""Process-parallel execution and memoised cost oracles (repro.parallel).

Pins the contract the parallel layer lives or dies by: ``workers=1``
and ``workers>1`` are *bitwise-identical* — same Q values, same cost
ledgers, same fleet fingerprints, same fault event logs — because the
pool only moves pure ``forward_batch`` / raycast kernels into workers
while every RNG draw, chaos decision and accounting fold stays in the
coordinator.  Also covers the supporting pieces: worker planning,
spawn-safety guards on the process-local ``PROBE``/``FAULTS`` seams,
cross-worker span aggregation, the O(K) :class:`StepCostAccumulator`,
and the memoisation layer's hit/miss counters.
"""

import numpy as np
import pytest

from repro.backend import (
    ShardCost,
    ShardedBackend,
    StepCost,
    StepCostAccumulator,
    merge_step_costs,
)
from repro.faults import FAULTS, chaos, parse_fault_spec
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import build_network, scaled_drone_net_spec
from repro.obs import MetricsRegistry, observed
from repro.parallel import (
    cache,
    clear_memo_caches,
    get_pool,
    memo_disabled,
    memo_stats,
    memoised,
    publish_memo_metrics,
    resolve_workers,
    WorkerError,
)
from repro.parallel.dispatch import (
    _w_activate_faults,
    _w_activate_probe,
    _w_in_worker,
)
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16


def make_net(seed: int = 0):
    return build_network(scaled_drone_net_spec(input_side=SIDE), seed=seed)


def make_agent(backend, seed: int = 0, **kwargs) -> QLearningAgent:
    return QLearningAgent(
        backend.network,
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 200),
        seed=seed,
        batch_size=4,
        backend=backend,
        **kwargs,
    )


def make_fleet(num_envs: int = 4, workers=1) -> VecNavigationEnv:
    return VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=list(range(num_envs)),
        image_side=SIDE,
        max_episode_steps=100,
        workers=workers,
    )


@pytest.fixture(autouse=True)
def _seam_off_after():
    yield
    FAULTS.deactivate()


# RoundStats fields that must replay bitwise at any worker count —
# everything except the host wall-clock measurements.
_ROUND_FIELDS = (
    "round_index", "env_steps", "episodes", "train_updates", "mean_loss",
    "eval_sfd_by_class", "backend", "inference_states", "inference_macs",
    "inference_cycles", "shards", "critical_path_cycles",
    "critical_shard_index", "sync_staleness", "training_cycles",
    "training_macs", "training_critical_path_cycles", "faults_injected",
    "faults_detected", "faults_recovered", "fault_recovery_cycles",
    "degraded_states", "active_shards",
)


def fleet_fingerprint(report):
    """Every deterministic field of a FleetReport (wall times excluded)."""
    return {
        "rounds": [
            {f: getattr(r, f) for f in _ROUND_FIELDS} for r in report.rounds
        ],
        "sfd_by_class": report.sfd_by_class,
        "crash_counts": report.crash_counts,
        "fault_events": report.fault_events,
    }


class TestResolveWorkers:
    def test_explicit_counts(self):
        assert resolve_workers(1) == 1
        assert resolve_workers("3") == 3
        assert resolve_workers(8, tasks=4) == 4

    def test_auto_is_at_least_one(self):
        assert resolve_workers("auto") >= 1

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("many")


class TestMemoisation:
    def test_hit_miss_counters(self):
        calls = []

        @memoised("test_parallel_sq")
        def sq(x):
            calls.append(x)
            return x * x

        sq.memo.clear()
        assert sq(3) == 9 and sq(3) == 9 and sq(4) == 16
        assert calls == [3, 4]
        assert sq.memo.hits == 1 and sq.memo.misses == 2
        assert sq.memo.hit_rate == pytest.approx(1 / 3)

    def test_memo_disabled_recomputes(self):
        calls = []

        @memoised("test_parallel_bypass")
        def f(x):
            calls.append(x)
            return x

        f.memo.clear()
        f(1)
        with memo_disabled():
            f(1)
            f(1)
        assert calls == [1, 1, 1]
        f(1)  # re-enabled: cache hit again
        assert calls == [1, 1, 1]

    def test_oracle_calls_are_memoised(self):
        from repro.systolic.cycles import conv_rowstationary_stats

        clear_memo_caches()
        table = cache("conv_rowstationary_stats")
        a = conv_rowstationary_stats(3, 16, 16, 8, 3, 3)
        b = conv_rowstationary_stats(3, 16, 16, 8, 3, 3)
        assert a == b
        assert table.hits == 1 and table.misses == 1

    def test_network_cost_signature_shares_entries(self):
        from repro.systolic.training import network_training_step_cost

        clear_memo_caches()
        cost_a = network_training_step_cost(make_net(0), (1, SIDE, SIDE), 4)
        # A different weight draw of the same topology must hit: the
        # closed-form cost depends only on shapes, not values.
        cost_b = network_training_step_cost(make_net(1), (1, SIDE, SIDE), 4)
        assert cost_a.total_cycles == cost_b.total_cycles
        table = cache("network_training_step_cost")
        assert table.hits == 1 and table.misses == 1

    def test_publish_memo_metrics_gauges(self):
        clear_memo_caches()
        from repro.systolic.cycles import fc_tile_stats

        fc_tile_stats(64, 32)
        fc_tile_stats(64, 32)
        registry = MetricsRegistry()
        with observed(registry=registry):
            stats = publish_memo_metrics()
        gauges = registry.snapshot()["gauges"]
        key = 'repro_memo_hits{oracle="fc_tile_stats"}'
        assert gauges[key] == 1.0
        assert gauges["repro_memo_hit_rate_overall"] > 0.0
        assert stats["fc_tile_stats"]["hit_rate"] == 0.5
        assert memo_stats()["fc_tile_stats"]["entries"] == 1


def _plain(states, cycles, macs):
    return StepCost(
        backend="systolic", states=states, macs=macs,
        layer_cycles={"conv1": cycles},
    )


def _sharded(states, per_array, merge=7):
    return ShardCost(
        backend="sharded", states=states, macs=states * 10,
        layer_cycles={"conv1": sum(per_array)}, shards=len(per_array),
        shard_cycles=tuple(per_array),
        critical_path_cycles=max(per_array) + merge, merge_cycles=merge,
        critical_shard_index=max(
            range(len(per_array)), key=per_array.__getitem__
        ),
    )


class TestStepCostAccumulator:
    SEQUENCES = {
        "plain_only": [_plain(4, 100, 40), _plain(2, 60, 20)],
        "sharded_only": [_sharded(8, (50, 80, 20)), _sharded(4, (30, 10, 90))],
        # A plain record *before* the first ShardCost must still charge
        # array 0 of the merged sharded total.
        "plain_then_sharded": [_plain(4, 100, 40), _sharded(8, (50, 80, 20))],
        "sharded_then_plain": [_sharded(8, (50, 80, 20)), _plain(4, 100, 40)],
        "empty": [],
    }

    @pytest.mark.parametrize("name", sorted(SEQUENCES))
    def test_matches_merge_step_costs(self, name):
        costs = self.SEQUENCES[name]
        acc = StepCostAccumulator()
        for c in costs:
            acc.add(c)
        assert acc.merge() == merge_step_costs(list(costs))

    def test_total_cycles_peek_and_drain(self):
        acc = StepCostAccumulator("sharded")
        acc.add(_sharded(8, (50, 80, 20)))
        acc.add(_plain(4, 100, 40))
        assert acc.total_cycles == merge_step_costs(
            [_sharded(8, (50, 80, 20)), _plain(4, 100, 40)]
        ).total_cycles
        merged = acc.drain()
        assert isinstance(merged, ShardCost)
        assert len(acc) == 0
        assert acc.drain() == merge_step_costs([], backend="sharded")


class TestSpawnSafety:
    def test_worker_marks_itself(self):
        assert get_pool(1).run(_w_in_worker) is True

    def test_probe_activation_fails_loudly_in_worker(self):
        with pytest.raises(WorkerError, match="process-local"):
            get_pool(1).run(_w_activate_probe)

    def test_faults_activation_fails_loudly_in_worker(self):
        with pytest.raises(WorkerError, match="process-local"):
            get_pool(1).run(_w_activate_faults)

    def test_worker_error_does_not_kill_pool(self):
        pool = get_pool(1)
        with pytest.raises(WorkerError):
            pool.run(_w_activate_probe)
        assert pool.run(_w_in_worker) is True


class TestParallelForwardIdentity:
    def test_sharded_forward_bitwise_identical(self):
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((32, 1, SIDE, SIDE))
        serial = ShardedBackend(make_net(), shards=4, workers=1)
        parallel = ShardedBackend(make_net(), shards=4, workers=2)
        q_s, cost_s = serial.forward_batch(batch)
        q_p, cost_p = parallel.forward_batch(batch)
        assert np.array_equal(q_s, q_p)
        assert cost_s == cost_p

    def test_identity_survives_weight_sync(self):
        rng = np.random.default_rng(1)
        batch = rng.standard_normal((16, 1, SIDE, SIDE))
        serial = ShardedBackend(make_net(), shards=4, workers=1)
        parallel = ShardedBackend(make_net(), shards=4, workers=2)
        for backend in (serial, parallel):
            backend.forward_batch(batch)  # ship the pre-update snapshot
            backend.network.parameters()[0].value += 0.01
            backend.sync()
        q_s, _ = serial.forward_batch(batch)
        q_p, _ = parallel.forward_batch(batch)
        assert np.array_equal(q_s, q_p)

    def test_vec_env_observations_bitwise_identical(self):
        serial = make_fleet(num_envs=4, workers=1)
        parallel = make_fleet(num_envs=4, workers=2)
        obs_s = [serial.reset()]
        obs_p = [parallel.reset()]
        for _ in range(5):
            actions = np.zeros(4, dtype=int)
            obs_s.append(serial.step(actions)[0])
            obs_p.append(parallel.step(actions)[0])
        assert np.array_equal(np.stack(obs_s), np.stack(obs_p))


class TestParallelFleetIdentity:
    def _run(self, workers, plan=None):
        agent = make_agent(
            ShardedBackend(make_net(), shards=4, workers=workers),
            sync_every=4,
        )
        scheduler = FleetScheduler(
            agent, make_fleet(4, workers=workers), train_every=2, eval_steps=5
        )
        if plan is None:
            return scheduler.run(rounds=2, steps_per_round=10)
        with chaos(plan):
            return scheduler.run(rounds=2, steps_per_round=10)

    def test_fleet_fingerprint_identical(self):
        assert fleet_fingerprint(self._run(1)) == fleet_fingerprint(
            self._run(2)
        )

    def test_fleet_fingerprint_identical_under_chaos(self):
        spec = "seed=7,crash=1@15,transient=0.1,straggler=0.1,sensor=0.02"
        serial = self._run(1, parse_fault_spec(spec))
        parallel = self._run(2, parse_fault_spec(spec))
        assert serial.fault_events == parallel.fault_events
        assert fleet_fingerprint(serial) == fleet_fingerprint(parallel)


class TestSpanAggregation:
    def _spans(self, workers):
        rng = np.random.default_rng(2)
        batch = rng.standard_normal((32, 1, SIDE, SIDE))
        backend = ShardedBackend(make_net(), shards=4, workers=workers)
        backend.forward_batch(batch)  # ship weights before tracing
        with observed(registry=MetricsRegistry()) as (tracer, _):
            backend.forward_batch(batch)
        return [s for s in tracer.spans if s.name == "shard.forward"]

    def test_worker_spans_aggregate_in_coordinator(self):
        serial = self._spans(1)
        parallel = self._spans(2)
        assert len(serial) == len(parallel) == 4
        assert [s.args["shard"] for s in serial] == [
            s.args["shard"] for s in parallel
        ]
        assert [s.cycles for s in serial] == [s.cycles for s in parallel]
        # Parallel spans carry the worker lane; serial ones do not.
        assert all(s.args.get("worker") is not None for s in parallel)
        assert all(s.args.get("worker") is None for s in serial)
        assert all(s.thread_id < 0 for s in parallel)
