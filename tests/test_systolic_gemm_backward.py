"""Tests: the GEMM conv-backward path matches Conv2D autograd exactly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers import Conv2D
from repro.systolic import conv_backward_gemm


def reference_grads(x, weights, grad_out, stride, pad, rng):
    layer = Conv2D(
        x.shape[1], weights.shape[0], weights.shape[2],
        stride=stride, pad=pad, rng=rng,
    )
    layer.weight.value = weights.copy()
    layer.bias.value = np.zeros(weights.shape[0])
    layer.forward(x, training=True)
    dx = layer.backward(grad_out)
    return layer.weight.grad, layer.bias.grad, dx


class TestAgainstAutograd:
    @pytest.mark.parametrize(
        "stride,pad", [(1, 0), (1, 1), (2, 0), (2, 2), (4, 0)]
    )
    def test_matches_conv2d_backward(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 11, 11))
        weights = rng.normal(size=(4, 3, 3, 3))
        out_side = (11 + 2 * pad - 3) // stride + 1
        grad_out = rng.normal(size=(2, 4, out_side, out_side))
        result = conv_backward_gemm(x, weights, grad_out, stride=stride, pad=pad)
        dw, db, dx = reference_grads(x, weights, grad_out, stride, pad, rng)
        assert np.allclose(result.weight_grad, dw)
        assert np.allclose(result.bias_grad, db)
        assert np.allclose(result.input_grad, dx)

    def test_conv1_like_geometry(self, rng):
        """The paper's CONV1 shape family: 11x11 kernel, stride 4."""
        x = rng.normal(size=(1, 3, 39, 39))
        weights = rng.normal(size=(8, 3, 11, 11))
        grad_out = rng.normal(size=(1, 8, 8, 8))
        result = conv_backward_gemm(x, weights, grad_out, stride=4)
        dw, db, dx = reference_grads(x, weights, grad_out, 4, 0, rng)
        assert np.allclose(result.weight_grad, dw)
        assert np.allclose(result.input_grad, dx)


class TestAccounting:
    def test_expansion_elements(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        weights = rng.normal(size=(3, 2, 3, 3))
        grad_out = rng.normal(size=(1, 3, 6, 6))
        result = conv_backward_gemm(x, weights, grad_out)
        assert result.expansion_elements == 2 * 9 * 36  # KKIC x OHOW

    def test_macs_symmetric(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        weights = rng.normal(size=(3, 2, 3, 3))
        grad_out = rng.normal(size=(1, 3, 6, 6))
        result = conv_backward_gemm(x, weights, grad_out)
        assert result.dw_macs == result.dx_macs == 3 * 36 * 18

    def test_expansion_bits(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        weights = rng.normal(size=(1, 1, 3, 3))
        grad_out = rng.normal(size=(1, 1, 3, 3))
        result = conv_backward_gemm(x, weights, grad_out)
        assert result.expansion_bits(16) == 2 * result.expansion_elements * 16


class TestValidation:
    def test_dim_checks(self, rng):
        with pytest.raises(ValueError):
            conv_backward_gemm(
                rng.normal(size=(3, 8, 8)),
                rng.normal(size=(1, 3, 3, 3)),
                rng.normal(size=(1, 1, 6, 6)),
            )

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            conv_backward_gemm(
                rng.normal(size=(1, 2, 8, 8)),
                rng.normal(size=(1, 3, 3, 3)),
                rng.normal(size=(1, 1, 6, 6)),
            )

    def test_grad_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            conv_backward_gemm(
                rng.normal(size=(1, 2, 8, 8)),
                rng.normal(size=(3, 2, 3, 3)),
                rng.normal(size=(1, 5, 6, 6)),
            )

    def test_spatial_mismatch(self, rng):
        with pytest.raises(ValueError):
            conv_backward_gemm(
                rng.normal(size=(1, 2, 8, 8)),
                rng.normal(size=(3, 2, 3, 3)),
                rng.normal(size=(1, 3, 9, 9)),
            )


@settings(max_examples=25, deadline=None)
@given(
    c=st.integers(1, 3),
    oc=st.integers(1, 4),
    size=st.integers(6, 12),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.integers(1, 2),
    seed=st.integers(0, 500),
)
def test_gemm_path_always_matches(c, oc, size, kernel, stride, seed):
    if kernel > size:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(1, c, size, size))
    weights = rng.normal(size=(oc, c, kernel, kernel))
    out_side = (size - kernel) // stride + 1
    grad_out = rng.normal(size=(1, oc, out_side, out_side))
    result = conv_backward_gemm(x, weights, grad_out, stride=stride)
    dw, db, dx = reference_grads(x, weights, grad_out, stride, 0, rng)
    assert np.allclose(result.weight_grad, dw)
    assert np.allclose(result.bias_grad, db)
    assert np.allclose(result.input_grad, dx)
