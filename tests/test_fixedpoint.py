"""Tests for repro.fixedpoint."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import Q2_13, Q8_8, QFormat, quantization_stats


class TestQFormatBasics:
    def test_total_bits_signed(self):
        assert Q8_8.total_bits == 16
        assert Q2_13.total_bits == 16

    def test_total_bits_unsigned(self):
        fmt = QFormat(8, 8, signed=False)
        assert fmt.total_bits == 16
        assert fmt.min_raw == 0
        assert fmt.max_raw == 65535

    def test_scale_is_lsb(self):
        assert Q8_8.scale == 2.0**-8
        assert Q2_13.scale == 2.0**-13

    def test_range_signed(self):
        assert Q8_8.max_value == pytest.approx(127.99609375)
        assert Q8_8.min_value == pytest.approx(-128.0)

    def test_invalid_negative_bits(self):
        with pytest.raises(ValueError):
            QFormat(-1, 8)

    def test_invalid_zero_width(self):
        with pytest.raises(ValueError):
            QFormat(0, 0, signed=False)

    def test_invalid_too_wide(self):
        with pytest.raises(ValueError):
            QFormat(40, 40)


class TestQuantize:
    def test_exact_values_roundtrip(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25])
        assert np.array_equal(Q8_8.quantize(values), values)

    def test_rounding_to_nearest(self):
        # 0.3 is not representable in Q8.8; nearest code is 77/256.
        assert Q8_8.quantize(0.3) == pytest.approx(77 / 256)

    def test_saturation_positive(self):
        assert Q8_8.quantize(1e6) == Q8_8.max_value

    def test_saturation_negative(self):
        assert Q8_8.quantize(-1e6) == Q8_8.min_value

    def test_representable_mask(self):
        mask = Q8_8.representable(np.array([0.5, 0.3]))
        assert mask.tolist() == [True, False]

    def test_to_raw_dtype(self):
        assert Q8_8.to_raw(np.ones(3)).dtype == np.int64


class TestSaturatingArithmetic:
    def test_add_saturates(self):
        raw = Q8_8.add_raw(Q8_8.max_raw, 100)
        assert raw == Q8_8.max_raw

    def test_sub_saturates(self):
        raw = Q8_8.sub_raw(Q8_8.min_raw, 100)
        assert raw == Q8_8.min_raw

    def test_mul_matches_float_for_small_values(self):
        a, b = 1.5, -2.25
        assert Q8_8.multiply(a, b) == pytest.approx(a * b, abs=Q8_8.scale)

    def test_mul_saturates(self):
        out = Q8_8.multiply(100.0, 100.0)
        assert out == Q8_8.max_value

    def test_mul_raw_rounds(self):
        # 0.5 * 0.5 = 0.25 exactly representable.
        raw = Q8_8.mul_raw(Q8_8.to_raw(0.5), Q8_8.to_raw(0.5))
        assert Q8_8.from_raw(raw) == 0.25


class TestQuantizationStats:
    def test_zero_error_for_representable(self):
        stats = quantization_stats(np.array([0.5, 1.0, -2.0]), Q8_8)
        assert stats.max_abs_error == 0.0
        assert stats.saturated_fraction == 0.0
        assert stats.snr_db == float("inf")

    def test_error_bounded_by_half_lsb(self, rng):
        values = rng.uniform(-100, 100, size=1000)
        stats = quantization_stats(values, Q8_8)
        assert stats.max_abs_error <= Q8_8.scale / 2 + 1e-12

    def test_saturated_fraction(self):
        values = np.array([0.0, 500.0, -500.0, 1.0])
        stats = quantization_stats(values, Q8_8)
        assert stats.saturated_fraction == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantization_stats(np.array([]), Q8_8)

    def test_snr_improves_with_more_fraction_bits(self, rng):
        values = rng.uniform(-1, 1, size=2000)
        coarse = quantization_stats(values, QFormat(2, 6))
        fine = quantization_stats(values, QFormat(2, 13))
        assert fine.snr_db > coarse.snr_db + 30  # ~6 dB per bit


@given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
def test_quantize_idempotent(x):
    once = Q8_8.quantize(x)
    assert Q8_8.quantize(once) == once


@given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
def test_quantize_within_range(x):
    q = float(Q8_8.quantize(x))
    assert Q8_8.min_value <= q <= Q8_8.max_value


@given(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)
def test_quantize_monotone(a, b):
    if a <= b:
        assert Q8_8.quantize(a) <= Q8_8.quantize(b)
