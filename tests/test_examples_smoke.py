"""Smoke tests: the fast examples must run end to end.

The slower RL examples (indoor/outdoor navigation, robustness) are
exercised indirectly by the integration tests and benchmarks; here we
execute the quick ones exactly as a user would.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Memory mapping" in out
        assert "L3" in out and "E2E" in out
        assert "lower energy per frame" in out

    def test_hardware_design_space(self, capsys):
        out = run_example("hardware_design_space.py", capsys)
        assert "Batch-size sweep" in out
        assert "feasible topologies" in out
        assert "STT-MRAM" in out

    def test_realtime_feasibility(self, capsys):
        out = run_example("realtime_feasibility.py", capsys)
        assert "Real-time?" in out
        assert "NO" in out      # E2E fails
        assert "yes" in out     # TL topologies pass

    @pytest.mark.parametrize(
        "name",
        [
            "indoor_navigation.py",
            "outdoor_navigation.py",
            "quantization_study.py",
            "robustness_study.py",
        ],
    )
    def test_slow_examples_importable(self, name):
        """The RL-heavy examples must at least parse and expose main()."""
        path = EXAMPLES_DIR / name
        spec = importlib.util.spec_from_file_location("probe_" + name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
