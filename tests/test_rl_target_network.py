"""Tests for the target-network / double-DQN options."""

import numpy as np
import pytest

from repro.env.episode import Transition
from repro.nn import Dense, Network, ReLU
from repro.rl import QLearningAgent
from repro.rl.transfer import config_by_name


def vector_net(seed=0):
    rng = np.random.default_rng(seed)
    return Network(
        [
            Dense(4, 12, name="FC1", rng=rng),
            ReLU(),
            Dense(12, 3, name="FC2", rng=rng),
        ]
    )


def make_agent(**kwargs):
    defaults = dict(
        config=config_by_name("E2E"), num_actions=3, batch_size=4, seed=0
    )
    defaults.update(kwargs)
    return QLearningAgent(vector_net(), **defaults)


def fill(agent, rng, n=32):
    for _ in range(n):
        s = rng.normal(size=(4,))
        agent.observe(Transition(s, int(rng.integers(3)), float(s[0]), s + 0.1, False))


class TestValidation:
    def test_nonpositive_sync_rejected(self):
        with pytest.raises(ValueError):
            make_agent(target_sync_every=0)

    def test_double_dqn_requires_target(self):
        with pytest.raises(ValueError):
            make_agent(double_dqn=True)


class TestTargetNetwork:
    def test_no_target_by_default(self):
        assert make_agent()._target_state is None

    def test_target_initialised_to_online_weights(self):
        agent = make_agent(target_sync_every=10)
        for name, value in agent.network.state_dict().items():
            assert np.array_equal(agent._target_state[name], value)

    def test_target_lags_online_until_sync(self, rng):
        agent = make_agent(target_sync_every=100)
        fill(agent, rng)
        for _ in range(5):
            agent.train_step()
        online = agent.network.state_dict()
        assert any(
            not np.array_equal(online[k], agent._target_state[k])
            for k in online
        )

    def test_target_syncs_on_schedule(self, rng):
        agent = make_agent(target_sync_every=3)
        fill(agent, rng)
        for _ in range(3):
            agent.train_step()
        online = agent.network.state_dict()
        for key, value in online.items():
            assert np.array_equal(agent._target_state[key], value), key

    def test_bootstrap_uses_target(self, rng):
        agent = make_agent(target_sync_every=1000)
        fill(agent, rng)
        # Skew the online network heavily; the bootstrap values must
        # still come from the (stale) target snapshot.
        states = rng.normal(size=(4, 4))
        before = agent._bootstrap_values(states)
        for p in agent.network.parameters():
            p.value = p.value + 10.0
        after = agent._bootstrap_values(states)
        assert np.allclose(before, after)

    def test_predict_with_state_restores_weights(self, rng):
        agent = make_agent(target_sync_every=10)
        snapshot = agent.network.state_dict()
        agent._predict_with_state(rng.normal(size=(2, 4)), agent._target_state)
        for key, value in agent.network.state_dict().items():
            assert np.array_equal(value, snapshot[key])


class TestDoubleDQN:
    def test_double_dqn_bootstrap_bounded_by_target_max(self, rng):
        agent = make_agent(target_sync_every=50, double_dqn=True)
        fill(agent, rng)
        agent.train_step()  # desync online from target
        states = rng.normal(size=(8, 4))
        double = agent._bootstrap_values(states)
        target_max = agent._predict_with_state(
            states, agent._target_state
        ).max(axis=1)
        # Double DQN evaluates the online argmax under the target net,
        # which can never exceed the target's own max.
        assert np.all(double <= target_max + 1e-12)

    def test_training_runs_stably(self, rng):
        agent = make_agent(target_sync_every=5, double_dqn=True)
        fill(agent, rng, n=64)
        losses = [agent.train_step() for _ in range(30)]
        assert all(np.isfinite(l) for l in losses)
