"""Tests for the memory-traffic simulator and endurance model."""

import numpy as np
import pytest

from repro.nn import modified_alexnet_spec
from repro.perf import TrafficSimulator
from repro.rl import config_by_name


@pytest.fixture(scope="module")
def sims():
    spec = modified_alexnet_spec()
    return {
        name: TrafficSimulator(spec, config_by_name(name))
        for name in ("L2", "L3", "E2E")
    }


class TestIterationTraffic:
    def test_l_configs_never_write_nvm(self, sims):
        for name in ("L2", "L3"):
            traffic = sims[name].simulate_iteration(batch_size=4)
            assert traffic.nvm_write_bits == 0, name

    def test_e2e_writes_nvm(self, sims):
        traffic = sims["E2E"].simulate_iteration(batch_size=4)
        assert traffic.nvm_write_bits > 0
        # The update alone writes the whole NVM-resident model (~100 MB)
        # once, plus FC1 gradient spills per image.
        assert traffic.nvm_write_bits > 99.8e6 * 8

    def test_nvm_reads_scale_with_batch(self, sims):
        t4 = sims["L3"].simulate_iteration(4)
        t8 = sims["L3"].simulate_iteration(8)
        assert t8.nvm_read_bits == pytest.approx(2 * t4.nvm_read_bits, rel=1e-6)

    def test_forward_nvm_reads_match_resident_weights(self, sims):
        spec = modified_alexnet_spec()
        traffic = sims["L3"].simulate_iteration(1)
        resident_bits = sum(
            l.weight_count * 16
            for l in spec.layers
            if l.name not in ("FC3", "FC4", "FC5")
        )
        # One forward read of the frozen model (no backward NVM reads
        # for L3 since all trainable layers live in SRAM).
        assert traffic.nvm_read_bits == resident_bits

    def test_dram_reads_one_frame_per_image(self, sims):
        spec = modified_alexnet_spec()
        frame_bits = 227 * 227 * 3 * 16
        traffic = sims["L3"].simulate_iteration(4)
        assert traffic.dram_read_bits == 4 * frame_bits

    def test_sram_traffic_positive(self, sims):
        traffic = sims["L3"].simulate_iteration(2)
        assert traffic.sram_read_bits > 0
        assert traffic.sram_write_bits > 0

    def test_total_and_fraction(self, sims):
        traffic = sims["E2E"].simulate_iteration(4)
        assert traffic.total_bits == (
            traffic.dram_read_bits + traffic.nvm_read_bits
            + traffic.nvm_write_bits + traffic.sram_read_bits
            + traffic.sram_write_bits
        )
        assert 0.0 < traffic.nvm_write_fraction < 1.0

    def test_batch_validation(self, sims):
        with pytest.raises(ValueError):
            sims["L3"].simulate_iteration(0)

    def test_device_counters_charged(self):
        spec = modified_alexnet_spec()
        sim = TrafficSimulator(spec, config_by_name("E2E"))
        sim.simulate_iteration(1)
        assert sim.nvm.counters.read_bits > 0
        assert sim.nvm.counters.write_bits > 0
        assert sim.buffer.counters.total_bits > 0
        assert sim.camera_dram.counters.read_bits > 0


class TestEndurance:
    def test_l3_lifetime_infinite(self, sims):
        traffic = sims["L3"].simulate_iteration(4)
        est = sims["L3"].endurance(traffic, iterations_per_second=17.8)
        assert est.lifetime_days == float("inf")

    def test_e2e_lifetime_finite(self, sims):
        traffic = sims["E2E"].simulate_iteration(4)
        est = sims["E2E"].endurance(traffic, iterations_per_second=2.2)
        assert np.isfinite(est.lifetime_days)
        assert est.lifetime_days > 0

    def test_lifetime_scales_inverse_with_rate(self, sims):
        traffic = sims["E2E"].simulate_iteration(4)
        slow = sims["E2E"].endurance(traffic, iterations_per_second=1.0)
        fast = sims["E2E"].endurance(traffic, iterations_per_second=10.0)
        assert slow.lifetime_days == pytest.approx(10 * fast.lifetime_days)

    def test_lifetime_scales_with_endurance_cycles(self, sims):
        traffic = sims["E2E"].simulate_iteration(4)
        weak = sims["E2E"].endurance(traffic, 2.0, endurance_cycles=1e6)
        strong = sims["E2E"].endurance(traffic, 2.0, endurance_cycles=1e12)
        assert strong.lifetime_days == pytest.approx(1e6 * weak.lifetime_days)

    def test_validation(self, sims):
        traffic = sims["E2E"].simulate_iteration(1)
        with pytest.raises(ValueError):
            sims["E2E"].endurance(traffic, iterations_per_second=0.0)
        with pytest.raises(ValueError):
            sims["E2E"].endurance(traffic, 1.0, endurance_cycles=0.0)

    def test_years_conversion(self, sims):
        traffic = sims["E2E"].simulate_iteration(4)
        est = sims["E2E"].endurance(traffic, 2.2)
        assert est.lifetime_years == pytest.approx(est.lifetime_days / 365.25)
