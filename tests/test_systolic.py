"""Tests for the systolic array: PE, mappings, functional simulation."""

import numpy as np
import pytest

from repro.nn import modified_alexnet_spec
from repro.nn.layers import im2col
from repro.nn.specs import ConvSpec, FCSpec
from repro.systolic import (
    ArrayConfig,
    FunctionalSystolicArray,
    MappingType,
    PAPER_ARRAY,
    PEConfig,
    ProcessingElement,
    map_conv_layer,
    map_fc_layer,
    simulate_conv_rowstationary,
)


class TestPEConfig:
    def test_paper_values(self):
        pe = PEConfig()
        assert pe.rf_bytes == 4608  # 4.5 KB
        assert pe.n_macs == 8
        assert pe.n_comparators == 8
        assert pe.link_bits == 128
        assert pe.rf_words == 2304
        assert pe.words_per_link_beat == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            PEConfig(rf_bytes=0)
        with pytest.raises(ValueError):
            PEConfig(word_bits=12)


class TestProcessingElement:
    def test_row_conv_correct(self):
        pe = ProcessingElement()
        pe.load_filter_row(np.array([1.0, 2.0]))
        pe.load_input_row(np.array([1.0, 0.0, 1.0, 2.0]))
        out = pe.row_conv()
        assert np.allclose(out, [1.0, 2.0, 5.0])

    def test_row_conv_stride(self):
        pe = ProcessingElement()
        pe.load_filter_row(np.array([1.0, 1.0]))
        pe.load_input_row(np.arange(6, dtype=float))
        out = pe.row_conv(stride=2)
        assert np.allclose(out, [1.0, 5.0, 9.0])

    def test_cycle_accounting(self):
        pe = ProcessingElement()
        pe.load_filter_row(np.ones(3))
        pe.load_input_row(np.ones(10))
        pe.row_conv()
        assert pe.cycles == 8 * 3  # 8 outputs x 3 taps

    def test_rf_overflow(self):
        pe = ProcessingElement(PEConfig(rf_bytes=16))  # 8 words
        with pytest.raises(ValueError, match="RF overflow"):
            pe.load_input_row(np.ones(9))

    def test_psum_accumulation(self):
        pe = ProcessingElement()
        pe.accumulate(np.array([1.0, 2.0]))
        pe.accumulate(np.array([3.0, 4.0]))
        assert np.allclose(pe.psum, [4.0, 6.0])

    def test_psum_shape_mismatch(self):
        pe = ProcessingElement()
        pe.accumulate(np.ones(3))
        with pytest.raises(ValueError):
            pe.accumulate(np.ones(4))

    def test_relu_uses_comparators(self):
        pe = ProcessingElement()
        out = pe.relu(np.array([-1.0, 2.0, -3.0, 4.0]))
        assert np.allclose(out, [0.0, 2.0, 0.0, 4.0])
        assert pe.cycles == 1  # 4 values / 8 comparators rounds up to 1

    def test_row_conv_without_load_raises(self):
        with pytest.raises(RuntimeError):
            ProcessingElement().row_conv()


class TestArrayConfig:
    def test_paper_array(self):
        assert PAPER_ARRAY.total_pes == 1024
        assert PAPER_ARRAY.rows == PAPER_ARRAY.cols == 32
        assert PAPER_ARRAY.clock_hz == 1e9
        assert PAPER_ARRAY.words_per_stream_cycle == 8

    def test_seconds(self):
        assert PAPER_ARRAY.seconds(1e9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            PAPER_ARRAY.seconds(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayConfig(rows=0)


class TestConvMappings:
    """Fig. 6 geometry for the paper's AlexNet."""

    @pytest.fixture(scope="class")
    def mappings(self):
        spec = modified_alexnet_spec()
        return {c.name: map_conv_layer(c) for c in spec.conv_layers}

    def test_conv1_type_i(self, mappings):
        m = mappings["CONV1"]
        assert m.mapping_type is MappingType.TYPE_I
        assert m.segments == 2          # 2 segments of 11 rows
        assert m.segment_rows == 11
        assert m.sets == 1
        assert m.filters_per_segment == 24  # "x24" in Fig. 6a
        assert m.active_pes == 704      # Fig. 12a

    def test_conv2_type_ii(self, mappings):
        m = mappings["CONV2"]
        assert m.mapping_type is MappingType.TYPE_II
        assert m.segments == 6          # 6 segments of 5x27
        assert m.segment_rows == 5
        assert m.cols_used == 27
        assert m.channel_split == 2     # input channels split in two
        assert m.active_pes == 960      # Fig. 12a

    @pytest.mark.parametrize("layer", ["CONV3", "CONV4", "CONV5"])
    def test_conv345_type_iii(self, mappings, layer):
        m = mappings[layer]
        assert m.mapping_type is MappingType.TYPE_III
        assert m.sets == 2              # 2 sets of segments
        assert m.segments == 10         # 10 segments of 3x13 per set
        assert m.segment_rows == 3
        assert m.cols_used == 13
        assert m.active_pes == 960      # Fig. 12a

    def test_conv1_row_passes(self, mappings):
        # 55 output rows over 32 columns -> 2 passes.
        assert mappings["CONV1"].row_passes == 2

    def test_total_passes_positive(self, mappings):
        for m in mappings.values():
            assert m.total_passes >= 1

    def test_ideal_cycles_scale_with_macs(self, mappings):
        assert mappings["CONV2"].ideal_cycles() > mappings["CONV1"].ideal_cycles()

    def test_filter_taller_than_array_rejected(self):
        spec = ConvSpec(
            "huge", in_height=64, in_width=64, in_channels=1, out_channels=1,
            kernel=33,
        )
        with pytest.raises(ValueError):
            map_conv_layer(spec)

    def test_non_paper_shape_uses_fallback(self):
        spec = ConvSpec(
            "custom", in_height=16, in_width=16, in_channels=1, out_channels=4,
            kernel=5, stride=1, pad=0,
        )
        m = map_conv_layer(spec)
        assert m.filters_per_segment >= 1
        assert m.active_pes <= 1024


class TestFCMappings:
    def test_fc1_active_pes(self, alexnet_spec):
        m = map_fc_layer(alexnet_spec.layer("FC1"))
        assert m.active_pes == 1024  # Fig. 12a

    def test_fc5_active_pes(self, alexnet_spec):
        m = map_fc_layer(alexnet_spec.layer("FC5"))
        assert m.active_pes == 160  # 32 rows x 5 outputs

    def test_stream_cycles_are_weight_bound(self, alexnet_spec):
        m = map_fc_layer(alexnet_spec.layer("FC1"))
        # 37.75M weights x 16 bit / 128 bit per cycle.
        assert m.stream_cycles() == pytest.approx(
            alexnet_spec.layer("FC1").weight_count * 16 / 128, rel=1e-6
        )

    def test_tiles(self):
        m = map_fc_layer(FCSpec("f", in_features=64, out_features=64))
        assert m.row_tiles == 2 and m.col_tiles == 2
        assert m.total_tiles == 4

    def test_fill_drain_positive(self):
        m = map_fc_layer(FCSpec("f", in_features=10, out_features=10))
        assert m.fill_drain_cycles() > 0


class TestFunctionalSimulation:
    def test_matches_im2col_reference(self, rng):
        x = rng.normal(size=(2, 10, 10))
        w = rng.normal(size=(3, 2, 3, 3))
        out, stats = simulate_conv_rowstationary(x, w)
        cols = im2col(x[None], 3, 3, 1, 0)
        ref = (w.reshape(3, -1) @ cols[0]).reshape(3, 8, 8)
        assert np.allclose(out, ref)
        assert stats.total_pe_cycles > 0

    def test_matches_reference_with_stride(self, rng):
        x = rng.normal(size=(1, 11, 11))
        w = rng.normal(size=(2, 1, 5, 5))
        out, _ = simulate_conv_rowstationary(x, w, stride=2)
        cols = im2col(x[None], 5, 5, 2, 0)
        ref = (w.reshape(2, -1) @ cols[0]).reshape(2, 4, 4)
        assert np.allclose(out, ref)

    @pytest.mark.parametrize("kh,kw", [(1, 1), (3, 3), (5, 5)])
    def test_kernel_sizes(self, rng, kh, kw):
        x = rng.normal(size=(1, 9, 9))
        w = rng.normal(size=(1, 1, kh, kw))
        out, _ = simulate_conv_rowstationary(x, w)
        cols = im2col(x[None], kh, kw, 1, 0)
        ref = (w.reshape(1, -1) @ cols[0]).reshape(1, 9 - kh + 1, 9 - kw + 1)
        assert np.allclose(out, ref)

    def test_cycle_count_matches_mac_count(self, rng):
        x = rng.normal(size=(1, 6, 6))
        w = rng.normal(size=(1, 1, 3, 3))
        _, stats = simulate_conv_rowstationary(x, w)
        # Each output (4x4) takes kh rows x (ow x kw) MACs.
        assert stats.total_pe_cycles == 4 * 4 * 3 * 3

    def test_input_validation(self, rng):
        sim = FunctionalSystolicArray()
        with pytest.raises(ValueError):
            sim.conv2d(rng.normal(size=(2, 4, 4)), rng.normal(size=(1, 3, 3, 3)))
        with pytest.raises(ValueError):
            sim.conv2d(rng.normal(size=(4, 4)), rng.normal(size=(1, 1, 3, 3)))
        with pytest.raises(ValueError):
            sim.conv2d(rng.normal(size=(1, 2, 2)), rng.normal(size=(1, 1, 3, 3)))
        with pytest.raises(ValueError):
            FunctionalSystolicArray(fidelity="warp")
        with pytest.raises(ValueError):
            sim.conv2d(rng.normal(size=(1, 4, 4)), rng.normal(size=(1, 1, 3, 3)),
                       pad=-1)

    @pytest.mark.parametrize("fidelity", ["fast", "pe"])
    def test_padded_conv_matches_reference(self, rng, fidelity):
        x = rng.normal(size=(2, 7, 7))
        w = rng.normal(size=(3, 2, 3, 3))
        out, _ = simulate_conv_rowstationary(x, w, pad=1, fidelity=fidelity)
        cols = im2col(x[None], 3, 3, 1, 1)
        ref = (w.reshape(3, -1) @ cols[0]).reshape(3, 7, 7)
        assert np.allclose(out, ref)

    def test_batch_matches_stacked_singles(self, rng):
        x = rng.normal(size=(3, 2, 8, 8))
        w = rng.normal(size=(4, 2, 3, 3))
        out, stats = simulate_conv_rowstationary(x, w)
        assert out.shape == (3, 4, 6, 6)
        singles = [simulate_conv_rowstationary(img, w) for img in x]
        assert np.allclose(out, np.stack([o for o, _ in singles]))
        # Counters scale linearly with the batch; occupancy does not.
        one = singles[0][1]
        assert stats.total_pe_cycles == 3 * one.total_pe_cycles
        assert stats.wavefront_cycles == 3 * one.wavefront_cycles
        assert stats.pes_used == one.pes_used


class TestWavefrontOccupancy:
    """Regression: partial passes charge per occupied wavefront.

    The drain charge used to be a flat ``kh + ow`` per column pass even
    when the final pass filled only part of the array; it is now
    ``kh + ow + occupied - 1`` (one cycle of stagger per additional
    occupied column).
    """

    @pytest.mark.parametrize("fidelity", ["fast", "pe"])
    def test_partial_final_pass_charges_less(self, rng, fidelity):
        # 4-column array, 6 output rows -> one full pass (4 columns
        # occupied) and one partial pass (2 columns occupied).
        config = ArrayConfig(rows=4, cols=4)
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(2, 1, 3, 3))
        _, stats = simulate_conv_rowstationary(x, w, config=config,
                                               fidelity=fidelity)
        kh, ow = 3, 6
        expected_per_oc = (kh + ow + 4 - 1) + (kh + ow + 2 - 1)
        assert stats.wavefront_cycles == 2 * expected_per_oc

    @pytest.mark.parametrize("fidelity", ["fast", "pe"])
    def test_full_passes_only(self, rng, fidelity):
        config = ArrayConfig(rows=4, cols=4)
        x = rng.normal(size=(1, 6, 6))  # oh = 4 -> exactly one full pass
        w = rng.normal(size=(1, 1, 3, 3))
        _, stats = simulate_conv_rowstationary(x, w, config=config,
                                               fidelity=fidelity)
        assert stats.wavefront_cycles == 3 + 4 + 4 - 1
