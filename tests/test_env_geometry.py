"""Tests for ray casting and clearance geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.env.geometry import Box, Circle, RayCaster, Segment


class TestPrimitives:
    def test_degenerate_segment_raises(self):
        with pytest.raises(ValueError):
            Segment(1.0, 1.0, 1.0, 1.0)

    def test_segment_length(self):
        assert Segment(0, 0, 3, 4).length == pytest.approx(5.0)

    def test_circle_radius_validation(self):
        with pytest.raises(ValueError):
            Circle(0, 0, 0.0)

    def test_box_validation(self):
        with pytest.raises(ValueError):
            Box(0, 0, 0, 1)

    def test_box_segments(self):
        segs = Box(0, 0, 2, 3).segments()
        assert len(segs) == 4
        assert sum(s.length for s in segs) == pytest.approx(10.0)

    def test_box_contains_with_margin(self):
        box = Box(0, 0, 1, 1)
        assert box.contains(1.2, 0.5, margin=0.3)
        assert not box.contains(1.2, 0.5)


class TestRayCasting:
    def test_needs_obstacles(self):
        with pytest.raises(ValueError):
            RayCaster([], [])

    def test_hits_wall_straight_on(self):
        caster = RayCaster([Segment(5.0, -10.0, 5.0, 10.0)], [])
        d = caster.cast((0.0, 0.0), np.array([0.0]), max_range=100.0)
        assert d[0] == pytest.approx(5.0)

    def test_misses_wall_behind(self):
        caster = RayCaster([Segment(5.0, -10.0, 5.0, 10.0)], [])
        d = caster.cast((0.0, 0.0), np.array([np.pi]), max_range=100.0)
        assert d[0] == pytest.approx(100.0)

    def test_diagonal_hit_distance(self):
        caster = RayCaster([Segment(0.0, 4.0, 8.0, 4.0)], [])
        d = caster.cast((0.0, 0.0), np.array([np.pi / 4]), max_range=100.0)
        assert d[0] == pytest.approx(4.0 * np.sqrt(2.0))

    def test_circle_hit(self):
        caster = RayCaster([], [Circle(10.0, 0.0, 2.0)])
        d = caster.cast((0.0, 0.0), np.array([0.0]), max_range=100.0)
        assert d[0] == pytest.approx(8.0)

    def test_circle_tangent_grazes(self):
        caster = RayCaster([], [Circle(10.0, 2.0, 2.0)])
        d = caster.cast((0.0, 0.0), np.array([0.0]), max_range=100.0)
        assert d[0] == pytest.approx(10.0, abs=1e-6)

    def test_inside_circle_hits_far_wall(self):
        caster = RayCaster([], [Circle(0.0, 0.0, 3.0)])
        d = caster.cast((0.0, 0.0), np.array([0.0]), max_range=100.0)
        assert d[0] == pytest.approx(3.0)

    def test_nearest_of_many(self):
        caster = RayCaster(
            [Segment(7.0, -1.0, 7.0, 1.0)], [Circle(3.0, 0.0, 1.0)]
        )
        d = caster.cast((0.0, 0.0), np.array([0.0]), max_range=100.0)
        assert d[0] == pytest.approx(2.0)

    def test_many_rays_vectorised(self):
        caster = RayCaster([Segment(5.0, -100.0, 5.0, 100.0)], [])
        angles = np.linspace(-np.pi / 4, np.pi / 4, 33)
        d = caster.cast((0.0, 0.0), angles, max_range=100.0)
        assert d.shape == (33,)
        # Straight ahead is the closest approach to the wall.
        assert d.argmin() == 16
        assert np.allclose(d, 5.0 / np.cos(angles))

    def test_max_range_validation(self):
        caster = RayCaster([Segment(5.0, -1.0, 5.0, 1.0)], [])
        with pytest.raises(ValueError):
            caster.cast((0, 0), np.array([0.0]), max_range=0.0)

    def test_angles_must_be_1d(self):
        caster = RayCaster([Segment(5.0, -1.0, 5.0, 1.0)], [])
        with pytest.raises(ValueError):
            caster.cast((0, 0), np.zeros((2, 2)), max_range=10.0)


class TestMinDistance:
    def test_to_segment_perpendicular(self):
        caster = RayCaster([Segment(0.0, 5.0, 10.0, 5.0)], [])
        assert caster.min_distance((5.0, 0.0)) == pytest.approx(5.0)

    def test_to_segment_endpoint(self):
        caster = RayCaster([Segment(3.0, 4.0, 10.0, 4.0)], [])
        assert caster.min_distance((0.0, 0.0)) == pytest.approx(5.0)

    def test_to_circle_surface(self):
        caster = RayCaster([], [Circle(10.0, 0.0, 3.0)])
        assert caster.min_distance((0.0, 0.0)) == pytest.approx(7.0)

    def test_inside_circle_is_negative(self):
        caster = RayCaster([], [Circle(0.0, 0.0, 3.0)])
        assert caster.min_distance((1.0, 0.0)) == pytest.approx(-2.0)


@settings(max_examples=60)
@given(
    ox=st.floats(-5, 5),
    oy=st.floats(-5, 5),
    angle=st.floats(-np.pi, np.pi),
)
def test_cast_always_within_range(ox, oy, angle):
    caster = RayCaster(
        Box(-20.0, -20.0, 20.0, 20.0).segments(), [Circle(8.0, 8.0, 2.0)]
    )
    d = caster.cast((ox, oy), np.array([angle]), max_range=15.0)
    assert 0.0 < d[0] <= 15.0


@settings(max_examples=60)
@given(
    angle=st.floats(-np.pi, np.pi),
    radius=st.floats(0.5, 5.0),
)
def test_ray_from_circle_centre_hits_at_radius(angle, radius):
    caster = RayCaster([], [Circle(0.0, 0.0, radius)])
    d = caster.cast((0.0, 0.0), np.array([angle]), max_range=100.0)
    assert d[0] == pytest.approx(radius, rel=1e-9)
