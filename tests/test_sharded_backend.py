"""Sharded multi-array backend and the double-buffered weight bus.

Contracts under test:

* ``ShardedBackend`` is **bitwise-equal** in Q values to the
  single-array ``SystolicBackend`` for both shard policies, over
  K in {1, 2, 4} and uneven batch sizes — splitting a batch or slicing
  an output dimension must not change one bit of the fixed-point
  datapath's results;
* ``ShardCost`` separates work (summed layer cycles) from wall-clock
  (critical path = slowest array + merge traffic), and merged records
  accumulate critical paths serially;
* sample sharding at K=4 serves the fleet observation batch in
  <= 0.3x the single-array cycle budget (the multi-array payoff);
* the ``WeightBus`` flips the serving snapshot every ``sync_every``
  published updates, tracks the staleness served, and at
  ``sync_every <= 4`` the stale fixed-point policy still agrees with
  the float policy on >= 0.95 of seeded rollout states.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    ShardCost,
    ShardedBackend,
    StepCost,
    SystolicBackend,
    WeightBus,
    make_backend,
    merge_step_costs,
)
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import build_network, scaled_drone_net_spec
from repro.nn.layers import Conv2D, Dense, Flatten, ReLU
from repro.nn.network import Network
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16


def make_net(seed: int = 0) -> Network:
    return build_network(scaled_drone_net_spec(input_side=SIDE), seed=seed)


@pytest.fixture(scope="module")
def stale_rollout():
    """A fleet trained through a sharded backend at sync_every=4.

    Returns (agent, replay states) after a multi-round run in which the
    datapath served snapshots up to 3 updates stale.
    """
    vec_env = VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=[0, 1, 2, 3],
        image_side=SIDE,
        max_episode_steps=100,
    )
    network = make_net()
    agent = QLearningAgent(
        network,
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 200),
        seed=0,
        batch_size=4,
        backend=ShardedBackend(network, shards=4, shard="sample"),
        sync_every=4,
    )
    scheduler = FleetScheduler(agent, vec_env, train_every=2, eval_steps=10)
    report = scheduler.run(rounds=2, steps_per_round=40)
    states, _, _, _, _ = agent.replay.sample(128, np.random.default_rng(7))
    return agent, states, report


class TestRegistryAndValidation:
    def test_registered(self):
        assert "sharded" in BACKENDS
        backend = make_backend("sharded", make_net(), shards=2, shard="layer")
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 2 and backend.shard == "layer"

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedBackend(make_net(), shards=0)
        with pytest.raises(ValueError, match="shard policy"):
            ShardedBackend(make_net(), shards=2, shard="column")
        with pytest.raises(ValueError, match="topology"):
            ShardedBackend(make_net(), shards=2, noc="torus")
        with pytest.raises(ValueError, match="pipeline_chunk"):
            ShardedBackend(make_net(), shards=2, shard="pipeline", pipeline_chunk=0)

    def test_pipeline_policy_accepted(self):
        backend = ShardedBackend(make_net(), shards=2, shard="pipeline")
        assert backend.shard == "pipeline"
        assert backend.noc == "flat"

    def test_state_batch_shape_validated(self):
        with pytest.raises(ValueError, match="state batch"):
            ShardedBackend(make_net()).forward_batch(np.zeros((SIDE, SIDE)))


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("policy", ["sample", "layer", "pipeline"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("batch", [1, 5, 8])
    def test_matches_single_array(self, policy, shards, batch):
        net = make_net()
        rng = np.random.default_rng(batch * 17 + shards)
        states = rng.uniform(0, 1, size=(batch, 1, SIDE, SIDE))
        ref_q, _ = SystolicBackend(net).forward_batch(states)
        q, cost = ShardedBackend(net, shards=shards, shard=policy).forward_batch(
            states
        )
        assert np.array_equal(q, ref_q)
        assert cost.shards == shards
        assert len(cost.shard_cycles) == shards

    def test_uneven_batch_across_arrays(self, rng):
        """7 states over 4 arrays: chunk sizes 2/2/2/1, still bitwise."""
        net = make_net()
        states = rng.uniform(0, 1, size=(7, 1, SIDE, SIDE))
        ref_q, _ = SystolicBackend(net).forward_batch(states)
        q, cost = ShardedBackend(net, shards=4, shard="sample").forward_batch(
            states
        )
        assert np.array_equal(q, ref_q)
        # The short chunk burns fewer cycles than the long ones.
        assert cost.shard_cycles[3] < cost.shard_cycles[0]

    def test_batch_narrower_than_arrays(self, rng):
        """2 states over 4 arrays: two arrays sit idle, still bitwise."""
        net = make_net()
        states = rng.uniform(0, 1, size=(2, 1, SIDE, SIDE))
        ref_q, _ = SystolicBackend(net).forward_batch(states)
        q, cost = ShardedBackend(net, shards=4, shard="sample").forward_batch(
            states
        )
        assert np.array_equal(q, ref_q)
        assert cost.shard_cycles[2] == 0 and cost.shard_cycles[3] == 0

    def test_layer_narrower_than_arrays(self, rng):
        """K=8 > FC5's 5 outputs: some arrays idle on that layer."""
        net = make_net()
        states = rng.uniform(0, 1, size=(3, 1, SIDE, SIDE))
        ref_q, _ = SystolicBackend(net).forward_batch(states)
        q, _ = ShardedBackend(net, shards=8, shard="layer").forward_batch(states)
        assert np.array_equal(q, ref_q)

    def test_pe_fidelity_passthrough(self):
        """The oracle passthrough shards to the same bits and budgets."""
        rng = np.random.default_rng(5)
        conv = Conv2D(1, 4, 3, stride=1, name="c", rng=rng)
        _, oh, ow = conv.output_shape(8, 8)
        net = Network(
            [conv, ReLU(), Flatten(), Dense(4 * oh * ow, 6, name="d", rng=rng)],
            name="tiny",
        )
        states = rng.uniform(0, 1, size=(4, 1, 8, 8))
        fast_q, fast_cost = ShardedBackend(
            net, shards=2, shard="layer", fidelity="fast"
        ).forward_batch(states)
        pe_q, pe_cost = ShardedBackend(
            net, shards=2, shard="layer", fidelity="pe"
        ).forward_batch(states)
        assert np.array_equal(fast_q, pe_q)
        assert fast_cost.layer_cycles == pe_cost.layer_cycles

    def test_sync_broadcasts_updates_to_all_arrays(self, rng):
        states = rng.uniform(0, 1, size=(4, 1, SIDE, SIDE))
        for policy in ("sample", "layer", "pipeline"):
            net = make_net()
            backend = ShardedBackend(net, shards=3, shard=policy)
            stale_q = backend.forward_batch(states)[0]
            for p in net.parameters():
                p.value = p.value + 0.01
            # Without sync every array still serves the old download.
            assert np.array_equal(backend.forward_batch(states)[0], stale_q)
            backend.sync()
            fresh_q = backend.forward_batch(states)[0]
            assert np.array_equal(
                fresh_q, SystolicBackend(net).forward_batch(states)[0]
            )
            assert not np.array_equal(fresh_q, stale_q)


class TestShardCost:
    def test_sample_critical_path_is_slowest_array_plus_merge(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(8, 1, SIDE, SIDE))
        _, cost = ShardedBackend(net, shards=4, shard="sample").forward_batch(
            states
        )
        assert cost.critical_path_cycles == max(cost.shard_cycles) + cost.merge_cycles
        # Work is the per-array total; layer_cycles sum to it.
        assert cost.total_cycles == sum(cost.shard_cycles)
        assert cost.total_cycles == sum(cost.layer_cycles.values())
        # Q-value gather: 3 non-root arrays x 2 states x 5 actions.
        assert cost.merge_cycles == 3 * 2 * 5
        assert 1.0 < cost.parallel_speedup <= 4.0
        assert 0.0 < cost.scaling_efficiency <= 1.0
        assert cost.critical_path_seconds() == pytest.approx(
            cost.critical_path_cycles / 1e9
        )

    def test_layer_policy_charges_merge_and_broadcast(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(2, 1, SIDE, SIDE))
        _, cost = ShardedBackend(net, shards=2, shard="layer").forward_batch(
            states
        )
        assert cost.merge_cycles > 0
        assert cost.critical_path_cycles > cost.merge_cycles
        assert cost.critical_path_cycles < cost.total_cycles
        assert cost.total_cycles == sum(cost.shard_cycles)

    def test_single_shard_is_the_single_array_cost(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(4, 1, SIDE, SIDE))
        _, single = SystolicBackend(net).forward_batch(states)
        _, cost = ShardedBackend(net, shards=1, shard="sample").forward_batch(
            states
        )
        assert cost.total_cycles == single.total_cycles
        assert cost.critical_path_cycles == single.total_cycles
        assert cost.merge_cycles == 0

    def test_k4_serves_fleet_batch_under_a_third_of_single_array(self, rng):
        """The acceptance bound: K=4 sample sharding's critical path is
        <= 0.3x the single-array cycles on the fleet observation batch."""
        net = make_net()
        states = rng.uniform(0, 1, size=(64, 1, SIDE, SIDE))
        _, single = SystolicBackend(net).forward_batch(states)
        _, cost = ShardedBackend(net, shards=4, shard="sample").forward_batch(
            states
        )
        assert cost.critical_path_cycles <= 0.3 * single.total_cycles

    def test_critical_shard_index_is_argmax_of_shard_cycles(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(8, 1, SIDE, SIDE))
        for policy in ("sample", "layer", "pipeline"):
            _, cost = ShardedBackend(
                net, shards=4, shard=policy
            ).forward_batch(states)
            slowest = max(
                range(len(cost.shard_cycles)),
                key=cost.shard_cycles.__getitem__,
            )
            assert cost.critical_shard_index == slowest, policy

    def test_critical_shard_index_ties_go_to_lowest(self):
        cost = ShardCost(
            backend="sharded", states=4, layer_cycles={"FC1": 60},
            shards=3, shard_cycles=(20, 25, 25),
            critical_path_cycles=30, merge_cycles=5,
            critical_shard_index=1,
        )
        merged = merge_step_costs([cost, cost])
        # (40, 50, 50): arrays 1 and 2 tie; the recompute picks 1.
        assert merged.critical_shard_index == 1

    def test_merge_recomputes_critical_shard_from_merged_totals(self):
        a = ShardCost(
            backend="sharded", states=2, layer_cycles={"FC1": 50},
            shards=2, shard_cycles=(10, 40),
            critical_path_cycles=45, merge_cycles=5,
            critical_shard_index=1,
        )
        b = ShardCost(
            backend="sharded", states=2, layer_cycles={"FC1": 60},
            shards=2, shard_cycles=(50, 10),
            critical_path_cycles=55, merge_cycles=5,
            critical_shard_index=0,
        )
        merged = merge_step_costs([a, b])
        # Merged totals (60, 50): array 0 carried the most overall even
        # though each input named a different slowest array.
        assert merged.critical_shard_index == 0

    def test_plain_cost_critical_shard_is_array_zero(self):
        cost = StepCost(backend="systolic", states=2, layer_cycles={"FC1": 9})
        assert cost.critical_shard_index == 0

    def test_merge_accumulates_critical_paths_serially(self):
        a = ShardCost(
            backend="sharded", states=4, macs=10,
            layer_cycles={"CONV1": 100}, shards=2, shard_cycles=(60, 40),
            critical_path_cycles=70, merge_cycles=10,
        )
        b = ShardCost(
            backend="sharded", states=2, macs=5,
            layer_cycles={"CONV1": 50}, shards=2, shard_cycles=(25, 25),
            critical_path_cycles=30, merge_cycles=5,
        )
        merged = merge_step_costs([a, b])
        assert isinstance(merged, ShardCost)
        assert merged.shards == 2
        assert merged.shard_cycles == (85, 65)
        assert merged.critical_path_cycles == 100
        assert merged.merge_cycles == 15
        assert merged.total_cycles == 150

    def test_merge_mixes_plain_costs_onto_array_zero(self):
        plain = StepCost(backend="systolic", states=1, layer_cycles={"FC1": 20})
        shard = ShardCost(
            backend="sharded", states=2, layer_cycles={"FC1": 30},
            shards=2, shard_cycles=(18, 12),
            critical_path_cycles=20, merge_cycles=2,
        )
        merged = merge_step_costs([plain, shard])
        assert isinstance(merged, ShardCost)
        assert merged.shard_cycles == (38, 12)
        # The plain record's cycles are its own critical path.
        assert merged.critical_path_cycles == 40

    def test_plain_cost_exposes_single_array_view(self):
        cost = StepCost(backend="systolic", states=2, layer_cycles={"FC1": 9})
        assert cost.shards == 1
        assert cost.critical_path_cycles == cost.total_cycles == 9
        assert cost.merge_cycles == 0


class TestWeightBus:
    def test_flips_every_sync_every_publishes(self, rng):
        net = make_net()
        backend = SystolicBackend(net)
        bus = WeightBus(backend, sync_every=3)
        states = rng.uniform(0, 1, size=(2, 1, SIDE, SIDE))
        stale_q = backend.forward_batch(states)[0]
        flipped = []
        for _ in range(3):
            for p in net.parameters():
                p.value = p.value + 0.01
            flipped.append(bus.publish())
        assert flipped == [False, False, True]
        assert bus.flips == 1 and bus.publishes == 3 and bus.staleness == 0
        # Only the flip refreshed the serving snapshot.
        fresh_q = backend.forward_batch(states)[0]
        assert not np.array_equal(fresh_q, stale_q)
        assert np.array_equal(fresh_q, SystolicBackend(net).forward_batch(states)[0])

    def test_serving_snapshot_stays_stale_between_flips(self, rng):
        net = make_net()
        backend = SystolicBackend(net)
        bus = WeightBus(backend, sync_every=4)
        states = rng.uniform(0, 1, size=(2, 1, SIDE, SIDE))
        before = backend.forward_batch(states)[0]
        for p in net.parameters():
            p.value = p.value + 0.01
        bus.publish()
        assert bus.staleness == 1
        assert np.array_equal(backend.forward_batch(states)[0], before)
        bus.flip()  # forced download
        assert bus.staleness == 0
        assert not np.array_equal(backend.forward_batch(states)[0], before)

    def test_serve_staleness_accounting(self):
        bus = WeightBus(SystolicBackend(make_net()), sync_every=4)
        bus.note_serve(4)       # staleness 0
        bus.publish()
        bus.note_serve(4)       # staleness 1
        bus.publish()
        bus.note_serve(2)       # staleness 2
        assert bus.drain_serve_staleness() == pytest.approx((4 * 1 + 2 * 2) / 10)
        assert bus.drain_serve_staleness() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="sync_every"):
            WeightBus(SystolicBackend(make_net()), sync_every=0)

    def test_agent_default_is_synchronous(self):
        agent = QLearningAgent(make_net(), config=config_by_name("L4"), seed=0)
        assert agent.weight_bus.sync_every == 1


class TestNocModel:
    def test_flat_reduces_to_one_cycle_per_element(self):
        from repro.systolic.noc import NocModel

        noc = NocModel(topology="flat", nodes=8)
        for src, dst in ((0, 1), (0, 7), (3, 5)):
            assert noc.hops(src, dst) == 1
            # The degenerate model: n elements, n cycles, regardless of
            # distance — exactly the legacy merge charge.
            assert noc.transfer_cycles(123, src, dst) == 123
        assert noc.transfer_cycles(9, 2, 2) == 0
        assert noc.transfer_cycles(0, 0, 1) == 0
        assert noc.words_per_cycle == 1

    def test_ring_takes_the_short_way_around(self):
        from repro.systolic.noc import NocModel

        noc = NocModel(topology="ring", nodes=8, link_bits=128, word_bits=16)
        assert noc.hops(0, 1) == 1
        assert noc.hops(0, 4) == 4
        assert noc.hops(0, 5) == 3  # backwards: 0 -> 7 -> 6 -> 5
        assert noc.words_per_cycle == 8
        # 17 elements = 3 beats, times 3 hops, store-and-forward.
        assert noc.transfer_cycles(17, 0, 5) == 9
        assert noc.element_hops(17, 0, 5) == 51

    def test_mesh_pays_manhattan_distance(self):
        from repro.systolic.noc import NocModel

        noc = NocModel(topology="mesh", nodes=8)  # 2 rows x 4 cols
        assert noc.hops(0, 3) == 3
        assert noc.hops(0, 7) == 4  # (0,0) -> (1,3)
        assert noc.transfer_cycles(17, 0, 7) == 12  # ceil(17/8) * 4

    def test_validation(self):
        from repro.systolic.noc import NocModel

        with pytest.raises(ValueError, match="topology"):
            NocModel(topology="torus", nodes=4)
        with pytest.raises(ValueError, match="nodes"):
            NocModel(topology="ring", nodes=0)
        with pytest.raises(ValueError, match="narrower"):
            NocModel(topology="ring", nodes=4, link_bits=8, word_bits=16)
        with pytest.raises(ValueError, match="outside"):
            NocModel(topology="ring", nodes=4).hops(0, 4)

    def test_flat_merge_equals_hops_on_every_policy(self, rng):
        """Flat: 1 hop, 1 word/cycle, so merge cycles == element-hops —
        the exact-reduction invariant the pinned numbers rely on."""
        net = make_net()
        states = rng.uniform(0, 1, size=(8, 1, SIDE, SIDE))
        for policy in ("sample", "layer", "pipeline"):
            backend = ShardedBackend(net, shards=4, shard=policy, noc="flat")
            _, cost = backend.forward_batch(states)
            assert cost.merge_cycles == cost.merge_hops, policy
            assert cost.noc == "flat"

    def test_topology_changes_cost_but_not_bits(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(8, 1, SIDE, SIDE))
        ref_q, flat = ShardedBackend(
            net, shards=4, shard="layer", noc="flat"
        ).forward_batch(states)
        for topo in ("ring", "mesh"):
            q, cost = ShardedBackend(
                net, shards=4, shard="layer", noc=topo
            ).forward_batch(states)
            assert np.array_equal(q, ref_q), topo
            assert cost.noc == topo
            assert cost.merge_cycles != flat.merge_cycles
            # Wide links: a beat moves 8 words, so hop-priced cycles
            # sit below the element-hop traffic volume.
            assert cost.merge_cycles < cost.merge_hops


class TestPipelineSchedule:
    def test_uniform_width1_matches_hand_count(self):
        """4 chunks through 3 width-1 stages at 10 cycles each:
        makespan (4 + 3 - 1) * 10, fill/drain (3 - 1) * 10."""
        from repro.backend.sharded import _pipeline_schedule

        times = [[10] * 4 for _ in range(3)]
        critical, busy, assign = _pipeline_schedule(times, [1, 1, 1])
        assert critical == (4 + 3 - 1) * 10
        assert busy == [[40], [40], [40]]
        assert critical - max(max(b) for b in busy) == (3 - 1) * 10
        assert all(stage == [0, 0, 0, 0] for stage in assign)

    def test_replicated_stage_takes_chunks_round_robin(self):
        from repro.backend.sharded import _pipeline_schedule

        critical, busy, assign = _pipeline_schedule([[10] * 4], [2])
        # Two arrays drain four chunks in two waves.
        assert critical == 20
        assert busy == [[20, 20]]
        assert assign == [[0, 1, 0, 1]]

    def test_backend_fill_drain_matches_schedule_decomposition(self, rng):
        """critical == bottleneck busy + fill/drain + merge, and the
        fill/drain bubble is non-negative by construction."""
        net = make_net()
        states = rng.uniform(0, 1, size=(16, 1, SIDE, SIDE))
        for shards in (2, 4):
            _, cost = ShardedBackend(
                net, shards=shards, shard="pipeline"
            ).forward_batch(states)
            assert cost.fill_drain_cycles >= 0
            assert cost.critical_path_cycles == (
                max(cost.shard_cycles) + cost.fill_drain_cycles + cost.merge_cycles
            )

    def test_explicit_chunk_hand_count(self, rng):
        """pipeline_chunk=4 on a 16-row batch: 4 equal chunks, so each
        stage's per-chunk time is busy/4 and the measured fill/drain
        must reproduce from the schedule recurrence by hand."""
        from repro.backend.sharded import _pipeline_schedule

        net = make_net()
        states = rng.uniform(0, 1, size=(16, 1, SIDE, SIDE))
        backend = ShardedBackend(
            net, shards=2, shard="pipeline", pipeline_chunk=4
        )
        _, cost = backend.forward_batch(states)
        plan = next(iter(backend._pipeline_plans.values()))
        assert plan.widths == (1, 1)
        times = [
            [cost.shard_cycles[arrays[0]] // 4] * 4
            for arrays in plan.stage_arrays
        ]
        critical, _busy, _assign = _pipeline_schedule(times, [1, 1])
        assert cost.fill_drain_cycles == critical - max(cost.shard_cycles)

    def test_pipeline_beats_layer_sharding_at_k8(self, rng):
        """The tentpole claim: where layer sharding collapses (0.59
        efficiency at K=8), the pipeline stays >= 0.75."""
        net = make_net()
        states = rng.uniform(0, 1, size=(64, 1, SIDE, SIDE))
        _, single = SystolicBackend(net).forward_batch(states)
        _, layer = ShardedBackend(net, shards=8, shard="layer").forward_batch(states)
        _, pipe = ShardedBackend(net, shards=8, shard="pipeline").forward_batch(states)
        assert pipe.critical_path_cycles < layer.critical_path_cycles
        eff = single.total_cycles / pipe.critical_path_cycles / 8
        assert eff >= 0.75

    def test_stage_plan_partitions_model_not_batch(self, rng):
        net = make_net()
        backend = ShardedBackend(net, shards=4, shard="pipeline")
        backend.forward_batch(rng.uniform(0, 1, size=(8, 1, SIDE, SIDE)))
        plan = next(iter(backend._pipeline_plans.values()))
        assert plan.stages >= 2  # never degenerates to data parallelism
        assert sum(plan.widths) == 4
        flat_arrays = [a for arrays in plan.stage_arrays for a in arrays]
        assert sorted(flat_arrays) == [0, 1, 2, 3]  # disjoint coverage
        # Stage ranges tile the layer stack contiguously.
        assert plan.layer_ranges[0][0] == 0
        assert plan.layer_ranges[-1][1] == len(net.layers)
        for (lo, hi), (nlo, _nhi) in zip(plan.layer_ranges, plan.layer_ranges[1:]):
            assert hi == nlo > lo


class TestShardEdgeCases:
    def test_zero_row_chunks_after_crash_failover(self):
        """batch=1 over K=4 with one array crashed: the three surviving
        arrays would get 1/0/0 rows — the empty chunks must neither
        dispatch nor charge merge traffic."""
        from repro.faults.injector import FAULTS, FaultPlan, chaos

        net = make_net()
        states = np.random.default_rng(3).uniform(0, 1, size=(1, 1, SIDE, SIDE))
        ref_q, _ = SystolicBackend(net).forward_batch(states)
        for policy in ("sample", "pipeline"):
            backend = ShardedBackend(net, shards=4, shard=policy)
            with chaos(FaultPlan(seed=0, shard_crashes=((1, 2),))) as inj:
                inj.note_step()
                q, cost = backend.forward_batch(states)
            assert np.array_equal(q, ref_q), policy
            # One row of work exists; idle and dead arrays charge zero.
            assert cost.shard_cycles[2] == 0, policy
            assert sum(1 for c in cost.shard_cycles if c > 0) >= 1
            # No gather traffic for rows that never moved: the single
            # chunk lives on one array end to end under sample; under
            # pipeline only real stage hand-offs charge.
            if policy == "sample":
                assert cost.merge_cycles == 0
            assert cost.merge_cycles == cost.merge_hops  # flat

    def test_consumer_accounting_matches_plan_walk(self, rng):
        """Pin the layer-policy all-gather charge: replay the plan and
        charge ``(consumers - hub) * activation + gather`` by hand; the
        backend's flat-NoC merge must agree exactly.  K=8 makes FC5
        (5 outputs) narrower than the array count, so consumer sets
        shrink and shift between layers — the case the charge could
        double- or under-count."""
        net = make_net()
        states = rng.uniform(0, 1, size=(3, 1, SIDE, SIDE))
        backend = ShardedBackend(net, shards=8, shard="layer")
        _, cost = backend.forward_batch(states)

        x = backend._requantize(np.asarray(states, dtype=np.float64))
        expected = 0
        hub = None
        narrow_seen = False
        for index, layer in enumerate(net.layers):
            assignments = backend._plan.get(index)
            if not assignments:
                x = layer.forward(x, training=False)
            else:
                consumers = {k for k, *_rest in assignments}
                if len(consumers) < 8:
                    narrow_seen = True
                if hub is not None:
                    # Hub consumes its own copy free; every other
                    # consumer's link carries the full activation once.
                    expected += len(consumers - {hub}) * x.size
                widths = [hi - lo for _k, _s, lo, hi in assignments]
                x = layer.forward(x, training=False)
                hub = assignments[0][0]
                expected += x.size - x.size * widths[0] // sum(widths)
            x = backend._requantize(x)
        assert narrow_seen  # FC5's 5 outputs over 8 arrays
        assert cost.merge_cycles == expected

    def test_idle_arrays_receive_no_broadcast(self, rng):
        """An array with no slice of a narrow layer is not a consumer —
        it must not appear in that layer's plan at all."""
        net = make_net()
        backend = ShardedBackend(net, shards=8, shard="layer")
        narrow = [
            assignments
            for assignments in backend._plan.values()
            if len(assignments) < 8
        ]
        assert narrow  # FC5 is narrower than K=8
        for assignments in narrow:
            ks = [k for k, *_rest in assignments]
            assert len(set(ks)) == len(ks)


class TestModelParallelTraining:
    def test_layer_policy_no_longer_falls_back_to_data_parallel(self):
        net = make_net()
        sample = ShardedBackend(net, shards=4, shard="sample")
        layer = ShardedBackend(net, shards=4, shard="layer")
        tc_sample = sample.train_cost(16, (1, SIDE, SIDE), first_trainable=0)
        tc_layer = layer.train_cost(16, (1, SIDE, SIDE), first_trainable=0)
        # Distinct cost structure: model-parallel slices, not K copies
        # of the whole network over batch chunks.
        assert tc_layer.shard_cycles != tc_sample.shard_cycles
        assert tc_layer.merge_cycles != tc_sample.merge_cycles
        grad_elements = sum(p.size for p in net.parameters(0))
        # The data-parallel signature charge — (K-1) full weight
        # gradients — is gone: dW stays on the array that applies it.
        assert tc_sample.merge_cycles == 3 * grad_elements

    def test_frozen_prefix_training_merge_equals_inference_merge(self, rng):
        """With only the last parametric layer trainable there is no
        dX to reduce below it, so the layer policy's training traffic
        is exactly the forward broadcast/gather inference pays."""
        net = make_net()
        backend = ShardedBackend(net, shards=4, shard="layer")
        batch = 6
        states = rng.uniform(0, 1, size=(batch, 1, SIDE, SIDE))
        _, inf = backend.forward_batch(states)
        last_param = max(i for i, _l in net.parametric_layers())
        tc = backend.train_cost(batch, (1, SIDE, SIDE), first_trainable=last_param)
        assert tc.merge_cycles == inf.merge_cycles

    def test_full_training_adds_backward_traffic(self, rng):
        net = make_net()
        backend = ShardedBackend(net, shards=4, shard="layer")
        last_param = max(i for i, _l in net.parametric_layers())
        frozen = backend.train_cost(8, (1, SIDE, SIDE), first_trainable=last_param)
        full = backend.train_cost(8, (1, SIDE, SIDE), first_trainable=0)
        assert full.merge_cycles > frozen.merge_cycles
        assert full.critical_path_cycles > frozen.critical_path_cycles
        assert max(full.shard_cycles) > 0
        assert full.critical_path_cycles >= max(full.shard_cycles)

    def test_pipeline_training_charges_bubbles_and_boundaries(self):
        net = make_net()
        backend = ShardedBackend(net, shards=4, shard="pipeline")
        tc = backend.train_cost(32, (1, SIDE, SIDE), first_trainable=0)
        assert tc.fill_drain_cycles > 0
        assert tc.merge_cycles > 0
        assert tc.critical_path_cycles == (
            max(tc.shard_cycles) + tc.fill_drain_cycles + tc.merge_cycles
        )
        # Pipelined training beats the naive serial sum of its stages.
        assert tc.critical_path_cycles < sum(tc.shard_cycles)

    def test_train_cost_merge_survives_accumulation(self):
        """The new ShardCost fields flow through merge_step_costs."""
        a = ShardCost(
            backend="sharded", states=4, layer_cycles={"FC1": 100},
            shards=2, shard_cycles=(60, 40), critical_path_cycles=70,
            merge_cycles=10, merge_hops=30, fill_drain_cycles=5, noc="ring",
        )
        b = ShardCost(
            backend="sharded", states=4, layer_cycles={"FC1": 80},
            shards=2, shard_cycles=(40, 40), critical_path_cycles=50,
            merge_cycles=10, merge_hops=30, fill_drain_cycles=3, noc="ring",
        )
        merged = merge_step_costs([a, b])
        assert merged.merge_hops == 60
        assert merged.fill_drain_cycles == 8
        assert merged.noc == "ring"


class TestStalenessRegression:
    def test_agreement_stays_high_at_sync_every_4(self, stale_rollout):
        """Serving a snapshot up to 3 updates stale must not break the
        policy: fixed-point vs float action agreement >= 0.95."""
        agent, states, _report = stale_rollout
        assert agent.backend.agreement_rate(states) >= 0.95

    def test_round_stats_measure_staleness_and_shards(self, stale_rollout):
        agent, _states, report = stale_rollout
        assert report.backend == "sharded"
        assert report.shards == 4
        assert report.total_critical_path_cycles > 0
        # Work strictly exceeds the parallel wall-clock.
        assert (
            report.total_critical_path_cycles < report.total_inference_cycles
        )
        # sync_every=4 with many updates: served staleness is visible
        # but bounded by the flip cadence.
        assert 0.0 < report.mean_sync_staleness < 4.0
        for stats in report.rounds:
            assert stats.shards == 4
            assert 0 < stats.critical_path_cycles < stats.inference_cycles
        # The bus flipped on cadence: staleness never reached sync_every.
        assert agent.weight_bus.staleness < 4
