"""Tests for the NoC accounting and the real-time queue simulation."""

import pytest

from repro.env import max_realtime_velocity, simulate_frame_queue
from repro.nn import modified_alexnet_spec
from repro.systolic import MappingType, analyze_conv_communication


@pytest.fixture(scope="module")
def spec():
    return modified_alexnet_spec()


class TestCommunicationAccounting:
    def test_all_layers_analyzable(self, spec):
        for conv in spec.conv_layers:
            cost = analyze_conv_communication(conv)
            assert cost.total_hops > 0
            assert cost.hops_per_mac > 0

    def test_cross_set_only_for_type_iii(self, spec):
        for conv in spec.conv_layers:
            cost = analyze_conv_communication(conv)
            if cost.mapping_type is MappingType.TYPE_III:
                assert cost.cross_set_hops > 0, conv.name
            else:
                assert cost.cross_set_hops == 0, conv.name

    def test_accumulation_scales_with_filter_height(self, spec):
        conv1 = analyze_conv_communication(spec.layer("CONV1"))  # 11 rows
        conv3 = analyze_conv_communication(spec.layer("CONV3"))  # 3 rows
        out1 = 55 * 55 * 96
        out3 = 13 * 13 * 384
        assert conv1.accumulation_hops / out1 == 10  # fh - 1
        assert conv3.accumulation_hops / out3 == 2

    def test_drain_equals_outputs(self, spec):
        conv = spec.layer("CONV2")
        cost = analyze_conv_communication(conv)
        assert cost.drain_hops == conv.out_height * conv.out_width * conv.out_channels

    def test_interconnect_energy_small_vs_fig12(self, spec):
        """Interconnect energy must be a minor slice of the ~1-7 mJ
        per-layer energies of Fig. 12a (sanity on the hop model)."""
        for conv in spec.conv_layers:
            energy = analyze_conv_communication(conv).interconnect_energy_j()
            assert 0 < energy < 1e-3  # well under a millijoule

    def test_energy_validation(self, spec):
        cost = analyze_conv_communication(spec.layer("CONV1"))
        with pytest.raises(ValueError):
            cost.interconnect_energy_j(hop_energy_j=-1.0)


class TestFrameQueue:
    def test_underloaded_is_realtime(self):
        report = simulate_frame_queue(
            frame_rate_hz=5.0, iteration_time_s=0.05, duration_s=5.0
        )
        assert report.realtime
        assert report.frames_dropped == 0
        assert report.frames_processed == report.frames_offered

    def test_overloaded_drops(self):
        report = simulate_frame_queue(
            frame_rate_hz=20.0, iteration_time_s=0.1, duration_s=5.0,
            buffer_frames=4,
        )
        assert not report.realtime
        assert report.frames_dropped > 0
        # Long-run drop fraction approaches 1 - service/arrival = 0.5.
        assert report.drop_fraction == pytest.approx(0.5, abs=0.1)

    def test_queue_bounded_by_buffer(self):
        report = simulate_frame_queue(
            frame_rate_hz=50.0, iteration_time_s=0.1, duration_s=2.0,
            buffer_frames=3,
        )
        assert report.max_queue_depth <= 3

    def test_subcapacity_periodic_arrivals_never_queue(self):
        """D/D/1 reality: any sub-capacity periodic arrival stream sees
        exactly the bare service latency — no queueing."""
        light = simulate_frame_queue(2.0, 0.1, duration_s=5.0)
        near = simulate_frame_queue(9.9, 0.1, duration_s=5.0)
        assert light.max_latency_s == pytest.approx(0.1)
        assert near.max_latency_s == pytest.approx(0.1)
        assert near.max_queue_depth <= 1

    def test_latency_grows_in_overload(self):
        """Past capacity, waiting time builds until the buffer caps it."""
        over = simulate_frame_queue(
            12.0, 0.1, duration_s=5.0, buffer_frames=16
        )
        assert over.max_latency_s > 0.5
        assert over.max_queue_depth > 4

    def test_latency_at_least_service_time(self):
        report = simulate_frame_queue(1.0, 0.25, duration_s=3.0)
        assert report.max_latency_s >= 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_frame_queue(0.0, 0.1)
        with pytest.raises(ValueError):
            simulate_frame_queue(1.0, 0.1, duration_s=0.0)
        with pytest.raises(ValueError):
            simulate_frame_queue(1.0, 0.1, buffer_frames=0)


class TestMaxRealtimeVelocity:
    def test_matches_rate_arithmetic(self):
        """With a small buffer and a long horizon, the feasible velocity
        approaches the average-rate bound v = d_min / iteration_time
        (a large buffer legitimately absorbs finite-horizon overload)."""
        v = max_realtime_velocity(
            iteration_time_s=0.1, d_min=1.0, buffer_frames=2, duration_s=60.0
        )
        assert v == pytest.approx(10.0, rel=0.08)

    def test_scales_with_dmin(self):
        v_small = max_realtime_velocity(0.1, d_min=0.7)
        v_large = max_realtime_velocity(0.1, d_min=5.0)
        assert v_large > 5 * v_small

    def test_l3_vs_e2e_velocities(self):
        """The paper's end-to-end story in one assertion: at batch-1
        iteration times from the cost model, L3 sustains several times
        E2E's velocity in the apartment."""
        from repro.perf import LayerCostModel, TrainingIterationModel
        from repro.rl import config_by_name

        spec = modified_alexnet_spec()
        velocities = {}
        for name in ("L3", "E2E"):
            model = LayerCostModel(spec, config_by_name(name))
            t_iter = TrainingIterationModel(model).iteration_cost(1).iteration_latency_s
            velocities[name] = max_realtime_velocity(t_iter, d_min=0.7)
        assert velocities["L3"] > 3 * velocities["E2E"]

    def test_validation(self):
        with pytest.raises(ValueError):
            max_realtime_velocity(0.1, d_min=0.0)
