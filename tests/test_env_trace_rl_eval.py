"""Tests for flight tracing, world rendering and policy evaluation."""

import numpy as np
import pytest

from repro.env import (
    DepthCamera,
    FlightTrace,
    NavigationEnv,
    make_environment,
    render_world_ascii,
)
from repro.env.world import Pose
from repro.nn import build_network, scaled_drone_net_spec
from repro.rl import evaluate_policy, evaluate_state_dict, meta_train


class TestFlightTrace:
    def make_trace(self):
        trace = FlightTrace()
        trace.record(Pose(0, 0, 0), 0, 0.5, False)
        trace.record(Pose(1, 0, 0), 0, 0.6, False)
        trace.record(Pose(1, 1, 0), 1, -1.0, True)
        return trace

    def test_len_and_path(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert trace.path.shape == (3, 2)

    def test_crash_sites(self):
        assert self.make_trace().crash_sites == [(1.0, 1.0)]

    def test_total_distance(self):
        assert self.make_trace().total_distance() == pytest.approx(2.0)

    def test_mean_reward(self):
        assert self.make_trace().mean_reward() == pytest.approx(0.1 / 3)

    def test_action_histogram(self):
        hist = self.make_trace().action_histogram()
        assert hist.tolist() == [2, 1, 0, 0, 0]

    def test_action_out_of_range(self):
        trace = FlightTrace()
        trace.record(Pose(0, 0, 0), 9, 0.0, False)
        with pytest.raises(ValueError):
            trace.action_histogram()

    def test_empty_trace(self):
        trace = FlightTrace()
        assert trace.total_distance() == 0.0
        assert np.isnan(trace.mean_reward())
        assert trace.path.shape == (0, 2)


class TestRenderWorld:
    def test_render_contains_walls_and_header(self):
        world = make_environment("indoor-apartment", seed=0)
        art = render_world_ascii(world)
        assert "indoor-apartment" in art
        assert "#" in art

    def test_render_with_trace_shows_path_and_crash(self):
        world = make_environment("indoor-apartment", seed=0)
        trace = FlightTrace()
        trace.record(Pose(3.0, 3.0, 0), 0, 0.5, False)
        trace.record(Pose(3.5, 3.0, 0), 0, 0.5, False)
        trace.record(Pose(4.0, 3.0, 0), 0, -1.0, True)
        art = render_world_ascii(world, trace)
        assert "X" in art

    def test_circles_rendered(self):
        world = make_environment("outdoor-forest", seed=0)
        art = render_world_ascii(world)
        assert "o" in art

    def test_canvas_validation(self):
        world = make_environment("indoor-apartment", seed=0)
        with pytest.raises(ValueError):
            render_world_ascii(world, width=2)


class TestEvaluatePolicy:
    def make_env(self, seed=0):
        world = make_environment("indoor-apartment", seed=seed)
        return NavigationEnv(
            world, camera=DepthCamera(width=16, height=16), seed=seed
        )

    def test_result_fields(self):
        net = build_network(scaled_drone_net_spec(input_side=16), seed=0)
        result = evaluate_policy(net, self.make_env(), steps=100)
        assert result.steps == 100
        assert result.environment == "indoor-apartment"
        assert len(result.trace) == 100
        assert sum(result.action_histogram) == 100
        assert 0.0 <= result.crash_rate <= 1.0

    def test_deterministic_greedy(self):
        net = build_network(scaled_drone_net_spec(input_side=16), seed=0)
        a = evaluate_policy(net, self.make_env(seed=4), steps=60, seed=1)
        b = evaluate_policy(net, self.make_env(seed=4), steps=60, seed=1)
        assert a.safe_flight_distance == b.safe_flight_distance
        assert a.action_histogram == b.action_histogram

    def test_validation(self):
        net = build_network(scaled_drone_net_spec(input_side=16), seed=0)
        with pytest.raises(ValueError):
            evaluate_policy(net, self.make_env(), steps=0)
        with pytest.raises(ValueError):
            evaluate_policy(net, self.make_env(), steps=10, epsilon=2.0)

    def test_trained_beats_untrained(self):
        """A meta-trained policy should out-fly a random-init one under
        greedy evaluation in its own environment family."""
        meta = meta_train("meta-indoor", iterations=1200, seed=5, image_side=16)
        trained = evaluate_state_dict(
            meta.final_state, "indoor-apartment", steps=800, seed=6
        )
        fresh = build_network(scaled_drone_net_spec(input_side=16), seed=123)
        untrained = evaluate_policy(
            fresh,
            NavigationEnv(
                make_environment("indoor-apartment", seed=6),
                camera=DepthCamera(width=16, height=16),
                seed=37,
            ),
            steps=800,
            seed=6,
        )
        assert trained.mean_reward > untrained.mean_reward

    def test_evaluate_state_dict_roundtrip(self):
        meta = meta_train("meta-indoor", iterations=150, seed=0, image_side=16)
        result = evaluate_state_dict(meta.final_state, "indoor-house", steps=100)
        assert result.environment == "indoor-house"
