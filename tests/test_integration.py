"""Integration tests: the full paper protocol end to end (scaled)."""

import numpy as np
import pytest

from repro.core import CoDesign, paper_platform
from repro.env import DepthCamera, NavigationEnv, make_environment
from repro.nn import build_network, scaled_drone_net_spec
from repro.rl import (
    QLearningAgent,
    config_by_name,
    meta_train,
    online_adapt,
    run_transfer_experiment,
)
from repro.rl.experiment import train_agent


@pytest.fixture(scope="module")
def meta_result():
    """One shared (short) meta-training run."""
    return meta_train("meta-indoor", iterations=500, seed=0, image_side=16)


class TestMetaTraining:
    def test_produces_state_and_curves(self, meta_result):
        assert meta_result.config_name == "E2E"
        assert meta_result.environment == "meta-indoor"
        assert len(meta_result.final_state) > 0
        assert len(meta_result.curves.reward_curve) == 500

    def test_reward_is_finite(self, meta_result):
        assert np.isfinite(meta_result.final_reward)


class TestOnlineAdaptation:
    def test_adapts_all_configs(self, meta_result):
        for name in ("L2", "L3", "L4", "E2E"):
            result = online_adapt(
                meta_result.final_state,
                "indoor-apartment",
                config_by_name(name),
                iterations=300,
                seed=1,
                image_side=16,
            )
            assert result.config_name == name
            assert result.iterations == 300
            assert result.safe_flight_distance >= 0.0

    def test_partial_configs_keep_conv_weights(self, meta_result):
        result = online_adapt(
            meta_result.final_state,
            "indoor-apartment",
            config_by_name("L2"),
            iterations=300,
            seed=1,
            image_side=16,
        )
        # Frozen conv weights must be bit-identical to the meta-model.
        for key, value in result.final_state.items():
            if key.startswith("CONV"):
                assert np.array_equal(value, meta_result.final_state[key]), key

    def test_e2e_changes_conv_weights(self, meta_result):
        result = online_adapt(
            meta_result.final_state,
            "indoor-apartment",
            config_by_name("E2E"),
            iterations=300,
            seed=1,
            image_side=16,
        )
        changed = any(
            not np.array_equal(value, meta_result.final_state[key])
            for key, value in result.final_state.items()
            if key.startswith("CONV")
        )
        assert changed


class TestTransferBenefit:
    def test_transfer_beats_scratch_reward(self):
        """A TL-initialised L3 agent should out-earn a from-scratch agent
        over a short adaptation window (the paper's motivation for TL)."""
        meta = meta_train("meta-indoor", iterations=1200, seed=2, image_side=16)
        adapted = online_adapt(
            meta.final_state, "indoor-apartment", config_by_name("L3"),
            iterations=600, seed=3, image_side=16,
        )
        # From-scratch baseline: same budget, random init, E2E.
        spec = scaled_drone_net_spec(input_side=16)
        net = build_network(spec, seed=99)
        world = make_environment("indoor-apartment", seed=3)
        env = NavigationEnv(
            world, camera=DepthCamera(width=16, height=16), seed=10
        )
        agent = QLearningAgent(net, config=config_by_name("E2E"), seed=3)
        scratch = train_agent(agent, env, iterations=600)
        assert adapted.final_reward > scratch.final_reward


class TestFullExperiment:
    def test_run_transfer_experiment_structure(self):
        results = run_transfer_experiment(
            "indoor-house",
            meta_iterations=300,
            adapt_iterations=300,
            seed=0,
            image_side=16,
        )
        assert set(results) == {"L2", "L3", "L4", "E2E"}
        for result in results.values():
            assert result.environment == "indoor-house"
            assert len(result.curves.reward_curve) == 300
            assert np.isfinite(result.final_reward)


class TestCoDesignTaskEvaluation:
    def test_evaluate_task_runs(self, platform):
        cd = CoDesign("L2", platform=platform)
        result = cd.evaluate_task(
            "indoor-apartment", meta_iterations=200, adapt_iterations=200
        )
        assert result.config_name == "L2"
        assert result.crash_count >= 0


class TestCrossModuleConsistency:
    def test_mapping_report_matches_cost_model_residency(self, platform):
        cd = CoDesign("L3", platform=platform)
        by_name = {p.layer: p for p in cd.mapping.placements}
        for name, placement in by_name.items():
            assert cd.cost_model.is_nvm_resident(name) == (
                placement.device == "nvm"
            )

    def test_hardware_eval_consistent_with_perf_model(self, platform):
        cd = CoDesign("L3", platform=platform)
        hw = cd.evaluate_hardware(batch_size=8)
        direct = cd.trainer.iteration_cost(8)
        assert hw.fps == pytest.approx(direct.fps)

    def test_trainable_fraction_consistency(self, platform):
        """Spec-level and network-level trainable fractions must agree."""
        spec = scaled_drone_net_spec(input_side=16)
        net = build_network(spec, seed=0)
        for name in ("L2", "L3", "L4"):
            config = config_by_name(name)
            spec_frac = config.trainable_fraction(spec)
            net_frac = net.trainable_fraction(config.first_trainable_layer(net))
            assert spec_frac == pytest.approx(net_frac)
