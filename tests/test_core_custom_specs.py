"""Tests for CoDesign/perf on custom (non-paper) network specs.

The library claims to be a general co-design tool, not a single-network
script — these tests exercise the whole hardware stack against networks
the paper never saw.
"""

import pytest

from repro.core import CoDesign, paper_platform
from repro.memory import WeightMapper
from repro.nn import scaled_drone_net_spec
from repro.nn.specs import ConvSpec, FCSpec, NetworkSpec
from repro.perf import LayerCostModel, TrainingIterationModel
from repro.rl import config_by_name


def tiny_vision_spec():
    conv = ConvSpec(
        "CONV1", in_height=64, in_width=64, in_channels=3, out_channels=16,
        kernel=5, stride=2, pad=0, pool=3,
    )
    flat = conv.pooled_height * conv.pooled_width * conv.out_channels
    return NetworkSpec(
        "tiny-vision",
        (
            conv,
            FCSpec("FC1", in_features=flat, out_features=256),
            FCSpec("FC2", in_features=256, out_features=64),
            FCSpec("FC3", in_features=64, out_features=5),
        ),
        input_side=64,
        input_channels=3,
    )


class TestCustomSpecCoDesign:
    def test_codesign_accepts_custom_spec(self, platform):
        cd = CoDesign("L2", platform=platform, spec=tiny_vision_spec())
        hw = cd.evaluate_hardware(batch_size=4)
        assert hw.fps > 0

    def test_small_network_is_fast(self, platform):
        tiny = CoDesign("E2E", platform=platform, spec=tiny_vision_spec())
        paper = CoDesign("E2E", platform=platform)
        assert (
            tiny.evaluate_hardware(4).fps > 20 * paper.evaluate_hardware(4).fps
        )

    def test_scaled_drone_spec_codesign(self, platform):
        spec = scaled_drone_net_spec(input_side=16)
        cd = CoDesign("L3", platform=platform, spec=spec)
        assert cd.mapping.sram_total_bytes < platform.buffer.capacity_bytes

    def test_l_ordering_holds_for_custom_specs(self, platform):
        spec = tiny_vision_spec()
        fps = {}
        for name in ("L2", "L3", "E2E"):
            cd = CoDesign(name, platform=platform, spec=spec)
            fps[name] = cd.evaluate_hardware(4).fps
        assert fps["L2"] >= fps["L3"] > fps["E2E"]

    def test_mapper_fig5_logic_generalises(self):
        spec = tiny_vision_spec()
        report = WeightMapper(spec, config_by_name("L2")).build()
        by_name = {p.layer: p for p in report.placements}
        assert by_name["FC2"].device == "sram"
        assert by_name["FC3"].device == "sram"
        assert by_name["FC1"].device == "nvm"
        assert by_name["CONV1"].device == "nvm"

    def test_layer_costs_cover_custom_layers(self):
        spec = tiny_vision_spec()
        model = LayerCostModel(spec, config_by_name("E2E"))
        costs = model.forward_costs()
        assert [c.layer for c in costs] == ["CONV1", "FC1", "FC2", "FC3"]
        assert all(c.latency_s > 0 for c in costs)

    def test_update_cost_scales_with_config(self):
        spec = tiny_vision_spec()
        l2 = LayerCostModel(spec, config_by_name("L2")).update_cost()
        e2e = LayerCostModel(spec, config_by_name("E2E")).update_cost()
        assert e2e.latency_s > l2.latency_s

    def test_training_model_end_to_end(self):
        spec = tiny_vision_spec()
        trainer = TrainingIterationModel(
            LayerCostModel(spec, config_by_name("L2"))
        )
        cost = trainer.iteration_cost(8)
        assert cost.fps > 0
        assert cost.energy_per_frame_j > 0


class TestPlatformVariants:
    def test_tiny_buffer_rejects_everything_but_nothing(self):
        platform = paper_platform(buffer_mb=4.3)
        with pytest.raises(ValueError):
            CoDesign("L2", platform=platform)

    def test_custom_spec_with_small_platform(self):
        platform = paper_platform(buffer_mb=8.0, nvm_mb=16.0)
        cd = CoDesign("L2", platform=platform, spec=tiny_vision_spec())
        assert cd.evaluate_hardware(2).fps > 0

    def test_nvm_too_small_for_paper_model(self):
        platform = paper_platform(nvm_mb=32.0)
        with pytest.raises(ValueError, match="NVM demand"):
            CoDesign("L3", platform=platform)
