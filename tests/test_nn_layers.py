"""Tests for repro.nn.layers: shapes, gradients, errors."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    Parameter,
    ReLU,
    col2im,
    im2col,
)


def numerical_gradient(f, x, eps=1e-5):
    """Central-difference gradient of scalar f at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def layer_grad_check(layer, x, atol=1e-6):
    """Compare analytic input/param gradients with numerical ones."""
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(0).normal(size=out.shape)

    def loss():
        return float(np.sum(layer.forward(x, training=False) * upstream))

    dx = layer.backward(upstream)
    num_dx = numerical_gradient(loss, x)
    assert np.allclose(dx, num_dx, atol=atol), "input gradient mismatch"
    for p in layer.parameters():
        analytic = p.grad.copy()
        num = numerical_gradient(loss, p.value)
        assert np.allclose(analytic, num, atol=atol), f"{p.name} gradient mismatch"


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 3, 1, 0)
        back = col2im(cols, x.shape, 3, 3, 1, 0)
        # Each pixel is restored multiplied by the number of windows
        # covering it; the centre pixel of a 6x6 with 3x3/stride1 is in 9.
        assert back[0, 0, 3, 3] == pytest.approx(9 * x[0, 0, 3, 3])

    def test_shapes(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        cols = im2col(x, 3, 3, 2, 1)
        oh = (8 + 2 - 3) // 2 + 1
        assert cols.shape == (1, 2 * 9, oh * oh)

    def test_stride_matches_direct(self, rng):
        x = rng.normal(size=(1, 1, 7, 7))
        cols = im2col(x, 3, 3, 2, 0)
        # First column is the top-left window.
        assert np.allclose(cols[0, :, 0], x[0, 0, :3, :3].reshape(-1))


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 8, 3, stride=1, pad=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_stride(self, rng):
        layer = Conv2D(3, 4, 5, stride=2, pad=0, rng=rng)
        out = layer.forward(rng.normal(size=(1, 3, 11, 11)))
        assert out.shape == (1, 4, 4, 4)

    def test_known_value(self):
        layer = Conv2D(1, 1, 2)
        layer.weight.value = np.ones((1, 1, 2, 2))
        layer.bias.value = np.array([1.0])
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = layer.forward(x)
        # Top-left window sums 0+1+3+4 = 8, plus bias 1.
        assert out[0, 0, 0, 0] == pytest.approx(9.0)

    def test_gradcheck(self, rng):
        layer = Conv2D(2, 3, 3, stride=1, pad=1, rng=rng)
        layer_grad_check(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_gradcheck_strided(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, pad=0, rng=rng)
        layer_grad_check(layer, rng.normal(size=(1, 1, 7, 7)))

    def test_channel_mismatch_raises(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError, match="channels"):
            layer.forward(rng.normal(size=(1, 2, 5, 5)))

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2D(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 3, 3)))

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, 0)

    def test_weight_count(self, rng):
        layer = Conv2D(3, 8, 5, rng=rng)
        assert layer.weight_count == 8 * 3 * 25 + 8


class TestDense:
    def test_forward_value(self):
        layer = Dense(2, 2)
        layer.weight.value = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.value = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[4.5, 5.5]])

    def test_gradcheck(self, rng):
        layer = Dense(4, 3, rng=rng)
        layer_grad_check(layer, rng.normal(size=(5, 4)))

    def test_shape_validation(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(2, 5)))

    def test_gradient_accumulates_across_calls(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))
        layer.forward(x, training=True)
        layer.backward(np.ones((2, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x, training=True)
        layer.backward(np.ones((2, 2)))
        assert np.allclose(layer.weight.grad, 2 * first)


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(out, [0.0, 0.0, 2.0])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([-1.0, 3.0]), training=True)
        grad = layer.backward(np.array([5.0, 5.0]))
        assert np.allclose(grad, [0.0, 5.0])

    def test_gradcheck(self, rng):
        layer_grad_check(ReLU(), rng.normal(size=(3, 4)) + 0.5)


class TestLocalResponseNorm:
    def test_identity_for_zero_alpha(self, rng):
        layer = LocalResponseNorm(size=5, alpha=0.0, beta=0.75, k=1.0)
        x = rng.normal(size=(1, 8, 3, 3))
        assert np.allclose(layer.forward(x), x)

    def test_suppresses_large_neighbourhoods(self):
        layer = LocalResponseNorm(size=3, alpha=1.0, beta=0.75, k=1.0)
        quiet = layer.forward(np.full((1, 3, 1, 1), 0.1))
        loud = layer.forward(np.full((1, 3, 1, 1), 10.0))
        # Normalisation compresses: the loud output is much less than
        # 100x the quiet output.
        assert loud[0, 1, 0, 0] < 100 * quiet[0, 1, 0, 0]

    def test_gradcheck(self, rng):
        layer = LocalResponseNorm(size=3)
        layer_grad_check(layer, rng.normal(size=(2, 5, 2, 2)), atol=1e-5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=0)


class TestMaxPool2D:
    def test_forward_value(self):
        layer = MaxPool2D(2, 2)
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        assert layer.forward(x)[0, 0, 0, 0] == 4.0

    def test_overlapping_alexnet_pool(self, rng):
        layer = MaxPool2D(3, 2)
        out = layer.forward(rng.normal(size=(1, 2, 13, 13)))
        assert out.shape == (1, 2, 6, 6)

    def test_gradcheck(self, rng):
        # Use well-separated values so argmax is stable under eps.
        x = rng.permutation(np.arange(36, dtype=float)).reshape(1, 1, 6, 6)
        layer_grad_check(MaxPool2D(2, 2), x)

    def test_gradient_routes_to_max(self):
        layer = MaxPool2D(2, 2)
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[[[7.0]]]]))
        assert dx[0, 0, 1, 1] == 7.0
        assert dx.sum() == 7.0


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        assert np.allclose(layer.backward(out), x)


class TestParameter:
    def test_zero_grad(self):
        p = Parameter("w", np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.allclose(p.grad, 0.0)

    def test_size(self):
        assert Parameter("w", np.ones((2, 3))).size == 6
