"""Tests for optimisers and Q-learning losses."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.losses import huber_loss, mse_loss, q_learning_loss
from repro.nn.optim import RMSProp, SGD


def quadratic_param(start=5.0):
    return Parameter("w", np.array([start]))


class TestSGD:
    def test_plain_step(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        p.grad[:] = 2.0
        opt.step()
        assert p.value[0] == pytest.approx(5.0 - 0.2)

    def test_momentum_accelerates(self):
        p_plain, p_mom = quadratic_param(), quadratic_param()
        plain = SGD([p_plain], lr=0.1)
        mom = SGD([p_mom], lr=0.1, momentum=0.9)
        for _ in range(5):
            p_plain.grad[:] = 1.0
            p_mom.grad[:] = 1.0
            plain.step()
            mom.step()
        assert p_mom.value[0] < p_plain.value[0]

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad[:] = 2 * p.value  # d/dw w^2
            opt.step()
        assert abs(p.value[0]) < 1e-6

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        p.grad[:] = 3.0
        opt.zero_grad()
        assert p.grad[0] == 0.0


class TestRMSProp:
    def test_converges_on_quadratic(self):
        # RMSProp's normalised steps oscillate near the optimum at fixed
        # lr; convergence to a small neighbourhood is the expectation.
        p = quadratic_param()
        opt = RMSProp([p], lr=0.05)
        for _ in range(500):
            p.grad[:] = 2 * p.value
            opt.step()
        assert abs(p.value[0]) < 0.1

    def test_step_size_adapts_to_gradient_scale(self):
        # RMSProp normalises by RMS gradient: large and small constant
        # gradients give (nearly) the same step size.
        p_small, p_big = quadratic_param(), quadratic_param()
        small = RMSProp([p_small], lr=0.01)
        big = RMSProp([p_big], lr=0.01)
        p_small.grad[:] = 1e-3
        p_big.grad[:] = 1e3
        small.step()
        big.step()
        assert abs(p_small.value[0] - 5.0) == pytest.approx(
            abs(p_big.value[0] - 5.0), rel=1e-3
        )

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            RMSProp([quadratic_param()], lr=0.1, decay=1.5)


class TestMSELoss:
    def test_zero_at_target(self):
        loss, grad = mse_loss(np.ones(4), np.ones(4))
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_value(self):
        loss, _ = mse_loss(np.array([2.0]), np.array([0.0]))
        assert loss == pytest.approx(4.0)

    def test_gradient_numerical(self, rng):
        pred = rng.normal(size=6)
        target = rng.normal(size=6)
        _, grad = mse_loss(pred, target)
        eps = 1e-6
        for i in range(6):
            bumped = pred.copy()
            bumped[i] += eps
            hi, _ = mse_loss(bumped, target)
            bumped[i] -= 2 * eps
            lo, _ = mse_loss(bumped, target)
            assert grad[i] == pytest.approx((hi - lo) / (2 * eps), rel=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.ones(3), np.ones(4))


class TestHuberLoss:
    def test_quadratic_region_matches_half_mse(self):
        loss, _ = huber_loss(np.array([0.5]), np.array([0.0]), delta=1.0)
        assert loss == pytest.approx(0.125)

    def test_linear_region(self):
        loss, _ = huber_loss(np.array([10.0]), np.array([0.0]), delta=1.0)
        assert loss == pytest.approx(9.5)

    def test_gradient_bounded_by_delta(self, rng):
        pred = rng.normal(size=10) * 100
        _, grad = huber_loss(pred, np.zeros(10), delta=1.0)
        assert np.max(np.abs(grad)) <= 1.0 / 10 + 1e-12

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(np.ones(2), np.ones(2), delta=0.0)


class TestQLearningLoss:
    def test_only_taken_actions_get_gradient(self):
        q = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        actions = np.array([0, 2])
        targets = np.array([0.0, 0.0])
        _, grad = q_learning_loss(q, actions, targets)
        assert grad[0, 1] == 0.0 and grad[0, 2] == 0.0
        assert grad[1, 0] == 0.0 and grad[1, 1] == 0.0
        assert grad[0, 0] != 0.0 and grad[1, 2] != 0.0

    def test_zero_loss_when_q_equals_target(self):
        q = np.array([[1.0, 2.0]])
        loss, grad = q_learning_loss(q, np.array([1]), np.array([2.0]))
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_huber_variant(self):
        q = np.array([[0.0, 100.0]])
        loss, _ = q_learning_loss(q, np.array([1]), np.array([0.0]), kind="huber")
        assert loss == pytest.approx(99.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            q_learning_loss(np.ones((1, 2)), np.array([0]), np.array([0.0]), kind="l1")

    def test_action_out_of_range(self):
        with pytest.raises(ValueError):
            q_learning_loss(np.ones((1, 2)), np.array([5]), np.array([0.0]))

    def test_wrong_shapes(self):
        with pytest.raises(ValueError):
            q_learning_loss(np.ones(3), np.array([0]), np.array([0.0]))
