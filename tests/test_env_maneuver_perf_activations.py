"""Tests for the manoeuvre analysis and activation footprints."""

import pytest

from repro.env.maneuver import (
    evasive_maneuver_distance,
    fig1_law_is_perception_limited,
    required_sighting_distance,
)
from repro.nn import modified_alexnet_spec, scaled_drone_net_spec
from repro.perf.activations import activation_report, peak_activation_bytes


class TestEvasiveManeuver:
    def test_monotone_in_obstacle_width(self):
        narrow = evasive_maneuver_distance(0.3, d_frame=0.2)
        wide = evasive_maneuver_distance(2.0, d_frame=0.2)
        assert wide > narrow

    def test_more_turn_authority_shortens_evasion(self):
        agile = evasive_maneuver_distance(1.0, 0.2, max_turn_deg=55.0)
        sluggish = evasive_maneuver_distance(1.0, 0.2, max_turn_deg=25.0)
        assert agile < sluggish

    def test_lateral_requirement_includes_drone_radius(self):
        small = evasive_maneuver_distance(0.5, 0.2, drone_radius=0.1)
        big = evasive_maneuver_distance(0.5, 0.2, drone_radius=0.6)
        assert big >= small

    def test_sideways_saturates(self):
        """Once heading hits 90 degrees no further forward distance
        accrues, so even huge obstacles cost finite forward distance."""
        d = evasive_maneuver_distance(50.0, d_frame=0.5)
        # Forward motion only during the first two turning frames.
        assert d < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            evasive_maneuver_distance(0.0, 0.2)
        with pytest.raises(ValueError):
            evasive_maneuver_distance(0.5, 0.0)
        with pytest.raises(ValueError):
            evasive_maneuver_distance(0.5, 0.2, max_turn_deg=120.0)


class TestSightingDistance:
    def test_latency_adds_linearly(self):
        base = required_sighting_distance(0.5, 0.2, latency_frames=1)
        slow = required_sighting_distance(0.5, 0.2, latency_frames=4)
        assert slow - base == pytest.approx(3 * 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sighting_distance(0.5, 0.2, latency_frames=-1)

    @pytest.mark.parametrize("d_min,halfwidth", [(0.7, 0.5), (1.0, 0.6), (1.3, 0.7)])
    def test_fig1_law_perception_limited_indoors(self, d_min, halfwidth):
        """At the paper's indoor d_min settings, the one-frame
        perception budget dominates the physical dodge."""
        assert fig1_law_is_perception_limited(d_min, halfwidth)

    def test_fig1_validation(self):
        with pytest.raises(ValueError):
            fig1_law_is_perception_limited(0.0, 0.5)


class TestActivationFootprints:
    def test_paper_network_fits_scratchpad_untiled(self):
        """Every layer boundary of the modified AlexNet fits the 4.2 MB
        scratchpad without tiling — consistent with Fig. 5 reserving a
        single flat scratch allocation."""
        spec = modified_alexnet_spec()
        for footprint in activation_report(spec):
            assert footprint.fits_untiled, footprint.layer

    def test_peak_is_conv1(self):
        spec = modified_alexnet_spec()
        report = activation_report(spec)
        peak_layer = max(report, key=lambda f: f.total_bytes)
        assert peak_layer.layer == "CONV1"
        assert peak_activation_bytes(spec) == peak_layer.total_bytes

    def test_peak_well_under_scratchpad(self):
        # ~0.45 MB vs 4.2 MB: an order of magnitude of headroom for
        # double buffering and weight tiles.
        assert peak_activation_bytes(modified_alexnet_spec()) < 1_000_000

    def test_tiling_kicks_in_for_tiny_scratchpad(self):
        spec = modified_alexnet_spec()
        report = activation_report(spec, scratchpad_bytes=100_000)
        assert any(f.tiling_factor > 1 for f in report)

    def test_scaled_network_is_tiny(self):
        spec = scaled_drone_net_spec(input_side=16)
        assert peak_activation_bytes(spec) < 20_000

    def test_validation(self):
        with pytest.raises(ValueError):
            activation_report(modified_alexnet_spec(), scratchpad_bytes=0)
