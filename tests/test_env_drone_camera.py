"""Tests for drone kinematics and the depth camera."""

import numpy as np
import pytest

from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.drone import ACTIONS, Action, Drone, TURN_ANGLES_DEG
from repro.env.geometry import Box
from repro.env.world import Pose, World


def open_world(indoor=False):
    return World(
        name="open", bounds=Box(0, 0, 100, 100), d_min=1.0,
        max_range=20.0, is_indoor=indoor,
    )


class TestDrone:
    def test_five_actions(self):
        assert len(ACTIONS) == 5
        assert [int(a) for a in ACTIONS] == [0, 1, 2, 3, 4]

    def test_turn_angles_match_paper(self):
        assert TURN_ANGLES_DEG[Action.LEFT_25] == 25.0
        assert TURN_ANGLES_DEG[Action.RIGHT_25] == -25.0
        assert TURN_ANGLES_DEG[Action.LEFT_55] == 55.0
        assert TURN_ANGLES_DEG[Action.RIGHT_55] == -55.0
        assert TURN_ANGLES_DEG[Action.FORWARD] == 0.0

    def test_forward_moves_dframe(self):
        drone = Drone(Pose(0, 0, 0), d_frame=0.5)
        pose = drone.apply_action(Action.FORWARD)
        assert pose.x == pytest.approx(0.5)
        assert pose.y == pytest.approx(0.0)
        assert pose.heading == pytest.approx(0.0)

    def test_left_turn_changes_heading_then_moves(self):
        drone = Drone(Pose(0, 0, 0), d_frame=1.0)
        pose = drone.apply_action(Action.LEFT_25)
        assert pose.heading == pytest.approx(np.deg2rad(25))
        assert pose.x == pytest.approx(np.cos(np.deg2rad(25)))
        assert pose.y == pytest.approx(np.sin(np.deg2rad(25)))

    def test_right_turn_is_negative(self):
        drone = Drone(Pose(0, 0, 0), d_frame=1.0)
        pose = drone.apply_action(Action.RIGHT_55)
        assert pose.heading == pytest.approx(-np.deg2rad(55))

    def test_heading_wraps(self):
        drone = Drone(Pose(0, 0, np.pi - 0.01), d_frame=0.1)
        pose = drone.apply_action(Action.LEFT_55)
        assert -np.pi < pose.heading <= np.pi

    def test_every_action_travels_dframe(self):
        for action in ACTIONS:
            drone = Drone(Pose(0, 0, 0.3), d_frame=0.7)
            before = drone.pose
            after = drone.apply_action(action)
            dist = np.hypot(after.x - before.x, after.y - before.y)
            assert dist == pytest.approx(0.7)

    def test_teleport(self):
        drone = Drone(Pose(0, 0, 0))
        drone.teleport(Pose(3, 4, 1.0))
        assert (drone.pose.x, drone.pose.y, drone.pose.heading) == (3, 4, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Drone(Pose(0, 0, 0), radius=0.0)
        with pytest.raises(ValueError):
            Drone(Pose(0, 0, 0), d_frame=0.0)


class TestStereoNoise:
    def test_sigma_grows_quadratically(self):
        noise = StereoNoiseModel(disparity_sigma_px=0.25, fb=60.0)
        s1 = noise.sigma(np.array([2.0]))[0]
        s2 = noise.sigma(np.array([4.0]))[0]
        assert s2 == pytest.approx(4 * s1)

    def test_zero_sigma_is_noiseless(self, rng):
        noise = StereoNoiseModel(disparity_sigma_px=0.0)
        depth = np.full((4, 4), 5.0)
        assert np.array_equal(noise.corrupt(depth, rng), depth)

    def test_corrupt_statistics(self, rng):
        noise = StereoNoiseModel(disparity_sigma_px=0.5, fb=10.0)
        depth = np.full(20000, 4.0)
        out = noise.corrupt(depth, rng)
        expected_sigma = 0.5 * 16.0 / 10.0
        assert np.std(out - depth) == pytest.approx(expected_sigma, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            StereoNoiseModel(disparity_sigma_px=-1.0)
        with pytest.raises(ValueError):
            StereoNoiseModel(fb=0.0)


class TestDepthCamera:
    def test_image_shape_and_range(self):
        cam = DepthCamera(width=24, height=16)
        img = cam.render(open_world(), Pose(50, 50, 0.0))
        assert img.shape == (16, 24)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_unnormalised_depths_in_metres(self):
        cam = DepthCamera(width=8, height=8)
        img = cam.render(open_world(), Pose(50, 50, 0.0), normalized=False)
        assert img.max() <= 20.0

    def test_wall_ahead_reduces_centre_depth(self):
        world = open_world()
        cam = DepthCamera(width=16, height=16)
        far = cam.render(world, Pose(50, 50, 0.0))
        near = cam.render(world, Pose(95, 50, 0.0))  # 5 m from the x=100 wall
        centre = (slice(6, 10), slice(6, 10))
        assert near[centre].mean() < far[centre].mean()

    def test_closer_wall_monotone(self):
        world = open_world()
        cam = DepthCamera(width=16, height=16)
        depths = [
            cam.render(world, Pose(x, 50, 0.0))[8, 8] for x in (60, 80, 90, 95)
        ]
        assert depths == sorted(depths, reverse=True)

    def test_floor_visible_in_bottom_rows(self):
        cam = DepthCamera(width=8, height=16, mount_height=1.0)
        img = cam.render(open_world(), Pose(50, 50, 0.0), normalized=False)
        # The bottom row looks steeply down at the floor: distance ~
        # mount_height / sin(vfov/2) = 1 / sin(30deg) = 2.
        assert img[-1].mean() == pytest.approx(2.0, rel=0.1)

    def test_ceiling_only_indoors(self):
        outdoor = DepthCamera(width=8, height=16).render(
            open_world(indoor=False), Pose(50, 50, 0.0), normalized=False
        )
        indoor = DepthCamera(width=8, height=16).render(
            open_world(indoor=True), Pose(50, 50, 0.0), normalized=False
        )
        # Outdoors the top row sees sky (max_range); indoors, the ceiling.
        assert outdoor[0].mean() == pytest.approx(20.0)
        assert indoor[0].mean() < 20.0

    def test_noise_requires_rng(self):
        cam = DepthCamera(width=8, height=8, noise=StereoNoiseModel(0.5, fb=10))
        clean = cam.render(open_world(), Pose(50, 50, 0.0))
        noisy = cam.render(
            open_world(), Pose(50, 50, 0.0), rng=np.random.default_rng(0)
        )
        assert np.array_equal(clean, DepthCamera(width=8, height=8).render(open_world(), Pose(50, 50, 0.0)))
        assert not np.array_equal(noisy, clean)

    def test_column_angles_span_fov(self):
        cam = DepthCamera(width=9, fov_deg=90)
        angles = cam.column_angles()
        assert angles[0] == pytest.approx(np.pi / 4)
        assert angles[-1] == pytest.approx(-np.pi / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            DepthCamera(width=1)
        with pytest.raises(ValueError):
            DepthCamera(fov_deg=200)
        with pytest.raises(ValueError):
            DepthCamera(mount_height=5.0, ceiling_height=3.0)
