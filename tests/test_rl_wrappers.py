"""Tests for observation wrappers."""

import numpy as np
import pytest

from repro.env import DepthCamera, NavigationEnv, make_environment
from repro.rl import FrameStack, QLearningAgent, config_by_name
from repro.nn import Dense, Flatten, Network, ReLU


def make_env(seed=0):
    world = make_environment("indoor-apartment", seed=seed)
    return NavigationEnv(world, camera=DepthCamera(width=8, height=8), seed=seed)


class TestFrameStack:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            FrameStack(make_env(), k=0)

    def test_observation_shape(self):
        stacked = FrameStack(make_env(), k=3)
        assert stacked.observation_shape == (3, 8, 8)
        obs = stacked.reset()
        assert obs.shape == (3, 8, 8)

    def test_reset_fills_with_first_frame(self):
        stacked = FrameStack(make_env(), k=3)
        obs = stacked.reset()
        assert np.array_equal(obs[0], obs[1])
        assert np.array_equal(obs[1], obs[2])

    def test_step_shifts_frames(self):
        stacked = FrameStack(make_env(), k=2)
        first = stacked.reset()
        obs, _, done, _ = stacked.step(0)
        if not done:
            # Oldest slot now holds the pre-step frame.
            assert np.array_equal(obs[0], first[1])

    def test_k1_matches_raw_env(self):
        raw, wrapped = make_env(seed=3), FrameStack(make_env(seed=3), k=1)
        a = raw.reset()
        b = wrapped.reset()
        assert np.array_equal(a, b)

    def test_delegated_properties(self):
        stacked = FrameStack(make_env(), k=2)
        assert stacked.num_actions == 5
        assert stacked.world.name == "indoor-apartment"
        stacked.reset()
        stacked.step(0)
        assert stacked.tracker is stacked.env.tracker

    def test_trains_with_agent(self):
        """A stacked environment must plug straight into the agent."""
        stacked = FrameStack(make_env(), k=2)
        c, h, w = stacked.observation_shape
        rng = np.random.default_rng(0)
        net = Network(
            [
                Flatten(),
                Dense(c * h * w, 32, name="FC1", rng=rng),
                ReLU(),
                Dense(32, 5, name="FC2", rng=rng),
            ]
        )
        agent = QLearningAgent(net, config=config_by_name("E2E"), batch_size=4)
        from repro.env.episode import Transition

        state = stacked.reset()
        for _ in range(20):
            action = agent.select_action(state)
            next_state, reward, done, _ = stacked.step(action)
            agent.observe(Transition(state, action, reward, next_state, done))
            state = stacked.reset() if done else next_state
        loss = agent.train_step()
        assert np.isfinite(loss)
