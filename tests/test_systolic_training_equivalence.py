"""Whole-network training step: fast path vs PE oracle vs closed form.

The training-step simulator chains the row-stationary conv forward, the
Section V.B GEMM conv backward and the Fig. 7/8 FC passes across a
network spec.  Its contracts, mirroring the forward fast path's
(``test_systolic_fast_equivalence.py``):

* integer cycle counters are *exactly* equal between the fast path,
  the loop-level PE/tile-schedule oracle and the closed-form
  ``training_step_stats`` over a randomized shape/stride/pad/batch
  grid (and the ``network_training_step_cost`` walk of a built
  ``Network`` produces the same numbers from the same geometry);
* the chained backward numerics match the float autograd and
  independent SciPy references;
* conv filter-row weight reuse makes training cycles per sample
  strictly decreasing in batch size (the Fig. 13 effect), matching the
  FC ``load_cycles`` regression.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.nn.specs import ConvSpec, FCSpec, NetworkSpec
from repro.rl import config_by_name
from repro.systolic import (
    ArrayConfig,
    conv_backward_gemm,
    conv_backward_gemm_stats,
    fc_backward_stats,
    fc_tile_stats,
    fc_weight_grad_stats,
    network_training_step_cost,
    simulate_network_training_step,
    training_step_stats,
)

scipy_signal = pytest.importorskip("scipy.signal")

# A small array makes multi-tile/partial-tile schedules common even at
# test-sized shapes.
SMALL_ARRAY = ArrayConfig(rows=6, cols=5)


def tiny_spec(c, h, w, oc, k, stride, pad, pool, fc1, fc2):
    """A conv + two-FC spec, or None when the geometry is degenerate."""
    try:
        conv = ConvSpec(
            "CONV1", in_height=h, in_width=w, in_channels=c,
            out_channels=oc, kernel=k, stride=stride, pad=pad,
            pool=pool, pool_stride=2,
        )
        flat = conv.pooled_height * conv.pooled_width * conv.out_channels
        if conv.out_height <= 0 or conv.out_width <= 0 or flat <= 0:
            return None
        return NetworkSpec(
            "tiny",
            (
                conv,
                FCSpec("FC1", in_features=flat, out_features=fc1),
                FCSpec("FC2", in_features=fc1, out_features=fc2),
            ),
            input_side=h,
            input_channels=c,
        )
    except ValueError:
        return None


class TestGridEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        c=st.integers(1, 2),
        oc=st.integers(1, 3),
        h=st.integers(5, 9),
        k=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
        pool=st.sampled_from([None, 2]),
        fc1=st.integers(2, 9),
        batch=st.integers(1, 2),
        train_last_k=st.sampled_from([None, 1, 2]),
        seed=st.integers(0, 10_000),
    )
    def test_training_step_fast_equals_oracle_and_closed_form(
        self, c, oc, h, k, stride, pad, pool, fc1, batch, train_last_k, seed
    ):
        assume(h + 2 * pad >= k and k <= SMALL_ARRAY.rows)
        spec = tiny_spec(c, h, h, oc, k, stride, pad, pool, fc1, 3)
        assume(spec is not None)
        fast = simulate_network_training_step(
            spec, batch=batch, fidelity="fast", seed=seed,
            config=SMALL_ARRAY, train_last_k=train_last_k,
        )
        pe = simulate_network_training_step(
            spec, batch=batch, fidelity="pe", seed=seed,
            config=SMALL_ARRAY, train_last_k=train_last_k,
        )
        # Counters are exactly equal, layer for layer, field for field.
        assert fast.cost.counters == pe.cost.counters
        closed = training_step_stats(
            spec, batch=batch, config=SMALL_ARRAY, train_last_k=train_last_k
        )
        assert closed.counters == pe.cost.counters
        assert closed.total_cycles == fast.cost.total_cycles > 0
        # Outputs and every chained gradient agree to round-off.
        assert np.allclose(fast.output, pe.output, rtol=1e-10, atol=1e-10)
        assert fast.weight_grads.keys() == pe.weight_grads.keys()
        for name in fast.weight_grads:
            assert np.allclose(
                fast.weight_grads[name], pe.weight_grads[name],
                rtol=1e-9, atol=1e-9,
            ), name
            assert np.allclose(
                fast.bias_grads[name], pe.bias_grads[name],
                rtol=1e-9, atol=1e-9,
            ), name

    def test_network_walk_matches_spec_walk(self):
        """``network_training_step_cost`` (the backend's per-update
        charge) produces exactly the spec walk's counters for the same
        geometry and trainable boundary."""
        spec = scaled_drone_net_spec(input_side=16)
        network = build_network(spec, seed=0)
        for last_k in (None, 2, 4):
            boundary = network.trainable_boundary(last_k)
            from_network = network_training_step_cost(
                network, (1, 16, 16), batch=3, first_trainable=boundary
            )
            from_spec = training_step_stats(spec, batch=3, train_last_k=last_k)
            assert from_network.counters == from_spec.counters

    def test_frozen_prefix_charges_forward_only(self):
        spec = scaled_drone_net_spec(input_side=16)
        step = training_step_stats(spec, batch=2, train_last_k=2)
        frozen = [l for l in step.layers if not l.trainable]
        trainable = [l for l in step.layers if l.trainable]
        assert [l.name for l in trainable] == ["FC4", "FC5"]
        for layer in frozen:
            assert layer.forward_cycles > 0
            assert layer.dw_cycles == layer.dx_cycles == 0
            assert layer.weight_elements == 0
        for layer in trainable:
            assert layer.dw_cycles > 0 and layer.dx_cycles > 0
            assert layer.weight_elements > 0
        # E2E strictly dominates the partial step.
        e2e = training_step_stats(spec, batch=2)
        assert e2e.total_cycles > step.total_cycles
        assert e2e.total_forward_cycles == step.total_forward_cycles

    def test_closed_form_backward_helpers(self):
        """The per-layer helpers decompose as documented."""
        dx = fc_backward_stats(10, 7, SMALL_ARRAY, batch=3)
        assert dx == fc_tile_stats(10, 7, SMALL_ARRAY, batch=3)
        dw = fc_weight_grad_stats(10, 7, SMALL_ARRAY, batch=3)
        # dW streams the 10 activation columns through (3 x 7) tiles.
        assert dw == fc_tile_stats(3, 7, SMALL_ARRAY, batch=10)
        bwd = conv_backward_gemm_stats(
            2, 6, 6, 3, 3, 3, stride=1, pad=1, config=SMALL_ARRAY, batch=2
        )
        positions = 6 * 6
        f_dim = 2 * 3 * 3
        assert bwd.expansion_elements == 2 * f_dim * positions
        assert bwd.dx == fc_tile_stats(
            f_dim, 3, SMALL_ARRAY, batch=2 * positions
        )
        assert bwd.dw == fc_tile_stats(
            2 * positions, 3, SMALL_ARRAY, batch=f_dim
        )
        # MACs of each GEMM equal the analytic conv-backward count.
        ref = conv_backward_gemm(
            np.zeros((2, 2, 6, 6)), np.zeros((3, 2, 3, 3)),
            np.zeros((2, 3, 6, 6)), stride=1, pad=1,
        )
        assert bwd.dw.mac_cycles == ref.dw_macs
        assert bwd.dx.mac_cycles == ref.dx_macs
        assert bwd.expansion_elements == ref.expansion_elements


class TestChainedBackwardNumerics:
    def test_matches_float_autograd(self):
        """The simulated training step's gradients are the float
        autograd's, layer for layer, when run over the same weights."""
        spec = scaled_drone_net_spec(input_side=16)
        network = build_network(spec, seed=3)
        result = simulate_network_training_step(
            spec, batch=3, fidelity="fast", seed=7, network=network
        )
        out = network.forward(result.input_batch, training=True)
        assert np.allclose(out, result.output, rtol=1e-9, atol=1e-9)
        network.zero_grad()
        network.backward(result.loss_grad)
        for _index, layer in network.parametric_layers():
            assert np.allclose(
                layer.weight.grad, result.weight_grads[layer.name],
                rtol=1e-8, atol=1e-10,
            ), layer.name
            assert np.allclose(
                layer.bias.grad, result.bias_grads[layer.name],
                rtol=1e-8, atol=1e-10,
            ), layer.name

    def test_partial_backprop_matches_agent_boundary(self):
        """train_last_k freezes exactly the layers the agent's partial
        backpropagation freezes: frozen parameters see zero gradient."""
        spec = scaled_drone_net_spec(input_side=16)
        network = build_network(spec, seed=1)
        boundary = config_by_name("L3").first_trainable_layer(network)
        result = simulate_network_training_step(
            spec, batch=2, fidelity="fast", seed=5,
            train_last_k=3, network=network,
        )
        assert set(result.weight_grads) == {"FC3", "FC4", "FC5"}
        network.zero_grad()
        network.forward(result.input_batch, training=True)
        network.backward(result.loss_grad, first_trainable=boundary)
        for _index, layer in network.parametric_layers():
            if layer.name in result.weight_grads:
                assert np.allclose(
                    layer.weight.grad, result.weight_grads[layer.name],
                    rtol=1e-8, atol=1e-10,
                )
            else:
                assert not np.any(layer.weight.grad)

    def test_conv_weight_grad_matches_scipy(self):
        """dW of the chained conv backward equals the SciPy correlation
        identity dW[oc, c] = corr(x[c], dout[oc]) (stride 1)."""
        c, oc, side, k = 2, 3, 7, 3
        spec = NetworkSpec(
            "conv-only-ish",
            (
                ConvSpec("CONV1", in_height=side, in_width=side,
                         in_channels=c, out_channels=oc, kernel=k),
                FCSpec("FC1", in_features=oc * (side - k + 1) ** 2,
                       out_features=4),
            ),
            input_side=side, input_channels=c,
        )
        result = simulate_network_training_step(
            spec, batch=1, fidelity="fast", seed=11
        )
        # Reconstruct the gradient that reached the conv layer: fold
        # the FC input-gradient through the ReLU mask.  Simpler: use
        # conv_backward_gemm as the independently-validated reference
        # for the same operands the simulator saw, and SciPy directly
        # for the single-image identity.
        x = result.input_batch
        rng = np.random.default_rng(11)
        w = rng.normal(size=(oc, c, k, k), scale=0.05)
        grad = rng.normal(size=(1, oc, side - k + 1, side - k + 1))
        ref = conv_backward_gemm(x, w, grad)
        for o in range(oc):
            for ch in range(c):
                expected = scipy_signal.correlate2d(
                    x[0, ch], grad[0, o], mode="valid"
                )
                assert np.allclose(ref.weight_grad[o, ch], expected)

    def test_chained_conv_grads_match_gemm_backward(self):
        """The tile-scheduled conv backward inside the simulator equals
        the independently-validated conv_backward_gemm on the operands
        the chain produced (weights from the shared network)."""
        spec = NetworkSpec(
            "one-conv",
            (
                ConvSpec("CONV1", in_height=8, in_width=8, in_channels=2,
                         out_channels=3, kernel=3, stride=2, pad=1),
                FCSpec("FC1", in_features=3 * 4 * 4, out_features=5),
            ),
            input_side=8, input_channels=2,
        )
        network = build_network(spec, seed=2)
        result = simulate_network_training_step(
            spec, batch=2, fidelity="fast", seed=9, network=network
        )
        # Recompute the conv layer's upstream gradient with autograd,
        # then feed the same operands to conv_backward_gemm.
        network.zero_grad()
        network.forward(result.input_batch, training=True)
        network.backward(result.loss_grad)
        conv = network.layers[0]
        ref_dw = conv.weight.grad
        assert np.allclose(
            result.weight_grads["CONV1"], ref_dw, rtol=1e-8, atol=1e-10
        )
        assert result.input_grad is not None
        assert result.input_grad.shape == result.input_batch.shape


class TestConvWeightReuseRegression:
    def test_training_cycles_per_sample_strictly_decreasing_in_batch(self):
        """The Fig. 13 effect, now on the whole training step: conv
        filter rows and FC tiles stay resident across the batch, so
        cycles per sample strictly decrease as the batch grows."""
        spec = scaled_drone_net_spec(input_side=16)
        previous = None
        for batch in (1, 2, 4, 8, 16):
            step = training_step_stats(spec, batch=batch)
            per_sample = step.cycles_per_sample
            if previous is not None:
                assert per_sample < previous, batch
            previous = per_sample

    def test_conv_forward_loads_charged_once_per_batch(self):
        """Per-layer view: conv forward loads do not scale with batch,
        while MAC and wavefront cycles scale exactly linearly."""
        from repro.systolic import conv_rowstationary_stats

        one = conv_rowstationary_stats(2, 10, 10, 4, 3, 3, batch=1)
        eight = conv_rowstationary_stats(2, 10, 10, 4, 3, 3, batch=8)
        assert eight.load_cycles == one.load_cycles > 0
        assert eight.total_pe_cycles == 8 * one.total_pe_cycles
        assert eight.wavefront_cycles == 8 * one.wavefront_cycles
        assert eight.total_cycles < 8 * one.total_cycles

    @pytest.mark.parametrize("fidelity", ["fast", "pe"])
    def test_conv_load_cycles_match_oracle(self, fidelity):
        """The PE oracle's load counter equals the closed form: one
        broadside cycle per filter row per channel per column pass."""
        from repro.systolic import (
            conv_rowstationary_stats,
            simulate_conv_rowstationary,
        )

        rng = np.random.default_rng(0)
        config = ArrayConfig(rows=4, cols=4)
        x = rng.normal(size=(3, 2, 8, 8))
        w = rng.normal(size=(2, 2, 3, 3))
        _, stats = simulate_conv_rowstationary(
            x, w, config=config, fidelity=fidelity
        )
        # oh = 6 on a 4-column array -> 2 passes; 2 oc x 2 ch x 3 rows.
        assert stats.load_cycles == 2 * 2 * 2 * 3
        closed = conv_rowstationary_stats(
            2, 8, 8, 2, 3, 3, config=config, batch=3
        )
        assert closed == stats


class TestValidation:
    def test_bad_arguments_rejected(self):
        spec = scaled_drone_net_spec(input_side=16)
        with pytest.raises(ValueError, match="batch"):
            training_step_stats(spec, batch=0)
        with pytest.raises(ValueError, match="fidelity"):
            simulate_network_training_step(spec, batch=1, fidelity="warp")
        with pytest.raises(ValueError, match="train_last_k"):
            training_step_stats(spec, batch=1, train_last_k=0)
        network = build_network(spec, seed=0)
        with pytest.raises(ValueError, match="state_shape"):
            network_training_step_cost(network, (16, 16), batch=1)
        with pytest.raises(ValueError, match="batch"):
            network_training_step_cost(network, (1, 16, 16), batch=0)
