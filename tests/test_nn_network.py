"""Tests for the Network container and partial backpropagation."""

import numpy as np
import pytest

from repro.nn import Dense, Network, ReLU, build_network


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Network(
        [
            Dense(4, 8, name="FC1", rng=rng),
            ReLU(),
            Dense(8, 6, name="FC2", rng=rng),
            ReLU(),
            Dense(6, 3, name="FC3", rng=rng),
        ],
        name="small",
    )


class TestStructure:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Network([])

    def test_parametric_layers(self):
        net = small_net()
        names = [l.name for _, l in net.parametric_layers()]
        assert names == ["FC1", "FC2", "FC3"]

    def test_weight_count(self):
        net = small_net()
        assert net.weight_count == (4 * 8 + 8) + (8 * 6 + 6) + (6 * 3 + 3)

    def test_trainable_boundary_last_one(self):
        net = small_net()
        idx = net.trainable_boundary(1)
        assert net.layers[idx].name == "FC3"

    def test_trainable_boundary_last_two(self):
        net = small_net()
        idx = net.trainable_boundary(2)
        assert net.layers[idx].name == "FC2"

    def test_trainable_boundary_none_is_e2e(self):
        assert small_net().trainable_boundary(None) == 0

    def test_trainable_boundary_too_many_is_e2e(self):
        assert small_net().trainable_boundary(10) == 0

    def test_trainable_boundary_zero_raises(self):
        with pytest.raises(ValueError):
            small_net().trainable_boundary(0)

    def test_trainable_fraction_monotone(self):
        net = small_net()
        f1 = net.trainable_fraction(net.trainable_boundary(1))
        f2 = net.trainable_fraction(net.trainable_boundary(2))
        assert 0 < f1 < f2 < 1


class TestPartialBackprop:
    def test_frozen_params_receive_no_gradient(self, rng):
        net = small_net()
        boundary = net.trainable_boundary(1)
        x = rng.normal(size=(3, 4))
        out = net.forward(x, training=True)
        net.backward(np.ones_like(out), first_trainable=boundary)
        fc1, fc2, fc3 = (l for _, l in net.parametric_layers())
        assert np.allclose(fc1.weight.grad, 0.0)
        assert np.allclose(fc2.weight.grad, 0.0)
        assert not np.allclose(fc3.weight.grad, 0.0)

    def test_partial_matches_full_on_tail(self, rng):
        """The tail gradient must be identical whether or not the prefix
        also backpropagates — partial training changes *what* updates,
        not the gradient values."""
        x = rng.normal(size=(3, 4))
        net_a, net_b = small_net(), small_net()
        for net, boundary_k in ((net_a, None), (net_b, 1)):
            out = net.forward(x, training=True)
            net.backward(
                np.ones_like(out),
                first_trainable=net.trainable_boundary(boundary_k),
            )
        tail_a = [l for _, l in net_a.parametric_layers()][-1]
        tail_b = [l for _, l in net_b.parametric_layers()][-1]
        assert np.allclose(tail_a.weight.grad, tail_b.weight.grad)

    def test_out_of_range_boundary_raises(self, rng):
        net = small_net()
        out = net.forward(rng.normal(size=(1, 4)), training=True)
        with pytest.raises(ValueError):
            net.backward(np.ones_like(out), first_trainable=99)

    def test_zero_grad(self, rng):
        net = small_net()
        out = net.forward(rng.normal(size=(2, 4)), training=True)
        net.backward(np.ones_like(out))
        net.zero_grad()
        assert all(np.allclose(p.grad, 0) for p in net.parameters())


class TestStateTransfer:
    def test_state_dict_roundtrip(self, rng):
        net_a, net_b = small_net(0), small_net(1)
        x = rng.normal(size=(2, 4))
        assert not np.allclose(net_a.predict(x), net_b.predict(x))
        net_b.load_state_dict(net_a.state_dict())
        assert np.allclose(net_a.predict(x), net_b.predict(x))

    def test_state_dict_is_a_copy(self):
        net = small_net()
        state = net.state_dict()
        state["FC1.weight"][:] = 0.0
        assert not np.allclose(
            [p for p in net.parameters() if p.name == "FC1.weight"][0].value, 0.0
        )

    def test_load_missing_key_raises(self):
        net = small_net()
        state = net.state_dict()
        del state["FC1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_extra_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        state["FC1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_copy_weights_from(self, rng):
        net_a, net_b = small_net(0), small_net(1)
        net_b.copy_weights_from(net_a)
        x = rng.normal(size=(2, 4))
        assert np.allclose(net_a.predict(x), net_b.predict(x))

    def test_save_load_file(self, tmp_path, rng):
        net_a, net_b = small_net(0), small_net(1)
        path = tmp_path / "weights.npz"
        net_a.save(path)
        net_b.load(path)
        x = rng.normal(size=(2, 4))
        assert np.allclose(net_a.predict(x), net_b.predict(x))


class TestBuiltNetworks:
    def test_scaled_network_forward_shape(self, scaled_spec, rng):
        net = build_network(scaled_spec, seed=0)
        x = rng.normal(size=(2, 1, 16, 16))
        out = net.predict(x)
        assert out.shape == (2, 5)

    def test_scaled_network_weight_count_matches_spec(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        assert net.weight_count == scaled_spec.total_weights

    def test_build_is_deterministic(self, scaled_spec, rng):
        x = rng.normal(size=(1, 1, 16, 16))
        a = build_network(scaled_spec, seed=7).predict(x)
        b = build_network(scaled_spec, seed=7).predict(x)
        assert np.allclose(a, b)

    def test_training_forward_backward_runs(self, scaled_spec, rng):
        net = build_network(scaled_spec, seed=0)
        x = rng.normal(size=(2, 1, 16, 16))
        out = net.forward(x, training=True)
        net.backward(np.ones_like(out), first_trainable=net.trainable_boundary(2))
