"""Execution backends: numerics equivalence, cycle budgets, fleet threading.

The backend seam's contracts:

* ``NumpyBackend`` is bitwise the float network (the agent's historical
  behaviour) with a zero cycle budget;
* ``QuantizedBackend`` is bitwise ``QuantizedNetwork.predict_batch``;
* ``SystolicBackend`` (quantized) is bitwise the quantized backend —
  the integer GEMM datapath computes the exact same numbers — and its
  ``pe`` fidelity passthrough matches ``fast`` over a shape grid;
* cycle budgets come from the closed-form systolic accounting and
  thread through the agent's ledger into fleet round reports;
* after an online training update, ``sync()`` write-back keeps the
  deployed datapath current.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    NumpyBackend,
    QuantizedBackend,
    StepCost,
    SystolicBackend,
    make_backend,
    merge_step_costs,
)
from repro.fixedpoint import Q8_8
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import QuantizedNetwork, build_network, scaled_drone_net_spec
from repro.nn.layers import Conv2D, Dense, Flatten, ReLU
from repro.nn.network import Network
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name
from repro.systolic import conv_rowstationary_stats, fc_tile_stats

SIDE = 16


@pytest.fixture(scope="module")
def rollout_states():
    """Seeded on-policy rollout states (the agreement-rate population)."""
    vec_env = VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=[0, 1, 2, 3],
        image_side=SIDE,
        max_episode_steps=100,
    )
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
    agent = QLearningAgent(
        network,
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 200),
        seed=0,
        batch_size=4,
    )
    scheduler = FleetScheduler(agent, vec_env, train_every=2, eval_steps=10)
    scheduler.run(rounds=1, steps_per_round=40)
    states, _, _, _, _ = agent.replay.sample(128, np.random.default_rng(7))
    return network, states


def make_net(seed: int = 0) -> Network:
    return build_network(scaled_drone_net_spec(input_side=SIDE), seed=seed)


class TestRegistry:
    def test_registered_names(self):
        assert {"numpy", "quantized", "systolic"} <= set(BACKENDS)

    def test_make_backend_instantiates(self):
        net = make_net()
        assert isinstance(make_backend("numpy", net), NumpyBackend)
        assert isinstance(make_backend("systolic", net), SystolicBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("tpu", make_net())

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="registered:"):
            make_backend("tpu", make_net())

    def test_near_miss_gets_a_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'sharded'"):
            make_backend("shraded", make_net())
        with pytest.raises(ValueError, match="did you mean 'systolic'"):
            make_backend("systollic", make_net())


class TestStepCost:
    def test_totals_and_merge(self):
        a = StepCost(backend="systolic", states=4, macs=10,
                     layer_cycles={"CONV1": 100, "FC1": 50})
        b = StepCost(backend="systolic", states=2, macs=5,
                     layer_cycles={"FC1": 25})
        merged = merge_step_costs([a, b])
        assert merged.total_cycles == 175
        assert merged.states == 6
        assert merged.macs == 15
        assert merged.layer_cycles == {"CONV1": 100, "FC1": 75}
        assert merged.cycles_per_state == pytest.approx(175 / 6)
        assert a.array_seconds() == pytest.approx(150 / 1e9)

    def test_empty_merge_is_zero(self):
        zero = merge_step_costs([], backend="numpy")
        assert zero.total_cycles == 0 and zero.states == 0

    def test_empty_merge_is_plain_stepcost(self):
        # No records means nothing sharded: the zero cost is a plain
        # StepCost with no shard geometry to mislead downstream code.
        zero = merge_step_costs([])
        assert type(zero) is StepCost
        assert zero.backend == "" and zero.macs == 0
        assert zero.layer_cycles == {}

    def test_singleton_merge_preserves_the_record(self):
        cost = StepCost(backend="systolic", states=4, macs=10,
                        layer_cycles={"CONV1": 100, "FC1": 50})
        merged = merge_step_costs([cost])
        assert type(merged) is StepCost
        assert merged.total_cycles == cost.total_cycles
        assert merged.states == cost.states
        assert merged.macs == cost.macs
        assert merged.layer_cycles == cost.layer_cycles
        assert merged.backend == cost.backend

    def test_singleton_shardcost_merge_preserves_geometry(self):
        from repro.backend import ShardCost

        cost = ShardCost(backend="sharded", states=4, macs=10,
                         layer_cycles={"CONV1": 90, "FC1": 30},
                         shards=3, shard_cycles=(60, 40, 20),
                         merge_cycles=7)
        merged = merge_step_costs([cost])
        assert isinstance(merged, ShardCost)
        assert merged.shards == 3
        assert merged.shard_cycles == (60, 40, 20)
        assert merged.merge_cycles == 7
        assert merged.critical_path_cycles == cost.critical_path_cycles
        assert merged.critical_shard_index == cost.critical_shard_index


class TestNumpyBackend:
    def test_bitwise_matches_agent_q_values(self, rng):
        net = make_net()
        agent = QLearningAgent(net, config=config_by_name("L4"), seed=0)
        backend = NumpyBackend(net)
        states = rng.uniform(0, 1, size=(5, 1, SIDE, SIDE))
        # Like-for-like calls are bitwise identical: single state against
        # q_values (both one-state batches), whole batch against predict.
        for i in range(5):
            assert np.array_equal(
                backend.forward_batch(states[i][None])[0][0],
                agent.q_values(states[i]),
            )
        q_values, cost = backend.forward_batch(states)
        assert np.array_equal(q_values, net.predict(states))
        assert cost.total_cycles == 0 and cost.states == 5
        assert backend.agreement_rate(states) == 1.0


class TestQuantizedBackend:
    def test_bitwise_matches_quantized_network(self, rng):
        net = make_net()
        backend = QuantizedBackend(net)
        reference = QuantizedNetwork(net)
        states = rng.uniform(0, 1, size=(6, 1, SIDE, SIDE))
        q_values, cost = backend.forward_batch(states)
        assert np.array_equal(q_values, reference.predict_batch(states))
        # The scalar weight-swap path is the cross-validation oracle.
        assert np.array_equal(q_values, reference.predict(states))
        assert cost.total_cycles == 0

    def test_agreement_on_seeded_rollout_states(self, rollout_states):
        network, states = rollout_states
        assert QuantizedBackend(network).agreement_rate(states) >= 0.95


class TestSystolicBackend:
    def test_quantized_numerics_bitwise_match_quantized_backend(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(4, 1, SIDE, SIDE))
        sys_q, sys_cost = SystolicBackend(net).forward_batch(states)
        quant_q, _ = QuantizedBackend(net).forward_batch(states)
        assert np.array_equal(sys_q, quant_q)
        assert sys_cost.total_cycles > 0

    def test_float_mode_matches_network_predict(self, rng):
        net = make_net()
        states = rng.uniform(0, 1, size=(4, 1, SIDE, SIDE))
        q_values, cost = SystolicBackend(net, quantized=False).forward_batch(states)
        assert np.allclose(q_values, net.predict(states), rtol=1e-12, atol=1e-12)
        assert cost.total_cycles > 0

    def test_agreement_on_seeded_rollout_states(self, rollout_states):
        network, states = rollout_states
        assert SystolicBackend(network).agreement_rate(states) >= 0.95

    @pytest.mark.parametrize(
        "channels,side,filters,kernel,stride,features",
        [
            (1, 8, 2, 3, 1, 6),
            (2, 9, 3, 3, 2, 5),
            (1, 10, 2, 5, 2, 7),
        ],
    )
    def test_fast_vs_pe_fidelity_agree(
        self, channels, side, filters, kernel, stride, features
    ):
        """The pe oracle passthrough computes the exact same raw-integer
        datapath results and cycle budgets as the GEMM fast path."""
        rng = np.random.default_rng(side * kernel + stride)
        conv = Conv2D(channels, filters, kernel, stride=stride, name="c", rng=rng)
        out_c, oh, ow = conv.output_shape(side, side)
        net = Network(
            [conv, ReLU(), Flatten(),
             Dense(out_c * oh * ow, features, name="d", rng=rng)],
            name="grid-net",
        )
        states = rng.uniform(0, 1, size=(3, channels, side, side))
        fast_q, fast_cost = SystolicBackend(net, fidelity="fast").forward_batch(states)
        pe_q, pe_cost = SystolicBackend(net, fidelity="pe").forward_batch(states)
        assert np.array_equal(fast_q, pe_q)
        assert fast_cost.layer_cycles == pe_cost.layer_cycles
        assert fast_cost.total_cycles == pe_cost.total_cycles > 0

    def test_cycle_budgets_are_the_closed_form_stats(self, rng):
        net = make_net()
        n = 4
        states = rng.uniform(0, 1, size=(n, 1, SIDE, SIDE))
        _, cost = SystolicBackend(net).forward_batch(states)
        conv1 = net.layers[0]
        expected = conv_rowstationary_stats(
            conv1.in_channels, SIDE + 2 * conv1.pad, SIDE + 2 * conv1.pad,
            conv1.out_channels, conv1.kernel_size, conv1.kernel_size,
            stride=conv1.stride, batch=n,
        )
        assert cost.layer_cycles["CONV1"] == expected.total_cycles
        fc5 = next(l for l in net.layers if getattr(l, "name", "") == "FC5")
        assert cost.layer_cycles["FC5"] == fc_tile_stats(
            fc5.in_features, fc5.out_features, batch=n
        ).total_cycles

    def test_weight_reuse_amortises_across_fleet_batch(self, rng):
        """Doubling the state batch less-than-doubles per-layer cycles:
        FC tiles *and* conv filter rows stay resident while the batch
        streams through, so loads are charged once per batch.  (Conv
        cycles used to scale exactly linearly before the row-stationary
        schedule kept filter rows resident across images.)"""
        net = make_net()
        backend = SystolicBackend(net)
        _, c1 = backend.forward_batch(rng.uniform(0, 1, size=(1, 1, SIDE, SIDE)))
        _, c8 = backend.forward_batch(rng.uniform(0, 1, size=(8, 1, SIDE, SIDE)))
        assert c8.layer_cycles["CONV1"] < 8 * c1.layer_cycles["CONV1"]
        assert c8.layer_cycles["FC1"] < 8 * c1.layer_cycles["FC1"]
        # The per-image MAC + drain schedule still scales exactly: the
        # batched budget is 8x the single-image budget minus 7 re-loads.
        conv1 = net.layers[0]
        loads = conv_rowstationary_stats(
            conv1.in_channels, SIDE + 2 * conv1.pad, SIDE + 2 * conv1.pad,
            conv1.out_channels, conv1.kernel_size, conv1.kernel_size,
            stride=conv1.stride, batch=1,
        ).load_cycles
        assert c8.layer_cycles["CONV1"] == 8 * c1.layer_cycles["CONV1"] - 7 * loads

    def test_sync_tracks_online_updates(self, rng):
        net = make_net()
        backend = SystolicBackend(net)
        states = rng.uniform(0, 1, size=(2, 1, SIDE, SIDE))
        stale_q, _ = backend.forward_batch(states)
        for p in net.parameters():
            p.value = p.value + 0.01
        # Without sync the datapath still serves the downloaded snapshot.
        assert np.array_equal(backend.forward_batch(states)[0], stale_q)
        backend.sync()
        fresh_q, _ = backend.forward_batch(states)
        assert np.array_equal(fresh_q, SystolicBackend(net).forward_batch(states)[0])
        assert not np.array_equal(fresh_q, stale_q)

    def test_state_batch_shape_validated(self):
        with pytest.raises(ValueError, match="state batch"):
            SystolicBackend(make_net()).forward_batch(np.zeros((SIDE, SIDE)))

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            SystolicBackend(make_net(), fidelity="warp")


class TestTrainCost:
    def test_numpy_backend_training_is_free(self):
        """The default models the paper's split: training off-device."""
        cost = NumpyBackend(make_net()).train_cost(8, (1, SIDE, SIDE))
        assert cost.total_cycles == 0
        assert cost.states == 8

    def test_systolic_train_cost_is_the_closed_form_step(self):
        from repro.systolic import network_training_step_cost

        net = make_net()
        cost = SystolicBackend(net).train_cost(4, (1, SIDE, SIDE))
        step = network_training_step_cost(net, (1, SIDE, SIDE), 4)
        assert cost.total_cycles == step.total_cycles > 0
        assert cost.macs == step.total_macs
        assert set(cost.layer_cycles) == {l.name for l in step.layers}
        # Backward GEMMs make training dearer than the forward alone.
        _, fwd = SystolicBackend(net).forward_batch(
            np.zeros((4, 1, SIDE, SIDE))
        )
        assert cost.total_cycles > fwd.total_cycles

    def test_partial_backprop_cheaper_than_e2e(self):
        net = make_net()
        backend = SystolicBackend(net)
        boundary = config_by_name("L2").first_trainable_layer(net)
        partial = backend.train_cost(4, (1, SIDE, SIDE), first_trainable=boundary)
        e2e = backend.train_cost(4, (1, SIDE, SIDE))
        assert 0 < partial.total_cycles < e2e.total_cycles

    def test_sharded_train_cost_splits_the_batch(self):
        from repro.backend import ShardCost, ShardedBackend

        net = make_net()
        single = SystolicBackend(net).train_cost(8, (1, SIDE, SIDE))
        cost = ShardedBackend(net, shards=4, shard="sample").train_cost(
            8, (1, SIDE, SIDE)
        )
        assert isinstance(cost, ShardCost)
        assert cost.shards == 4 and len(cost.shard_cycles) == 4
        # Gradient all-reduce: 3 non-root arrays ship every trainable
        # element once.
        trainable = sum(p.size for p in net.parameters())
        assert cost.merge_cycles == 3 * trainable
        assert cost.critical_path_cycles == max(cost.shard_cycles) + cost.merge_cycles
        # Data parallelism beats one array even after the all-reduce.
        assert cost.critical_path_cycles < single.total_cycles

    def test_agent_charges_training_to_the_array(self, rng):
        from repro.env.episode import Transition

        net = make_net()
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, batch_size=4,
            backend=SystolicBackend(net), train_on_array=True,
        )
        states = rng.uniform(0, 1, size=(9, 1, SIDE, SIDE))
        for i in range(8):
            agent.observe(Transition(
                state=states[i], action=int(i % 5), reward=1.0,
                next_state=states[i + 1], done=False,
            ))
        assert agent.drain_training_cost().total_cycles == 0
        agent.train_step()
        agent.train_step()
        cost = agent.drain_training_cost()
        assert cost.backend == "systolic"
        expected = agent.backend.train_cost(
            4, (1, SIDE, SIDE), first_trainable=agent.first_trainable
        )
        assert cost.total_cycles == 2 * expected.total_cycles
        assert agent.drain_training_cost().total_cycles == 0

    def test_agent_default_charges_nothing(self, rng):
        from repro.env.episode import Transition

        net = make_net()
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, batch_size=4,
            backend=SystolicBackend(net),
        )
        states = rng.uniform(0, 1, size=(9, 1, SIDE, SIDE))
        for i in range(8):
            agent.observe(Transition(
                state=states[i], action=int(i % 5), reward=1.0,
                next_state=states[i + 1], done=False,
            ))
        agent.train_step()
        assert agent.drain_training_cost().total_cycles == 0


class TestAgentRouting:
    def test_default_backend_is_float_numpy(self):
        agent = QLearningAgent(make_net(), config=config_by_name("L4"), seed=0)
        assert isinstance(agent.backend, NumpyBackend)

    def test_backend_over_foreign_network_rejected(self):
        """Serving one network while training another must not construct."""
        with pytest.raises(ValueError, match="agent's own network"):
            QLearningAgent(
                make_net(), config=config_by_name("L4"), seed=0,
                backend=QuantizedBackend(make_net(seed=1)),
            )

    def test_act_batch_records_cost_and_drain_clears(self, rng):
        net = make_net()
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0,
            epsilon=EpsilonSchedule(0.0, 0.0, 1),
            backend=SystolicBackend(net),
        )
        states = rng.uniform(0, 1, size=(4, 1, SIDE, SIDE))
        agent.act_batch(states)
        agent.act_batch(states, greedy=True)
        cost = agent.drain_inference_cost()
        assert cost.backend == "systolic"
        assert cost.states == 8
        assert cost.total_cycles > 0
        assert agent.drain_inference_cost().states == 0

    def test_greedy_actions_follow_the_backend_policy(self, rng):
        net = make_net()
        backend = QuantizedBackend(net)
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, backend=backend
        )
        states = rng.uniform(0, 1, size=(6, 1, SIDE, SIDE))
        actions = agent.act_batch(states, greedy=True)
        expected, _ = backend.greedy_actions(states)
        assert np.array_equal(actions, expected)

    def test_train_step_syncs_backend(self, rollout_states):
        """After an online update the quantised datapath must serve the
        written-back weights, not the downloaded snapshot."""
        network, states = rollout_states
        net = make_net(seed=3)
        backend = QuantizedBackend(net)
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, batch_size=4,
            backend=backend,
        )
        before = backend.forward_batch(states[:4])[0]
        from repro.env.episode import Transition

        for i in range(8):
            agent.observe(Transition(
                state=states[i], action=int(i % 5), reward=1.0,
                next_state=states[i + 1], done=False,
            ))
        agent.train_step()
        after = backend.forward_batch(states[:4])[0]
        assert not np.array_equal(before, after)
        refreshed = QuantizedBackend(net).forward_batch(states[:4])[0]
        assert np.array_equal(after, refreshed)


class TestFleetThreading:
    def make_fleet(self, num_envs=4):
        return VecNavigationEnv.from_names(
            ["indoor-apartment", "outdoor-forest"],
            seeds=list(range(num_envs)),
            image_side=SIDE,
            max_episode_steps=100,
        )

    def test_rounds_carry_cycle_budgets(self):
        net = make_net()
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, batch_size=4,
            epsilon=EpsilonSchedule(1.0, 0.1, 200),
            backend=SystolicBackend(net),
        )
        scheduler = FleetScheduler(agent, self.make_fleet(), train_every=2,
                                   eval_steps=10)
        report = scheduler.run(rounds=2, steps_per_round=20)
        assert report.backend == "systolic"
        for stats in report.rounds:
            assert stats.backend == "systolic"
            assert stats.inference_cycles > 0
            assert stats.inference_states > 0
            assert stats.inference_macs > 0
            assert stats.inference_array_seconds > 0
            assert stats.cycles_per_env_step > 0
        assert report.total_inference_cycles == sum(
            r.inference_cycles for r in report.rounds
        )
        assert report.cycles_per_env_step > 0
        projection = scheduler.project_load(report)
        assert projection.inference_cycles_per_step == pytest.approx(
            report.cycles_per_env_step
        )
        assert projection.inference_step_latency_s > 0
        assert projection.inference_sustainable_steps_per_second < float("inf")
        assert projection.inference_utilization > 0

    def test_custom_array_config_threads_into_seconds_and_projection(self):
        """A backend running at a non-default clock must convert its own
        cycles with its own clock, not the paper array's."""
        from repro.systolic import ArrayConfig

        half_clock = ArrayConfig(clock_hz=5e8)
        net = make_net()
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, batch_size=4,
            epsilon=EpsilonSchedule(1.0, 0.1, 200),
            backend=SystolicBackend(net, config=half_clock),
        )
        scheduler = FleetScheduler(agent, self.make_fleet(), train_every=2)
        report = scheduler.run(rounds=1, steps_per_round=20)
        stats = report.rounds[0]
        assert stats.inference_array_seconds == pytest.approx(
            stats.inference_cycles / 5e8
        )
        projection = scheduler.project_load(report)
        assert projection.inference_step_latency_s == pytest.approx(
            report.cycles_per_env_step / 5e8
        )

    def test_numpy_backend_rounds_have_zero_budget(self):
        net = make_net()
        agent = QLearningAgent(
            net, config=config_by_name("L4"), seed=0, batch_size=4,
            epsilon=EpsilonSchedule(1.0, 0.1, 200),
        )
        scheduler = FleetScheduler(agent, self.make_fleet(), train_every=2)
        report = scheduler.run(rounds=1, steps_per_round=20)
        assert report.backend == "numpy"
        assert report.total_inference_cycles == 0
        projection = scheduler.project_load(report)
        assert projection.inference_cycles_per_step == 0.0
        assert projection.inference_sustainable_steps_per_second == float("inf")
        assert projection.inference_realtime_feasible

    def test_quantized_outputs_stay_on_the_activation_grid(self, rollout_states):
        network, states = rollout_states
        q_values, _ = SystolicBackend(network).forward_batch(states)
        assert np.all(Q8_8.representable(q_values))


class TestFleetCliBackend:
    def test_backend_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fleet", "--backend", "systolic"])
        assert args.backend == "systolic"
        assert build_parser().parse_args(["fleet"]).backend == "numpy"

    def test_fleet_command_with_systolic_backend(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "--num-envs", "4", "--rounds", "2", "--steps", "30",
            "--eval-steps", "10", "--seed", "1",
            "--envs", "indoor-apartment", "outdoor-forest",
            "--backend", "systolic",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend 'systolic'" in out
        assert "kcycles/env-step measured" in out
        assert "action agreement" in out
