"""Deterministic fault injection, detection, and recovery (repro.faults).

Covers the plan/spec layer (parsing, validation, technology-derived
soft-error rates), the recovery primitives (checksums, bit flips), the
injector's determinism contract, and each integrated fault path:
weight-bus soft errors / drops / corruption, shard crash failover and
degradation, transient retries and stragglers, the agent's Q-value
guard, and sensor dropout with hold-last-frame recovery.  The
disabled-identity guarantee — no chaos plan, bitwise-identical runs —
is pinned both here (zero-rate plan) and in
``benchmarks/test_obs_overhead.py`` (seam fully off).
"""

import numpy as np
import pytest

from repro.backend import NumpyBackend, ShardedBackend, SystolicBackend
from repro.cli import main
from repro.faults import (
    DEFAULT_CHAOS_RATES,
    FAULTS,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    buffer_checksum,
    chaos,
    flip_raw_bit,
    parse_fault_spec,
    sram_flip_rate_from_technology,
)
from repro.fixedpoint.qformat import Q2_13, Q8_8
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.memory.technology import (
    DDR_DRAM,
    MemoryTechnology,
    ON_DIE_SRAM,
    STT_MRAM,
)
from repro.nn import build_network, scaled_drone_net_spec
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16


def make_net(seed: int = 0):
    return build_network(scaled_drone_net_spec(input_side=SIDE), seed=seed)


def make_agent(backend, seed: int = 0, **kwargs) -> QLearningAgent:
    return QLearningAgent(
        backend.network if hasattr(backend, "network") else make_net(seed),
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 200),
        seed=seed,
        batch_size=4,
        backend=backend,
        **kwargs,
    )


def make_fleet(num_envs: int = 4) -> VecNavigationEnv:
    return VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=list(range(num_envs)),
        image_side=SIDE,
        max_episode_steps=100,
    )


@pytest.fixture(autouse=True)
def _seam_off_after():
    """No test may leak an active chaos seam into the next."""
    yield
    FAULTS.deactivate()


class TestFaultPlan:
    def test_defaults_inject_nothing(self):
        assert not FaultPlan().any_faults

    def test_any_faults_flags_each_knob(self):
        assert FaultPlan(sram_flip_rate=0.1).any_faults
        assert FaultPlan(shard_crashes=((5, 1),)).any_faults
        assert FaultPlan(raise_at_steps=(3,)).any_faults

    @pytest.mark.parametrize("field,value", [
        ("sram_flip_rate", 1.5),
        ("publish_drop_rate", -0.1),
        ("sensor_dropout_rate", 2.0),
    ])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: value})

    def test_policy_knobs_validated(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultPlan(straggler_factor=0.5)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            FaultPlan(retry_backoff=0.9)
        with pytest.raises(ValueError, match="crash schedule"):
            FaultPlan(shard_crashes=((0, 1),))
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(raise_at_steps=(0,))


class TestParseFaultSpec:
    def test_bare_seed_gets_default_mix(self):
        plan = parse_fault_spec("7")
        assert plan.seed == 7
        for field, rate in DEFAULT_CHAOS_RATES.items():
            assert getattr(plan, field) == rate
        assert plan.shard_crashes == ()

    def test_key_value_tokens(self):
        plan = parse_fault_spec(
            "seed=3,sram=0.2,drop=0.1,corrupt=0.05,transient=0.15,"
            "straggler=0.1,straggler-factor=8,sensor=0.02,"
            "retries=5,timeout=1000,backoff=3.0,health-timeout=9000"
        )
        assert plan.seed == 3
        assert plan.sram_flip_rate == 0.2
        assert plan.publish_drop_rate == 0.1
        assert plan.buffer_corruption_rate == 0.05
        assert plan.shard_transient_rate == 0.15
        assert plan.shard_straggler_rate == 0.1
        assert plan.straggler_factor == 8.0
        assert plan.sensor_dropout_rate == 0.02
        assert plan.max_retries == 5
        assert plan.retry_timeout_cycles == 1000
        assert plan.retry_backoff == 3.0
        assert plan.health_check_timeout_cycles == 9000

    def test_crash_and_raise_schedules(self):
        plan = parse_fault_spec("crash=1@30,crash=2@10,raise=12,raise=5")
        assert plan.shard_crashes == ((10, 2), (30, 1))
        assert plan.raise_at_steps == (5, 12)

    def test_sram_auto_derives_from_technology(self):
        plan = parse_fault_spec("sram=auto")
        assert plan.sram_flip_rate == pytest.approx(
            sram_flip_rate_from_technology()
        )
        assert 0.0 < plan.sram_flip_rate < 1.0

    @pytest.mark.parametrize("bad", [
        "", "bogus", "crash=1", "unknown=3", "sram=nope",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestSoftErrorRates:
    def test_mram_storage_is_most_upset_immune(self):
        # The paper's selling point carries to fault modelling: magnetic
        # storage is SEU-immune relative to volatile charge storage.
        assert (
            STT_MRAM.soft_error_rate_per_bit_s
            < DDR_DRAM.soft_error_rate_per_bit_s
            < ON_DIE_SRAM.soft_error_rate_per_bit_s
        )

    def test_rate_scales_and_clamps(self):
        base = sram_flip_rate_from_technology(bits=1 << 20)
        assert sram_flip_rate_from_technology(bits=1 << 21) == pytest.approx(
            min(2 * base, 1.0)
        )
        assert sram_flip_rate_from_technology(acceleration=1e30) == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="soft error rate"):
            MemoryTechnology(
                name="bad", read_latency_s=1e-9, write_latency_s=1e-9,
                read_energy_per_bit_j=1e-12, write_energy_per_bit_j=1e-12,
                non_volatile=False, soft_error_rate_per_bit_s=-1e-18,
            )

    def test_invalid_exposure_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            sram_flip_rate_from_technology(bits=0)


class TestRecoveryPrimitives:
    def test_flip_raw_bit_roundtrips(self):
        for raw in (0, 1, -1, 1000, Q2_13.max_raw, Q2_13.min_raw):
            for bit in (0, 7, 15):
                flipped = flip_raw_bit(raw, bit, Q2_13)
                assert flipped != raw
                assert flip_raw_bit(flipped, bit, Q2_13) == raw
                assert Q2_13.min_raw <= flipped <= Q2_13.max_raw

    def test_flip_sign_bit_goes_negative(self):
        assert flip_raw_bit(0, Q2_13.total_bits - 1, Q2_13) < 0

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_raw_bit(0, 16, Q2_13)
        with pytest.raises(ValueError):
            flip_raw_bit(0, -1, Q8_8)

    def test_checksum_detects_single_element_change(self):
        buffers = {"a": np.arange(6, dtype=np.float64).reshape(2, 3)}
        before = buffer_checksum(buffers)
        buffers["a"][1, 2] += 1e-9
        assert buffer_checksum(buffers) != before

    def test_checksum_is_name_order_insensitive(self):
        a = np.arange(4.0)
        b = np.ones(3)
        assert buffer_checksum({"x": a, "y": b}) == buffer_checksum(
            {"y": b, "x": a}
        )
        assert buffer_checksum({}) == 0


class TestInjectorDeterminism:
    def test_decisions_depend_only_on_plan_and_counters(self):
        plan = FaultPlan(
            seed=5, sram_flip_rate=0.3, publish_drop_rate=0.3,
            shard_transient_rate=0.3, shard_straggler_rate=0.3,
            sensor_dropout_rate=0.3,
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        # Interleave unrelated draws on b: decisions keyed by explicit
        # counters must not shift.
        for update in range(1, 30):
            b.sensor_dropout(0)
            assert a.drop_publish(update) == b.drop_publish(update)
            assert (a.sram_flip_rng(update) is None) == (
                b.sram_flip_rng(update) is None
            )
            assert a.transient_attempts(update, 2) == b.transient_attempts(
                update, 2
            )
            assert a.straggler_factor(update, 1) == b.straggler_factor(
                update, 1
            )

    def test_zero_rates_never_fire(self):
        inj = FaultInjector(FaultPlan(seed=0))
        for update in range(1, 100):
            assert inj.sram_flip_rng(update) is None
            assert not inj.drop_publish(update)
            assert inj.corrupt_rng(update) is None
            assert inj.transient_attempts(update, 0) == 0
            assert inj.straggler_factor(update, 0) == 1.0
            assert not inj.sensor_dropout(update)

    def test_crash_schedule_fires_once(self):
        inj = FaultInjector(FaultPlan(seed=0, shard_crashes=((3, 1),)))
        inj.note_step(); inj.note_step()
        assert inj.due_crashes() == []
        inj.note_step()
        assert inj.due_crashes() == [1]
        inj.kill(1)
        assert inj.due_crashes() == []

    def test_ledger_counts_and_drains(self):
        inj = FaultInjector(FaultPlan(seed=0))
        rec = inj.record("sram.flip", target="W1")
        inj.mark_detected(rec)
        inj.mark_detected(rec)  # idempotent
        inj.mark_recovered(rec, "fixed")
        inj.add_recovery_cycles(100)
        inj.note_degraded(8)
        out = inj.drain_round()
        assert out == {
            "injected": 1, "detected": 1, "recovered": 1,
            "recovery_cycles": 100, "degraded_states": 8,
        }
        # Bucket reset; the event log survives the drain.
        assert inj.drain_round()["injected"] == 0
        log = inj.event_log()
        assert len(log) == 1 and log[0]["recovered"]
        assert log[0]["detail"] == "fixed"


class TestWeightBusFaults:
    def _agent(self, sync_every=2):
        net = make_net()
        return make_agent(
            SystolicBackend(net), sync_every=sync_every
        )

    def test_sram_flip_detected_and_rolled_back(self):
        agent = self._agent()
        with chaos(FaultPlan(seed=1, sram_flip_rate=1.0)) as inj:
            agent.weight_bus.publish()  # captures good, injects a flip
            before = agent.backend.weight_checksum()
            agent.weight_bus.publish()  # integrity check catches it
        events = inj.events
        assert events[0].kind == "sram.flip"
        assert events[0].detected and events[0].recovered
        assert "rollback" in events[0].detail
        # The rollback restored the checksum-good snapshot.
        assert agent.backend.weight_checksum() != before

    def test_publish_drop_caught_by_staleness_watchdog(self):
        agent = self._agent(sync_every=2)
        with chaos(FaultPlan(seed=1, publish_drop_rate=1.0)) as inj:
            agent.weight_bus.publish()              # staleness 1
            assert not agent.weight_bus.publish()   # due flip dropped
            assert agent.weight_bus.staleness == 2
            assert agent.weight_bus.publish()       # watchdog force-flips
            assert agent.weight_bus.staleness == 0
        drop = inj.events[0]
        assert drop.kind == "publish.drop"
        assert drop.detected and drop.recovered
        assert "watchdog" in drop.detail

    def test_flip_corruption_retries_then_recovers(self):
        agent = self._agent(sync_every=1)
        with chaos(
            FaultPlan(seed=2, buffer_corruption_rate=0.999)
        ) as inj:
            for _ in range(3):
                agent.weight_bus.publish()
        corrupt = [e for e in inj.events if e.kind == "buffer.corrupt"]
        assert corrupt
        assert all(e.detected and e.recovered for e in corrupt)
        assert inj.drain_round()["recovery_cycles"] > 0

    def test_numpy_backend_is_exempt(self):
        # No serving snapshot, nothing to corrupt: chaos publishes run
        # the plain path.
        agent = make_agent(NumpyBackend(make_net()))
        with chaos(FaultPlan(seed=1, sram_flip_rate=1.0)) as inj:
            agent.weight_bus.publish()
        assert inj.events == []


class TestShardFaults:
    def _sharded(self, policy="sample"):
        net = make_net()
        return ShardedBackend(net, shards=4, shard=policy), net

    def _states(self, n=4):
        rng = np.random.default_rng(0)
        return rng.uniform(0, 1, size=(n, 1, SIDE, SIDE))

    def test_zero_plan_is_bitwise_identical(self):
        backend, _ = self._sharded()
        states = self._states()
        base, base_cost = backend.forward_batch(states)
        with chaos(FaultPlan(seed=0)):
            chaotic, chaos_cost = backend.forward_batch(states)
        assert np.array_equal(base, chaotic)
        assert base_cost.total_cycles == chaos_cost.total_cycles
        assert base_cost.shard_cycles == chaos_cost.shard_cycles

    @pytest.mark.parametrize("policy", ["sample", "layer"])
    def test_crash_failover_is_bitwise_equal(self, policy):
        backend, _ = self._sharded(policy)
        states = self._states()
        base, _ = backend.forward_batch(states)
        with chaos(FaultPlan(seed=0, shard_crashes=((1, 2),))) as inj:
            inj.note_step()
            out, cost = backend.forward_batch(states)
        assert np.array_equal(base, out)
        crash = inj.events[0]
        assert crash.kind == "shard.crash" and crash.target == "shard2"
        assert crash.detected and crash.recovered
        assert "failover" in crash.detail
        # The dead array charges nothing after failover.
        assert cost.shard_cycles[2] == 0
        assert inj.drain_round()["recovery_cycles"] > 0

    def test_all_arrays_lost_degrades_to_numpy(self):
        backend, net = self._sharded()
        states = self._states()
        crashes = tuple((1, k) for k in range(4))
        with chaos(FaultPlan(seed=0, shard_crashes=crashes)) as inj:
            inj.note_step()
            out, cost = backend.forward_batch(states)
        # Degraded output is the float path, not the quantised arrays.
        assert np.array_equal(out, NumpyBackend(net).forward_batch(states)[0])
        assert cost.total_cycles == 0
        kinds = [e.kind for e in inj.events]
        assert kinds.count("shard.crash") == 4
        assert "fleet.degraded" in kinds
        assert inj.drain_round()["degraded_states"] == 4

    def test_transient_and_straggler_charge_recovery_cycles(self):
        backend, _ = self._sharded()
        states = self._states()
        base, base_cost = backend.forward_batch(states)
        plan = FaultPlan(
            seed=3, shard_transient_rate=1.0, shard_straggler_rate=1.0,
            straggler_factor=4.0,
        )
        with chaos(plan) as inj:
            out, cost = backend.forward_batch(states)
        # Transients and stragglers cost wall-clock (per-array and
        # critical-path) cycles, never correctness; the layer-work
        # totals are untouched.
        assert np.array_equal(base, out)
        assert cost.total_cycles == base_cost.total_cycles
        assert cost.critical_path_cycles > base_cost.critical_path_cycles
        assert all(
            chaos_k > base_k
            for chaos_k, base_k in zip(cost.shard_cycles, base_cost.shard_cycles)
        )
        kinds = {e.kind for e in inj.events}
        assert kinds == {"shard.transient", "shard.straggler"}
        assert all(e.detected and e.recovered for e in inj.events)
        assert inj.drain_round()["recovery_cycles"] > 0

    def test_train_cost_splits_over_survivors(self):
        backend, _ = self._sharded()
        alive_cost = backend.train_cost(8, (1, SIDE, SIDE))
        with chaos(FaultPlan(seed=0, shard_crashes=((1, 0),))) as inj:
            inj.note_step()
            backend.forward_batch(self._states())
            degraded = backend.train_cost(8, (1, SIDE, SIDE))
        assert degraded.shard_cycles[0] == 0
        assert degraded.critical_path_cycles >= alive_cost.critical_path_cycles


class TestQValueGuard:
    def test_poisoned_weights_detected_and_recovered(self):
        net = make_net()
        backend = SystolicBackend(net)
        agent = make_agent(backend)
        states = np.random.default_rng(0).uniform(
            0, 1, size=(4, 1, SIDE, SIDE)
        )
        with chaos(FaultPlan(seed=0, sram_flip_rate=1e-9)) as inj:
            # Poison the *served* value snapshots only; the float
            # staging weights stay clean, so a bus flip is a real
            # repair.  Huge weights rail every activation at the
            # quantization ceiling, which is exactly the signature the
            # guard's rail-pinned check looks for (NaNs would be
            # laundered into finite codes by the activation quantizer).
            for name in backend._value:
                backend._value[name][:] = 1e9
            q = agent.act_batch(states, greedy=True)
        assert q.shape == (4,)
        anomaly = [e for e in inj.events if e.kind == "qvalue.anomaly"]
        assert len(anomaly) == 1
        assert anomaly[0].detected and anomaly[0].recovered
        assert "recompute" in anomaly[0].detail
        # The served snapshot is clean again.
        assert np.isfinite(backend.forward_batch(states)[0]).all()

    def test_guard_blames_undetected_flip_first(self):
        net = make_net()
        backend = SystolicBackend(net)
        agent = make_agent(backend)
        states = np.random.default_rng(0).uniform(
            0, 1, size=(4, 1, SIDE, SIDE)
        )
        with chaos(FaultPlan(seed=0, sram_flip_rate=1e-9)) as inj:
            flip = inj.record("sram.flip", target="W1")
            for name in backend._value:
                backend._value[name][:] = 1e9
            agent.act_batch(states, greedy=True)
        # The guard attributes the anomaly to the known injected flip
        # rather than opening a fresh anomaly record.
        assert flip.detected and flip.recovered
        assert not any(e.kind == "qvalue.anomaly" for e in inj.events)


class TestVecEnvFaults:
    def test_scheduled_raise_is_recorded(self):
        vec_env = make_fleet(2)
        states = vec_env.reset()
        actions = np.zeros(2, dtype=int)
        with chaos(FaultPlan(seed=0, raise_at_steps=(2,))) as inj:
            vec_env.step(actions)
            with pytest.raises(FaultInjectionError, match="fleet step 2"):
                vec_env.step(actions)
        assert [e.kind for e in inj.events] == ["env.exception"]

    def test_sensor_dropout_holds_last_frame(self):
        vec_env = make_fleet(2)
        vec_env.reset()
        actions = np.zeros(2, dtype=int)
        with chaos(FaultPlan(seed=0, sensor_dropout_rate=1.0)) as inj:
            first, _, _, _ = vec_env.step(actions)
            second, _, _, _ = vec_env.step(actions)
        drops = [e for e in inj.events if e.kind == "sensor.dropout"]
        # Every env dropped on both steps; all detected by the
        # dead-frame check.
        assert len(drops) == 4
        assert all(e.detected for e in drops)
        # Step 1 had no history: dead zero frames served, not recovered.
        step1 = [e for e in drops if e.step == 1]
        assert not any(e.recovered for e in step1)
        assert not first.any()
        # Step 2 recovered by holding the last served frame.
        step2 = [e for e in drops if e.step == 2]
        assert all(e.recovered for e in step2)
        assert np.array_equal(second, first)

    def test_disabled_seam_is_bitwise_identical(self):
        def run():
            vec_env = make_fleet(2)
            states = [vec_env.reset()]
            for _ in range(5):
                states.append(vec_env.step(np.zeros(2, dtype=int))[0])
            return np.stack(states)

        plain = run()
        with chaos(FaultPlan(seed=9)):  # zero rates: nothing may fire
            under_seam = run()
        assert np.array_equal(plain, under_seam)


class TestFleetChaosRun:
    def _run(self, plan=None, num_envs=4):
        agent = make_agent(
            ShardedBackend(make_net(), shards=4, shard="sample"),
            sync_every=4,
        )
        scheduler = FleetScheduler(
            agent, make_fleet(num_envs), train_every=2, eval_steps=5
        )
        if plan is None:
            return scheduler.run(rounds=2, steps_per_round=20)
        with chaos(plan):
            return scheduler.run(rounds=2, steps_per_round=20)

    def test_event_log_replays_identically(self):
        plan = parse_fault_spec(
            "seed=7,crash=1@15,transient=0.1,straggler=0.1,sensor=0.02"
        )
        a = self._run(plan)
        b = self._run(plan)
        assert a.fault_events == b.fault_events
        assert [
            (r.faults_injected, r.faults_detected, r.faults_recovered,
             r.fault_recovery_cycles, r.active_shards)
            for r in a.rounds
        ] == [
            (r.faults_injected, r.faults_detected, r.faults_recovered,
             r.fault_recovery_cycles, r.active_shards)
            for r in b.rounds
        ]

    def test_crash_reports_failover_metrics(self):
        report = self._run(parse_fault_spec("seed=7,crash=1@15"))
        assert report.availability < 1.0
        assert report.total_faults_recovered >= 1
        assert report.mttr_rounds >= 1.0
        assert report.rounds[-1].active_shards == 3
        assert any(
            e["kind"] == "shard.crash" for e in report.fault_events
        )

    def test_fault_free_run_reports_trivial_metrics(self):
        report = self._run()
        assert report.availability == 1.0
        assert report.mttr_rounds == 0.0
        assert report.degraded_fraction == 0.0
        assert report.fault_events == []
        assert all(r.faults_injected == 0 for r in report.rounds)
        assert all(r.active_shards == 4 for r in report.rounds)


class TestTrafficFaultFields:
    def test_projection_carries_and_derates(self):
        from repro.nn import modified_alexnet_spec
        from repro.perf import TrafficSimulator, project_fleet_load

        sim = TrafficSimulator(modified_alexnet_spec(), config_by_name("L4"))
        proj = project_fleet_load(
            sim, num_envs=4, batch_size=16, steps_per_second=100.0,
            train_iterations_per_second=1.0,
            critical_path_cycles_per_step=10_000.0,
            availability=0.75, degraded_fraction=0.1,
        )
        assert proj.availability == 0.75
        assert proj.degraded_fraction == 0.1
        assert proj.available_sustainable_steps_per_second == pytest.approx(
            proj.sharded_sustainable_steps_per_second * 0.75
        )
        # Unmeasured bound stays unbounded, availability or not.
        unmeasured = project_fleet_load(
            sim, num_envs=4, batch_size=16, steps_per_second=100.0,
            train_iterations_per_second=1.0, availability=0.5,
        )
        assert unmeasured.available_sustainable_steps_per_second == float(
            "inf"
        )

    @pytest.mark.parametrize("kwargs", [
        {"availability": 1.5},
        {"availability": -0.1},
        {"degraded_fraction": 2.0},
    ])
    def test_fractions_validated(self, kwargs):
        from repro.nn import modified_alexnet_spec
        from repro.perf import TrafficSimulator, project_fleet_load

        sim = TrafficSimulator(modified_alexnet_spec(), config_by_name("L4"))
        with pytest.raises(ValueError, match="fraction"):
            project_fleet_load(
                sim, num_envs=4, batch_size=16, steps_per_second=100.0,
                train_iterations_per_second=1.0, **kwargs,
            )


class TestCLIValidation:
    @pytest.mark.parametrize("flag", [
        "--shards", "--sync-every", "--pipeline-chunk",
    ])
    def test_counts_must_be_at_least_one(self, flag, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", flag, "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_bad_faults_spec_is_an_error(self, capsys):
        with pytest.raises(SystemExit, match="bad --faults"):
            main(["fleet", "--faults", "nonsense"])

    def test_chaos_smoke_run_reports_faults(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "chaos.json"
        main([
            "fleet", "--backend", "sharded", "--shards", "4",
            "--num-envs", "4", "--rounds", "1", "--steps", "20",
            "--eval-steps", "5", "--sync-every", "4",
            "--faults", "seed=7,crash=1@10,transient=0.1",
            "--json", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "fault injection:" in out
        assert "shard.crash" in out
        payload = json.loads(out_path.read_text())
        faults = payload["fleet"]["faults"]
        assert faults["injected"] >= 1
        assert faults["availability"] < 1.0
        assert any(
            e["kind"] == "shard.crash" for e in faults["events"]
        )
