"""Tests for the replay buffer and transfer configurations."""

import numpy as np
import pytest

from repro.env.episode import Transition
from repro.nn import build_network
from repro.rl import ReplayBuffer, TRANSFER_CONFIGS, TransferConfig, config_by_name


def make_transition(i, done=False):
    state = np.full((1, 2, 2), float(i))
    return Transition(state, i % 5, float(i), state + 1, done)


class TestReplayBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0)

    def test_push_grows_until_capacity(self):
        buf = ReplayBuffer(3)
        for i in range(5):
            buf.push(make_transition(i))
        assert len(buf) == 3

    def test_eviction_is_fifo(self):
        buf = ReplayBuffer(2)
        for i in range(3):
            buf.push(make_transition(i))
        states, *_ = buf.sample(2, np.random.default_rng(0))
        stored = sorted(s[0, 0, 0] for s in states)
        assert stored == [1.0, 2.0]

    def test_sample_shapes(self, rng):
        buf = ReplayBuffer(100)
        for i in range(20):
            buf.push(make_transition(i, done=(i % 4 == 0)))
        states, actions, rewards, next_states, dones = buf.sample(8, rng)
        assert states.shape == (8, 1, 2, 2)
        assert actions.shape == rewards.shape == dones.shape == (8,)
        assert next_states.shape == (8, 1, 2, 2)
        assert actions.dtype == np.int64
        assert set(np.unique(dones)).issubset({0.0, 1.0})

    def test_sample_without_replacement(self, rng):
        buf = ReplayBuffer(10)
        for i in range(10):
            buf.push(make_transition(i))
        states, *_ = buf.sample(10, rng)
        values = sorted(s[0, 0, 0] for s in states)
        assert values == [float(i) for i in range(10)]

    def test_sample_too_large_raises(self, rng):
        buf = ReplayBuffer(10)
        buf.push(make_transition(0))
        with pytest.raises(ValueError):
            buf.sample(2, rng)

    def test_sample_nonpositive_raises(self, rng):
        buf = ReplayBuffer(10)
        buf.push(make_transition(0))
        with pytest.raises(ValueError):
            buf.sample(0, rng)

    def test_clear(self):
        buf = ReplayBuffer(10)
        buf.push(make_transition(0))
        buf.clear()
        assert len(buf) == 0


class TestTransferConfig:
    def test_paper_configs(self):
        names = [c.name for c in TRANSFER_CONFIGS]
        assert names == ["L2", "L3", "L4", "E2E"]

    def test_lookup_case_insensitive(self):
        assert config_by_name("l3").last_k_fc == 3

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            config_by_name("L9")

    def test_e2e_flag(self):
        assert config_by_name("E2E").is_end_to_end
        assert not config_by_name("L2").is_end_to_end

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TransferConfig("bad", last_k_fc=0)

    @pytest.mark.parametrize(
        "name,pct",
        [("L2", 3.743), ("L3", 11.21), ("L4", 26.14), ("E2E", 100.0)],
    )
    def test_trainable_fraction_fig3b(self, alexnet_spec, name, pct):
        config = config_by_name(name)
        assert 100 * config.trainable_fraction(alexnet_spec) == pytest.approx(
            pct, abs=0.01
        )

    def test_trainable_fc_names(self, alexnet_spec):
        assert config_by_name("L3").trainable_fc_names(alexnet_spec) == (
            "FC3",
            "FC4",
            "FC5",
        )

    def test_e2e_trains_everything(self, alexnet_spec):
        names = config_by_name("E2E").trainable_fc_names(alexnet_spec)
        assert len(names) == 10  # 5 conv + 5 fc

    def test_first_trainable_layer_on_network(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        for k in (2, 3, 4):
            config = config_by_name(f"L{k}")
            idx = config.first_trainable_layer(net)
            trained = [
                l.name for l in net.layers[idx:] if l.parameters()
            ]
            assert trained == [f"FC{6 - k + i}" for i in range(k)] or trained == [
                f"FC{5 - k + 1 + i}" for i in range(k)
            ]
            assert len(trained) == k

    def test_e2e_first_trainable_is_zero(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        assert config_by_name("E2E").first_trainable_layer(net) == 0
