"""Tests pinning the reproduction's fidelity metrics.

These are the repository's headline quality numbers: if a refactor
degrades the cost model, these tests move first.
"""

import pytest

from repro.analysis.compare import CellError, fidelity_summary, table_errors


class TestCellError:
    def test_relative_error(self):
        cell = CellError("FC1", "latency", model=11.0, paper=10.0)
        assert cell.relative_error == pytest.approx(0.1)
        assert cell.abs_pct_error == pytest.approx(10.0)

    def test_zero_paper_rejected(self):
        cell = CellError("X", "latency", model=1.0, paper=0.0)
        with pytest.raises(ValueError):
            _ = cell.relative_error


class TestTableErrors:
    def test_forward_covers_nine_layers(self):
        errors = table_errors("forward")
        layers = {e.layer for e in errors}
        assert len(layers) == 9  # FC5 skipped (sub-microsecond)
        assert "FC5" not in layers

    def test_backward_covers_nine_layers(self):
        errors = table_errors("backward")
        assert {e.layer for e in errors} == {
            "FC4", "FC3", "FC2", "FC1",
            "CONV1", "CONV2", "CONV3", "CONV4", "CONV5",
        }

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            table_errors("sideways")

    def test_every_cell_within_50pct(self):
        for error in table_errors("forward") + table_errors("backward"):
            assert error.abs_pct_error < 50.0, (error.layer, error.quantity)


class TestFidelitySummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return fidelity_summary()

    def test_totals_tight(self, summary):
        """The repository's headline fidelity: all four Fig. 12 totals
        within 10 %, latencies within 5 %."""
        assert summary["forward_total_latency_err_pct"] < 5.0
        assert summary["backward_total_latency_err_pct"] < 5.0
        assert summary["forward_total_energy_err_pct"] < 10.0
        assert summary["backward_total_energy_err_pct"] < 10.0

    def test_per_cell_mape_under_15pct(self, summary):
        assert summary["per_cell_mape_pct"] < 15.0

    def test_worst_cell_under_50pct(self, summary):
        assert summary["worst_cell_err_pct"] < 50.0
