"""Fleet scheduler, fleet training runner, and the perf.traffic
projection of measured fleet load."""

import numpy as np
import pytest

from repro.cli import main
from repro.fleet import (
    FleetScheduler,
    VecNavigationEnv,
    train_agent_fleet,
)
from repro.nn import modified_alexnet_spec
from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.perf import TrafficSimulator, project_fleet_load
from repro.rl import config_by_name, online_adapt, meta_train
from repro.rl.agent import EpsilonSchedule, QLearningAgent

SIDE = 16


def make_agent(seed: int = 0, config: str = "L4") -> QLearningAgent:
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=seed)
    return QLearningAgent(
        network,
        config=config_by_name(config),
        epsilon=EpsilonSchedule(1.0, 0.1, 200),
        seed=seed,
        batch_size=4,
    )


def make_fleet(num_envs: int = 6) -> VecNavigationEnv:
    return VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=list(range(num_envs)),
        image_side=SIDE,
        max_episode_steps=100,
    )


class TestFleetRunner:
    def test_trains_and_reports_per_env(self):
        agent = make_agent()
        vec_env = make_fleet()
        result = train_agent_fleet(agent, vec_env, iterations=30)
        assert result.num_envs == 6
        assert result.total_env_steps == 180
        assert len(result.curves) == 6
        assert all(len(c.reward_curve) == 30 for c in result.curves)
        assert result.train_updates > 0
        assert np.isfinite(result.loss_curve).all()
        assert len(result.safe_flight_distances) == 6
        assert result.steps_per_second > 0
        assert set(result.environments) == {
            "indoor-apartment", "outdoor-forest"
        }
        assert result.final_state  # weights escaped

    def test_batch_scale_matches_sample_throughput(self):
        agent = make_agent()
        vec_env = make_fleet()
        train_agent_fleet(agent, vec_env, iterations=20, train_every=2)
        # One scaled update per training step: batch 4 * 6 envs = 24.
        assert agent.train_count > 0

    def test_validation(self):
        agent = make_agent()
        vec_env = make_fleet(2)
        with pytest.raises(ValueError):
            train_agent_fleet(agent, vec_env, iterations=0)
        with pytest.raises(ValueError):
            train_agent_fleet(agent, vec_env, iterations=5, train_every=0)
        with pytest.raises(ValueError):
            train_agent_fleet(agent, vec_env, iterations=5, batch_scale=0)

    def test_train_batch_above_replay_capacity_rejected(self):
        agent = make_agent()
        vec_env = make_fleet(2)
        oversized = agent.replay.capacity // agent.batch_size + 1
        with pytest.raises(ValueError, match="replay capacity"):
            train_agent_fleet(
                agent, vec_env, iterations=5, batch_scale=oversized
            )
        with pytest.raises(ValueError, match="replay capacity"):
            FleetScheduler(agent, vec_env, batch_scale=oversized)


class TestFleetScheduler:
    def test_rounds_record_throughput_and_sfd(self):
        agent = make_agent()
        vec_env = make_fleet()
        scheduler = FleetScheduler(
            agent, vec_env, train_every=2, extra_train_updates=2, eval_steps=10
        )
        report = scheduler.run(rounds=2, steps_per_round=25)
        assert len(report.rounds) == 2
        for stats in report.rounds:
            assert stats.env_steps == (25 + 10) * 6
            assert stats.steps_per_second > 0
            assert stats.eval_sfd_by_class.keys() == {
                "indoor-apartment", "outdoor-forest"
            }
            assert all(v >= 0 for v in stats.eval_sfd_by_class.values())
        assert report.total_env_steps == 2 * 35 * 6
        assert report.total_train_updates > 0
        assert report.steps_per_second > 0
        assert report.episodes_per_second >= 0
        assert set(report.sfd_by_class) == {
            "indoor-apartment", "outdoor-forest"
        }

    def test_validation(self):
        agent = make_agent()
        vec_env = make_fleet(2)
        with pytest.raises(ValueError):
            FleetScheduler(agent, vec_env, train_every=0)
        with pytest.raises(ValueError):
            FleetScheduler(agent, vec_env, eval_steps=-1)
        with pytest.raises(ValueError):
            FleetScheduler(agent, vec_env, pipeline_chunk=0)
        scheduler = FleetScheduler(agent, vec_env)
        with pytest.raises(ValueError):
            scheduler.run(rounds=0, steps_per_round=5)

    def test_pipeline_measures_overlap(self):
        """Chunked rollout/train interleaving reports the overlap a
        two-stage pipeline would hide, once training actually runs."""
        agent = make_agent()
        scheduler = FleetScheduler(agent, make_fleet(), train_every=2)
        report = scheduler.run(rounds=2, steps_per_round=30)
        assert report.total_train_updates > 0
        assert 0.0 < report.pipeline_overlap_fraction < 1.0
        for stats in report.rounds:
            assert 0.0 <= stats.pipeline_overlap_fraction < 1.0
        # Chunking must not change the step/episode accounting.
        assert report.total_env_steps == 2 * 30 * 6

    def test_pipeline_chunk_size_preserves_update_cadence(self):
        """Once replay is warm, chunk size only moves *when* in the
        round updates run, never how many."""
        reports = []
        for chunk in (None, 10):
            agent = make_agent()
            scheduler = FleetScheduler(
                agent, make_fleet(), train_every=2, pipeline_chunk=chunk
            )
            # Warm-up round fills replay (its updates may differ by the
            # chunk boundary at which replay first holds a batch).
            scheduler.run(rounds=1, steps_per_round=10)
            reports.append(scheduler.run(rounds=1, steps_per_round=30))
        assert (
            reports[0].total_train_updates == reports[1].total_train_updates > 0
        )

    def test_mid_round_exception_cannot_leak_costs(self):
        """The try/finally drain: a rollout crash must not leave this
        round's partial StepCosts — inference *or* on-array training —
        (or staleness) for the next run."""
        from repro.backend import SystolicBackend

        network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
        agent = QLearningAgent(
            network,
            config=config_by_name("L4"),
            epsilon=EpsilonSchedule(0.0, 0.0, 1),  # always greedy: every
            seed=0,                                # step records a cost
            batch_size=4,
            backend=SystolicBackend(network),
            train_on_array=True,
        )
        vec_env = make_fleet(4)
        scheduler = FleetScheduler(agent, vec_env, train_every=2)
        calls = {"n": 0}
        original_step = vec_env.step

        def crashing_step(actions):
            calls["n"] += 1
            if calls["n"] == 8:
                # Crash after replay warmed up enough to have trained,
                # so the training ledger is non-trivially non-empty.
                raise RuntimeError("env crashed mid-round")
            return original_step(actions)

        vec_env.step = crashing_step
        with pytest.raises(RuntimeError, match="mid-round"):
            scheduler.run(rounds=2, steps_per_round=10)
        # The crashed round's forwards and training charges were
        # drained, not left pending.
        assert agent.drain_inference_cost().states == 0
        assert agent.drain_training_cost().total_cycles == 0
        assert agent.weight_bus.drain_serve_staleness() == 0.0
        vec_env.step = original_step
        report = scheduler.run(rounds=1, steps_per_round=10)
        # Round 0 of the new run carries exactly its own states: 10
        # greedy fleet steps over 4 envs.
        assert report.rounds[0].inference_states == 10 * 4
        # ... and exactly its own training charges.
        assert report.rounds[0].training_cycles == (
            report.rounds[0].train_updates
            * agent.backend.train_cost(
                scheduler.train_batch, (1, SIDE, SIDE),
                first_trainable=agent.first_trainable,
            ).total_cycles
        )

    def test_injected_exception_cannot_leak_costs_or_ledgers(self):
        """The same try/finally guarantee, driven by the fault injector
        instead of a monkeypatched env: a scheduled FaultInjectionError
        out of ``vec_env.step`` drains this round's partial costs *and*
        the injector's round bucket, and a clean re-run still starts
        from zero."""
        from repro.backend import SystolicBackend
        from repro.faults import FAULTS, FaultInjectionError, FaultPlan

        network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
        agent = QLearningAgent(
            network,
            config=config_by_name("L4"),
            epsilon=EpsilonSchedule(0.0, 0.0, 1),  # greedy: every step
            seed=0,                                # records a cost
            batch_size=4,
            backend=SystolicBackend(network),
            train_on_array=True,
        )
        scheduler = FleetScheduler(agent, make_fleet(4), train_every=2)
        injector = FAULTS.activate(FaultPlan(seed=0, raise_at_steps=(8,)))
        try:
            with pytest.raises(FaultInjectionError, match="fleet step 8"):
                scheduler.run(rounds=2, steps_per_round=10)
            # The crash itself was recorded before the raise...
            events = injector.event_log()
            assert [e["kind"] for e in events] == ["env.exception"]
            # ... and the finally drain left no partial ledgers behind:
            # neither agent costs nor an injector round bucket.
            assert agent.drain_inference_cost().states == 0
            assert agent.drain_training_cost().total_cycles == 0
            assert agent.weight_bus.drain_serve_staleness() == 0.0
            drained = injector.drain_round()
            assert drained["injected"] == 0 and drained["detected"] == 0
        finally:
            FAULTS.deactivate()
        report = scheduler.run(rounds=1, steps_per_round=10)
        # Round 0 of the clean re-run carries exactly its own states.
        assert report.rounds[0].inference_states == 10 * 4
        assert report.rounds[0].faults_injected == 0
        assert report.fault_events == []

    def test_train_on_array_rounds_carry_training_budget(self):
        """--train-on-array threading: rounds report training cycles,
        the report aggregates them, and the projection derives the
        combined rollout+training utilization."""
        from repro.backend import SystolicBackend

        network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
        agent = QLearningAgent(
            network,
            config=config_by_name("L4"),
            epsilon=EpsilonSchedule(1.0, 0.1, 200),
            seed=0,
            batch_size=4,
            backend=SystolicBackend(network),
            train_on_array=True,
        )
        scheduler = FleetScheduler(agent, make_fleet(4), train_every=2)
        report = scheduler.run(rounds=2, steps_per_round=20)
        assert report.total_train_updates > 0
        per_update = agent.backend.train_cost(
            scheduler.train_batch, (1, SIDE, SIDE),
            first_trainable=agent.first_trainable,
        ).total_cycles
        for stats in report.rounds:
            assert stats.training_cycles == stats.train_updates * per_update
            assert stats.training_macs > 0
            assert stats.training_array_seconds == pytest.approx(
                stats.training_cycles / 1e9
            )
            assert stats.training_critical_path_cycles == stats.training_cycles
        assert report.training_cycles_per_update == pytest.approx(per_update)
        projection = scheduler.project_load(report)
        assert projection.training_cycles_per_update == pytest.approx(per_update)
        assert projection.training_update_latency_s == pytest.approx(
            per_update / 1e9
        )
        assert (
            projection.training_sustainable_updates_per_second < float("inf")
        )
        assert projection.combined_array_utilization == pytest.approx(
            projection.inference_utilization
            + projection.training_array_utilization
        )
        assert projection.training_array_utilization > 0

    def test_off_device_training_keeps_zero_budget(self):
        """Without --train-on-array the training ledger stays empty and
        the projection's training side is unbounded (off-device)."""
        agent = make_agent()
        scheduler = FleetScheduler(agent, make_fleet(4), train_every=2)
        report = scheduler.run(rounds=1, steps_per_round=20)
        assert report.total_training_cycles == 0
        assert report.training_cycles_per_update == 0.0
        projection = scheduler.project_load(report)
        assert projection.training_cycles_per_update == 0.0
        assert projection.training_sustainable_updates_per_second == float(
            "inf"
        )
        assert projection.combined_array_utilization == pytest.approx(
            projection.inference_utilization
        )

    def test_sharded_training_threads_critical_path(self):
        """Sharded --train-on-array: the training critical path (data
        parallel + gradient all-reduce) is below the serial work and
        feeds the K-array concurrent utilization."""
        from repro.backend import ShardedBackend

        network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
        agent = QLearningAgent(
            network,
            config=config_by_name("L4"),
            epsilon=EpsilonSchedule(1.0, 0.1, 200),
            seed=0,
            batch_size=4,
            backend=ShardedBackend(network, shards=4, shard="sample"),
            train_on_array=True,
        )
        scheduler = FleetScheduler(agent, make_fleet(4), train_every=2)
        report = scheduler.run(rounds=1, steps_per_round=30)
        assert report.total_train_updates > 0
        assert (
            0
            < report.total_training_critical_path_cycles
            < report.total_training_cycles
        )
        projection = scheduler.project_load(report)
        assert projection.training_critical_path_cycles_per_update == (
            pytest.approx(report.training_critical_path_cycles_per_update)
        )
        assert projection.sharded_combined_utilization > (
            projection.sharded_utilization
        )

    def test_project_load_builds_projection(self):
        agent = make_agent(config="E2E")
        vec_env = make_fleet(4)
        scheduler = FleetScheduler(agent, vec_env, train_every=2)
        report = scheduler.run(rounds=1, steps_per_round=20)
        projection = scheduler.project_load(report)
        assert projection.config_name == "E2E"
        assert projection.num_envs == 4
        assert projection.batch_size == agent.batch_size * 4
        assert projection.accelerator_fps > 0
        assert projection.utilization > 0
        assert projection.traffic.total_bits > 0
        # E2E writes frozen weights back to NVM every update.
        assert projection.traffic.nvm_write_bits > 0
        assert projection.endurance.lifetime_days < float("inf")
        assert projection.energy_watts > 0


class TestObservationCosting:
    def test_observation_batch_costs_on_a_float_systolic_backend(self):
        """The post-hoc costing path: cost the scheduler's current
        observation batch directly on a float-numerics SystolicBackend
        (the migration target of the removed cost_observation_batch)."""
        from repro.backend import SystolicBackend

        agent = make_agent()
        vec_env = make_fleet()
        scheduler = FleetScheduler(agent, vec_env, eval_steps=0)
        states = scheduler.observations
        assert states.shape[0] == 6
        q_values, cost = SystolicBackend(
            agent.network, quantized=False
        ).forward_batch(states)
        assert q_values.shape == (6, 5)
        assert np.allclose(q_values, agent.network.predict(states))
        # Every conv/dense layer charged cycles; totals are consistent.
        assert set(cost.layer_cycles) == {
            l.name for l in agent.network.layers if l.parameters()
        }
        assert all(v > 0 for v in cost.layer_cycles.values())
        assert cost.total_cycles == sum(cost.layer_cycles.values())
        assert cost.array_seconds() == pytest.approx(cost.total_cycles / 1e9)

    def test_deprecated_wrapper_is_gone(self):
        assert not hasattr(FleetScheduler, "cost_observation_batch")
        import repro.fleet.scheduler as scheduler_module

        assert not hasattr(scheduler_module, "FleetObservationCost")


class TestProjectFleetLoad:
    def test_rates_and_validation(self):
        sim = TrafficSimulator(modified_alexnet_spec(), config_by_name("L4"))
        projection = project_fleet_load(
            sim,
            num_envs=16,
            batch_size=128,
            steps_per_second=2000.0,
            train_iterations_per_second=15.0,
        )
        assert projection.bits_per_second == (
            projection.traffic.total_bits * 15.0
        )
        assert projection.realtime_feasible == (projection.utilization <= 1.0)
        with pytest.raises(ValueError):
            project_fleet_load(
                sim, num_envs=0, batch_size=8,
                steps_per_second=1.0, train_iterations_per_second=1.0,
            )
        with pytest.raises(ValueError):
            project_fleet_load(
                sim, num_envs=1, batch_size=8,
                steps_per_second=0.0, train_iterations_per_second=1.0,
            )

    def test_sharded_fields_project_k_array_rates(self):
        sim = TrafficSimulator(modified_alexnet_spec(), config_by_name("L4"))
        projection = project_fleet_load(
            sim,
            num_envs=16,
            batch_size=128,
            steps_per_second=2000.0,
            train_iterations_per_second=15.0,
            inference_cycles_per_step=36000.0,
            shards=4,
            critical_path_cycles_per_step=9500.0,
        )
        assert projection.shards == 4
        assert projection.critical_path_step_latency_s == pytest.approx(9.5e-6)
        assert projection.sharded_sustainable_steps_per_second == pytest.approx(
            1.0 / 9.5e-6
        )
        assert projection.sharding_speedup == pytest.approx(36000.0 / 9500.0)
        assert projection.scaling_efficiency == pytest.approx(
            36000.0 / 9500.0 / 4
        )
        assert projection.sharded_utilization == pytest.approx(2000.0 * 9.5e-6)
        # Unsharded projections expose the single-array view.
        plain = project_fleet_load(
            sim, num_envs=16, batch_size=128,
            steps_per_second=2000.0, train_iterations_per_second=15.0,
        )
        assert plain.shards == 1
        assert plain.sharding_speedup == 1.0
        assert plain.sharded_sustainable_steps_per_second == float("inf")
        with pytest.raises(ValueError):
            project_fleet_load(
                sim, num_envs=16, batch_size=128, steps_per_second=2000.0,
                train_iterations_per_second=15.0, shards=0,
            )
        with pytest.raises(ValueError):
            project_fleet_load(
                sim, num_envs=16, batch_size=128, steps_per_second=2000.0,
                train_iterations_per_second=15.0,
                critical_path_cycles_per_step=-1.0,
            )
        with pytest.raises(ValueError):
            project_fleet_load(
                sim, num_envs=16, batch_size=128, steps_per_second=2000.0,
                train_iterations_per_second=15.0,
                training_cycles_per_update=-1.0,
            )

    def test_training_fields_derive_combined_utilization(self):
        sim = TrafficSimulator(modified_alexnet_spec(), config_by_name("L4"))
        projection = project_fleet_load(
            sim,
            num_envs=16,
            batch_size=128,
            steps_per_second=2000.0,
            train_iterations_per_second=15.0,
            inference_cycles_per_step=36000.0,
            training_cycles_per_update=2_000_000.0,
            shards=4,
            critical_path_cycles_per_step=9500.0,
            training_critical_path_cycles_per_update=600_000.0,
        )
        assert projection.training_update_latency_s == pytest.approx(2e-3)
        assert projection.training_sustainable_updates_per_second == (
            pytest.approx(500.0)
        )
        assert projection.training_array_utilization == pytest.approx(
            15.0 * 2e-3
        )
        assert projection.combined_array_utilization == pytest.approx(
            2000.0 * 3.6e-5 + 15.0 * 2e-3
        )
        assert projection.combined_realtime_feasible == (
            projection.combined_array_utilization <= 1.0
        )
        assert projection.sharded_combined_utilization == pytest.approx(
            2000.0 * 9.5e-6 + 15.0 * 6e-4
        )


class TestExperimentFleetPath:
    def test_online_adapt_with_fleet_matches_interface(self):
        meta = meta_train("meta-indoor", iterations=60, seed=0, image_side=SIDE)
        result = online_adapt(
            meta.final_state,
            "indoor-apartment",
            config_by_name("L4"),
            iterations=40,
            seed=1,
            image_side=SIDE,
            num_envs=3,
        )
        assert result.environment == "indoor-apartment"
        assert result.iterations == 40
        assert len(result.curves.reward_curve) == 40
        assert np.isfinite(result.final_reward)
        assert result.safe_flight_distance >= 0.0
        assert result.crash_count >= 0
        assert result.final_state

    def test_meta_train_fleet_path(self):
        result = meta_train(
            "meta-outdoor", iterations=30, seed=2, image_side=SIDE, num_envs=2
        )
        assert result.config_name == "E2E"
        assert len(result.curves.reward_curve) == 30


class TestFleetCli:
    def test_fleet_command_prints_report(self, capsys):
        assert main([
            "fleet", "--num-envs", "4", "--rounds", "1", "--steps", "30",
            "--eval-steps", "10", "--seed", "1",
            "--envs", "indoor-apartment", "outdoor-forest",
        ]) == 0
        out = capsys.readouterr().out
        assert "Steps/s" in out
        assert "Environment class" in out
        assert "endurance" in out

    def test_fleet_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fleet"])
        assert args.num_envs == 16
        assert args.seed == 0
        assert args.config == "L4"

    def test_rl_seed_flag_threads_through(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["rl", "--seed", "5"])
        assert args.seed == 5
