"""Tests for the battery / flight-envelope model."""

import pytest

from repro.nn import modified_alexnet_spec
from repro.perf import BatteryModel, LayerCostModel, TrainingIterationModel
from repro.rl import config_by_name


@pytest.fixture(scope="module")
def iterations():
    spec = modified_alexnet_spec()
    out = {}
    for name in ("L3", "E2E"):
        model = LayerCostModel(spec, config_by_name(name))
        out[name] = TrainingIterationModel(model).iteration_cost(4)
    return out


class TestBatteryModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity_wh=0.0)
        with pytest.raises(ValueError):
            BatteryModel(hover_power_w=-1.0)
        with pytest.raises(ValueError):
            BatteryModel(drag_w_per_m2_s2=-0.1)

    def test_locomotion_power_grows_with_speed(self):
        battery = BatteryModel()
        assert battery.locomotion_power_w(10.0) > battery.locomotion_power_w(1.0)
        assert battery.locomotion_power_w(0.0) == battery.hover_power_w

    def test_negative_velocity(self):
        with pytest.raises(ValueError):
            BatteryModel().locomotion_power_w(-1.0)


class TestFlightEnvelope:
    def test_l3_flies_faster_than_e2e(self, iterations):
        battery = BatteryModel()
        l3 = battery.envelope(iterations["L3"], d_min=0.7)
        e2e = battery.envelope(iterations["E2E"], d_min=0.7)
        assert l3.velocity_m_s > 3 * e2e.velocity_m_s  # paper: >3x

    def test_l3_spends_less_compute_energy_per_metre(self, iterations):
        """Sustained compute *power* can be higher for L3 (it iterates
        8x faster); the meaningful win is compute energy per metre
        flown, which drops by ~7x."""
        battery = BatteryModel()
        l3 = battery.envelope(iterations["L3"], d_min=0.7)
        e2e = battery.envelope(iterations["E2E"], d_min=0.7)
        l3_j_per_m = l3.compute_power_w / l3.velocity_m_s
        e2e_j_per_m = e2e.compute_power_w / e2e.velocity_m_s
        assert l3_j_per_m < 0.3 * e2e_j_per_m
        assert 0.0 < l3.compute_fraction < 1.0

    def test_l3_covers_more_ground(self, iterations):
        """The co-design's bottom line: more range per charge."""
        battery = BatteryModel()
        l3 = battery.envelope(iterations["L3"], d_min=0.7)
        e2e = battery.envelope(iterations["E2E"], d_min=0.7)
        assert l3.range_m > 2 * e2e.range_m

    def test_velocity_cap_binds(self, iterations):
        battery = BatteryModel()
        env = battery.envelope(iterations["L3"], d_min=5.0, velocity_cap_m_s=10.0)
        assert env.velocity_m_s == 10.0

    def test_envelope_arithmetic(self, iterations):
        battery = BatteryModel(capacity_wh=10.0)
        env = battery.envelope(iterations["L3"], d_min=1.0)
        expected_endurance = 10.0 * 3600.0 / env.total_power_w
        assert env.endurance_s == pytest.approx(expected_endurance)
        assert env.range_m == pytest.approx(env.endurance_s * env.velocity_m_s)

    def test_validation(self, iterations):
        battery = BatteryModel()
        with pytest.raises(ValueError):
            battery.envelope(iterations["L3"], d_min=0.0)
        with pytest.raises(ValueError):
            battery.envelope(iterations["L3"], d_min=1.0, velocity_cap_m_s=0.0)
