"""The observability layer: span tracing, metrics, and the probe seam.

Contracts under test:

* **Span nesting** — per-thread stacks supply parent/depth; finished
  spans land in completion order (children before parents); cycles
  attach to the innermost open span; the decorator form traces calls.
* **Disabled tracer is a no-op** — ``Tracer.span`` on a disabled
  tracer returns the shared ``NULL_SPAN`` singleton (identity, not
  equality), and an *instrumented fleet run with the probe off* is
  bitwise identical to the same run with the probe on: same Q network
  weights, same per-round ledgers — tracing observes, never perturbs.
* **Histogram quantiles** — exact order statistics matching
  ``numpy.percentile(..., method="linear")``.
* **Prometheus exposition** — golden-file comparison against
  ``tests/data/metrics_golden.prom`` (HELP/TYPE headers, label
  sorting, cumulative ``_bucket`` rows with ``+Inf``, trailing
  newline).
* **Chrome trace export** — the written JSON carries complete events
  (``ph="X"``) with microsecond timestamps, deterministic small-int
  thread ids, and the cycle ledger in ``args``.
"""

import json
import math
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.backend import ShardedBackend
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import build_network, scaled_drone_net_spec
from repro.obs import (
    NULL_SPAN,
    PROBE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    observed,
)
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16
GOLDEN = Path(__file__).parent / "data" / "metrics_golden.prom"


class TestSpanNesting:
    def test_parent_and_depth_from_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert outer.parent_name is None and outer.depth == 0
        assert inner.parent_name == "outer" and inner.depth == 1

    def test_completion_order_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "c", "a"]

    def test_cycles_attach_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.add_cycles(5)
            with tracer.span("inner") as inner:
                tracer.add_cycles(7)
        assert outer.cycles == 5 and inner.cycles == 7

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration_ns >= 0
        assert outer.duration_ns >= inner.duration_ns
        assert outer.duration_s == pytest.approx(outer.duration_ns / 1e9)

    def test_wrap_decorator_records_calls(self):
        tracer = Tracer()

        @tracer.wrap("load")
        def load(x):
            return x + 1

        assert load(1) == 2 and load(2) == 3
        spans = tracer.spans
        assert [s.name for s in spans] == ["load", "load"]

    def test_summary_aggregates_by_name_with_prefix(self):
        tracer = Tracer()
        for cycles in (3, 4):
            with tracer.span("phase:rollout") as sp:
                sp.add_cycles(cycles)
        with tracer.span("fleet.round") as sp:
            sp.add_cycles(10)
        summary = tracer.summary()
        assert summary["phase:rollout"]["count"] == 2
        assert summary["phase:rollout"]["cycles"] == 7
        assert list(tracer.summary(prefix="phase:")) == ["phase:rollout"]

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def work(tag):
            try:
                for _ in range(20):
                    with tracer.span(f"outer-{tag}"):
                        with tracer.span(f"inner-{tag}") as inner:
                            assert inner.parent_name == f"outer-{tag}"
                            assert inner.depth == 1
            except AssertionError as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.spans
        assert len(spans) == 4 * 20 * 2
        for tag in range(4):
            # Every thread's spans stayed on one stack: 20 of each name,
            # all carrying the ident of the thread that opened them.
            mine = [s for s in spans if s.name.endswith(f"-{tag}")]
            assert len(mine) == 40
            assert len({s.thread_id for s in mine}) == 1


class TestDisabledTracer:
    def test_disabled_span_is_the_null_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", round=3)
        assert span is NULL_SPAN
        # The null span absorbs the whole Span surface.
        with span as sp:
            sp.add_cycles(10)
            sp.annotate(k=1)
        assert sp.cycles == 0 and sp.duration_s == 0.0
        assert tracer.spans == []

    def test_inactive_probe_is_identity_cheap(self):
        assert PROBE.enabled is False
        assert PROBE.span("x") is NULL_SPAN
        before = len(list(PROBE.metrics))
        PROBE.count("repro_test_total")
        PROBE.gauge("repro_test_gauge", 1.0)
        PROBE.observe("repro_test_seconds", 0.1)
        assert len(list(PROBE.metrics)) == before


class TestProbeSeam:
    def test_observed_activates_and_restores(self):
        registry = MetricsRegistry()
        with observed(registry=registry) as (tracer, metrics):
            assert PROBE.enabled and metrics is registry
            with PROBE.span("unit") as sp:
                sp.add_cycles(2)
            PROBE.count("repro_unit_total", 3)
        assert PROBE.enabled is False
        assert PROBE.span("after") is NULL_SPAN
        assert [s.name for s in tracer.spans] == ["unit"]
        assert registry.snapshot()["counters"]["repro_unit_total"] == 3

    def test_observed_deactivates_on_error(self):
        with pytest.raises(RuntimeError):
            with observed(registry=MetricsRegistry()):
                raise RuntimeError("boom")
        assert PROBE.enabled is False


class TestHistogramQuantiles:
    def test_matches_numpy_linear_percentiles(self, rng):
        h = Histogram("h", buckets=(0.5,))
        samples = rng.uniform(0.0, 2.0, size=257)
        for v in samples:
            h.observe(v)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            expected = np.percentile(samples, q * 100, method="linear")
            assert h.quantile(q) == pytest.approx(expected, rel=1e-12)

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_cumulative_buckets_end_with_inf(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.cumulative_buckets() == [("1", 1), ("2", 2), ("+Inf", 3)]


class TestMetricsRegistry:
    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("g")
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_get_or_create_reuses_and_guards_kind(self):
        registry = MetricsRegistry()
        c1 = registry.counter("repro_x_total", labels={"k": "v"})
        c2 = registry.counter("repro_x_total", labels={"k": "v"})
        assert c1 is c2
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total", labels={"k": "v"})

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc(2)
        registry.counter("a_total").inc(1)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a_total", "b_total"]
        assert snap["gauges"]["g"] == 7.0
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1 and hist["sum"] == 0.5
        assert set(hist["quantiles"]) == {"p50", "p90", "p99"}
        assert hist["buckets"]["+Inf"] == 1
        json.dumps(snap)  # plain data, serialisable as-is


class TestPrometheusExposition:
    @staticmethod
    def _golden_registry() -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter(
            "repro_backend_forwards_total",
            help="Forward batches served",
            labels={"backend": "systolic"},
        ).inc(3)
        registry.counter(
            "repro_backend_forwards_total",
            help="Forward batches served",
            labels={"backend": "sharded"},
        ).inc(2)
        registry.counter(
            "repro_fleet_env_steps_total", help="Env steps stepped"
        ).inc(1280)
        registry.gauge(
            "repro_fleet_sync_staleness_updates",
            help="Updates the serving snapshot is behind",
        ).set(2)
        hist = registry.histogram(
            "repro_fleet_round_seconds",
            help="Wall seconds per fleet round",
            buckets=(0.1, 1.0),
        )
        for value in (0.0625, 0.5, 2.0):
            hist.observe(value)
        return registry

    def test_matches_golden_file(self):
        assert self._golden_registry().render_prometheus() == GOLDEN.read_text()

    def test_export_writes_the_same_text(self, tmp_path):
        path = tmp_path / "metrics.prom"
        self._golden_registry().export_prometheus(str(path))
        assert path.read_text() == GOLDEN.read_text()


class TestChromeExport:
    def test_exported_trace_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("fleet.round", round=0):
            with tracer.span("phase:rollout") as sp:
                sp.add_cycles(123)
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        trace = json.loads(path.read_text())

        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["fleet.round", "phase:rollout"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 0
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert "cycles" in event["args"] and "wall_ms" in event["args"]
        # Events sort by start time; the parent opened first.
        assert events[0]["ts"] <= events[1]["ts"]
        assert events[1]["args"]["cycles"] == 123
        assert events[0]["args"]["round"] == 0

    def test_deterministic_export_is_a_pure_function_of_the_workload(
        self, tmp_path
    ):
        """Two separate runs of the same span structure write identical
        bytes: rank timestamps, no wall_ms, sorted keys."""

        def run(path):
            tracer = Tracer()
            with tracer.span("fleet.round", round=0):
                with tracer.span("phase:rollout") as sp:
                    sp.add_cycles(123)
                with tracer.span("phase:train") as sp:
                    sp.add_cycles(77)
            tracer.export_chrome(str(path), deterministic=True)
            return path.read_bytes()

        first = run(tmp_path / "a.json")
        second = run(tmp_path / "b.json")
        assert first == second
        trace = json.loads(first)
        for event in trace["traceEvents"]:
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert "wall_ms" not in event["args"]
        # Rank timestamps keep the nesting topology: the parent starts
        # first and outlasts both children.
        parent = trace["traceEvents"][0]
        children = trace["traceEvents"][1:]
        assert parent["name"] == "fleet.round"
        for child in children:
            assert parent["ts"] <= child["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_deterministic_export_immune_to_record_jitter(self, tmp_path):
        """Back-dated ``record()`` spans carry measured wall times whose
        jitter can reorder raw span boundaries between runs; the
        deterministic export must order them by call, not the clock."""

        def run(path, durations):
            tracer = Tracer()
            with tracer.span("fleet.round"):
                for shard, duration_ns in enumerate(durations):
                    tracer.record(
                        "shard.forward", duration_ns, cycles=100, shard=shard
                    )
            tracer.export_chrome(str(path), deterministic=True)
            return path.read_bytes()

        # Same call sequence, wildly different measured durations: the
        # second run's first record outlasts the gap to the next one,
        # which under raw-timestamp ranking would swap their order.
        first = run(tmp_path / "a.json", [10, 2_000_000, 30])
        second = run(tmp_path / "b.json", [5_000_000, 20, 1_000_000])
        assert first == second
        shards = [
            e["args"]["shard"]
            for e in json.loads(first)["traceEvents"]
            if e["name"] == "shard.forward"
        ]
        assert shards == [0, 1, 2]  # call order, not duration order


def _run_fleet(seed: int = 0):
    """One tiny sharded fleet run; returns (agent, report)."""
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=seed)
    agent = QLearningAgent(
        network,
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 200),
        seed=seed,
        batch_size=4,
        backend=ShardedBackend(network, shards=2, shard="sample"),
        sync_every=2,
    )
    vec_env = VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=[0, 1],
        image_side=SIDE,
        max_episode_steps=50,
    )
    scheduler = FleetScheduler(agent, vec_env, train_every=2, eval_steps=8)
    report = scheduler.run(rounds=1, steps_per_round=24)
    return agent, report


def _fingerprint(report):
    """The deterministic (non-wall-clock) content of a fleet report."""
    return [
        (
            r.env_steps, r.episodes, r.train_updates, r.mean_loss,
            r.inference_cycles, r.training_cycles,
            r.critical_path_cycles, r.critical_shard_index,
            r.shards, r.sync_staleness, tuple(sorted(r.eval_sfd_by_class.items())),
        )
        for r in report.rounds
    ]


class TestObservationDoesNotPerturb:
    def test_probed_run_is_bitwise_identical_to_plain_run(self):
        plain_agent, plain_report = _run_fleet()
        with observed(registry=MetricsRegistry()) as (tracer, _):
            probed_agent, probed_report = _run_fleet()

        assert _fingerprint(probed_report) == _fingerprint(plain_report)
        for p_plain, p_probed in zip(
            plain_agent.network.parameters(),
            probed_agent.network.parameters(),
        ):
            assert np.array_equal(p_plain.value, p_probed.value)
        # And the probed run actually recorded the instrumented spans.
        names = {s.name for s in tracer.spans}
        assert {"fleet.round", "phase:rollout", "shard.forward"} <= names
