"""Tests for the Dropout layer."""

import numpy as np
import pytest

from repro.nn import Dropout


class TestDropout:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)
        with pytest.raises(ValueError):
            Dropout(rate=-0.1)

    def test_inference_is_identity(self, rng):
        layer = Dropout(rate=0.5)
        x = rng.normal(size=(4, 10))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_zero_rate_is_identity_in_training(self, rng):
        layer = Dropout(rate=0.0)
        x = rng.normal(size=(4, 10))
        assert np.array_equal(layer.forward(x, training=True), x)

    def test_training_zeroes_about_rate_fraction(self):
        layer = Dropout(rate=0.5, seed=1)
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        dropped = np.mean(out == 0.0)
        assert dropped == pytest.approx(0.5, abs=0.05)

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(rate=0.3, seed=2)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_routes_through_mask(self):
        layer = Dropout(rate=0.5, seed=3)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        # Gradient is zero exactly where the forward output was zero.
        assert np.array_equal(grad == 0.0, out == 0.0)

    def test_backward_identity_in_inference(self, rng):
        layer = Dropout(rate=0.5)
        x = rng.normal(size=(3, 3))
        layer.forward(x, training=False)
        g = rng.normal(size=(3, 3))
        assert np.array_equal(layer.backward(g), g)

    def test_no_parameters(self):
        assert Dropout().parameters() == []
