"""Tests for fixed-point (quantised) inference."""

import numpy as np
import pytest

from repro.fixedpoint import Q2_13, Q8_8, QFormat
from repro.nn import QuantizedNetwork, build_network, quantize_network_report


class TestQuantizedNetwork:
    def test_prediction_close_to_float(self, scaled_spec, rng):
        net = build_network(scaled_spec, seed=0)
        qnet = QuantizedNetwork(net)
        x = rng.uniform(0, 1, size=(4, 1, 16, 16))
        fp = net.predict(x)
        qp = qnet.predict(x)
        assert qp.shape == fp.shape
        # 16-bit fixed point should track float closely at these scales.
        assert np.max(np.abs(qp - fp)) < 0.15 * (np.max(np.abs(fp)) + 1.0)

    def test_outputs_are_representable(self, scaled_spec, rng):
        net = build_network(scaled_spec, seed=0)
        qnet = QuantizedNetwork(net)
        out = qnet.predict(rng.uniform(0, 1, size=(2, 1, 16, 16)))
        assert np.all(Q8_8.representable(out))

    def test_original_network_unchanged(self, scaled_spec, rng):
        net = build_network(scaled_spec, seed=0)
        before = net.state_dict()
        QuantizedNetwork(net).predict(rng.uniform(0, 1, size=(1, 1, 16, 16)))
        after = net.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_action_agreement_high(self, scaled_spec, rng):
        """The greedy policy must survive 16-bit quantisation — the
        premise of running the TL model on the fixed-point platform."""
        net = build_network(scaled_spec, seed=0)
        qnet = QuantizedNetwork(net)
        states = rng.uniform(0, 1, size=(64, 1, 16, 16))
        assert qnet.agreement_rate(states) > 0.9

    def test_agreement_validation(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        qnet = QuantizedNetwork(net)
        with pytest.raises(ValueError):
            qnet.agreement_rate(np.zeros((0, 1, 16, 16)))

    def test_coarse_format_degrades(self, scaled_spec, rng):
        net = build_network(scaled_spec, seed=0)
        fine = QuantizedNetwork(net, weight_format=Q2_13)
        coarse = QuantizedNetwork(net, weight_format=QFormat(2, 3))
        x = rng.uniform(0, 1, size=(8, 1, 16, 16))
        fp = net.predict(x)
        err_fine = np.mean(np.abs(fine.predict(x) - fp))
        err_coarse = np.mean(np.abs(coarse.predict(x) - fp))
        assert err_coarse > err_fine

    def test_weight_error_stats(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        stats = QuantizedNetwork(net).weight_error_stats()
        assert stats.max_abs_error <= Q2_13.scale / 2 + 1e-12 or stats.saturated_fraction > 0


class TestQuantizeReport:
    def test_report_rows(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        rows = quantize_network_report(net)
        assert len(rows) == 3
        assert all("snr_db" in r for r in rows)

    def test_snr_improves_with_fraction_bits(self, scaled_spec):
        net = build_network(scaled_spec, seed=0)
        rows = quantize_network_report(
            net, formats=[QFormat(2, 5), QFormat(2, 13)]
        )
        assert rows[1]["snr_db"] > rows[0]["snr_db"]
