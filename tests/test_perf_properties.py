"""Property-based tests on the performance model's monotonicities.

The cost model must respond to its inputs in physically sensible
directions regardless of parameter values — these invariants hold for
*any* network shape, which is what hypothesis explores.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.specs import FCSpec, NetworkSpec
from repro.perf import LayerCostModel, TrainingIterationModel
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.sensitivity import scale_calibration
from repro.rl import config_by_name


def fc_only_spec(widths):
    layers = []
    for i, (a, b) in enumerate(zip(widths, widths[1:]), start=1):
        layers.append(FCSpec(f"FC{i}", in_features=a, out_features=b))
    return NetworkSpec("fc-net", tuple(layers), input_side=8, input_channels=1)


@settings(max_examples=25, deadline=None)
@given(
    widths=st.lists(st.integers(4, 512), min_size=3, max_size=6),
)
def test_forward_latency_increases_with_weights(widths):
    """Adding a layer can only increase forward latency."""
    spec_small = fc_only_spec(widths)
    spec_big = fc_only_spec(widths + [widths[-1]])
    cfg = config_by_name("E2E")
    lat_small, _ = LayerCostModel(spec_small, cfg).forward_total()
    lat_big, _ = LayerCostModel(spec_big, cfg).forward_total()
    assert lat_big > lat_small


@settings(max_examples=20, deadline=None)
@given(
    widths=st.lists(st.integers(8, 256), min_size=4, max_size=6),
    batch_a=st.integers(1, 16),
)
def test_iteration_latency_monotone_in_batch(widths, batch_a):
    spec = fc_only_spec(widths)
    model = LayerCostModel(spec, config_by_name("E2E"))
    trainer = TrainingIterationModel(model)
    small = trainer.iteration_cost(batch_a).iteration_latency_s
    large = trainer.iteration_cost(batch_a + 1).iteration_latency_s
    assert large > small


@settings(max_examples=20, deadline=None)
@given(widths=st.lists(st.integers(8, 256), min_size=4, max_size=6))
def test_training_fewer_layers_never_costs_more(widths):
    """L2's backward pass can never exceed L3's on the same network."""
    spec = fc_only_spec(widths)
    if len(spec.fc_layers) < 3:
        return
    l2, _ = LayerCostModel(spec, config_by_name("L2")).backward_total()
    l3, _ = LayerCostModel(spec, config_by_name("L3")).backward_total()
    assert l2 <= l3 + 1e-15


@settings(max_examples=15, deadline=None)
@given(
    widths=st.lists(st.integers(8, 256), min_size=4, max_size=5),
    scale=st.floats(0.5, 3.0),
)
def test_slower_calibration_never_speeds_up(widths, scale):
    """Scaling every efficiency factor >= 1 can only slow layers down."""
    if scale < 1.0:
        return
    spec = fc_only_spec(widths)
    cfg = config_by_name("E2E")
    base, _ = LayerCostModel(spec, cfg).forward_total()
    slow_cal = scale_calibration(DEFAULT_CALIBRATION, scale)
    slow, _ = LayerCostModel(spec, cfg, calibration=slow_cal).forward_total()
    assert slow >= base - 1e-15


@settings(max_examples=20, deadline=None)
@given(widths=st.lists(st.integers(8, 200), min_size=4, max_size=6))
def test_energy_positive_and_finite(widths):
    spec = fc_only_spec(widths)
    for name in ("L2", "L3", "E2E"):
        model = LayerCostModel(spec, config_by_name(name))
        for cost in model.forward_costs() + model.backward_costs():
            assert cost.latency_s > 0
            assert cost.energy_j > 0
            assert cost.power_w > 0


@settings(max_examples=20, deadline=None)
@given(
    widths=st.lists(st.integers(8, 200), min_size=4, max_size=6),
    batch=st.integers(1, 16),
)
def test_fps_times_latency_is_one(widths, batch):
    spec = fc_only_spec(widths)
    trainer = TrainingIterationModel(
        LayerCostModel(spec, config_by_name("L3"))
    )
    cost = trainer.iteration_cost(batch)
    assert cost.fps * cost.iteration_latency_s == pytest.approx(1.0)
