"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rl_defaults(self):
        args = build_parser().parse_args(["rl"])
        assert args.env == "indoor-apartment"
        assert args.iters == 800

    def test_map_env_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--env", "mars"])


class TestCommands:
    @pytest.mark.parametrize(
        "command,expected",
        [
            (["fig1"], "Indoor 1"),
            (["fig3"], "FC1"),
            (["fig5"], "NVM MB"),
            (["fig6"], "CONV1"),
            (["fig12"], "Lat paper"),
            (["fig13"], "E2E"),
            (["params"], "STT-MRAM"),
            (["map", "--env", "outdoor-forest"], "outdoor-forest"),
        ],
    )
    def test_artifact_commands(self, capsys, command, expected):
        assert main(command) == 0
        out = capsys.readouterr().out
        assert expected in out

    def test_rl_command_short(self, capsys):
        assert main(["rl", "--env", "indoor-house", "--iters", "120"]) == 0
        out = capsys.readouterr().out
        assert "SFD" in out and "E2E" in out
