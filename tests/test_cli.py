"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rl_defaults(self):
        args = build_parser().parse_args(["rl"])
        assert args.env == "indoor-apartment"
        assert args.iters == 800

    def test_map_env_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--env", "mars"])


class TestCommands:
    @pytest.mark.parametrize(
        "command,expected",
        [
            (["fig1"], "Indoor 1"),
            (["fig3"], "FC1"),
            (["fig5"], "NVM MB"),
            (["fig6"], "CONV1"),
            (["fig12"], "Lat paper"),
            (["fig13"], "E2E"),
            (["params"], "STT-MRAM"),
            (["map", "--env", "outdoor-forest"], "outdoor-forest"),
        ],
    )
    def test_artifact_commands(self, capsys, command, expected):
        assert main(command) == 0
        out = capsys.readouterr().out
        assert expected in out

    def test_rl_command_short(self, capsys):
        assert main(["rl", "--env", "indoor-house", "--iters", "120"]) == 0
        out = capsys.readouterr().out
        assert "SFD" in out and "E2E" in out

    def test_systolic_bench_layer_only(self, capsys):
        assert main(["systolic-bench", "--skip-alexnet", "--side", "16",
                     "--filters", "4"]) == 0
        out = capsys.readouterr().out
        assert "pe oracle" in out and "fast path" in out

    def test_systolic_bench_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "bench.json"
        assert main(["systolic-bench", "--skip-alexnet", "--side", "12",
                     "--filters", "2", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["bench_layer"]["speedup"] > 1.0
        assert "shape" in payload["bench_layer"]
        assert "alexnet_forward" not in payload  # skipped above
