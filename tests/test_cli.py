"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rl_defaults(self):
        args = build_parser().parse_args(["rl"])
        assert args.env == "indoor-apartment"
        assert args.iters == 800

    def test_map_env_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--env", "mars"])


class TestCommands:
    @pytest.mark.parametrize(
        "command,expected",
        [
            (["fig1"], "Indoor 1"),
            (["fig3"], "FC1"),
            (["fig5"], "NVM MB"),
            (["fig6"], "CONV1"),
            (["fig12"], "Lat paper"),
            (["fig13"], "E2E"),
            (["params"], "STT-MRAM"),
            (["map", "--env", "outdoor-forest"], "outdoor-forest"),
        ],
    )
    def test_artifact_commands(self, capsys, command, expected):
        assert main(command) == 0
        out = capsys.readouterr().out
        assert expected in out

    def test_rl_command_short(self, capsys):
        assert main(["rl", "--env", "indoor-house", "--iters", "120"]) == 0
        out = capsys.readouterr().out
        assert "SFD" in out and "E2E" in out

    def test_systolic_bench_layer_only(self, capsys):
        assert main(["systolic-bench", "--skip-alexnet", "--side", "16",
                     "--filters", "4"]) == 0
        out = capsys.readouterr().out
        assert "pe oracle" in out and "fast path" in out

    def test_systolic_bench_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "bench.json"
        assert main(["systolic-bench", "--skip-alexnet", "--side", "12",
                     "--filters", "2", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["bench_layer"]["speedup"] > 1.0
        assert "shape" in payload["bench_layer"]
        assert "alexnet_forward" not in payload  # skipped above

    def test_systolic_bench_training_mode(self, capsys, tmp_path):
        import json

        path = tmp_path / "training.json"
        assert main(["systolic-bench", "--training", "--batch", "2",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dW Mcyc" in out and "dX Mcyc" in out
        assert "training step" in out
        assert "counters and gradients verified identical" in out
        payload = json.loads(path.read_text())
        assert payload["training_step"]["total_cycles"] > 0
        assert payload["training_step"]["iterations_per_second"] > 0
        assert payload["bench_training"]["speedup"] > 1.0

    def test_fleet_trace_metrics_json_smoke(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        payload_path = tmp_path / "fleet.json"
        assert main([
            "fleet", "--num-envs", "4", "--rounds", "1", "--steps", "20",
            "--eval-steps", "8", "--seed", "1",
            "--envs", "indoor-apartment", "outdoor-forest",
            "--backend", "sharded", "--shards", "2",
            "--trace", str(trace), "--metrics", str(metrics),
            "--json", str(payload_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Timing breakdown:" in out
        assert "critical shard:" in out

        chrome = json.loads(trace.read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {"fleet.round", "phase:rollout", "shard.forward"} <= names
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])

        prom = metrics.read_text()
        assert "# TYPE repro_fleet_env_steps_total counter" in prom
        assert "repro_backend_forwards_total" in prom

        payload = json.loads(payload_path.read_text())
        assert set(payload) == {"fleet", "projection", "phases", "metrics"}
        assert payload["fleet"]["rounds"][0]["env_steps"] > 0
        assert "critical_shard_index" in payload["fleet"]["totals"]
        assert "fleet.round" in payload["phases"]
        assert payload["metrics"]["counters"]["repro_fleet_env_steps_total"] > 0

    def test_fleet_pipeline_policy_noc_smoke(self, capsys):
        assert main([
            "fleet", "--num-envs", "4", "--rounds", "1", "--steps", "20",
            "--eval-steps", "0", "--seed", "1",
            "--envs", "indoor-apartment", "outdoor-forest",
            "--backend", "sharded", "--shards", "2",
            "--shard-policy", "pipeline", "--noc", "ring",
        ]) == 0
        out = capsys.readouterr().out
        assert "interconnect (ring NoC):" in out
        assert "pipeline fill/drain" in out

    def test_fleet_noc_and_policy_flags_validated(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "--noc", "mesh"])
        assert args.noc == "mesh"
        assert parser.parse_args(["fleet"]).noc == "flat"
        assert parser.parse_args(
            ["fleet", "--shard-policy", "pipeline"]
        ).shard_policy == "pipeline"
        with pytest.raises(SystemExit):
            parser.parse_args(["fleet", "--noc", "torus"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fleet", "--shard-policy", "column"])

    def test_fleet_plain_run_has_no_observability_output(self, capsys):
        assert main([
            "fleet", "--num-envs", "2", "--rounds", "1", "--steps", "10",
            "--eval-steps", "0", "--seed", "1",
            "--envs", "indoor-apartment", "outdoor-forest",
        ]) == 0
        assert "Timing breakdown:" not in capsys.readouterr().out

    def test_systolic_bench_json_metrics_block(self, tmp_path):
        import json

        path = tmp_path / "bench.json"
        assert main(["systolic-bench", "--skip-alexnet", "--side", "12",
                     "--filters", "2", "--json", str(path)]) == 0
        gauges = json.loads(path.read_text())["metrics"]["gauges"]
        assert gauges["repro_bench_speedup"] > 1.0

        training = tmp_path / "training.json"
        assert main(["systolic-bench", "--training", "--batch", "2",
                     "--json", str(training)]) == 0
        gauges = json.loads(training.read_text())["metrics"]["gauges"]
        assert gauges["repro_training_step_cycles"] > 0
        assert gauges["repro_bench_training_speedup"] > 1.0

    def test_fleet_train_on_array_smoke(self, capsys):
        assert main([
            "fleet", "--num-envs", "4", "--rounds", "1", "--steps", "30",
            "--eval-steps", "0", "--seed", "1",
            "--envs", "indoor-apartment", "outdoor-forest",
            "--backend", "systolic", "--train-on-array",
        ]) == 0
        out = capsys.readouterr().out
        assert "training on array:" in out
        assert "kcycles/update measured" in out
        assert "combined rollout+train utilization" in out

    def test_train_on_array_flag_parses(self):
        args = build_parser().parse_args(["fleet", "--train-on-array"])
        assert args.train_on_array is True
        assert build_parser().parse_args(["fleet"]).train_on_array is False
        bench = build_parser().parse_args(["systolic-bench", "--training"])
        assert bench.training is True
