"""Tests for the functional FC dataflow simulations (Figs. 7 and 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.systolic import (
    fc_tile_stats,
    simulate_fc_backward_transposed,
    simulate_fc_forward,
)
from repro.systolic.array import ArrayConfig


class TestForward:
    def test_matches_matmul(self, rng):
        v = rng.normal(size=40)
        m = rng.normal(size=(40, 70))
        result = simulate_fc_forward(v, m)
        assert np.allclose(result.output, v @ m)

    def test_single_tile(self, rng):
        v = rng.normal(size=8)
        m = rng.normal(size=(8, 8))
        result = simulate_fc_forward(v, m)
        assert result.tiles == 1
        assert np.allclose(result.output, v @ m)

    def test_tile_count(self, rng):
        v = rng.normal(size=64)
        m = rng.normal(size=(64, 96))
        result = simulate_fc_forward(v, m)
        assert result.tiles == 2 * 3  # 64/32 x 96/32

    def test_mac_cycles_equal_matrix_size(self, rng):
        v = rng.normal(size=50)
        m = rng.normal(size=(50, 20))
        result = simulate_fc_forward(v, m)
        assert result.mac_cycles == 50 * 20
        assert result.total_cycles > result.mac_cycles

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_fc_forward(rng.normal(size=5), rng.normal(size=(6, 4)))
        with pytest.raises(ValueError):  # 3-D input is not a vector batch
            simulate_fc_forward(rng.normal(size=(2, 2, 2)), rng.normal(size=(2, 2)))
        with pytest.raises(ValueError):
            simulate_fc_forward(rng.normal(size=8), rng.normal(size=(8, 8)),
                                fidelity="warp")

    def test_batch_matches_stacked_singles(self, rng):
        vs = rng.normal(size=(4, 12))
        m = rng.normal(size=(12, 9))
        batched = simulate_fc_forward(vs, m)
        singles = [simulate_fc_forward(v, m) for v in vs]
        assert batched.output.shape == (4, 9)
        assert np.allclose(batched.output, np.stack([s.output for s in singles]))
        # MAC/drain counters scale linearly with the batch; weight tiles
        # stay resident, so tile loads are charged once, not per sample.
        assert batched.mac_cycles == sum(s.mac_cycles for s in singles)
        assert batched.drain_cycles == sum(s.drain_cycles for s in singles)
        assert batched.tiles == singles[0].tiles
        assert batched.load_cycles == singles[0].load_cycles

    def test_weight_reuse_cycles_per_sample_strictly_decreasing(self):
        """Fig. 13 fps-vs-batch trend: amortising the tile loads across
        a batch makes cycles/sample strictly decrease with batch size."""
        per_sample = [
            fc_tile_stats(96, 64, batch=b).total_cycles / b
            for b in (1, 2, 4, 8, 16)
        ]
        assert all(a > b for a, b in zip(per_sample, per_sample[1:]))
        # The amortised component is exactly the (constant) load cost.
        s1, s16 = fc_tile_stats(96, 64, batch=1), fc_tile_stats(96, 64, batch=16)
        assert s1.load_cycles == s16.load_cycles > 0
        assert s16.mac_cycles == 16 * s1.mac_cycles
        assert s16.drain_cycles == 16 * s1.drain_cycles

    def test_fast_matches_pe_oracle(self, rng):
        v = rng.normal(size=50)
        m = rng.normal(size=(50, 40))
        fast = simulate_fc_forward(v, m, fidelity="fast")
        oracle = simulate_fc_forward(v, m, fidelity="pe")
        assert np.allclose(fast.output, oracle.output)
        assert (fast.tiles, fast.mac_cycles, fast.drain_cycles, fast.load_cycles) == (
            oracle.tiles, oracle.mac_cycles, oracle.drain_cycles, oracle.load_cycles,
        )


class TestBackwardTransposed:
    def test_matches_transposed_matmul(self, rng):
        """Fig. 8's point: v @ W.T without transposing W."""
        v = rng.normal(size=70)
        m = rng.normal(size=(40, 70))
        result = simulate_fc_backward_transposed(v, m)
        assert np.allclose(result.output, v @ m.T)

    def test_roundtrip_forward_backward(self, rng):
        """Forward then transposed-backward with a one-hot gradient
        recovers the corresponding matrix column/row structure."""
        m = rng.normal(size=(6, 9))
        grad = np.zeros(9)
        grad[3] = 1.0
        back = simulate_fc_backward_transposed(grad, m)
        assert np.allclose(back.output, m[:, 3])

    def test_small_array_config(self, rng):
        array = ArrayConfig(rows=4, cols=4)
        v = rng.normal(size=10)
        m = rng.normal(size=(7, 10))
        result = simulate_fc_backward_transposed(v, m, array=array)
        assert np.allclose(result.output, v @ m.T)
        assert result.tiles == 2 * 3  # ceil(7/4) x ceil(10/4)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_fc_backward_transposed(
                rng.normal(size=5), rng.normal(size=(5, 4))
            )

    def test_batch_and_oracle_agree(self, rng):
        vs = rng.normal(size=(3, 10))
        m = rng.normal(size=(7, 10))
        fast = simulate_fc_backward_transposed(vs, m)
        oracle = simulate_fc_backward_transposed(vs, m, fidelity="pe")
        assert fast.output.shape == (3, 7)
        assert np.allclose(fast.output, vs @ m.T)
        assert np.allclose(fast.output, oracle.output)
        assert (fast.tiles, fast.mac_cycles, fast.drain_cycles, fast.load_cycles) == (
            oracle.tiles, oracle.mac_cycles, oracle.drain_cycles, oracle.load_cycles,
        )


@settings(max_examples=30)
@given(
    in_f=st.integers(1, 80),
    out_f=st.integers(1, 80),
    seed=st.integers(0, 999),
)
def test_forward_backward_agree_with_numpy(in_f, out_f, seed):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(in_f, out_f))
    v_in = rng.normal(size=in_f)
    v_out = rng.normal(size=out_f)
    fwd = simulate_fc_forward(v_in, m)
    bwd = simulate_fc_backward_transposed(v_out, m)
    assert np.allclose(fwd.output, v_in @ m)
    assert np.allclose(bwd.output, v_out @ m.T)
    # Both directions stream exactly the matrix once.
    assert fwd.mac_cycles == bwd.mac_cycles == m.size
