"""Tests for the HBM-style stack organisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import HbmOrganization


class TestGeometry:
    def test_paper_totals(self):
        org = HbmOrganization()
        assert org.total_ios == 1024            # Fig. 4: 1024 I/Os
        assert org.peak_bandwidth_bps == pytest.approx(2048e9)  # 2 Tb/s
        assert org.channel_bandwidth_bps == pytest.approx(256e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HbmOrganization(channels=0)
        with pytest.raises(ValueError):
            HbmOrganization(row_bytes=1000, interleave_bytes=256)
        with pytest.raises(ValueError):
            HbmOrganization(interleave_bytes=0)


class TestAddressDecode:
    def test_first_byte(self):
        addr = HbmOrganization().decode(0)
        assert (addr.channel, addr.bank, addr.row, addr.column) == (0, 0, 0, 0)

    def test_channel_interleave(self):
        org = HbmOrganization(interleave_bytes=256)
        assert org.decode(0).channel == 0
        assert org.decode(256).channel == 1
        assert org.decode(256 * 8).channel == 0  # wraps after 8 channels

    def test_column_within_unit(self):
        org = HbmOrganization()
        assert org.decode(10).column == 10
        assert org.decode(256 + 10).column == 10  # next channel, same offset

    def test_bank_rotation(self):
        org = HbmOrganization(
            channels=2, banks_per_channel=2, row_bytes=256, interleave_bytes=256
        )
        # Rows within one channel rotate across banks.
        assert org.decode(0).bank == 0
        assert org.decode(2 * 256).bank == 1
        assert org.decode(4 * 256).bank == 0
        assert org.decode(4 * 256).row == 1

    def test_negative_address(self):
        with pytest.raises(ValueError):
            HbmOrganization().decode(-1)


class TestAccessPatterns:
    def test_sequential_stream_touches_all_channels(self):
        org = HbmOrganization()
        assert org.channels_touched(0, length=4096, stride=1) == 8

    def test_pathological_stride_hits_one_channel(self):
        org = HbmOrganization()
        stride = org.interleave_bytes * org.channels  # full rotation
        assert org.channels_touched(0, length=64, stride=stride) == 1

    def test_effective_bandwidth_ratio(self):
        org = HbmOrganization()
        seq = org.effective_bandwidth_bps(0, 4096, stride=1)
        bad = org.effective_bandwidth_bps(
            0, 64, stride=org.interleave_bytes * org.channels
        )
        assert seq == pytest.approx(org.peak_bandwidth_bps)
        assert bad == pytest.approx(org.peak_bandwidth_bps / 8)

    def test_row_activations_amortised(self):
        org = HbmOrganization()
        small = org.row_activations(0, 16 * 1024)
        large = org.row_activations(0, 16 * 1024 * 1024)
        assert large > small
        # Sequential streaming opens far fewer rows than bytes/row_bytes
        # thanks to channel parallelism.
        assert large < 16 * 1024 * 1024 // org.row_bytes * 2

    def test_validation(self):
        org = HbmOrganization()
        with pytest.raises(ValueError):
            org.channels_touched(0, 0)
        with pytest.raises(ValueError):
            org.channels_touched(0, 10, stride=0)
        with pytest.raises(ValueError):
            org.row_activations(0, 0)


@settings(max_examples=60)
@given(address=st.integers(0, 10**9))
def test_decode_fields_in_range(address):
    org = HbmOrganization()
    addr = org.decode(address)
    assert 0 <= addr.channel < org.channels
    assert 0 <= addr.bank < org.banks_per_channel
    assert addr.row >= 0
    assert 0 <= addr.column < org.row_bytes


@settings(max_examples=40)
@given(address=st.integers(0, 10**8))
def test_decode_is_injective_within_rotation(address):
    """Two addresses one interleave unit apart land on different
    channels (until the rotation wraps)."""
    org = HbmOrganization()
    a = org.decode(address)
    b = org.decode(address + org.interleave_bytes)
    assert (a.channel + 1) % org.channels == b.channel
