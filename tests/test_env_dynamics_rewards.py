"""Tests for the inertial drone model and reward-shaping variants."""

import numpy as np
import pytest

from repro.env import (
    DepthCamera,
    InertialDrone,
    NavigationEnv,
    RewardConfig,
    compute_reward,
    make_environment,
)
from repro.env.drone import Action, Drone
from repro.env.world import Pose


class TestInertialDrone:
    def test_validation(self):
        with pytest.raises(ValueError):
            InertialDrone(Pose(0, 0, 0), turn_fraction=0.0)
        with pytest.raises(ValueError):
            InertialDrone(Pose(0, 0, 0), speed_recovery=1.5)
        with pytest.raises(ValueError):
            InertialDrone(Pose(0, 0, 0), d_frame=0.0)

    def test_full_turn_fraction_matches_kinematic_heading(self):
        inertial = InertialDrone(Pose(0, 0, 0), turn_fraction=1.0)
        kinematic = Drone(Pose(0, 0, 0))
        pi = inertial.apply_action(Action.LEFT_55)
        pk = kinematic.apply_action(Action.LEFT_55)
        assert pi.heading == pytest.approx(pk.heading)

    def test_partial_turn_lags_command(self):
        drone = InertialDrone(Pose(0, 0, 0), turn_fraction=0.5)
        pose = drone.apply_action(Action.LEFT_55)
        assert 0 < pose.heading < np.deg2rad(55)

    def test_pending_turn_carries_over(self):
        drone = InertialDrone(Pose(0, 0, 0), turn_fraction=0.5)
        drone.apply_action(Action.LEFT_55)
        pose = drone.apply_action(Action.FORWARD)  # no new command
        # The remaining half of the turn keeps slewing.
        assert pose.heading > np.deg2rad(55) * 0.5

    def test_turning_scrubs_speed(self):
        drone = InertialDrone(Pose(0, 0, 0), turn_fraction=1.0, speed_recovery=0.1)
        before = drone.pose
        drone.apply_action(Action.LEFT_55)
        after = drone.pose
        dist = np.hypot(after.x - before.x, after.y - before.y)
        assert dist < drone.d_frame

    def test_straight_flight_recovers_speed(self):
        drone = InertialDrone(Pose(0, 0, 0), turn_fraction=1.0, speed_recovery=0.6)
        drone.apply_action(Action.LEFT_55)
        dists = []
        for _ in range(6):
            before = drone.pose
            drone.apply_action(Action.FORWARD)
            after = drone.pose
            dists.append(np.hypot(after.x - before.x, after.y - before.y))
        assert dists[-1] > dists[0]
        assert dists[-1] == pytest.approx(drone.d_frame, rel=0.05)

    def test_teleport_resets_dynamics(self):
        drone = InertialDrone(Pose(0, 0, 0), turn_fraction=0.5)
        drone.apply_action(Action.LEFT_55)
        drone.teleport(Pose(5, 5, 0))
        assert drone._pending_turn == 0.0
        assert drone._speed_scale == 1.0

    def test_drop_in_for_navigation_env(self):
        world = make_environment("indoor-apartment", seed=0)
        drone = InertialDrone(Pose(0, 0, 0), d_frame=world.d_min / 4)
        env = NavigationEnv(
            world,
            camera=DepthCamera(width=12, height=12),
            seed=0,
            drone=drone,
        )
        env.reset()
        obs, reward, done, info = env.step(1)
        assert obs.shape == (1, 12, 12)


class TestRewardVariants:
    def make_image(self):
        img = np.full((9, 9), 0.8)
        img[4, 4] = 0.1  # one close obstacle pixel dead centre
        return img

    def test_mean_is_paper_reward(self):
        img = self.make_image()
        config = RewardConfig(kind="mean")
        window_mean = (0.8 * 8 + 0.1) / 9
        assert compute_reward(img, config) == pytest.approx(window_mean)

    def test_min_tracks_nearest(self):
        assert compute_reward(self.make_image(), RewardConfig(kind="min")) == pytest.approx(0.1)

    def test_softmin_between_min_and_mean(self):
        img = self.make_image()
        mean_r = compute_reward(img, RewardConfig(kind="mean"))
        min_r = compute_reward(img, RewardConfig(kind="min"))
        soft_r = compute_reward(img, RewardConfig(kind="softmin"))
        assert min_r < soft_r < mean_r

    def test_softmin_temperature_limits(self):
        img = self.make_image()
        sharp = compute_reward(
            img, RewardConfig(kind="softmin", softmin_temperature=0.01)
        )
        smooth = compute_reward(
            img, RewardConfig(kind="softmin", softmin_temperature=100.0)
        )
        assert sharp == pytest.approx(0.1, abs=0.02)
        assert smooth == pytest.approx(
            compute_reward(img, RewardConfig(kind="mean")), abs=0.02
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(kind="max")

    def test_bad_temperature_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(kind="softmin", softmin_temperature=0.0)

    def test_env_with_min_reward_runs(self):
        world = make_environment("indoor-apartment", seed=0)
        env = NavigationEnv(
            world,
            camera=DepthCamera(width=12, height=12),
            reward_config=RewardConfig(kind="min"),
            seed=0,
        )
        env.reset()
        _, reward, done, _ = env.step(0)
        if not done:
            assert 0.0 <= reward <= 1.0
