"""Tests for the performance model against the published Fig. 12/13 data.

Acceptance criteria follow DESIGN.md: *shape fidelity*.  Structural
quantities (active PEs, pass counts, orderings, crossovers) must match
exactly; calibrated latencies/energies must track the published cells
within documented tolerances, and totals within a few percent.
"""

import numpy as np
import pytest

from repro.nn import modified_alexnet_spec
from repro.perf import (
    DEFAULT_CALIBRATION,
    LayerCostModel,
    PAPER_FIG12_BACKWARD,
    PAPER_FIG12_FORWARD,
    PowerModel,
    TrainingIterationModel,
    fps_vs_batch_table,
    savings_vs_e2e,
)
from repro.rl import config_by_name

PAPER_FWD = {r.layer: r for r in PAPER_FIG12_FORWARD}
PAPER_BWD = {r.layer: r for r in PAPER_FIG12_BACKWARD}


@pytest.fixture(scope="module")
def spec():
    return modified_alexnet_spec()


@pytest.fixture(scope="module")
def models(spec):
    return {
        name: LayerCostModel(spec, config_by_name(name))
        for name in ("L2", "L3", "L4", "E2E")
    }


class TestPaperTables:
    def test_forward_totals_transcribed_correctly(self):
        total_lat = sum(r.latency_ms for r in PAPER_FIG12_FORWARD)
        total_energy = sum(r.energy_mj for r in PAPER_FIG12_FORWARD)
        assert total_lat == pytest.approx(11.9285, abs=1e-3)
        assert total_energy == pytest.approx(75.2259, abs=1e-3)

    def test_backward_totals_transcribed_correctly(self):
        total_lat = sum(r.latency_ms for r in PAPER_FIG12_BACKWARD)
        total_energy = sum(r.energy_mj for r in PAPER_FIG12_BACKWARD)
        assert total_lat == pytest.approx(94.2257, abs=1e-3)
        assert total_energy == pytest.approx(445.331, abs=1e-2)

    def test_energy_equals_power_times_latency(self):
        for row in PAPER_FIG12_FORWARD:
            if row.latency_ms > 0.01:  # tiny rows lose precision
                assert row.energy_mj == pytest.approx(
                    row.power_mw * row.latency_ms / 1e3, rel=0.02
                )


class TestPowerModel:
    def test_fits_forward_rows_within_15pct(self):
        power = PowerModel()
        for row in PAPER_FIG12_FORWARD:
            model = power.forward_power_w(row.active_pes) * 1e3
            assert model == pytest.approx(row.power_mw, rel=0.15)

    def test_fits_backward_rows_within_20pct(self):
        power = PowerModel()
        for row in PAPER_FIG12_BACKWARD:
            model = power.backward_power_w(row.active_pes) * 1e3
            assert model == pytest.approx(row.power_mw, rel=0.20)

    def test_monotone_in_active_pes(self):
        power = PowerModel()
        assert power.forward_power_w(1024) > power.forward_power_w(160)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(forward_base_w=0.0)
        with pytest.raises(ValueError):
            PowerModel().forward_power_w(-1)


class TestForwardCosts:
    def test_active_pes_match_paper_exactly(self, models):
        for cost in models["E2E"].forward_costs():
            assert cost.active_pes == PAPER_FWD[cost.layer].active_pes

    def test_per_layer_latency_within_30pct(self, models):
        for cost in models["E2E"].forward_costs():
            paper = PAPER_FWD[cost.layer].latency_ms
            if paper < 0.01:
                continue  # FC5 is sub-microsecond; absolute noise
            assert cost.latency_ms == pytest.approx(paper, rel=0.30), cost.layer

    def test_fc_latency_within_5pct(self, models):
        """FC layers are purely streaming-bound — the model should be
        tight there."""
        for cost in models["E2E"].forward_costs():
            paper = PAPER_FWD[cost.layer].latency_ms
            if cost.layer.startswith("FC") and paper > 0.01:
                assert cost.latency_ms == pytest.approx(paper, rel=0.05), cost.layer

    def test_total_latency_within_5pct(self, models):
        lat, _ = models["E2E"].forward_total()
        assert lat * 1e3 == pytest.approx(11.9285, rel=0.05)

    def test_total_energy_within_10pct(self, models):
        _, energy = models["E2E"].forward_total()
        assert energy * 1e3 == pytest.approx(75.2259, rel=0.10)

    def test_forward_identical_across_configs(self, models):
        """Forward propagation doesn't depend on the training topology."""
        ref, ref_e = models["E2E"].forward_total()
        for name in ("L2", "L3", "L4"):
            lat, energy = models[name].forward_total()
            assert lat == pytest.approx(ref, rel=1e-9)

    def test_fc_layers_are_streaming_bound(self, models, spec):
        """Every FC layer should land at ~8 GMAC/s (128-bit streaming)."""
        for cost in models["E2E"].forward_costs():
            if not cost.layer.startswith("FC"):
                continue
            layer = spec.layer(cost.layer)
            if layer.macs < 1e6:
                continue
            gmacs = layer.macs / cost.latency_s / 1e9
            assert 6.0 < gmacs < 9.0, cost.layer


class TestBackwardCosts:
    def test_e2e_covers_all_layers_reverse_order(self, models):
        names = [c.layer for c in models["E2E"].backward_costs()]
        assert names == [
            "FC5", "FC4", "FC3", "FC2", "FC1",
            "CONV5", "CONV4", "CONV3", "CONV2", "CONV1",
        ]

    def test_l3_covers_last_three_fc_only(self, models):
        names = [c.layer for c in models["L3"].backward_costs()]
        assert names == ["FC5", "FC4", "FC3"]

    def test_per_layer_latency_within_30pct(self, models):
        for cost in models["E2E"].backward_costs():
            paper = PAPER_BWD[cost.layer].latency_ms
            if paper < 0.01:
                continue
            assert cost.latency_ms == pytest.approx(paper, rel=0.30), cost.layer

    def test_total_latency_within_5pct(self, models):
        lat, _ = models["E2E"].backward_total()
        assert lat * 1e3 == pytest.approx(94.2257, rel=0.05)

    def test_total_energy_within_10pct(self, models):
        _, energy = models["E2E"].backward_total()
        assert energy * 1e3 == pytest.approx(445.331, rel=0.10)

    def test_fc1_spills_and_dominates_fc_backprop(self, models, spec):
        model = models["E2E"]
        assert model._gradient_spills(spec.layer("FC1"))
        assert not model._gradient_spills(spec.layer("FC2"))
        costs = {c.layer: c for c in model.backward_costs()}
        fc_costs = [c for l, c in costs.items() if l.startswith("FC")]
        assert costs["FC1"].latency_s == max(c.latency_s for c in fc_costs)

    def test_nvm_write_flags(self, models):
        costs = {c.layer: c for c in models["E2E"].backward_costs()}
        for layer in ("CONV1", "CONV5", "FC1", "FC2"):
            assert costs[layer].nvm_write, layer
        for layer in ("FC3", "FC4", "FC5"):
            assert not costs[layer].nvm_write, layer

    def test_sram_resident_fc_is_two_passes(self, models, spec):
        """FC3/FC4 backward should be ~2x their forward streaming time."""
        fwd = {c.layer: c for c in models["E2E"].forward_costs()}
        bwd = {c.layer: c for c in models["E2E"].backward_costs()}
        for layer in ("FC3", "FC4"):
            ratio = bwd[layer].latency_s / fwd[layer].latency_s
            assert 1.7 < ratio < 2.4, layer

    def test_backward_more_expensive_than_forward(self, models):
        fwd_lat, fwd_e = models["E2E"].forward_total()
        bwd_lat, bwd_e = models["E2E"].backward_total()
        assert bwd_lat > 5 * fwd_lat
        assert bwd_e > 5 * fwd_e


class TestUpdateCost:
    def test_e2e_pays_nvm_write(self, models):
        e2e = models["E2E"].update_cost()
        l3 = models["L3"].update_cost()
        assert e2e.nvm_write and not l3.nvm_write
        assert e2e.latency_s > l3.latency_s
        assert e2e.energy_j > l3.energy_j

    def test_update_scales_with_trainable_weights(self, models):
        l2 = models["L2"].update_cost()
        l4 = models["L4"].update_cost()
        assert l4.latency_s > l2.latency_s


class TestTrainingModel:
    def test_fps_decreases_with_batch(self, models):
        table = fps_vs_batch_table(models)
        for name, by_batch in table.items():
            fps = [by_batch[n] for n in (4, 8, 16)]
            assert fps == sorted(fps, reverse=True), name

    def test_fps_ordering_l2_fastest_e2e_slowest(self, models):
        table = fps_vs_batch_table(models)
        for batch in (4, 8, 16):
            fps = [table[n][batch] for n in ("L2", "L3", "L4", "E2E")]
            assert fps == sorted(fps, reverse=True)

    def test_fig13a_anchors(self, models):
        """Batch 4: L4 ~15 fps, E2E ~3 fps (paper's bar heights)."""
        table = fps_vs_batch_table(models)
        assert 10.0 < table["L4"][4] < 18.0
        assert 1.5 < table["E2E"][4] < 4.0

    def test_l4_to_e2e_speedup_about_5x(self, models):
        table = fps_vs_batch_table(models)
        ratio = table["L4"][4] / table["E2E"][4]
        assert 4.0 < ratio < 7.0  # paper: 15/3 = 5

    def test_fig13b_savings_in_published_band(self, models):
        """The paper quotes 79.4 % / 83.45 % (its own Fig. 12 arithmetic
        gives 83.5 % latency / 79.4 % energy for L4); require both
        savings to land in the 75-90 % band."""
        savings = savings_vs_e2e(models["L4"], models["E2E"])
        assert 75.0 < savings["latency_decrease_pct"] < 90.0
        assert 75.0 < savings["energy_decrease_pct"] < 90.0

    def test_smaller_tails_save_more(self, models):
        s2 = savings_vs_e2e(models["L2"], models["E2E"])
        s4 = savings_vs_e2e(models["L4"], models["E2E"])
        assert s2["latency_decrease_pct"] > s4["latency_decrease_pct"]
        assert s2["energy_decrease_pct"] > s4["energy_decrease_pct"]

    def test_iteration_cost_arithmetic(self, models):
        trainer = TrainingIterationModel(models["L3"])
        cost = trainer.iteration_cost(4)
        assert cost.iteration_latency_s == pytest.approx(
            4 * cost.per_image_latency_s + cost.update_latency_s
        )
        assert cost.fps == pytest.approx(1.0 / cost.iteration_latency_s)
        assert cost.energy_per_frame_j == pytest.approx(
            cost.iteration_energy_j / 4
        )

    def test_batch_validation(self, models):
        with pytest.raises(ValueError):
            TrainingIterationModel(models["L3"]).iteration_cost(0)

    def test_velocity_coupling(self, models):
        """More fps -> faster safe flight (Fig. 1 + Fig. 13a)."""
        l3 = TrainingIterationModel(models["L3"])
        e2e = TrainingIterationModel(models["E2E"])
        assert l3.max_velocity(4, d_min=0.7) > 3 * e2e.max_velocity(4, d_min=0.7)


class TestSystolicSourcedCycles:
    """Per-iteration cycles now come from the systolic training-step
    model (analytic latencies kept — they carry the Fig. 12/13
    calibration), cross-checked against the analytic path within the
    physical bracket: the calibrated wall-clock must lie between the
    perfectly parallel and the fully serial execution of the systolic
    work cycles."""

    def test_cycles_sourced_by_default_and_analytic_fallback(self, models):
        sourced = TrainingIterationModel(models["L4"]).iteration_cost(4)
        assert sourced.cycle_source == "systolic"
        assert sourced.forward_cycles > 0
        assert sourced.backward_cycles > 0
        fallback = TrainingIterationModel(
            models["L4"], use_systolic=False
        ).iteration_cost(4)
        assert fallback.cycle_source == "analytic"
        assert fallback.forward_cycles == fallback.backward_cycles == 0
        # The calibrated latencies are identical either way: the
        # systolic source adds the cycle ledger, it does not move the
        # Fig. 13 anchors.
        assert fallback.fps == pytest.approx(sourced.fps)

    @pytest.mark.parametrize("name", ["L2", "L3", "L4", "E2E"])
    @pytest.mark.parametrize("batch", [4, 16])
    def test_analytic_latency_within_parallelism_bracket(
        self, models, name, batch
    ):
        model = models[name]
        cost = TrainingIterationModel(model).iteration_cost(batch)
        clock = model.array.clock_hz
        pes = model.array.total_pes
        # Analytic latencies are per image; the cycle ledger covers the
        # whole batch.
        analytic_fwd = cost.forward_latency_s * batch
        analytic_bwd = cost.backward_latency_s * batch
        assert cost.forward_cycles / clock / pes <= analytic_fwd
        assert analytic_fwd <= cost.forward_cycles / clock
        assert cost.backward_cycles / clock / pes <= analytic_bwd
        assert analytic_bwd <= cost.backward_cycles / clock

    def test_update_elements_match_transfer_config(self, models, spec):
        for name, model in models.items():
            cost = TrainingIterationModel(model).iteration_cost(4)
            assert cost.weight_update_elements == config_by_name(
                name
            ).trainable_weights(spec)

    def test_mac_bookkeeping_matches_spec(self, spec):
        """The systolic step's MAC counts are the spec's analytic MAC
        arithmetic: forward = spec MACs, backward = 2x the trainable
        layers' forward MACs (the dW and dX GEMMs)."""
        from repro.systolic import training_step_stats

        step = training_step_stats(spec, batch=1, train_last_k=None)
        assert step.total_macs == sum(
            l.macs for l in spec.layers
        ) + 2 * sum(l.macs for l in spec.layers)
        l4 = training_step_stats(spec, batch=1, train_last_k=4)
        trainable = spec.last_fc(4)
        assert sum(x.dw_macs + x.dx_macs for x in l4.layers) == 2 * sum(
            l.macs for l in trainable
        )


class TestCalibration:
    def test_unknown_mapping_type_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_CALIBRATION.conv_fwd_eff("IV")

    def test_conv_bwd_fallback(self):
        assert DEFAULT_CALIBRATION.conv_bwd_eff("CONV_X") == pytest.approx(3.3)

    def test_conv1_bwd_outlier_documented(self):
        assert DEFAULT_CALIBRATION.conv_bwd_eff("CONV1") > 50
