"""Tests for the pass schedule generator and the roofline model."""

import pytest

from repro.nn import modified_alexnet_spec
from repro.nn.specs import ConvSpec
from repro.perf import RooflineModel
from repro.systolic import build_conv_schedule


@pytest.fixture(scope="module")
def spec():
    return modified_alexnet_spec()


class TestConvSchedules:
    @pytest.mark.parametrize(
        "layer", ["CONV1", "CONV2", "CONV3", "CONV4", "CONV5"]
    )
    def test_work_conservation(self, spec, layer):
        """Every (output row, output channel) pair is produced exactly
        once across the schedule's final channel split."""
        conv = spec.layer(layer)
        schedule = build_conv_schedule(conv)
        covered = schedule.covered_output_rows()
        expected = {
            (row, ch)
            for row in range(conv.out_height)
            for ch in range(conv.out_channels)
        }
        assert covered == expected

    def test_pass_count_matches_mapping(self, spec):
        conv = spec.layer("CONV1")
        schedule = build_conv_schedule(conv)
        m = schedule.mapping
        assert len(schedule.passes) == m.row_passes * m.channel_passes * m.channel_split

    def test_conv1_schedule_structure(self, spec):
        schedule = build_conv_schedule(spec.layer("CONV1"))
        # 2 row passes x 2 channel passes, no channel split.
        assert len(schedule.passes) == 4
        first = schedule.passes[0]
        assert first.out_rows == (0, 32)
        assert first.out_channels == (0, 48)

    def test_conv2_channel_splits_interleaved(self, spec):
        schedule = build_conv_schedule(spec.layer("CONV2"))
        splits = {p.channel_split for p in schedule.passes}
        assert splits == {0, 1}

    def test_weight_bits_cover_all_filters(self, spec):
        """Across channel passes at a fixed row pass and split, every
        filter's rows stream at least once."""
        conv = spec.layer("CONV3")
        schedule = build_conv_schedule(conv)
        m = schedule.mapping
        per_filter_bits = conv.kernel**2 * (conv.in_channels // 2) * 16
        one_row_pass = [
            p for p in schedule.passes if p.out_rows[0] == 0 and p.channel_split == 0
        ]
        total = sum(p.weight_bits for p in one_row_pass)
        assert total >= conv.out_channels * per_filter_bits

    def test_input_bits_cover_receptive_field(self, spec):
        conv = spec.layer("CONV1")
        schedule = build_conv_schedule(conv)
        first = schedule.passes[0]
        # 32 output rows at stride 4 need 31*4+11 = 135 input rows
        # (the "135 rows" the paper quotes for Fig. 6a).
        expected_rows = 31 * 4 + 11
        assert first.input_bits == expected_rows * conv.in_width * 3 * 16

    def test_output_elements_accounting(self, spec):
        schedule = build_conv_schedule(spec.layer("CONV1"))
        total = sum(
            p.output_elements
            for p in schedule.passes
            if p.channel_split == schedule.mapping.channel_split - 1
        )
        conv = spec.layer("CONV1")
        assert total == conv.out_height * conv.out_channels


class TestRoofline:
    def test_ridge_point(self):
        model = RooflineModel()
        # 1024 GMAC/s peak over 16 GB/s streaming -> ridge at 64 MAC/B.
        assert model.peak_gmacs == pytest.approx(1024.0)
        assert model.stream_gbytes == pytest.approx(16.0)
        assert model.ridge_intensity == pytest.approx(64.0)

    def test_fc_layers_bandwidth_bound(self, spec):
        model = RooflineModel()
        for layer in spec.fc_layers:
            point = model.analyze_layer(layer)
            assert not point.compute_bound, layer.name
            # FC intensity ~0.5 MAC/byte -> attainable ~8 GMAC/s,
            # exactly the Fig. 12a plateau.
            if layer.macs > 1e6:
                assert 0.4 < point.operational_intensity < 0.6
                assert 6.0 < point.attainable_gmacs < 10.0

    def test_conv_layers_compute_bound(self, spec):
        model = RooflineModel()
        for layer in spec.conv_layers:
            point = model.analyze_layer(layer)
            assert point.compute_bound, layer.name
            assert point.operational_intensity > model.ridge_intensity

    def test_analyze_network_covers_all_layers(self, spec):
        points = RooflineModel().analyze_network(spec)
        assert len(points) == 10

    def test_attainable_bounded_by_peak(self, spec):
        model = RooflineModel()
        for point in model.analyze_network(spec):
            assert point.attainable_gmacs <= model.peak_gmacs + 1e-9

    def test_unknown_layer_type(self):
        with pytest.raises(TypeError):
            RooflineModel().analyze_layer(object())

    def test_roofline_explains_fig12_split(self, spec):
        """The roofline's bound/unbound split must coincide with the
        cost model's two regimes (streaming FC vs compute-bound conv)."""
        model = RooflineModel()
        for point in model.analyze_network(spec):
            if point.layer.startswith("FC"):
                assert not point.compute_bound
            else:
                assert point.compute_bound
