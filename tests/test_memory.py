"""Tests for the memory hierarchy: technologies, devices, mapping."""

import numpy as np
import pytest

from repro.memory import (
    CameraDram,
    GlobalBuffer,
    MemoryDevice,
    MemoryTechnology,
    NVM_TECHNOLOGIES,
    ON_DIE_SRAM,
    PCM_LIKE,
    RRAM_LIKE,
    STT_MRAM,
    SttMramStack,
    WeightMapper,
)
from repro.rl import config_by_name

MB = 1e6


class TestTechnology:
    def test_table1_stt_mram_values(self):
        # Table 1 verbatim.
        assert STT_MRAM.write_latency_s == 30e-9
        assert STT_MRAM.read_latency_s == 10e-9
        assert STT_MRAM.write_energy_per_bit_j == 4.5e-12
        assert STT_MRAM.read_energy_per_bit_j == 0.7e-12
        assert STT_MRAM.non_volatile

    def test_stt_mram_write_penalties(self):
        assert STT_MRAM.write_read_latency_ratio == pytest.approx(3.0)
        assert STT_MRAM.write_read_energy_ratio == pytest.approx(4.5 / 0.7)

    def test_sram_is_symmetric_and_volatile(self):
        assert ON_DIE_SRAM.write_read_latency_ratio == 1.0
        assert not ON_DIE_SRAM.non_volatile

    def test_ablation_corners_are_worse_than_stt(self):
        for tech in (PCM_LIKE, RRAM_LIKE):
            assert tech.write_latency_s > STT_MRAM.write_latency_s
            assert tech.write_energy_per_bit_j > STT_MRAM.write_energy_per_bit_j

    def test_nvm_registry(self):
        assert set(NVM_TECHNOLOGIES) == {"STT-MRAM", "PCM-like", "RRAM-like"}
        assert all(t.non_volatile for t in NVM_TECHNOLOGIES.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryTechnology("bad", 0.0, 1e-9, 1e-12, 1e-12, True)
        with pytest.raises(ValueError):
            MemoryTechnology("bad", 1e-9, 1e-9, -1e-12, 1e-12, True)


class TestDevices:
    def test_read_latency_arithmetic(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=1e9)
        result = dev.read(1_000_000)
        assert result.latency_s == pytest.approx(10e-9 + 1e-3)
        assert result.energy_j == pytest.approx(1e6 * 0.7e-12)

    def test_write_bandwidth_defaults_to_latency_ratio(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=3e9)
        assert dev.write_bandwidth_bps == pytest.approx(1e9)

    def test_write_energy(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=1e9)
        assert dev.write(1000).energy_j == pytest.approx(1000 * 4.5e-12)

    def test_counters_accumulate(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=1e9)
        dev.read(100)
        dev.read(200)
        dev.write(50)
        assert dev.counters.read_bits == 300
        assert dev.counters.write_bits == 50
        assert dev.counters.total_bits == 350
        assert dev.counters.total_energy_j > 0
        dev.reset_counters()
        assert dev.counters.total_bits == 0

    def test_negative_bits_rejected(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            dev.read(-1)

    def test_capacity_check(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=1e9)
        dev.check_fits(int(MB))
        with pytest.raises(ValueError, match="capacity"):
            dev.check_fits(int(2 * MB))

    def test_access_result_addition(self):
        dev = MemoryDevice("d", STT_MRAM, int(MB), read_bandwidth_bps=1e9)
        total = dev.read(100) + dev.write(100)
        assert total.bits == 200

    def test_stt_stack_paper_bandwidth(self):
        stack = SttMramStack()
        # 1024 I/Os x 2 Gb/s = 2 Tb/s aggregate.
        assert stack.read_bandwidth_bps == pytest.approx(2048e9)
        assert stack.write_bandwidth_bps < stack.read_bandwidth_bps

    def test_global_buffer_paper_sizes(self):
        buf = GlobalBuffer()
        assert buf.capacity_bytes == 30 * int(MB)
        assert buf.scratchpad_bytes == int(4.2 * MB)
        assert buf.weight_capacity_bytes == 30 * int(MB) - int(4.2 * MB)

    def test_global_buffer_scratchpad_validation(self):
        with pytest.raises(ValueError):
            GlobalBuffer(capacity_bytes=int(MB), scratchpad_bytes=int(2 * MB))

    def test_camera_dram_link(self):
        dram = CameraDram(link_gbytes_per_s=32.0)
        assert dram.read_bandwidth_bps == pytest.approx(256e9)


class TestWeightMapper:
    def test_fig5_l3_arithmetic(self, alexnet_spec):
        """The paper's proposed design: last three FC layers in SRAM."""
        report = WeightMapper(alexnet_spec, config_by_name("L3")).build()
        assert report.sram_weight_bytes / MB == pytest.approx(12.6, abs=0.05)
        assert report.sram_gradient_bytes / MB == pytest.approx(12.6, abs=0.05)
        assert report.sram_scratchpad_bytes / MB == pytest.approx(4.2, abs=0.01)
        assert report.sram_total_mb == pytest.approx(29.4, abs=0.1)
        assert report.nvm_mb == pytest.approx(99.8, abs=0.5)  # "100 MB"

    def test_l2_arithmetic(self, alexnet_spec):
        report = WeightMapper(alexnet_spec, config_by_name("L2")).build()
        # 4% of weights: FC4+FC5 = 2 103 301 weights = 4.2 MB.
        assert report.sram_weight_bytes / MB == pytest.approx(4.2, abs=0.05)

    def test_l4_needs_more_sram_than_paper_buffer(self, alexnet_spec):
        report = WeightMapper(alexnet_spec, config_by_name("L4")).build()
        assert report.sram_total_bytes > 30 * MB

    def test_placements_cover_all_layers(self, alexnet_spec):
        report = WeightMapper(alexnet_spec, config_by_name("L3")).build()
        assert len(report.placements) == 10
        assert sum(p.weights for p in report.placements) == alexnet_spec.total_weights

    def test_l3_device_assignment(self, alexnet_spec):
        report = WeightMapper(alexnet_spec, config_by_name("L3")).build()
        by_name = {p.layer: p for p in report.placements}
        for conv in ("CONV1", "CONV2", "CONV3", "CONV4", "CONV5"):
            assert by_name[conv].device == "nvm"
            assert not by_name[conv].trainable
        assert by_name["FC1"].device == "nvm"
        assert by_name["FC2"].device == "nvm"
        for fc in ("FC3", "FC4", "FC5"):
            assert by_name[fc].device == "sram"
            assert by_name[fc].trainable

    def test_e2e_keeps_proposed_residency_but_trains_all(self, alexnet_spec):
        report = WeightMapper(alexnet_spec, config_by_name("E2E")).build()
        by_name = {p.layer: p for p in report.placements}
        assert by_name["CONV1"].device == "nvm"
        assert by_name["CONV1"].trainable  # E2E trains NVM-resident layers
        assert by_name["FC5"].device == "sram"

    def test_nvm_resident_layers(self, alexnet_spec):
        mapper = WeightMapper(alexnet_spec, config_by_name("L2"))
        resident = mapper.nvm_resident_layers()
        assert "FC4" not in resident and "FC5" not in resident
        assert "FC3" in resident

    def test_validate_raises_on_small_sram(self, alexnet_spec):
        mapper = WeightMapper(alexnet_spec, config_by_name("L4"))
        with pytest.raises(ValueError, match="SRAM demand"):
            mapper.validate(int(30 * MB), int(128 * MB))

    def test_validate_raises_on_small_nvm(self, alexnet_spec):
        mapper = WeightMapper(alexnet_spec, config_by_name("L3"))
        with pytest.raises(ValueError, match="NVM demand"):
            mapper.validate(int(30 * MB), int(50 * MB))

    def test_validate_passes_paper_design(self, alexnet_spec):
        mapper = WeightMapper(alexnet_spec, config_by_name("L3"))
        report = mapper.validate(int(30 * MB), int(128 * MB))
        assert report.sram_total_mb < 30.0

    def test_scaled_spec_mapping(self, scaled_spec):
        report = WeightMapper(scaled_spec, config_by_name("L3")).build()
        assert report.sram_total_bytes < report.nvm_bytes + report.sram_total_bytes
