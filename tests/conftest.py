"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import paper_platform
from repro.nn import build_network, modified_alexnet_spec, scaled_drone_net_spec


@pytest.fixture(scope="session")
def alexnet_spec():
    """Paper-scale modified AlexNet spec (shape arithmetic only)."""
    return modified_alexnet_spec()


@pytest.fixture(scope="session")
def scaled_spec():
    """Reduced drone-net spec used for functional training."""
    return scaled_drone_net_spec(input_side=16)


@pytest.fixture()
def scaled_network(scaled_spec):
    """A freshly initialised functional network (seeded)."""
    return build_network(scaled_spec, seed=0)


@pytest.fixture()
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture()
def platform():
    """The paper's hardware platform."""
    return paper_platform()
