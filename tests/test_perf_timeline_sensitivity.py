"""Tests for the iteration timeline and calibration sensitivity."""

import pytest

from repro.nn import modified_alexnet_spec
from repro.perf import (
    DEFAULT_CALIBRATION,
    LayerCostModel,
    build_timeline,
    scale_calibration,
    sensitivity_sweep,
)
from repro.rl import config_by_name


@pytest.fixture(scope="module")
def spec():
    return modified_alexnet_spec()


@pytest.fixture(scope="module")
def e2e_model(spec):
    return LayerCostModel(spec, config_by_name("E2E"))


@pytest.fixture(scope="module")
def l3_model(spec):
    return LayerCostModel(spec, config_by_name("L3"))


class TestTimeline:
    def test_phase_sequence(self, l3_model):
        timeline = build_timeline(l3_model)
        kinds = [p.kind for p in timeline.phases]
        assert kinds[0] == "frame"
        assert kinds[-1] == "update"
        assert kinds.count("forward") == 10
        assert kinds.count("backward") == 3  # L3 trains FC3..FC5

    def test_phases_contiguous(self, e2e_model):
        timeline = build_timeline(e2e_model)
        for prev, nxt in zip(timeline.phases, timeline.phases[1:]):
            assert nxt.start_s == pytest.approx(prev.end_s)

    def test_total_close_to_cost_model(self, l3_model):
        """With prefetch the exposed stream time shrinks but the total
        must stay within the cost model's fwd+bwd+update envelope."""
        timeline = build_timeline(l3_model)
        fwd_lat, _ = l3_model.forward_total()
        bwd_lat, _ = l3_model.backward_total()
        update = l3_model.update_cost().latency_s
        lower = fwd_lat + bwd_lat + update
        # Streams add at most the un-hidden NVM stream time + frame DMA.
        assert lower <= timeline.total_s <= lower * 1.2 + 0.001

    def test_prefetch_hides_streams(self, e2e_model):
        with_prefetch = build_timeline(e2e_model, prefetch=True)
        without = build_timeline(e2e_model, prefetch=False)
        assert with_prefetch.hidden_stream_s > 0
        assert with_prefetch.total_s < without.total_s

    def test_by_kind_totals(self, l3_model):
        timeline = build_timeline(l3_model)
        by_kind = timeline.by_kind()
        assert set(by_kind) == {"frame", "forward", "backward", "update"}
        assert sum(by_kind.values()) == pytest.approx(timeline.total_s)

    def test_gantt_renders(self, l3_model):
        art = build_timeline(l3_model).gantt_ascii()
        assert "L3" in art
        assert "FC5'" in art
        assert "=" in art and "<" in art

    def test_gantt_width_validation(self, l3_model):
        with pytest.raises(ValueError):
            build_timeline(l3_model).gantt_ascii(width=5)

    def test_exposed_stream_property(self, e2e_model):
        timeline = build_timeline(e2e_model)
        for phase in timeline.phases:
            assert phase.exposed_stream_s >= 0.0
            assert phase.hidden_s <= phase.stream_s + 1e-12


class TestSensitivity:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scale_calibration(DEFAULT_CALIBRATION, 0.0)

    def test_scaling_scales_factors(self):
        scaled = scale_calibration(DEFAULT_CALIBRATION, 2.0)
        assert scaled.conv_forward_efficiency["I"] == pytest.approx(
            2 * DEFAULT_CALIBRATION.conv_forward_efficiency["I"]
        )
        assert scaled.conv_backward_fallback == pytest.approx(
            2 * DEFAULT_CALIBRATION.conv_backward_fallback
        )

    def test_overheads_never_below_one(self):
        scaled = scale_calibration(DEFAULT_CALIBRATION, 0.1)
        assert scaled.fc_forward_overhead >= 1.0
        assert scaled.fc_backward_overhead >= 1.0

    def test_sweep_needs_scales(self, spec):
        with pytest.raises(ValueError):
            sensitivity_sweep(spec, scales=())

    def test_conclusions_robust_to_25pct(self, spec):
        """The headline claims must survive +-25 % calibration error."""
        points = sensitivity_sweep(spec, scales=(0.75, 1.0, 1.25))
        for point in points:
            assert 70.0 < point.latency_saving_pct < 95.0, point
            assert 70.0 < point.energy_saving_pct < 95.0, point
            assert point.fps_ratio > 3.0, point  # the >3x velocity claim

    def test_unit_scale_matches_default(self, spec):
        point = sensitivity_sweep(spec, scales=(1.0,))[0]
        assert point.scale == 1.0
        assert point.latency_saving_pct == pytest.approx(81.8, abs=1.0)
