"""Tests for the CoDesign API, presets and the analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_bars,
    ascii_curve,
    format_fig12_table,
    format_mapping_table,
    format_table,
    write_csv,
)
from repro.core import CoDesign, paper_platform, paper_system_parameters
from repro.nn import modified_alexnet_spec
from repro.perf import PAPER_FIG12_FORWARD
from repro.rl import config_by_name
from repro.systolic import map_conv_layer


class TestPresets:
    def test_paper_platform_memories(self):
        platform = paper_platform()
        summary = platform.memory_summary()
        assert summary["buffer_mb"] == pytest.approx(30.0)
        assert summary["scratchpad_mb"] == pytest.approx(4.2)
        assert summary["nvm_mb"] == pytest.approx(128.0)

    def test_paper_platform_validation(self):
        with pytest.raises(ValueError):
            paper_platform(buffer_mb=2.0)
        with pytest.raises(ValueError):
            paper_platform(nvm_mb=0.0)

    def test_fig4b_parameters(self):
        params = paper_system_parameters()
        assert params.num_pes == 1024
        assert params.pe_grid == (32, 32)
        assert params.global_buffer_mb == 30.0
        assert params.scratchpad_mb == 4.2
        assert params.register_file_per_pe_kb == 4.5
        assert params.operating_voltage_v == 0.8
        assert params.clock_hz == 1e9
        assert params.arithmetic_precision_bits == 16
        assert params.pe_link_bits == 128
        assert params.nvm_ios == 1024
        assert params.nvm_io_gbps == 2.0
        assert params.peak_throughput_tops_per_w == 1.5
        assert params.technology == "NanGate 15nm FreePDK"

    def test_reset_counters(self):
        platform = paper_platform()
        platform.nvm.read(1000)
        platform.reset_counters()
        assert platform.nvm.counters.total_bits == 0


class TestCoDesign:
    def test_accepts_config_name(self, platform):
        cd = CoDesign("L3", platform=platform)
        assert cd.config.name == "L3"

    def test_l3_fits_paper_platform(self, platform):
        cd = CoDesign("L3", platform=platform)
        assert cd.mapping.sram_total_mb < 30.0

    def test_l4_rejected_on_paper_buffer(self, platform):
        with pytest.raises(ValueError, match="SRAM demand"):
            CoDesign("L4", platform=platform)

    def test_l4_fits_bigger_buffer(self):
        cd = CoDesign("L4", platform=paper_platform(buffer_mb=65.0))
        assert cd.mapping.sram_total_mb < 65.0

    def test_strict_false_skips_validation(self, platform):
        cd = CoDesign("L4", platform=platform, strict=False)
        assert cd.mapping.sram_total_mb > 30.0

    def test_evaluate_hardware_fields(self, platform):
        hw = CoDesign("L3", platform=platform).evaluate_hardware(batch_size=4)
        assert hw.config_name == "L3"
        assert hw.batch_size == 4
        assert hw.fps > 0
        assert hw.energy_per_frame_mj > 0
        assert set(hw.max_velocities) == {
            "Indoor 1", "Indoor 2", "Indoor 3",
            "Outdoor 1", "Outdoor 2", "Outdoor 3",
        }

    def test_velocity_scales_with_dmin(self, platform):
        hw = CoDesign("L3", platform=platform).evaluate_hardware(4)
        assert hw.max_velocities["Outdoor 3"] > hw.max_velocities["Indoor 1"]

    def test_layer_costs_directions(self, platform):
        costs = CoDesign("L2", platform=platform).layer_costs()
        assert len(costs["forward"]) == 10
        assert len(costs["backward"]) == 2

    def test_l3_faster_than_e2e(self, platform):
        l3 = CoDesign("L3", platform=platform).evaluate_hardware(4)
        e2e = CoDesign("E2E", platform=platform).evaluate_hardware(4)
        assert l3.fps > 4 * e2e.fps
        assert l3.energy_per_frame_mj < e2e.energy_per_frame_mj


class TestAnalysis:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_format_table_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_fig12_with_paper(self, platform):
        costs = CoDesign("E2E", platform=platform).cost_model.forward_costs()
        out = format_fig12_table(costs, PAPER_FIG12_FORWARD)
        assert "CONV1" in out and "total" in out and "paper" in out

    def test_format_fig12_without_paper(self, platform):
        costs = CoDesign("E2E", platform=platform).cost_model.forward_costs()
        out = format_fig12_table(costs)
        assert "Energy (mJ)" in out

    def test_format_mapping_table(self):
        spec = modified_alexnet_spec()
        out = format_mapping_table([map_conv_layer(c) for c in spec.conv_layers])
        assert "CONV1" in out and "Type" in out

    def test_ascii_curve(self):
        out = ascii_curve(np.linspace(0, 1, 100).tolist(), title="ramp")
        assert "ramp" in out
        assert "*" in out

    def test_ascii_curve_handles_nans(self):
        values = [float("nan")] * 5 + [1.0, 2.0, 3.0]
        assert "*" in ascii_curve(values)

    def test_ascii_curve_too_small(self):
        with pytest.raises(ValueError):
            ascii_curve([1.0, 2.0, 3.0], width=2)

    def test_ascii_bars(self):
        out = ascii_bars(["L2", "E2E"], [10.0, 2.0], unit=" fps")
        assert "L2" in out and "fps" in out

    def test_ascii_bars_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [0.0])

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3

    def test_write_csv_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "o.csv", ["x"], [[1, 2]])
