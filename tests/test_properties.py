"""Property-based tests (hypothesis) on cross-cutting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.env.fps import max_safe_velocity, min_fps_for_collision_avoidance
from repro.env.reward import center_window_reward
from repro.memory.devices import MemoryDevice
from repro.memory.technology import STT_MRAM
from repro.nn.layers import Dense, col2im, im2col
from repro.nn.specs import ConvSpec, FCSpec
from repro.rl.metrics import MovingAverage
from repro.systolic.conv_mapping import map_conv_layer
from repro.systolic.fc_mapping import map_fc_layer


@settings(max_examples=40)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(4, 10),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    pad=st.integers(0, 1),
    seed=st.integers(0, 100),
)
def test_im2col_col2im_adjoint(n, c, size, kernel, stride, pad, seed):
    """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.

    This is exactly the property convolution backprop relies on.
    """
    if size + 2 * pad < kernel:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, c, size, size))
    cols = im2col(x, kernel, kernel, stride, pad)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, kernel, kernel, stride, pad)))
    assert lhs == pytest.approx(rhs, rel=1e-9)


@settings(max_examples=30)
@given(
    h=st.integers(2, 16),
    w=st.integers(2, 16),
    fill=st.floats(0.0, 1.0),
    frac=st.floats(0.1, 1.0),
)
def test_center_reward_bounded_by_image_extremes(h, w, fill, frac):
    rng = np.random.default_rng(int(fill * 1e6) % 7919)
    img = np.clip(rng.normal(fill, 0.2, size=(h, w)), 0.0, 1.0)
    r = center_window_reward(img, window_fraction=frac)
    assert img.min() - 1e-12 <= r <= img.max() + 1e-12


@settings(max_examples=50)
@given(
    v=st.floats(0.1, 50.0),
    d_min=st.floats(0.1, 10.0),
)
def test_fps_velocity_inverse_roundtrip(v, d_min):
    fps = min_fps_for_collision_avoidance(v, d_min)
    assert max_safe_velocity(fps, d_min) == pytest.approx(v, rel=1e-9)


@settings(max_examples=50)
@given(
    window=st.integers(1, 20),
    values=st.lists(st.floats(-100, 100), min_size=1, max_size=60),
)
def test_moving_average_bounded_by_window_extremes(window, values):
    avg = MovingAverage(window)
    for i, v in enumerate(values):
        got = avg.add(v)
        tail = values[max(0, i - window + 1) : i + 1]
        assert min(tail) - 1e-9 <= got <= max(tail) + 1e-9


@settings(max_examples=40)
@given(
    in_f=st.integers(1, 500),
    out_f=st.integers(1, 500),
)
def test_fc_mapping_invariants(in_f, out_f):
    spec = FCSpec("f", in_features=in_f, out_features=out_f)
    m = map_fc_layer(spec)
    assert m.total_tiles >= 1
    assert 0 < m.active_pes <= 1024
    # Streaming cycles must cover the weight matrix at 8 words/cycle.
    assert m.stream_cycles() >= spec.weight_count * 16 // 128


@settings(max_examples=40)
@given(
    size=st.integers(8, 64),
    in_ch=st.integers(1, 64),
    out_ch=st.integers(1, 128),
    kernel=st.sampled_from([1, 3, 5, 7, 11]),
    stride=st.integers(1, 4),
)
def test_conv_mapping_invariants(size, in_ch, out_ch, kernel, stride):
    if kernel > size or kernel > 32:
        return
    spec = ConvSpec(
        "c", in_height=size, in_width=size, in_channels=in_ch,
        out_channels=out_ch, kernel=kernel, stride=stride, pad=0,
    )
    if spec.out_height <= 0 or spec.out_width <= 0:
        return
    m = map_conv_layer(spec)
    assert 1 <= m.filters_per_segment <= out_ch
    assert 0 < m.active_pes <= 1024
    assert 0 < m.compute_pes
    assert m.total_passes >= 1
    # Work conservation: passes x per-pass channel coverage >= out_ch.
    assert m.channel_passes * m.output_channels_per_pass >= out_ch
    assert m.ideal_cycles() >= spec.macs // 1024


@settings(max_examples=40)
@given(bits=st.integers(0, 10**9))
def test_memory_device_latency_monotone_in_bits(bits):
    dev = MemoryDevice("d", STT_MRAM, 10**9, read_bandwidth_bps=1e9)
    smaller = dev.read(bits).latency_s
    larger = dev.read(bits + 1024).latency_s
    assert larger > smaller
    assert smaller >= STT_MRAM.read_latency_s


@settings(max_examples=30)
@given(
    in_f=st.integers(1, 64),
    out_f=st.integers(1, 64),
    batch=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_dense_backward_shapes_always_match(in_f, out_f, batch, seed):
    rng = np.random.default_rng(seed)
    layer = Dense(in_f, out_f, rng=rng)
    x = rng.normal(size=(batch, in_f))
    out = layer.forward(x, training=True)
    dx = layer.backward(np.ones_like(out))
    assert dx.shape == x.shape
    assert layer.weight.grad.shape == layer.weight.value.shape


@settings(max_examples=30)
@given(
    weights=st.integers(1, 10**7),
    st_bits=st.sampled_from([8, 16, 32]),
)
def test_spec_weight_bytes_consistent(weights, st_bits):
    # total_weight_bytes must equal weights * bits / 8 for any layer mix.
    spec_layer = FCSpec("f", in_features=weights, out_features=1)
    from repro.nn.specs import NetworkSpec

    net = NetworkSpec("n", (spec_layer,), weight_bits=st_bits)
    assert net.total_weight_bytes == net.total_weights * st_bits // 8
