"""Tests for the seed-sweep statistics and the report aggregator."""

import numpy as np
import pytest

from repro.analysis import ARTIFACT_ORDER, build_report, write_report
from repro.rl import SeedStatistics, config_by_name, run_seed_sweep


class TestSeedStatistics:
    def test_single_seed(self):
        stats = SeedStatistics((5.0,))
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.confidence_interval() == (5.0, 5.0)

    def test_mean_std(self):
        stats = SeedStatistics((1.0, 2.0, 3.0))
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)

    def test_ci_shrinks_with_n(self):
        narrow = SeedStatistics(tuple([1.0, 3.0] * 8))
        wide = SeedStatistics((1.0, 3.0))
        lo_n, hi_n = narrow.confidence_interval()
        lo_w, hi_w = wide.confidence_interval()
        assert (hi_n - lo_n) < (hi_w - lo_w)

    def test_ci_validation(self):
        with pytest.raises(ValueError):
            SeedStatistics((1.0, 2.0)).confidence_interval(z=0.0)


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_seed_sweep(
            "indoor-apartment",
            seeds=(0, 1),
            configs=(config_by_name("L3"), config_by_name("E2E")),
            meta_iterations=200,
            adapt_iterations=200,
        )

    def test_structure(self, sweep):
        assert sweep.environment == "indoor-apartment"
        assert sweep.seeds == (0, 1)
        assert set(sweep.final_reward) == {"L3", "E2E"}
        assert all(s.n == 2 for s in sweep.final_reward.values())

    def test_values_finite(self, sweep):
        for stats in sweep.final_reward.values():
            assert all(np.isfinite(v) for v in stats.values)

    def test_normalised_sfd(self, sweep):
        norm = sweep.normalised_sfd("E2E")
        assert norm["E2E"] == pytest.approx(1.0)
        assert norm["L3"] > 0

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            run_seed_sweep("indoor-apartment", seeds=())


class TestReport:
    def test_build_report_with_artifacts(self, tmp_path):
        (tmp_path / ARTIFACT_ORDER[0][0]).write_text("cell | cell2\n1 | 2\n")
        report = build_report(tmp_path)
        assert "Fig. 1" in report
        assert "cell | cell2" in report
        assert "Missing artifacts" in report  # the others are absent

    def test_build_report_all_missing(self, tmp_path):
        report = build_report(tmp_path)
        assert report.count("* `") == len(ARTIFACT_ORDER)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_write_report(self, tmp_path):
        (tmp_path / ARTIFACT_ORDER[0][0]).write_text("data\n")
        out = write_report(tmp_path, tmp_path / "sub" / "REPORT.md")
        assert out.exists()
        assert "Regenerated paper artifacts" in out.read_text()

    def test_real_results_directory(self):
        """If benchmarks have run, the real report must assemble."""
        from pathlib import Path

        results = Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.is_dir():
            pytest.skip("benchmarks not yet run")
        report = build_report(results)
        assert "Fig. 12a" in report


class TestFailureInjection:
    """Corrupted inputs must be rejected loudly, not absorbed."""

    def test_nan_reward_rejected(self, scaled_network):
        from repro.env.episode import Transition
        from repro.rl import QLearningAgent

        agent = QLearningAgent(scaled_network, config=config_by_name("L2"))
        s = np.zeros((1, 16, 16))
        with pytest.raises(ValueError, match="non-finite reward"):
            agent.observe(Transition(s, 0, float("nan"), s, False))

    def test_inf_state_rejected(self, scaled_network):
        from repro.env.episode import Transition
        from repro.rl import QLearningAgent

        agent = QLearningAgent(scaled_network, config=config_by_name("L2"))
        bad = np.full((1, 16, 16), np.inf)
        with pytest.raises(ValueError, match="non-finite values"):
            agent.observe(Transition(bad, 0, 0.0, bad, False))

    def test_out_of_range_action_rejected(self, scaled_network):
        from repro.env.episode import Transition
        from repro.rl import QLearningAgent

        agent = QLearningAgent(scaled_network, config=config_by_name("L2"))
        s = np.zeros((1, 16, 16))
        with pytest.raises(ValueError, match="action out of range"):
            agent.observe(Transition(s, 17, 0.0, s, False))

    def test_energy_breakdown_sums_to_total(self):
        from repro.nn import modified_alexnet_spec
        from repro.perf import LayerCostModel
        from repro.rl import config_by_name as cbn

        model = LayerCostModel(modified_alexnet_spec(), cbn("E2E"))
        breakdown = model.energy_breakdown()
        assert breakdown["compute"] > 0
        assert breakdown["nvm"] > 0
        assert breakdown["sram"] > 0
        _, fwd_e = model.forward_total()
        _, bwd_e = model.backward_total()
        total = sum(breakdown.values())
        assert total == pytest.approx(fwd_e + bwd_e, rel=1e-6)
