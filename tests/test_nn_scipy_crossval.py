"""Cross-validation of the NumPy layers against SciPy references.

Independent implementations catching each other: our im2col convolution
and pooling are checked against scipy.signal/scipy.ndimage, which share
no code with repro.nn.  The systolic fast path (conv forward, FC
forward/backward, GEMM conv backward) is held to the same external
reference, since it shares its kernels with the layers.
"""

import numpy as np
import pytest

scipy_signal = pytest.importorskip("scipy.signal")
scipy_ndimage = pytest.importorskip("scipy.ndimage")

from repro.nn.layers import Conv2D, MaxPool2D
from repro.systolic import (
    conv_backward_gemm,
    simulate_conv_rowstationary,
    simulate_fc_backward_transposed,
    simulate_fc_forward,
)


class TestConvAgainstScipy:
    def test_single_channel_valid_conv(self, rng):
        x = rng.normal(size=(5, 7))
        kernel = rng.normal(size=(3, 3))
        layer = Conv2D(1, 1, 3, rng=rng)
        layer.weight.value = kernel[None, None]
        layer.bias.value = np.zeros(1)
        ours = layer.forward(x[None, None])[0, 0]
        # CNN "convolution" is correlation in scipy terms.
        ref = scipy_signal.correlate2d(x, kernel, mode="valid")
        assert np.allclose(ours, ref)

    def test_multi_channel_sums_correlations(self, rng):
        x = rng.normal(size=(3, 8, 8))
        weights = rng.normal(size=(2, 3, 3, 3))
        layer = Conv2D(3, 2, 3, rng=rng)
        layer.weight.value = weights
        layer.bias.value = np.zeros(2)
        ours = layer.forward(x[None])[0]
        for oc in range(2):
            ref = sum(
                scipy_signal.correlate2d(x[c], weights[oc, c], mode="valid")
                for c in range(3)
            )
            assert np.allclose(ours[oc], ref)

    def test_padded_conv(self, rng):
        x = rng.normal(size=(6, 6))
        kernel = rng.normal(size=(3, 3))
        layer = Conv2D(1, 1, 3, pad=1, rng=rng)
        layer.weight.value = kernel[None, None]
        layer.bias.value = np.zeros(1)
        ours = layer.forward(x[None, None])[0, 0]
        padded = np.pad(x, 1)
        ref = scipy_signal.correlate2d(padded, kernel, mode="valid")
        assert np.allclose(ours, ref)

    def test_strided_conv_subsamples(self, rng):
        x = rng.normal(size=(9, 9))
        kernel = rng.normal(size=(3, 3))
        layer = Conv2D(1, 1, 3, stride=2, rng=rng)
        layer.weight.value = kernel[None, None]
        layer.bias.value = np.zeros(1)
        ours = layer.forward(x[None, None])[0, 0]
        full = scipy_signal.correlate2d(x, kernel, mode="valid")
        assert np.allclose(ours, full[::2, ::2])


class TestSystolicFastPathAgainstScipy:
    """The systolic fast path against references that share no code."""

    def test_conv_forward_multichannel(self, rng):
        x = rng.normal(size=(3, 9, 9))
        weights = rng.normal(size=(2, 3, 3, 3))
        out, _ = simulate_conv_rowstationary(x, weights)
        for oc in range(2):
            ref = sum(
                scipy_signal.correlate2d(x[c], weights[oc, c], mode="valid")
                for c in range(3)
            )
            assert np.allclose(out[oc], ref)

    def test_conv_forward_padded_strided(self, rng):
        x = rng.normal(size=(1, 9, 9))
        kernel = rng.normal(size=(1, 1, 3, 3))
        out, _ = simulate_conv_rowstationary(x, kernel, stride=2, pad=1)
        padded = np.pad(x[0], 1)
        full = scipy_signal.correlate2d(padded, kernel[0, 0], mode="valid")
        assert np.allclose(out[0], full[::2, ::2])

    def test_conv_forward_batched(self, rng):
        x = rng.normal(size=(3, 1, 8, 8))
        kernel = rng.normal(size=(1, 1, 3, 3))
        out, _ = simulate_conv_rowstationary(x, kernel)
        for img in range(3):
            ref = scipy_signal.correlate2d(x[img, 0], kernel[0, 0], mode="valid")
            assert np.allclose(out[img, 0], ref)

    def test_fc_forward_and_backward(self, rng):
        m = rng.normal(size=(20, 30))
        v_in = rng.normal(size=20)
        v_out = rng.normal(size=30)
        # scipy.linalg.blas is an independent GEMV entry point.
        import scipy.linalg.blas as blas

        fwd = simulate_fc_forward(v_in, m)
        bwd = simulate_fc_backward_transposed(v_out, m)
        assert np.allclose(fwd.output, blas.dgemv(1.0, m, v_in, trans=1))
        assert np.allclose(bwd.output, blas.dgemv(1.0, m, v_out, trans=0))

    def test_conv_backward_input_grad(self, rng):
        """dX of a stride-1 conv is the *full* correlation of the
        upstream gradient with the 180deg-rotated kernel."""
        x = rng.normal(size=(1, 1, 8, 8))
        kernel = rng.normal(size=(1, 1, 3, 3))
        grad_out = rng.normal(size=(1, 1, 6, 6))
        result = conv_backward_gemm(x, kernel, grad_out)
        flipped = kernel[0, 0, ::-1, ::-1]
        ref = scipy_signal.correlate2d(
            np.pad(grad_out[0, 0], 2), flipped, mode="valid"
        )
        assert np.allclose(result.input_grad[0, 0], ref)

    def test_conv_backward_weight_grad(self, rng):
        """dW is the valid correlation of the input with the gradient."""
        x = rng.normal(size=(1, 1, 8, 8))
        kernel = rng.normal(size=(1, 1, 3, 3))
        grad_out = rng.normal(size=(1, 1, 6, 6))
        result = conv_backward_gemm(x, kernel, grad_out)
        ref = scipy_signal.correlate2d(x[0, 0], grad_out[0, 0], mode="valid")
        assert np.allclose(result.weight_grad[0, 0], ref)


class TestPoolAgainstScipy:
    def test_non_overlapping_pool(self, rng):
        x = rng.normal(size=(8, 8))
        ours = MaxPool2D(2, 2).forward(x[None, None])[0, 0]
        ref = scipy_ndimage.maximum_filter(x, size=2, origin=(-1, -1))[::2, ::2][
            : ours.shape[0], : ours.shape[1]
        ]
        assert np.allclose(ours, ref)

    def test_overlapping_alexnet_pool(self, rng):
        x = rng.normal(size=(13, 13))
        ours = MaxPool2D(3, 2).forward(x[None, None])[0, 0]
        # Reference: explicit window maxima.
        expected = np.array(
            [
                [x[i : i + 3, j : j + 3].max() for j in range(0, 11, 2)]
                for i in range(0, 11, 2)
            ]
        )
        assert np.allclose(ours, expected)
