"""Cross-validation of the NumPy layers against SciPy references.

Independent implementations catching each other: our im2col convolution
and pooling are checked against scipy.signal/scipy.ndimage, which share
no code with repro.nn.
"""

import numpy as np
import pytest

scipy_signal = pytest.importorskip("scipy.signal")
scipy_ndimage = pytest.importorskip("scipy.ndimage")

from repro.nn.layers import Conv2D, MaxPool2D


class TestConvAgainstScipy:
    def test_single_channel_valid_conv(self, rng):
        x = rng.normal(size=(5, 7))
        kernel = rng.normal(size=(3, 3))
        layer = Conv2D(1, 1, 3, rng=rng)
        layer.weight.value = kernel[None, None]
        layer.bias.value = np.zeros(1)
        ours = layer.forward(x[None, None])[0, 0]
        # CNN "convolution" is correlation in scipy terms.
        ref = scipy_signal.correlate2d(x, kernel, mode="valid")
        assert np.allclose(ours, ref)

    def test_multi_channel_sums_correlations(self, rng):
        x = rng.normal(size=(3, 8, 8))
        weights = rng.normal(size=(2, 3, 3, 3))
        layer = Conv2D(3, 2, 3, rng=rng)
        layer.weight.value = weights
        layer.bias.value = np.zeros(2)
        ours = layer.forward(x[None])[0]
        for oc in range(2):
            ref = sum(
                scipy_signal.correlate2d(x[c], weights[oc, c], mode="valid")
                for c in range(3)
            )
            assert np.allclose(ours[oc], ref)

    def test_padded_conv(self, rng):
        x = rng.normal(size=(6, 6))
        kernel = rng.normal(size=(3, 3))
        layer = Conv2D(1, 1, 3, pad=1, rng=rng)
        layer.weight.value = kernel[None, None]
        layer.bias.value = np.zeros(1)
        ours = layer.forward(x[None, None])[0, 0]
        padded = np.pad(x, 1)
        ref = scipy_signal.correlate2d(padded, kernel, mode="valid")
        assert np.allclose(ours, ref)

    def test_strided_conv_subsamples(self, rng):
        x = rng.normal(size=(9, 9))
        kernel = rng.normal(size=(3, 3))
        layer = Conv2D(1, 1, 3, stride=2, rng=rng)
        layer.weight.value = kernel[None, None]
        layer.bias.value = np.zeros(1)
        ours = layer.forward(x[None, None])[0, 0]
        full = scipy_signal.correlate2d(x, kernel, mode="valid")
        assert np.allclose(ours, full[::2, ::2])


class TestPoolAgainstScipy:
    def test_non_overlapping_pool(self, rng):
        x = rng.normal(size=(8, 8))
        ours = MaxPool2D(2, 2).forward(x[None, None])[0, 0]
        ref = scipy_ndimage.maximum_filter(x, size=2, origin=(-1, -1))[::2, ::2][
            : ours.shape[0], : ours.shape[1]
        ]
        assert np.allclose(ours, ref)

    def test_overlapping_alexnet_pool(self, rng):
        x = rng.normal(size=(13, 13))
        ours = MaxPool2D(3, 2).forward(x[None, None])[0, 0]
        # Reference: explicit window maxima.
        expected = np.array(
            [
                [x[i : i + 3, j : j + 3].max() for j in range(0, 11, 2)]
                for i in range(0, 11, 2)
            ]
        )
        assert np.allclose(ours, expected)
