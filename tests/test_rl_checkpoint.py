"""Tests for experiment checkpointing."""

import numpy as np
import pytest

from repro.rl import load_result, meta_train, online_adapt, save_result, config_by_name


@pytest.fixture(scope="module")
def result():
    return meta_train("meta-indoor", iterations=150, seed=0, image_side=16)


class TestRoundTrip:
    def test_metadata_preserved(self, result, tmp_path):
        save_result(result, tmp_path / "ckpt")
        loaded = load_result(tmp_path / "ckpt")
        assert loaded.config_name == result.config_name
        assert loaded.environment == result.environment
        assert loaded.safe_flight_distance == result.safe_flight_distance
        assert loaded.crash_count == result.crash_count
        assert loaded.iterations == result.iterations

    def test_weights_bit_identical(self, result, tmp_path):
        save_result(result, tmp_path / "ckpt")
        loaded = load_result(tmp_path / "ckpt")
        assert set(loaded.final_state) == set(result.final_state)
        for key, value in result.final_state.items():
            assert np.array_equal(loaded.final_state[key], value), key

    def test_curves_preserved(self, result, tmp_path):
        save_result(result, tmp_path / "ckpt")
        loaded = load_result(tmp_path / "ckpt")
        assert np.allclose(
            np.nan_to_num(loaded.curves.reward_curve),
            np.nan_to_num(result.curves.reward_curve),
        )
        assert len(loaded.curves.loss_curve) == len(result.curves.loss_curve)

    def test_loaded_weights_usable_for_adaptation(self, result, tmp_path):
        """The checkpoint must be a valid TL download source."""
        save_result(result, tmp_path / "ckpt")
        loaded = load_result(tmp_path / "ckpt")
        adapted = online_adapt(
            loaded.final_state,
            "indoor-apartment",
            config_by_name("L2"),
            iterations=100,
            image_side=16,
        )
        assert adapted.iterations == 100

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result(tmp_path / "nothing-here")

    def test_directory_created(self, result, tmp_path):
        out = save_result(result, tmp_path / "deep" / "nested" / "ckpt")
        assert out.is_dir()
