"""Tests for the Q-learning agent and the Fig. 10 metrics."""

import numpy as np
import pytest

from repro.env.episode import Transition
from repro.nn import Dense, Network, ReLU
from repro.rl import EpsilonSchedule, LearningCurves, MovingAverage, QLearningAgent, ReturnTracker
from repro.rl.transfer import config_by_name


def vector_net(seed=0, inputs=4, actions=3):
    rng = np.random.default_rng(seed)
    return Network(
        [
            Dense(inputs, 16, name="FC1", rng=rng),
            ReLU(),
            Dense(16, 8, name="FC2", rng=rng),
            ReLU(),
            Dense(8, actions, name="FC3", rng=rng),
        ]
    )


def fill_agent(agent, rng, n=64, inputs=4, actions=3):
    for _ in range(n):
        s = rng.normal(size=(inputs,))
        a = int(rng.integers(actions))
        r = float(s[a % inputs])  # reward correlated with state
        agent.observe(Transition(s, a, r, rng.normal(size=(inputs,)), False))


class TestEpsilonSchedule:
    def test_linear_decay(self):
        eps = EpsilonSchedule(1.0, 0.0, 10)
        assert eps.value(0) == 1.0
        assert eps.value(5) == pytest.approx(0.5)
        assert eps.value(10) == 0.0
        assert eps.value(1000) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonSchedule(0.5, 0.9, 10)
        with pytest.raises(ValueError):
            EpsilonSchedule(1.0, 0.1, 0)


class TestQLearningAgent:
    def make_agent(self, **kwargs):
        net = vector_net()
        defaults = dict(
            config=config_by_name("E2E"),
            num_actions=3,
            batch_size=8,
            seed=0,
        )
        defaults.update(kwargs)
        return QLearningAgent(net, **defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_agent(gamma=1.0)
        with pytest.raises(ValueError):
            self.make_agent(batch_size=0)
        with pytest.raises(ValueError):
            self.make_agent(grad_clip=0.0)

    def test_greedy_action_is_argmax(self, rng):
        agent = self.make_agent()
        state = rng.normal(size=(4,))
        action = agent.select_action(state, greedy=True)
        assert action == int(np.argmax(agent.q_values(state)))

    def test_exploration_at_high_epsilon(self):
        agent = self.make_agent(
            epsilon=EpsilonSchedule(1.0, 1.0, 1), seed=3
        )
        state = np.zeros(4)
        actions = {agent.select_action(state) for _ in range(60)}
        assert len(actions) == 3  # fully random policy visits all actions

    def test_not_ready_without_batch(self):
        agent = self.make_agent()
        assert not agent.ready_to_train()
        with pytest.raises(RuntimeError):
            agent.train_step()

    def test_train_step_returns_loss(self, rng):
        agent = self.make_agent()
        fill_agent(agent, rng)
        loss = agent.train_step()
        assert np.isfinite(loss) and loss >= 0.0
        assert agent.train_count == 1

    def test_training_reduces_td_error(self, rng):
        # Terminal-only transitions make the Bellman target a fixed
        # regression target, so the loss must decrease monotonically
        # in expectation (bootstrapped targets would drift as Q grows).
        agent = self.make_agent(learning_rate=5e-3)
        for _ in range(128):
            s = rng.normal(size=(4,))
            a = int(rng.integers(3))
            r = float(np.tanh(s[a % 4]))
            agent.observe(Transition(s, a, r, s, True))
        first = np.mean([agent.train_step() for _ in range(5)])
        for _ in range(150):
            agent.train_step()
        last = np.mean([agent.train_step() for _ in range(5)])
        assert last < first

    def test_partial_config_freezes_prefix(self, rng):
        agent = self.make_agent(config=config_by_name("L2"))
        fc1 = [l for l in agent.network.layers if l.name == "FC1"][0]
        before = fc1.weight.value.copy()
        fill_agent(agent, rng)
        for _ in range(10):
            agent.train_step()
        assert np.array_equal(fc1.weight.value, before)

    def test_e2e_updates_prefix(self, rng):
        agent = self.make_agent()
        fc1 = [l for l in agent.network.layers if l.name == "FC1"][0]
        before = fc1.weight.value.copy()
        fill_agent(agent, rng)
        for _ in range(10):
            agent.train_step()
        assert not np.array_equal(fc1.weight.value, before)

    def test_gradient_clipping_bounds_norm(self, rng):
        agent = self.make_agent(grad_clip=1e-6)
        fill_agent(agent, rng)
        states, actions, rewards, next_states, dones = agent.replay.sample(
            8, agent.rng
        )
        # Manually run the pieces to inspect the clipped gradient.
        next_q = agent.network.predict(next_states)
        targets = rewards + agent.gamma * (1 - dones) * next_q.max(axis=1)
        q = agent.network.forward(states, training=True)
        from repro.nn.losses import q_learning_loss

        _, grad = q_learning_loss(q, actions, targets)
        agent.network.zero_grad()
        agent.network.backward(grad, first_trainable=agent.first_trainable)
        agent._clip_gradients()
        total = np.sqrt(
            sum(float(np.sum(p.grad**2)) for p in agent.optimizer.params)
        )
        assert total <= 1e-6 + 1e-12

    def test_terminal_states_have_no_bootstrap(self, rng):
        """A terminal transition's target must be the bare reward."""
        net = vector_net()
        agent = QLearningAgent(
            net, config=config_by_name("E2E"), num_actions=3, batch_size=2, seed=0
        )
        s = rng.normal(size=(4,))
        agent.observe(Transition(s, 0, -1.0, s, True))
        agent.observe(Transition(s, 1, -1.0, s, True))
        states, actions, rewards, next_states, dones = agent.replay.sample(
            2, agent.rng
        )
        next_q = agent.network.predict(next_states)
        targets = rewards + agent.gamma * (1 - dones) * next_q.max(axis=1)
        assert np.allclose(targets, -1.0)


class TestMovingAverage:
    def test_exact_window(self):
        avg = MovingAverage(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            avg.add(v)
        assert avg.value == pytest.approx(3.0)

    def test_empty_is_nan(self):
        assert np.isnan(MovingAverage(3).value)

    def test_partial_fill(self):
        avg = MovingAverage(10)
        avg.add(2.0)
        avg.add(4.0)
        assert avg.value == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_matches_numpy_rolling(self, rng):
        data = rng.normal(size=200)
        avg = MovingAverage(15)
        for i, v in enumerate(data):
            got = avg.add(float(v))
            expected = data[max(0, i - 14) : i + 1].mean()
            assert got == pytest.approx(expected)


class TestReturnTracker:
    def test_per_flight_mean(self):
        t = ReturnTracker(window=5)
        for r in (1.0, 1.0, 4.0):
            t.add_reward(r)
        t.end_episode()
        assert t.value == pytest.approx(2.0)

    def test_moving_average_across_flights(self):
        t = ReturnTracker(window=2)
        t.add_reward(2.0)
        t.end_episode()
        t.add_reward(4.0)
        t.end_episode()
        assert t.value == pytest.approx(3.0)

    def test_empty_episode_ignored(self):
        t = ReturnTracker()
        t.end_episode()
        assert np.isnan(t.value)


class TestLearningCurves:
    def test_records_all_series(self):
        curves = LearningCurves(reward_window=5)
        for i in range(10):
            curves.record_step(reward=0.5, done=(i == 4), loss=0.1)
        assert len(curves.reward_curve) == 10
        assert len(curves.return_curve) == 10
        assert len(curves.loss_curve) == 10

    def test_final_reward_tail_mean(self):
        curves = LearningCurves(reward_window=2)
        for r in (0.0, 0.0, 0.0, 1.0, 1.0):
            curves.record_step(r, False, None)
        assert curves.final_reward(tail_fraction=0.2) == pytest.approx(1.0)

    def test_converged_on_flat_curve(self):
        curves = LearningCurves(reward_window=3)
        for _ in range(50):
            curves.record_step(0.8, False, None)
        assert curves.converged()

    def test_not_converged_on_ramp(self):
        curves = LearningCurves(reward_window=2)
        for i in range(50):
            curves.record_step(float(i), False, None)
        assert not curves.converged(tolerance=0.05)
