"""Fig. 9: the test environments (ASCII renders replacing the paper's
Unreal Engine screenshots).

Also validates the structural facts the environments must carry: the
four Fig. 9 worlds exist with the right indoor/outdoor split, the d_min
ladder of Fig. 1c is complete across the extended registry, and every
world spawns a collision-free drone.
"""

import numpy as np

from conftest import save_artifact
from repro.env import make_environment, render_world_ascii
from repro.env.generators import TEST_ENVIRONMENTS, EXTRA_ENVIRONMENTS

EXPECTED_DMIN = {
    "indoor-apartment": 0.7,
    "indoor-house": 1.0,
    "indoor-warehouse": 1.3,
    "outdoor-forest": 3.0,
    "outdoor-suburb": 4.0,
    "outdoor-town": 5.0,
}


def render_all():
    worlds = {}
    for name in list(TEST_ENVIRONMENTS) + list(EXTRA_ENVIRONMENTS):
        worlds[name] = make_environment(name, seed=0)
    return worlds


def test_fig09_environments(benchmark, results_dir):
    worlds = benchmark(render_all)

    for name, world in worlds.items():
        assert world.d_min == EXPECTED_DMIN[name], name
        assert world.is_indoor == name.startswith("indoor"), name
        pose = world.random_free_pose(np.random.default_rng(0), clearance=0.5)
        assert world.clearance(pose.x, pose.y) >= 0.5

    # Clutter ordering follows the d_min ladder: indoor worlds are
    # denser (obstacles per square metre) than outdoor ones.
    densities = {
        name: w.obstacle_count() / w.area for name, w in worlds.items()
    }
    assert min(
        densities[n] for n in worlds if n.startswith("indoor")
    ) > max(densities[n] for n in worlds if n.startswith("outdoor"))

    art = []
    for name, world in worlds.items():
        art.append(render_world_ascii(world, width=68, height=22))
        art.append("")
    save_artifact(results_dir, "fig09_environments.txt", "\n".join(art))
