"""Measured wall-clock scaling of the process-parallel executor.

The sharding suite (``test_sharding_throughput.py``) pins the
*modelled* K-array payoff in cycles; this suite pins the *measured*
one in host seconds.  Three measurements:

* **Worker scaling** — the same K=4 sample-sharded forward batch timed
  at ``workers`` in {1, 2, 4}: the serial path versus the persistent
  spawn pool with shared-memory transport.  Every configuration must
  produce bitwise-identical Q values; the best parallel configuration
  must clear a speedup floor that adapts to the host's core count
  (``WALLCLOCK_SPEEDUP_FLOOR`` overrides; a single-core host only
  checks that pool overhead is not catastrophic).
* **Cost-oracle memoisation** — hit/miss counters of the closed-form
  cycle oracles over a steady-state forward/train loop, read back
  through the ``repro.obs`` metrics registry; the overall hit rate
  must reach the acceptance floor of 0.9.
* **Accumulator linearity** — the :class:`StepCostAccumulator`
  add+peek loop at N and 10N records; the time ratio must stay
  near-linear (the O(K²) list-merge it replaced would blow up 100x).

Artifacts: ``wallclock_scaling.txt`` and ``BENCH_wallclock.json``
(records core count, floor and floor provenance so archived numbers
from different hosts are comparable).
"""

import os
import time

import numpy as np

from _artifacts import write_artifacts
from repro.analysis import format_table
from repro.backend import ShardedBackend, StepCost, StepCostAccumulator
from repro.nn import build_network, scaled_drone_net_spec
from repro.obs import MetricsRegistry, observed
from repro.parallel import clear_memo_caches, cpu_count, publish_memo_metrics
from repro.systolic.training import network_training_step_cost

SIDE = 16
BATCH = 256
SHARDS = 4
WORKER_CONFIGS = (1, 2, 4)
#: Timed forward passes per configuration (best of ``TIMING_REPEATS``).
FORWARDS = 5
TIMING_REPEATS = 3
#: Acceptance floor on the steady-state oracle hit rate.
MEMO_HIT_RATE_FLOOR = 0.9
#: Accumulator time ratio bound for a 10x record-count increase
#: (linear would be ~10x; the old quadratic merge was ~100x).
ACCUMULATOR_RATIO_CEILING = 40.0


def _speedup_floor() -> tuple[float, str]:
    """The measured-speedup floor and where it came from.

    CI runners have >= 4 cores and must demonstrate the real payoff;
    a laptop gets a softer bound; a single-core host can only check
    that the pool's overhead is not catastrophic (spawn transport on
    one core *costs* time — there is nothing to parallelise onto).
    """
    env = os.environ.get("WALLCLOCK_SPEEDUP_FLOOR")
    if env is not None:
        return float(env), "env:WALLCLOCK_SPEEDUP_FLOOR"
    cores = cpu_count()
    if cores >= 4:
        return 2.0, f"cores={cores}"
    if cores >= 2:
        return 1.2, f"cores={cores}"
    return 0.35, f"cores={cores} (overhead bound only)"


def _timed_forwards(backend, states) -> float:
    """Best-of-N seconds for ``FORWARDS`` back-to-back forward passes."""
    best = float("inf")
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        for _ in range(FORWARDS):
            backend.forward_batch(states)
        best = min(best, time.perf_counter() - start)
    return best


def _accumulator_seconds(n: int) -> float:
    """Seconds to fold ``n`` records with a ``total_cycles`` peek each."""
    cost = StepCost(
        backend="systolic", states=4, macs=1000,
        layer_cycles={"conv1": 120, "conv2": 340, "fc1": 80},
    )
    best = float("inf")
    for _ in range(TIMING_REPEATS):
        acc = StepCostAccumulator("systolic")
        start = time.perf_counter()
        for _ in range(n):
            acc.add(cost)
            _ = acc.total_cycles
        best = min(best, time.perf_counter() - start)
        acc.drain()
    return best


def test_wallclock_scaling(benchmark, results_dir):
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
    rng = np.random.default_rng(0)
    states = rng.uniform(0.0, 1.0, size=(BATCH, 1, SIDE, SIDE))
    floor, floor_source = _speedup_floor()

    def run():
        # --- worker scaling: measured seconds at each pool width ----
        timings = {}
        outputs = {}
        for workers in WORKER_CONFIGS:
            backend = ShardedBackend(
                network, shards=SHARDS, shard="sample", workers=workers
            )
            # Warm-up spawns the pool and ships the weight snapshot;
            # the timed region sees only steady-state forwards.
            q, _ = backend.forward_batch(states)
            outputs[workers] = q
            timings[workers] = _timed_forwards(backend, states)
        scaling = {
            str(w): {
                "workers": w,
                "seconds": timings[w],
                "speedup": timings[1] / timings[w],
            }
            for w in WORKER_CONFIGS
        }

        # --- cost-oracle memoisation at steady state ----------------
        clear_memo_caches()
        registry = MetricsRegistry()
        serial = ShardedBackend(network, shards=SHARDS, shard="sample")
        with observed(registry=registry):
            for _ in range(20):
                serial.forward_batch(states)
                network_training_step_cost(network, (1, SIDE, SIDE), BATCH)
            publish_memo_metrics()
        gauges = registry.snapshot()["gauges"]
        memo = {
            "hit_rate_overall": gauges["repro_memo_hit_rate_overall"],
            "gauges": {
                k: v for k, v in gauges.items() if k.startswith("repro_memo")
            },
        }

        # --- accumulator linearity ----------------------------------
        base_n = 300
        small = _accumulator_seconds(base_n)
        large = _accumulator_seconds(10 * base_n)
        accumulator = {
            "n": base_n,
            "seconds_n": small,
            "seconds_10n": large,
            "ratio": large / small if small else 0.0,
        }
        return {
            "scaling": scaling,
            "outputs": outputs,
            "memo": memo,
            "accumulator": accumulator,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # workers=1 and every pool width serve the same bits.
    outputs = results.pop("outputs")
    for workers in WORKER_CONFIGS[1:]:
        assert np.array_equal(outputs[1], outputs[workers]), workers

    rows = [
        [r["workers"], round(r["seconds"] * 1e3, 2), round(r["speedup"], 2)]
        for r in results["scaling"].values()
    ]
    memo = results["memo"]
    acc = results["accumulator"]
    body = (
        f"K={SHARDS} sample-sharded forward, batch={BATCH}, "
        f"{FORWARDS} passes per timing (best of {TIMING_REPEATS})\n"
        f"host cores: {cpu_count()}  speedup floor: {floor} "
        f"({floor_source})\n\n"
        + format_table(["Workers", "Seconds (ms)", "Speedup"], rows)
        + f"\n\ncost-oracle memo hit rate (steady state): "
        f"{memo['hit_rate_overall']:.3f} (floor {MEMO_HIT_RATE_FLOOR})\n"
        f"accumulator add+peek: {acc['n']} recs {acc['seconds_n'] * 1e3:.2f} "
        f"ms, {10 * acc['n']} recs {acc['seconds_10n'] * 1e3:.2f} ms "
        f"(ratio {acc['ratio']:.1f}x, ceiling "
        f"{ACCUMULATOR_RATIO_CEILING:.0f}x)"
    )
    write_artifacts(
        results_dir,
        "wallclock_scaling.txt",
        body,
        "BENCH_wallclock.json",
        {
            "batch": BATCH,
            "shards": SHARDS,
            "cpu_count": cpu_count(),
            "speedup_floor": floor,
            "floor_source": floor_source,
            **results,
        },
    )

    best = max(
        r["speedup"]
        for r in results["scaling"].values()
        if r["workers"] > 1
    )
    assert best >= floor, (best, floor, floor_source)
    assert memo["hit_rate_overall"] >= MEMO_HIT_RATE_FLOOR
    assert acc["ratio"] <= ACCUMULATOR_RATIO_CEILING, acc
