"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
asserts its shape properties, and writes the regenerated artifact to
``benchmarks/results/`` so the paper-vs-measured comparison survives the
run (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import paper_platform
from repro.nn import modified_alexnet_spec
from repro.perf import LayerCostModel
from repro.rl import config_by_name

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting regenerated figures/tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def spec():
    """Paper-scale modified AlexNet."""
    return modified_alexnet_spec()


@pytest.fixture(scope="session")
def platform():
    """The paper's platform (30 MB SRAM design point)."""
    return paper_platform()


@pytest.fixture(scope="session")
def cost_models(spec):
    """Layer cost models for all four topologies."""
    return {
        name: LayerCostModel(spec, config_by_name(name))
        for name in ("L2", "L3", "L4", "E2E")
    }


def save_artifact(results_dir: Path, name: str, content: str) -> None:
    """Persist one regenerated table/figure as text."""
    (results_dir / name).write_text(content + "\n")
