"""Fig. 10: cumulative reward and return curves per topology.

Runs the scaled TL + online-RL protocol in one indoor and one outdoor
test environment and regenerates the four learning curves per
environment.  Shape criteria: every topology learns (curves are finite,
rewards clearly above the crash floor) and the TL topologies are
comparable to E2E — the paper's qualitative claim.
"""

import numpy as np

from conftest import save_artifact
from repro.analysis import ascii_curve, format_table
from repro.rl import run_transfer_experiment

ENVS = ("indoor-apartment", "outdoor-forest")
ITERATIONS = 1200


def run_all():
    return {
        env: run_transfer_experiment(
            env,
            meta_iterations=ITERATIONS,
            adapt_iterations=ITERATIONS,
            seed=0,
            image_side=16,
        )
        for env in ENVS
    }


def test_fig10_learning_curves(benchmark, results_dir):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    summary_rows = []
    for env, by_config in results.items():
        rewards = {}
        for name, result in by_config.items():
            curve = np.asarray(result.curves.reward_curve, dtype=float)
            assert np.isfinite(curve[~np.isnan(curve)]).all()
            final = result.final_reward
            rewards[name] = final
            # Learning happened: the tail average sits well above the
            # crash reward and above zero.
            assert final > 0.0, (env, name)
            summary_rows.append(
                [env, name, round(final, 3), round(result.curves.returns.value, 3),
                 round(result.safe_flight_distance, 2)]
            )
        # Comparability (Fig. 10's message): every TL topology reaches a
        # final reward within a factor-2 band of E2E.
        for name in ("L2", "L3", "L4"):
            assert rewards[name] > 0.5 * rewards["E2E"], (env, name)

    artifact = [
        format_table(
            ["Environment", "Config", "Final reward", "Return", "SFD (m)"],
            summary_rows,
        )
    ]
    for env, by_config in results.items():
        for name, result in by_config.items():
            artifact.append("")
            artifact.append(
                ascii_curve(
                    result.curves.reward_curve,
                    height=8,
                    title=f"{env} / {name}: cumulative reward",
                )
            )
            artifact.append(
                ascii_curve(
                    result.curves.return_curve,
                    height=6,
                    title=f"{env} / {name}: return",
                )
            )
    save_artifact(results_dir, "fig10_learning_curves.txt", "\n".join(artifact))
