"""Fig. 11: normalised safe flight distance across all four test
environments.

The paper reports that TL topologies degrade SFD by only 3-8.1 %
relative to E2E.  At our scaled network/iteration budget the seed
variance is wider, so the shape criterion is *comparability*: every
topology's SFD must land within a factor band of E2E in every
environment, and every trained agent must beat a random policy.
"""

import numpy as np

from conftest import save_artifact
from repro.analysis import format_table
from repro.env import DepthCamera, NavigationEnv, make_environment
from repro.rl import run_transfer_experiment

ENVS = (
    "indoor-apartment",
    "indoor-house",
    "outdoor-forest",
    "outdoor-town",
)
ITERATIONS = 1000


def random_policy_sfd(env_name: str, steps: int = 1000, seed: int = 7) -> float:
    world = make_environment(env_name, seed=seed)
    env = NavigationEnv(world, camera=DepthCamera(width=16, height=16), seed=seed)
    rng = np.random.default_rng(seed)
    env.reset()
    for _ in range(steps):
        _, _, done, _ = env.step(int(rng.integers(5)))
        if done:
            env.reset()
    return env.tracker.safe_flight_distance


def run_all():
    trained = {
        env: run_transfer_experiment(
            env,
            meta_iterations=ITERATIONS,
            adapt_iterations=ITERATIONS,
            seed=0,
            image_side=16,
        )
        for env in ENVS
    }
    random_baseline = {env: random_policy_sfd(env) for env in ENVS}
    return trained, random_baseline


def test_fig11_safe_flight_distance(benchmark, results_dir):
    trained, random_baseline = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    all_normalised = []
    for env, by_config in trained.items():
        sfd = {name: r.safe_flight_distance for name, r in by_config.items()}
        e2e = sfd["E2E"]
        assert e2e > 0.0, env
        for name in ("L2", "L3", "L4"):
            normalised = sfd[name] / e2e
            all_normalised.append(normalised)
            # Per-environment comparability band.  The paper reports
            # 0.92-0.97 at full scale (60 k Unreal iterations); at our
            # scaled budget the per-environment estimate is noisy —
            # especially outdoors, where crashes are rare events — so
            # the band is wide and the tight check is on the mean below.
            assert 0.15 < normalised < 6.0, (env, name, normalised)
            rows.append([env, name, round(sfd[name], 2), round(normalised, 2)])
        rows.append([env, "E2E", round(e2e, 2), 1.0])
        # Trained agents must out-fly the random policy on average.
        mean_trained = float(np.mean(list(sfd.values())))
        assert mean_trained > random_baseline[env], (
            env,
            mean_trained,
            random_baseline[env],
        )
        rows.append([env, "random", round(random_baseline[env], 2), ""])

    # Aggregate comparability: TL topologies match E2E on average.
    mean_normalised = float(np.mean(all_normalised))
    assert 0.5 < mean_normalised < 2.0, mean_normalised

    save_artifact(
        results_dir,
        "fig11_safe_flight.txt",
        format_table(["Environment", "Config", "SFD (m)", "Normalised"], rows),
    )
