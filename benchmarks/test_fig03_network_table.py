"""Fig. 3a (layer/weight table) and Fig. 3b (TL weight fractions)."""

import pytest

from conftest import save_artifact
from repro.analysis import format_table
from repro.nn import modified_alexnet_spec, parameter_table
from repro.rl import TRANSFER_CONFIGS

FIG3A = {
    "FC1": (9216, 37_752_832, 67.18, 93.33),
    "FC2": (4096, 8_390_656, 14.93, 26.14),
    "FC3": (2048, 4_196_352, 7.468, 11.21),
    "FC4": (2048, 2_098_176, 3.734, 3.743),
    "FC5": (1024, 5_125, 0.009, 0.009),
}

FIG3B_FRACTIONS = {"L2": 4.0, "L3": 11.0, "L4": 26.0}


def test_fig03_network_table(benchmark, spec, results_dir):
    rows = benchmark(parameter_table, spec)

    by_layer = {r["layer"]: r for r in rows}
    for layer, (neurons, weights, pct, cum) in FIG3A.items():
        row = by_layer[layer]
        assert row["neurons"] == neurons
        assert row["weights"] == weights
        assert row["pct_total"] == pytest.approx(pct, abs=0.01)
        assert row["pct_cumulative"] == pytest.approx(cum, abs=0.01)

    # Fig. 3b: the three SRAM design points store ~4/11/26 % of weights.
    for config in TRANSFER_CONFIGS:
        if config.name in FIG3B_FRACTIONS:
            frac = 100 * config.trainable_fraction(spec)
            assert frac == pytest.approx(FIG3B_FRACTIONS[config.name], abs=0.3)

    artifact_rows = [
        [
            r["layer"],
            r["neurons"],
            r["weights"],
            round(r["pct_total"], 3),
            round(r["pct_cumulative"], 3),
        ]
        for r in rows
    ]
    artifact_rows.append(["total", "", spec.total_weights, 100.0, ""])
    save_artifact(
        results_dir,
        "fig03a_network_table.txt",
        format_table(
            ["Layer", "# neurons", "# weights", "% total", "% cumulative"],
            artifact_rows,
        ),
    )
