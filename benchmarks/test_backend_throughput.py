"""Execution-backend throughput: states/sec per backend, cycles for systolic.

One fleet-sized observation batch runs through each registered backend
(:mod:`repro.backend`) on the reduced drone net:

* **numpy** — the float baseline every other backend is measured
  against;
* **quantized** — the 16-bit fixed-point datapath (numerics only);
* **systolic** — the accelerator-in-the-loop path, which additionally
  reports the per-step array-cycle budget and the modelled time the
  paper's 32x32 array would need to serve the batch.

Artifacts: ``backend_throughput.txt`` (human-readable table) and
``BENCH_backends.json`` (machine-readable states/sec, cycles/state and
fixed-point action agreement) for trajectory tracking.
"""

import time

import numpy as np

from _artifacts import write_artifacts
from repro.analysis import format_table
from repro.backend import make_backend
from repro.nn import build_network, scaled_drone_net_spec

SIDE = 16
BATCH = 64
REPEATS = 5
BACKEND_NAMES = ("numpy", "quantized", "systolic")


def _measure(backend, states):
    """Best-of-N wall time and the StepCost of one forward batch."""
    backend.forward_batch(states[:2])  # warm caches / first-touch
    best = float("inf")
    cost = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        _, cost = backend.forward_batch(states)
        best = min(best, time.perf_counter() - start)
    return best, cost


def test_backend_throughput(benchmark, results_dir):
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
    rng = np.random.default_rng(0)
    states = rng.uniform(0.0, 1.0, size=(BATCH, 1, SIDE, SIDE))

    def run():
        out = {}
        for name in BACKEND_NAMES:
            backend = make_backend(name, network)
            seconds, cost = _measure(backend, states)
            out[name] = {
                "seconds": seconds,
                "states_per_second": BATCH / seconds,
                "cycles_per_state": cost.cycles_per_state,
                "total_cycles": cost.total_cycles,
                "macs": cost.macs,
                "array_seconds": cost.array_seconds(),
                "agreement_vs_float": backend.agreement_rate(states),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            round(r["states_per_second"], 1),
            round(r["cycles_per_state"] / 1e3, 1),
            round(r["array_seconds"] * 1e6, 1),
            round(r["agreement_vs_float"], 3),
        ]
        for name, r in results.items()
    ]
    table = format_table(
        ["Backend", "States/s", "kcycles/state", "Array us/batch", "Agreement"],
        rows,
    )
    sys_r = results["systolic"]
    footer = (
        f"\nbatch {BATCH} @ {SIDE}x{SIDE}: systolic backend charges "
        f"{sys_r['total_cycles']} cycles ({sys_r['macs']} MACs) per "
        f"observation batch"
    )
    write_artifacts(
        results_dir,
        "backend_throughput.txt",
        table + footer,
        "BENCH_backends.json",
        {"batch": BATCH, "image_side": SIDE, "backends": results},
    )

    for name in BACKEND_NAMES:
        assert results[name]["states_per_second"] > 0
    # Only the systolic backend models hardware, and its budget is real.
    assert results["numpy"]["total_cycles"] == 0
    assert results["quantized"]["total_cycles"] == 0
    assert results["systolic"]["total_cycles"] > 0
    assert results["systolic"]["macs"] > 0
    assert results["systolic"]["array_seconds"] > 0
    # The float path agrees with itself; fixed point survives the policy.
    assert results["numpy"]["agreement_vs_float"] == 1.0
    assert results["quantized"]["agreement_vs_float"] >= 0.9
    assert results["systolic"]["agreement_vs_float"] >= 0.9
