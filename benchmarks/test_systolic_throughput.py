"""Systolic fast path throughput: vectorized GEMM path vs PE-loop oracle.

Two measurements:

* **fast vs oracle** — the benchmark layer (3x32x32 input, 16 filters
  3x3) under both fidelities of ``FunctionalSystolicArray``.  The
  harness re-verifies on every run that outputs agree and cycle
  counters are *identical*, then pins the speedup floor (>=50x on
  dedicated hardware; contended CI runners can relax it via
  ``SYSTOLIC_SPEEDUP_FLOOR``).
* **paper-scale AlexNet forward** — the full modified AlexNet through
  the functional simulators, something the per-PE loop could never
  finish.  Asserts it completes with the exact analytic MAC count.

Artifacts: ``systolic_throughput.txt`` (human-readable table) and
``BENCH_systolic.json`` (machine-readable steps/s, speedup, shape) for
trajectory tracking.
"""

import os

from _artifacts import write_artifacts
from repro.analysis import format_table
from repro.systolic import bench_conv_fast_vs_pe, simulate_network_forward
from repro.systolic.bench import bench_payload

SPEEDUP_FLOOR = float(os.environ.get("SYSTOLIC_SPEEDUP_FLOOR", "50.0"))


def test_systolic_throughput(benchmark, results_dir, spec):
    result, forward = benchmark.pedantic(
        lambda: (
            bench_conv_fast_vs_pe(pe_repeats=2, fast_repeats=20),
            simulate_network_forward(spec=spec, batch=1),
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            "bench layer / pe oracle", result.shape,
            round(result.pe_seconds, 4),
            round(result.pe_macs_per_second / 1e6, 1), 1.0,
        ],
        [
            "bench layer / fast", result.shape,
            round(result.fast_seconds, 6),
            round(result.fast_macs_per_second / 1e6, 1),
            round(result.speedup, 1),
        ],
        [
            "alexnet forward / fast",
            f"{forward.network} batch {forward.batch}",
            round(forward.wall_seconds, 3),
            round(forward.macs_per_second / 1e6, 1),
            "",
        ],
    ]
    table = format_table(
        ["Workload", "Shape", "Seconds", "MMAC/s", "Speedup"], rows
    )
    footer = (
        f"\nmodelled array time for one AlexNet forward: "
        f"{forward.array_seconds() * 1e3:.2f} ms "
        f"({forward.total_array_cycles} cycles)"
    )
    write_artifacts(
        results_dir,
        "systolic_throughput.txt",
        table + footer,
        "BENCH_systolic.json",
        bench_payload(result, forward) | {"speedup_floor": SPEEDUP_FLOOR},
    )

    # bench_conv_fast_vs_pe already verified output + cycle equality.
    assert result.speedup >= SPEEDUP_FLOOR, (
        f"fast path speedup {result.speedup:.1f}x < {SPEEDUP_FLOOR}x "
        f"(pe {result.pe_seconds:.3f}s, fast {result.fast_seconds * 1e3:.2f}ms)"
    )
    # The paper-scale forward completed with the exact analytic MAC count.
    assert forward.total_macs == sum(l.macs for l in spec.layers)
    assert len(forward.layers) == 10
    assert forward.total_array_cycles > forward.total_macs  # drains charged
