"""Roofline analysis artifact.

Not a paper figure, but the quantitative explanation of Fig. 12a's two
regimes: every FC layer sits on the 128-bit streaming bandwidth roof at
~8 GMAC/s while every CONV layer is compute-bound — the structural fact
the whole cost model (and the co-design's SRAM/NVM split) rests on.
"""

from conftest import save_artifact
from repro.analysis import format_table
from repro.perf import RooflineModel


def test_roofline_analysis(benchmark, spec, results_dir):
    model = RooflineModel()
    points = benchmark(model.analyze_network, spec)

    for point in points:
        if point.layer.startswith("FC"):
            assert not point.compute_bound, point.layer
        else:
            assert point.compute_bound, point.layer

    rows = [
        [
            p.layer,
            round(p.operational_intensity, 2),
            round(p.attainable_gmacs, 1),
            "compute" if p.compute_bound else "bandwidth",
        ]
        for p in points
    ]
    header = (
        f"peak = {model.peak_gmacs:.0f} GMAC/s, stream = "
        f"{model.stream_gbytes:.0f} GB/s, ridge = {model.ridge_intensity:.0f} MAC/B"
    )
    table = format_table(
        ["Layer", "Intensity (MAC/B)", "Attainable (GMAC/s)", "Bound"], rows
    )
    save_artifact(results_dir, "roofline.txt", header + "\n" + table)
