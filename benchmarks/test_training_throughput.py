"""Whole-network training-step throughput: fast path vs PE oracle.

Three measurements:

* **fast vs oracle** — one whole-network training step (forward +
  chained backward GEMMs) on a reduced drone net under both fidelities.
  The harness re-verifies on every run that integer counters and
  gradients are identical (``bench_training_fast_vs_pe`` raises
  otherwise), then pins the speedup floor (relaxable on contended CI
  via ``TRAINING_SPEEDUP_FLOOR``).
* **paper-scale iterations/s vs batch** — the closed-form training-step
  model over the modified AlexNet for L4 and E2E at the Fig. 13 batch
  sizes: cycles per step, modelled iterations/s on the paper array, and
  the weight-reuse effect (cycles per sample strictly decreasing in
  batch — conv filter rows and FC tiles resident across the batch).
* **combined budget** — the closed-form training cost per update next
  to the measured inference cost per step on the reduced net, the two
  budgets ``fleet --train-on-array`` threads into the projection.

Artifacts: ``training_throughput.txt`` (human-readable tables) and
``BENCH_training.json`` (machine-readable its/s, speedup, cycle
ledgers) for trajectory tracking.
"""

import os

from _artifacts import write_artifacts
from repro.analysis import format_table
from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.systolic import (
    bench_training_fast_vs_pe,
    network_training_step_cost,
    training_step_stats,
)

SPEEDUP_FLOOR = float(os.environ.get("TRAINING_SPEEDUP_FLOOR", "10.0"))
BATCH_SIZES = (4, 8, 16)
SIDE = 16


def test_training_throughput(benchmark, results_dir, spec):
    def run():
        bench = bench_training_fast_vs_pe(batch=2, fast_repeats=10)
        paper = {
            config: {
                batch: training_step_stats(
                    spec, batch=batch,
                    train_last_k=4 if config == "L4" else None,
                )
                for batch in BATCH_SIZES
            }
            for config in ("L4", "E2E")
        }
        network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
        train_budget = network_training_step_cost(network, (1, SIDE, SIDE), 16)
        return bench, paper, train_budget

    bench, paper, train_budget = benchmark.pedantic(run, rounds=1, iterations=1)

    paper_rows = [
        [
            config, batch,
            round(step.total_cycles / 1e9, 2),
            round(step.cycles_per_sample / 1e6, 1),
            round(step.iterations_per_second(), 3),
        ]
        for config, by_batch in paper.items()
        for batch, step in by_batch.items()
    ]
    table = format_table(
        ["Config", "Batch", "Gcycles/step", "Mcyc/sample", "Iterations/s"],
        paper_rows,
    )
    body = (
        f"training step fast vs oracle ({bench.network} batch "
        f"{bench.batch}): pe {bench.pe_seconds:.4f}s, fast "
        f"{bench.fast_seconds * 1e3:.2f}ms -> {bench.speedup:.1f}x "
        "(counters and gradients verified identical)\n\n"
        + table
        + "\n\nreduced-net training budget (batch 16): "
        f"{train_budget.total_cycles / 1e3:.1f} kcycles/update "
        f"({train_budget.total_backward_cycles / 1e3:.1f} backward), "
        f"weight update {train_budget.weight_update_bits() / 8e3:.1f} KB"
    )
    write_artifacts(
        results_dir,
        "training_throughput.txt",
        body,
        "BENCH_training.json",
        {
            "bench_training": {
                "network": bench.network,
                "batch": bench.batch,
                "speedup": bench.speedup,
                "pe_seconds": bench.pe_seconds,
                "fast_seconds": bench.fast_seconds,
                "macs": bench.macs,
            },
            "paper_scale": {
                config: {
                    str(batch): {
                        "total_cycles": step.total_cycles,
                        "cycles_per_sample": step.cycles_per_sample,
                        "iterations_per_second": (
                            step.iterations_per_second()
                        ),
                    }
                    for batch, step in by_batch.items()
                }
                for config, by_batch in paper.items()
            },
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )

    # bench_training_fast_vs_pe already re-proved counter + gradient
    # equality; pin the speedup floor on top.
    assert bench.speedup >= SPEEDUP_FLOOR, (
        f"training fast path speedup {bench.speedup:.1f}x < "
        f"{SPEEDUP_FLOOR}x (pe {bench.pe_seconds:.3f}s, fast "
        f"{bench.fast_seconds * 1e3:.2f}ms)"
    )
    for config, by_batch in paper.items():
        # Weight reuse: cycles/sample strictly decreasing in batch.
        per_sample = [by_batch[b].cycles_per_sample for b in BATCH_SIZES]
        assert all(b < a for a, b in zip(per_sample, per_sample[1:])), config
        # Iteration rate falls as the batch grows (more work per step).
        rates = [by_batch[b].iterations_per_second() for b in BATCH_SIZES]
        assert rates == sorted(rates, reverse=True), config
    # Partial backprop is strictly cheaper than end to end, forward
    # cost identical.
    for batch in BATCH_SIZES:
        assert (
            paper["L4"][batch].total_cycles < paper["E2E"][batch].total_cycles
        )
        assert (
            paper["L4"][batch].total_forward_cycles
            == paper["E2E"][batch].total_forward_cycles
        )
    assert train_budget.total_cycles > 0


def test_training_spec_fixture_consistency(spec):
    """The benchmark's paper spec is the Fig. 3a network: the E2E
    training step updates every one of its 56 190 341 weights."""
    step = training_step_stats(spec, batch=1)
    assert step.weight_update_elements == spec.total_weights
    assert spec.total_weights == 56_190_341
