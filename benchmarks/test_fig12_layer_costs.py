"""Fig. 12: per-layer latency/active-PEs/power/energy, fwd and bwd."""

import pytest

from conftest import save_artifact
from repro.analysis import format_fig12_table
from repro.perf import PAPER_FIG12_BACKWARD, PAPER_FIG12_FORWARD

PAPER_FWD = {r.layer: r for r in PAPER_FIG12_FORWARD}
PAPER_BWD = {r.layer: r for r in PAPER_FIG12_BACKWARD}


def test_fig12a_forward(benchmark, cost_models, results_dir):
    model = cost_models["E2E"]
    costs = benchmark(model.forward_costs)

    for cost in costs:
        paper = PAPER_FWD[cost.layer]
        assert cost.active_pes == paper.active_pes, cost.layer
        if paper.latency_ms > 0.01:
            assert cost.latency_ms == pytest.approx(
                paper.latency_ms, rel=0.30
            ), cost.layer

    total_lat = sum(c.latency_ms for c in costs)
    total_energy = sum(c.energy_mj for c in costs)
    assert total_lat == pytest.approx(11.9285, rel=0.05)
    assert total_energy == pytest.approx(75.2259, rel=0.10)

    save_artifact(
        results_dir,
        "fig12a_forward.txt",
        format_fig12_table(costs, PAPER_FIG12_FORWARD),
    )


def test_fig12b_backward(benchmark, cost_models, results_dir):
    model = cost_models["E2E"]
    costs = benchmark(model.backward_costs)

    # Execution order and the NVM-write column.
    assert [c.layer for c in costs] == [r.layer for r in PAPER_FIG12_BACKWARD]
    for cost in costs:
        paper = PAPER_BWD[cost.layer]
        assert cost.nvm_write == paper.nvm_write, cost.layer
        if paper.latency_ms > 0.01:
            assert cost.latency_ms == pytest.approx(
                paper.latency_ms, rel=0.30
            ), cost.layer

    total_lat = sum(c.latency_ms for c in costs)
    total_energy = sum(c.energy_mj for c in costs)
    assert total_lat == pytest.approx(94.2257, rel=0.05)
    assert total_energy == pytest.approx(445.331, rel=0.10)

    # Structural shape: CONV1 and FC1 dominate the backward pass.
    by_layer = {c.layer: c for c in costs}
    assert by_layer["CONV1"].latency_ms == max(c.latency_ms for c in costs)
    fc_costs = [c for c in costs if c.layer.startswith("FC")]
    assert by_layer["FC1"].latency_ms == max(c.latency_ms for c in fc_costs)

    save_artifact(
        results_dir,
        "fig12b_backward.txt",
        format_fig12_table(costs, PAPER_FIG12_BACKWARD),
    )
