"""Multi-array sharding throughput and async rollout/train pipelining.

Two measurements on the fleet-sized observation batch:

* **K-array scaling** — the single-array cycle budget versus the
  sharded critical path for K in {1, 2, 4, 8} under all three shard
  policies.  ``cycle_speedup`` is the wall-clock payoff of K arrays
  (single-array cycles / critical-path cycles); sample sharding must
  reach the acceptance bound of <= 0.3x single-array cycles at K=4,
  and the pipeline policy must hold >= 0.75 scaling efficiency at
  K=8 — the regime where layer sharding's per-layer all-gather
  collapses to ~0.59.
* **Pipelined fleet** — a short sharded fleet run with an async weight
  bus (``sync_every=4``): measured pipeline overlap fraction, mean
  served snapshot staleness, and the serving agreement sampled
  mid-run (stale fixed-point policy vs the live float policy) for a
  sweep of sync cadences — the agreement/staleness tradeoff, measured.

Artifacts: ``sharding_throughput.txt`` (human-readable tables) and
``BENCH_sharding.json`` (machine-readable speedups/fractions) for
trajectory tracking.
"""

import time

import numpy as np

from _artifacts import write_artifacts
from repro.analysis import format_table
from repro.backend import ShardedBackend, SystolicBackend
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import build_network, scaled_drone_net_spec
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16
BATCH = 64
SHARD_COUNTS = (1, 2, 4, 8)
SYNC_SWEEP = (1, 4, 16)
#: Acceptance bound: K=4 sample sharding's critical path vs one array.
K4_CRITICAL_CEILING = 0.3
#: Acceptance floor: pipeline scaling efficiency at K=8 (layer
#: sharding collapses to ~0.59 here; the pipeline must not).
PIPELINE_K8_EFFICIENCY_FLOOR = 0.75


def _make_fleet(num_envs=4):
    return VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=list(range(num_envs)),
        image_side=SIDE,
        max_episode_steps=100,
    )


def _scaling_rows(network, states, single_cycles, single_seconds):
    out = {}
    for policy in ("sample", "layer", "pipeline"):
        for shards in SHARD_COUNTS:
            backend = ShardedBackend(network, shards=shards, shard=policy)
            backend.forward_batch(states[:2])  # warm caches
            start = time.perf_counter()
            _, cost = backend.forward_batch(states)
            seconds = time.perf_counter() - start
            # Wall-seconds efficiency rides along with the modelled
            # one: this serial-host measurement is the workers=1
            # baseline the wall-clock scaling benchmark's process pool
            # is judged against (see test_wallclock_scaling.py).
            wall_speedup = single_seconds / seconds if seconds else 0.0
            out[f"{policy}-{shards}"] = {
                "policy": policy,
                "shards": shards,
                "seconds": seconds,
                "work_cycles": cost.total_cycles,
                "critical_path_cycles": cost.critical_path_cycles,
                "merge_cycles": cost.merge_cycles,
                "fill_drain_cycles": cost.fill_drain_cycles,
                "cycle_speedup": single_cycles / cost.critical_path_cycles,
                "scaling_efficiency": (
                    single_cycles / cost.critical_path_cycles / shards
                ),
                "wall_speedup": wall_speedup,
                "wall_scaling_efficiency": wall_speedup / shards,
            }
    return out


def _serving_agreement(agent, vec_env, probe, steps, train_every=2):
    """Mean stale-vs-float agreement sampled across a training run."""
    states = vec_env.reset()
    samples = []
    train_batch = agent.batch_size * vec_env.num_envs
    for step in range(steps):
        actions = agent.act_batch(states)
        next_states, rewards, dones, infos = vec_env.step(actions)
        agent.observe_batch(
            vec_env.make_transitions(
                states, actions, rewards, dones, next_states, infos
            )
        )
        if len(agent.replay) >= train_batch and step % train_every == 0:
            agent.train_step_batch(train_batch)
        if step % 10 == 9:
            # Probe the *serving* snapshot at whatever staleness the
            # bus currently has — the number a fleet user experiences.
            samples.append(agent.backend.agreement_rate(probe))
        states = next_states
    return float(np.mean(samples)), agent.weight_bus.flips


def test_sharding_throughput(benchmark, results_dir):
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
    rng = np.random.default_rng(0)
    states = rng.uniform(0.0, 1.0, size=(BATCH, 1, SIDE, SIDE))
    probe = rng.uniform(0.0, 1.0, size=(32, 1, SIDE, SIDE))

    def run():
        single = SystolicBackend(network)
        single.forward_batch(states[:2])
        start = time.perf_counter()
        _, single_cost = single.forward_batch(states)
        single_seconds = time.perf_counter() - start
        scaling = _scaling_rows(
            network, states, single_cost.total_cycles, single_seconds
        )

        # Pipelined sharded fleet with an async weight bus.
        fleet_net = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
        agent = QLearningAgent(
            fleet_net,
            config=config_by_name("L4"),
            epsilon=EpsilonSchedule(1.0, 0.1, 400),
            seed=0,
            batch_size=4,
            backend=ShardedBackend(fleet_net, shards=4, shard="sample"),
            sync_every=4,
        )
        scheduler = FleetScheduler(
            agent, _make_fleet(), train_every=2, eval_steps=10
        )
        report = scheduler.run(rounds=2, steps_per_round=60)
        fleet = {
            "shards": report.shards,
            "pipeline_overlap_fraction": report.pipeline_overlap_fraction,
            "mean_sync_staleness": report.mean_sync_staleness,
            "cycles_per_env_step": report.cycles_per_env_step,
            "critical_path_cycles_per_env_step": (
                report.critical_path_cycles_per_env_step
            ),
        }

        # Agreement/staleness tradeoff: serving agreement vs cadence.
        staleness = {}
        for sync_every in SYNC_SWEEP:
            net = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
            sweep_agent = QLearningAgent(
                net,
                config=config_by_name("L4"),
                epsilon=EpsilonSchedule(1.0, 0.1, 400),
                seed=0,
                batch_size=4,
                backend=ShardedBackend(net, shards=4, shard="sample"),
                sync_every=sync_every,
            )
            agreement, flips = _serving_agreement(
                sweep_agent, _make_fleet(), probe, steps=120
            )
            staleness[sync_every] = {
                "serving_agreement": agreement,
                "flips": flips,
            }
        return {
            "single": {
                "seconds": single_seconds,
                "cycles": single_cost.total_cycles,
            },
            "scaling": scaling,
            "fleet": fleet,
            "staleness": staleness,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    scaling_rows = [
        [
            r["policy"],
            r["shards"],
            round(r["critical_path_cycles"] / 1e3, 1),
            round(r["merge_cycles"] / 1e3, 1),
            round(r["fill_drain_cycles"] / 1e3, 1),
            round(r["cycle_speedup"], 2),
            round(r["scaling_efficiency"], 2),
            round(r["wall_speedup"], 2),
            round(r["wall_scaling_efficiency"], 2),
        ]
        for r in results["scaling"].values()
    ]
    table = format_table(
        [
            "Policy", "K", "Critical kcyc", "Merge kcyc", "Bubble kcyc",
            "Cycle speedup", "Cycle eff", "Wall speedup", "Wall eff",
        ],
        scaling_rows,
    )
    fleet = results["fleet"]
    staleness_rows = [
        [s, round(r["serving_agreement"], 3), r["flips"]]
        for s, r in results["staleness"].items()
    ]
    body = (
        f"single array: {results['single']['cycles']} cycles for the "
        f"{BATCH}-state observation batch\n\n"
        + table
        + "\n\npipelined sharded fleet (K=4, sample, sync_every=4): "
        f"overlap {fleet['pipeline_overlap_fraction']:.2f}, mean served "
        f"staleness {fleet['mean_sync_staleness']:.2f} updates, critical "
        f"path {fleet['critical_path_cycles_per_env_step'] / 1e3:.1f} "
        "kcycles/env-step\n\n"
        + format_table(
            ["sync_every", "Serving agreement", "Flips"], staleness_rows
        )
    )
    write_artifacts(
        results_dir,
        "sharding_throughput.txt",
        body,
        "BENCH_sharding.json",
        {"batch": BATCH, "image_side": SIDE, **results},
    )

    # K-array scaling: critical path shrinks with K; the K=4 sample
    # policy meets the acceptance ceiling.
    single_cycles = results["single"]["cycles"]
    k4 = results["scaling"]["sample-4"]
    assert k4["critical_path_cycles"] <= K4_CRITICAL_CEILING * single_cycles
    for policy in ("sample", "layer", "pipeline"):
        speedups = [
            results["scaling"][f"{policy}-{k}"]["cycle_speedup"]
            for k in SHARD_COUNTS
        ]
        assert speedups[0] <= 1.0 + 1e-9  # K=1 adds no parallelism
        assert all(b > a for a, b in zip(speedups, speedups[1:])), policy
    # The tentpole claim: where layer sharding's per-layer all-gather
    # collapses at K=8 (~0.59 efficiency), staged pipeline parallelism
    # holds the floor — only stage-boundary activations cross arrays.
    pipe8 = results["scaling"]["pipeline-8"]
    layer8 = results["scaling"]["layer-8"]
    assert pipe8["critical_path_cycles"] < layer8["critical_path_cycles"]
    assert pipe8["scaling_efficiency"] >= PIPELINE_K8_EFFICIENCY_FLOOR
    # Pipeline bubbles are charged explicitly, never negative.
    for k in SHARD_COUNTS[1:]:
        assert results["scaling"][f"pipeline-{k}"]["fill_drain_cycles"] >= 0
    # The interleaved pipeline measured real overlap and real staleness.
    assert fleet["pipeline_overlap_fraction"] > 0.0
    assert 0.0 < fleet["mean_sync_staleness"] < 4.0
    # Synchronous serving agreement is quantization-only (the floor);
    # the sweep rows document what staleness costs on top of it.
    assert results["staleness"][1]["serving_agreement"] >= 0.9
