"""Fig. 13a (max fps vs batch size) and Fig. 13b (latency/energy totals).

Paper anchors: at batch 4 the L4 topology sustains ~15 fps vs ~3 fps for
E2E (>3x velocity), and the proposed design cuts per-image latency/energy
by 79.4 %/83.45 % (the quoted pair; the Fig. 12 table arithmetic yields
83.5 %/79.4 % for L4 — both reproduced here as a 75-90 % band).
"""

import pytest

from conftest import save_artifact
from repro.analysis import format_table
from repro.perf import TrainingIterationModel, fps_vs_batch_table, savings_vs_e2e
from repro.perf.training import PAPER_BATCH_SIZES


def test_fig13a_fps_vs_batch(benchmark, cost_models, results_dir):
    table = benchmark(fps_vs_batch_table, cost_models)

    # Anchors.
    assert 10.0 < table["L4"][4] < 18.0      # paper: ~15 fps
    assert 1.5 < table["E2E"][4] < 4.0       # paper: ~3 fps
    assert 4.0 < table["L4"][4] / table["E2E"][4] < 7.0  # ~5x

    # Orderings: fewer trained layers -> more fps; bigger batch -> fewer.
    for batch in PAPER_BATCH_SIZES:
        fps = [table[name][batch] for name in ("L2", "L3", "L4", "E2E")]
        assert fps == sorted(fps, reverse=True)
    for name in table:
        series = [table[name][b] for b in PAPER_BATCH_SIZES]
        assert series == sorted(series, reverse=True)

    rows = [
        [name] + [round(table[name][b], 2) for b in PAPER_BATCH_SIZES]
        for name in ("L2", "L3", "L4", "E2E")
    ]
    save_artifact(
        results_dir,
        "fig13a_fps_vs_batch.txt",
        format_table(
            ["Config"] + [f"batch {b}" for b in PAPER_BATCH_SIZES], rows
        ),
    )


def test_fig13b_latency_energy_totals(benchmark, cost_models, results_dir):
    def compute():
        totals = {}
        for name, model in cost_models.items():
            cost = TrainingIterationModel(model).iteration_cost(1)
            totals[name] = (
                cost.per_image_latency_s * 1e3,
                cost.per_image_energy_j * 1e3,
            )
        return totals

    totals = benchmark(compute)

    # E2E per-image cost reproduces the Fig. 12 sums (fwd + bwd).
    assert totals["E2E"][0] == pytest.approx(11.9285 + 94.2257, rel=0.05)
    assert totals["E2E"][1] == pytest.approx(75.2259 + 445.331, rel=0.10)

    # Savings band (paper: 79.4 % / 83.45 % for the proposed design).
    for name in ("L2", "L3", "L4"):
        savings = savings_vs_e2e(cost_models[name], cost_models["E2E"])
        assert 75.0 < savings["latency_decrease_pct"] < 92.0, name
        assert 75.0 < savings["energy_decrease_pct"] < 92.0, name

    rows = []
    for name, (lat, energy) in totals.items():
        if name == "E2E":
            rows.append([name, round(lat, 2), round(energy, 1), "-", "-"])
        else:
            savings = savings_vs_e2e(cost_models[name], cost_models["E2E"])
            rows.append(
                [
                    name,
                    round(lat, 2),
                    round(energy, 1),
                    round(savings["latency_decrease_pct"], 1),
                    round(savings["energy_decrease_pct"], 1),
                ]
            )
    save_artifact(
        results_dir,
        "fig13b_latency_energy.txt",
        format_table(
            ["Config", "Latency (ms)", "Energy (mJ)", "Lat. saving %", "E saving %"],
            rows,
        ),
    )
