"""Observability overhead: a probed fleet run vs the same run unprobed.

Two guarantees the ``repro.obs`` layer makes, measured:

* **Overhead** — with the probe *active* (span tracing + metrics on
  every instrumented seam) a short sharded fleet run must stay within
  10% of the uninstrumented wall time (relaxable on contended CI via
  ``OBS_OVERHEAD_CEILING``).  Runs interleave and take the best of
  three per side so transient machine load hits both alike.
* **Identity** — instrumentation observes, never perturbs: the probed
  and plain runs produce identical per-round ledgers (env steps,
  losses, cycle counts, SFD), checked on every run.

Artifacts: ``BENCH_obs.json`` (overhead ratio + per-side seconds) plus
a sample ``trace.json`` / ``metrics.prom`` pair from the probed run —
the CI-uploaded exemplars of the Chrome trace and Prometheus formats.
"""

import os
import time

from _artifacts import write_artifacts
from repro.backend import ShardedBackend
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import build_network, scaled_drone_net_spec
from repro.obs import MetricsRegistry, observed
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16
REPEATS = 3
OVERHEAD_CEILING = float(os.environ.get("OBS_OVERHEAD_CEILING", "0.10"))


def _run_fleet():
    """One short sharded fleet run; returns the report."""
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
    agent = QLearningAgent(
        network,
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 400),
        seed=0,
        batch_size=4,
        backend=ShardedBackend(network, shards=4, shard="sample"),
        sync_every=4,
    )
    vec_env = VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=[0, 1, 2, 3],
        image_side=SIDE,
        max_episode_steps=100,
    )
    scheduler = FleetScheduler(agent, vec_env, train_every=2, eval_steps=10)
    return scheduler.run(rounds=2, steps_per_round=40)


def _fingerprint(report):
    """Deterministic (non-wall-clock) content of a fleet report."""
    return [
        (
            r.env_steps, r.episodes, r.train_updates, r.mean_loss,
            r.inference_cycles, r.training_cycles,
            r.critical_path_cycles, r.critical_shard_index,
            r.sync_staleness, tuple(sorted(r.eval_sfd_by_class.items())),
            # The fault-injection ledger must stay all-zero (and the
            # shard count intact) when no chaos plan is active.
            r.faults_injected, r.faults_detected, r.faults_recovered,
            r.fault_recovery_cycles, r.degraded_states, r.active_shards,
        )
        for r in report.rounds
    ]


def test_obs_overhead(benchmark, results_dir):
    def run():
        # Warm-up both paths once (allocator, BLAS spin-up).
        _run_fleet()
        with observed(registry=MetricsRegistry()):
            _run_fleet()

        plain_s = float("inf")
        probed_s = float("inf")
        plain_report = probed_report = None
        tracer = registry = None
        # Interleave so transient load lands on both sides alike;
        # min-of-N discards the loaded samples.
        for _ in range(REPEATS):
            start = time.perf_counter()
            report = _run_fleet()
            seconds = time.perf_counter() - start
            if seconds < plain_s:
                plain_s, plain_report = seconds, report

            sample_registry = MetricsRegistry()
            with observed(registry=sample_registry) as (sample_tracer, _):
                start = time.perf_counter()
                report = _run_fleet()
                seconds = time.perf_counter() - start
            if seconds < probed_s:
                probed_s, probed_report = seconds, report
                tracer, registry = sample_tracer, sample_registry
        return plain_s, probed_s, plain_report, probed_report, tracer, registry

    plain_s, probed_s, plain_report, probed_report, tracer, registry = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    overhead = probed_s / plain_s - 1.0

    # Sample artifacts: the probed run's trace + metrics, as a CI-visible
    # exemplar of both export formats.  Deterministic export (rank
    # timestamps, no wall_ms, sorted keys) keeps re-run diffs minimal.
    tracer.export_chrome(str(results_dir / "trace.json"), deterministic=True)
    registry.export_prometheus(str(results_dir / "metrics.prom"))
    span_count = len(tracer.spans)
    write_artifacts(
        results_dir,
        "obs_overhead.txt",
        (
            f"probed fleet run: {probed_s:.3f}s vs plain {plain_s:.3f}s "
            f"-> {overhead * 100:+.1f}% overhead ({span_count} spans, "
            f"ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        ),
        "BENCH_obs.json",
        {
            "plain_seconds": plain_s,
            "probed_seconds": probed_s,
            "overhead_fraction": overhead,
            "overhead_ceiling": OVERHEAD_CEILING,
            "spans_recorded": span_count,
            "repeats": REPEATS,
        },
    )

    # Identity: the probe observed the run without perturbing one bit
    # of it.
    assert _fingerprint(probed_report) == _fingerprint(plain_report)
    # The probed run actually exercised the instrumented seams.
    assert span_count > 0
    names = {s.name for s in tracer.spans}
    assert {"fleet.round", "phase:rollout", "shard.forward"} <= names
    assert registry.snapshot()["counters"]["repro_fleet_env_steps_total"] > 0
    # Overhead ceiling: tracing must stay cheap enough to leave on.
    assert overhead <= OVERHEAD_CEILING, (
        f"observability overhead {overhead * 100:.1f}% > "
        f"{OVERHEAD_CEILING * 100:.0f}% (plain {plain_s:.3f}s, "
        f"probed {probed_s:.3f}s)"
    )
