"""Fig. 5: mapping the CNN weights onto STT-MRAM and on-die SRAM."""

import pytest

from conftest import save_artifact
from repro.analysis import format_table
from repro.memory import WeightMapper
from repro.rl import config_by_name


def test_fig05_memory_mapping(benchmark, spec, results_dir):
    def build_all():
        return {
            name: WeightMapper(spec, config_by_name(name)).build()
            for name in ("L2", "L3", "L4", "E2E")
        }

    reports = benchmark(build_all)

    # The paper's proposed design point (L3): 12.6 MB weights + 12.6 MB
    # gradient accumulators + 4.2 MB scratchpad = 29.4 MB SRAM; the
    # frozen CONV+FC1+FC2 (~100 MB) in the stack.
    l3 = reports["L3"]
    assert l3.sram_weight_bytes / 1e6 == pytest.approx(12.6, abs=0.05)
    assert l3.sram_gradient_bytes / 1e6 == pytest.approx(12.6, abs=0.05)
    assert l3.sram_scratchpad_bytes / 1e6 == pytest.approx(4.2, abs=0.01)
    assert l3.sram_total_mb == pytest.approx(29.4, abs=0.1)
    assert l3.nvm_mb == pytest.approx(99.8, abs=0.5)

    # Capacity ordering follows the trainable-tail size.
    assert (
        reports["L2"].sram_total_bytes
        < reports["L3"].sram_total_bytes
        < reports["L4"].sram_total_bytes
    )

    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                round(report.nvm_mb, 1),
                round(report.sram_weight_bytes / 1e6, 1),
                round(report.sram_gradient_bytes / 1e6, 1),
                round(report.sram_scratchpad_bytes / 1e6, 1),
                round(report.sram_total_mb, 1),
            ]
        )
    save_artifact(
        results_dir,
        "fig05_memory_mapping.txt",
        format_table(
            ["Config", "NVM (MB)", "SRAM wts", "SRAM grads", "Scratch", "SRAM total"],
            rows,
        ),
    )

    placements = [
        [p.layer, p.weights, round(p.bytes / 1e6, 2), p.device, p.trainable]
        for p in reports["L3"].placements
    ]
    save_artifact(
        results_dir,
        "fig05_l3_placements.txt",
        format_table(["Layer", "Weights", "MB", "Device", "Trainable"], placements),
    )
