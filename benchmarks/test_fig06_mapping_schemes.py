"""Fig. 6: the Type I/II/III convolution mapping geometry."""

from conftest import save_artifact
from repro.analysis import format_mapping_table
from repro.systolic import MappingType, map_conv_layer


def test_fig06_mapping_schemes(benchmark, spec, results_dir):
    mappings = benchmark(
        lambda: {c.name: map_conv_layer(c) for c in spec.conv_layers}
    )

    # Fig. 6a: CONV1 -> Type I, 2 segments of 11 rows, 24 filters each.
    conv1 = mappings["CONV1"]
    assert conv1.mapping_type is MappingType.TYPE_I
    assert conv1.segments == 2 and conv1.segment_rows == 11
    assert conv1.filters_per_segment == 24
    assert conv1.active_pes == 704

    # Fig. 6b: CONV2 -> Type II, 6 segments of 5x27, 2 channel splits.
    conv2 = mappings["CONV2"]
    assert conv2.mapping_type is MappingType.TYPE_II
    assert conv2.segments == 6 and conv2.segment_rows == 5
    assert conv2.cols_used == 27
    assert conv2.channel_split == 2
    assert conv2.active_pes == 960

    # Fig. 6c: CONV3-5 -> Type III, 2 sets of 10 segments of 3x13.
    for name in ("CONV3", "CONV4", "CONV5"):
        m = mappings[name]
        assert m.mapping_type is MappingType.TYPE_III
        assert m.sets == 2 and m.segments == 10 and m.segment_rows == 3
        assert m.cols_used == 13
        assert m.active_pes == 960

    save_artifact(
        results_dir,
        "fig06_mapping_schemes.txt",
        format_mapping_table(list(mappings.values())),
    )
