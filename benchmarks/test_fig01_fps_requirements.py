"""Fig. 1(b,c): minimum fps vs drone speed for the six environments."""

import numpy as np

from conftest import save_artifact
from repro.analysis import format_table
from repro.env.fps import DMIN_TABLE, PAPER_SPEEDS, fps_requirement_table

# Fig. 1c as printed in the paper (truncated decimals).
PAPER_FIG1C = {
    "Indoor 1": [3.571, 7.142, 10.71, 14.28],
    "Indoor 2": [2.5, 5.0, 7.5, 10.0],
    "Indoor 3": [1.923, 3.846, 5.769, 7.692],
    "Outdoor 1": [0.833, 1.666, 2.5, 3.333],
    "Outdoor 2": [0.625, 1.25, 1.875, 2.5],
    "Outdoor 3": [0.5, 1.0, 1.5, 2.0],
}


def test_fig01_fps_requirements(benchmark, results_dir):
    table = benchmark(fps_requirement_table)

    # Every cell of Fig. 1c reproduces (to the paper's printed precision).
    for env, paper_row in PAPER_FIG1C.items():
        assert np.allclose(table[env], paper_row, atol=6e-3), env

    # Shape: indoor environments always demand more fps than outdoor.
    for v_idx in range(len(PAPER_SPEEDS)):
        assert min(table[e][v_idx] for e in ("Indoor 1", "Indoor 2", "Indoor 3")) > max(
            table[e][v_idx] for e in ("Outdoor 1", "Outdoor 2", "Outdoor 3")
        )

    rows = [
        [env, DMIN_TABLE[env]] + [round(float(x), 3) for x in table[env]]
        for env in sorted(table)
    ]
    artifact = format_table(
        ["Environment", "d_min (m)"] + [f"{v} m/s" for v in PAPER_SPEEDS], rows
    )
    save_artifact(results_dir, "fig01_fps_requirements.txt", artifact)
