"""Fleet engine throughput: batched multi-env stepping vs sequential.

Two workloads over the same 16 environments (4 world classes x 4 seeds):

* **rollout** — greedy policy serving: one batched forward pass per
  fleet step vs 16 single-state passes.  The acceptance floor is 3x.
* **training sweep** — the Fig. 10 learning-curve protocol: online RL
  with identical gradient-sample throughput on both sides (the fleet
  trains with one ``batch x 16`` update where the baseline runs 16
  small ones).

Artifacts: ``fleet_throughput.txt`` (human-readable table) and
``BENCH_fleet.json`` (machine-readable speedups and floors) for
trajectory tracking; the assertions pin the floors.
"""

import os
import time

import numpy as np

from _artifacts import write_artifacts
from repro.analysis import format_table
from repro.env import DepthCamera, NavigationEnv, StereoNoiseModel, make_environment
from repro.fleet import VecNavigationEnv, compare_throughput
from repro.nn import build_network, scaled_drone_net_spec

ENV_NAMES = (
    "indoor-apartment",
    "indoor-house",
    "outdoor-forest",
    "outdoor-town",
)
NUM_ENVS = 16
IMAGE_SIDE = 16
ROLLOUT_STEPS = 80
TRAIN_STEPS = 48
MAX_EPISODE_STEPS = 200
# Acceptance floors for dedicated hardware; contended CI runners can
# relax them via the environment (the artifact still records the
# measured numbers either way).
ROLLOUT_FLOOR = float(os.environ.get("FLEET_ROLLOUT_FLOOR", "3.0"))
TRAIN_FLOOR = float(os.environ.get("FLEET_TRAIN_FLOOR", "1.3"))


def _build_env(i: int) -> NavigationEnv:
    world = make_environment(ENV_NAMES[i % len(ENV_NAMES)], seed=i)
    camera = DepthCamera(
        width=IMAGE_SIDE, height=IMAGE_SIDE, noise=StereoNoiseModel()
    )
    return NavigationEnv(world, camera=camera, seed=i + 7)


def _sequential_rollout(network, steps: int) -> float:
    # Env construction stays outside the timed window, matching the
    # fleet side (VecNavigationEnv built before its timer starts).
    envs = [_build_env(i) for i in range(NUM_ENVS)]
    start = time.perf_counter()
    for env in envs:
        state = env.reset()
        episode = 0
        for _ in range(steps):
            action = int(np.argmax(network.predict(state[None, ...])[0]))
            obs, _reward, done, _info = env.step(action)
            episode += 1
            if done or episode >= MAX_EPISODE_STEPS:
                state = env.reset()
                episode = 0
            else:
                state = obs
    return time.perf_counter() - start


def _fleet_rollout(network, steps: int) -> float:
    vec_env = VecNavigationEnv(
        [_build_env(i) for i in range(NUM_ENVS)],
        max_episode_steps=MAX_EPISODE_STEPS,
    )
    # The initial reset is timed on both sides.
    start = time.perf_counter()
    states = vec_env.reset()
    for _ in range(steps):
        actions = np.argmax(network.predict(states), axis=1)
        states, _rewards, _dones, _infos = vec_env.step(actions)
    return time.perf_counter() - start


def run_comparison():
    network = build_network(
        scaled_drone_net_spec(input_side=IMAGE_SIDE), seed=0
    )
    # Warm-up: exercise both paths once so first-call costs (allocator,
    # BLAS thread spin-up) don't land on either timed side.
    _sequential_rollout(network, 15)
    _fleet_rollout(network, 15)
    # Interleave repeats so transient machine load hits both sides
    # alike; min-of-N discards the loaded samples.
    sequential_s = float("inf")
    fleet_s = float("inf")
    for _ in range(4):
        sequential_s = min(sequential_s, _sequential_rollout(network, ROLLOUT_STEPS))
        fleet_s = min(fleet_s, _fleet_rollout(network, ROLLOUT_STEPS))
    training = compare_throughput(
        env_names=ENV_NAMES,
        num_envs=NUM_ENVS,
        steps_per_env=TRAIN_STEPS,
        image_side=IMAGE_SIDE,
        max_episode_steps=MAX_EPISODE_STEPS,
    )
    return sequential_s, fleet_s, training


def test_fleet_throughput(benchmark, results_dir):
    sequential_s, fleet_s, training = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    total = NUM_ENVS * ROLLOUT_STEPS
    rollout_speedup = sequential_s / fleet_s

    rows = [
        [
            "rollout (greedy serving)",
            total,
            round(total / sequential_s, 1),
            round(total / fleet_s, 1),
            round(rollout_speedup, 2),
        ],
        [
            "training sweep (online RL)",
            training.total_env_steps,
            round(training.sequential_steps_per_second, 1),
            round(training.fleet_steps_per_second, 1),
            round(training.speedup, 2),
        ],
    ]
    write_artifacts(
        results_dir,
        "fleet_throughput.txt",
        format_table(
            ["Workload", "Env steps", "Seq steps/s", "Fleet steps/s", "Speedup"],
            rows,
        ),
        "BENCH_fleet.json",
        {
            "num_envs": NUM_ENVS,
            "image_side": IMAGE_SIDE,
            "rollout": {
                "env_steps": total,
                "sequential_seconds": sequential_s,
                "fleet_seconds": fleet_s,
                "speedup": rollout_speedup,
                "floor": ROLLOUT_FLOOR,
            },
            "training": {
                "env_steps": training.total_env_steps,
                "sequential_steps_per_second": (
                    training.sequential_steps_per_second
                ),
                "fleet_steps_per_second": training.fleet_steps_per_second,
                "speedup": training.speedup,
                "floor": TRAIN_FLOOR,
            },
        },
    )

    # Acceptance floors: a 16-env fleet rollout must beat 16 sequential
    # rollouts by >= 3x; the learning-curve sweep must be measurably
    # faster despite identical gradient-sample counts.
    assert rollout_speedup >= ROLLOUT_FLOOR, (
        f"fleet rollout speedup {rollout_speedup:.2f}x < {ROLLOUT_FLOOR}x "
        f"(seq {sequential_s:.3f}s, fleet {fleet_s:.3f}s)"
    )
    assert training.speedup >= TRAIN_FLOOR, (
        f"fleet training speedup {training.speedup:.2f}x < {TRAIN_FLOOR}x"
    )
