"""Table 1 (STT-MRAM parameters) and Fig. 4b (system parameters)."""

import pytest

from conftest import save_artifact
from repro.analysis import format_table
from repro.core import paper_system_parameters
from repro.memory import STT_MRAM


def test_tab1_stt_mram_parameters(benchmark, results_dir):
    tech = benchmark(lambda: STT_MRAM)

    # Table 1, verbatim.
    assert tech.write_latency_s == 30e-9
    assert tech.read_latency_s == 10e-9
    assert tech.write_energy_per_bit_j == 4.5e-12
    assert tech.read_energy_per_bit_j == 0.7e-12
    # The asymmetry that motivates the whole co-design.
    assert tech.write_read_latency_ratio == pytest.approx(3.0)
    assert tech.write_read_energy_ratio > 6.0

    save_artifact(
        results_dir,
        "tab1_stt_mram.txt",
        format_table(
            ["Parameter", "Value"],
            [
                ["Write latency", "30 ns"],
                ["Read latency", "10 ns"],
                ["Write energy", "4.5 pJ/bit"],
                ["Read energy", "0.7 pJ/bit"],
            ],
        ),
    )


def test_fig4b_system_parameters(benchmark, results_dir):
    params = benchmark(paper_system_parameters)

    assert params.num_pes == 1024
    assert params.pe_grid == (32, 32)
    assert params.global_buffer_mb == 30.0
    assert params.scratchpad_mb == 4.2
    assert params.register_file_per_pe_kb == 4.5
    assert params.operating_voltage_v == 0.8
    assert params.clock_hz == 1e9
    assert params.peak_throughput_tops_per_w == 1.5
    assert params.arithmetic_precision_bits == 16
    assert params.pe_link_bits == 128

    rows = [
        ["Technology", params.technology],
        ["Number of PEs", f"{params.num_pes} ({params.pe_grid[0]} x {params.pe_grid[1]})"],
        ["Global buffer / scratchpad", f"{params.global_buffer_mb} MB / {params.scratchpad_mb} MB"],
        ["Register file per PE", f"{params.register_file_per_pe_kb} KB"],
        ["Operating voltage", f"{params.operating_voltage_v} V"],
        ["Clock speed", f"{params.clock_hz / 1e9:.0f} GHz"],
        ["Peak throughput", f"{params.peak_throughput_tops_per_w} TOPS/W"],
        ["Arithmetic precision", f"{params.arithmetic_precision_bits}-bit fixed point"],
        ["Bandwidth between PEs", f"{params.pe_link_bits} bit"],
        ["NVM I/Os", f"{params.nvm_ios} x {params.nvm_io_gbps} Gb/s"],
    ]
    save_artifact(
        results_dir, "fig4b_system_parameters.txt", format_table(["Parameter", "Value"], rows)
    )
