"""Shared artifact writing for the throughput benchmark suites.

Every throughput suite persists two views of its measurement: a human
``*.txt`` table and a machine-readable ``BENCH_*.json`` payload (the
CI-uploaded record the paper-vs-measured comparison and the future
``repro.tune`` explorer consume).  The suites used to hand-roll the
pair; :func:`write_artifacts` dedupes that and stamps every JSON
payload with a schema version and the git commit it was measured at,
so archived artifacts from different runs are comparable.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

#: Bump when the stamped payload envelope changes shape.
SCHEMA_VERSION = 1

_GIT_SHA: str | None = None


def git_sha() -> str:
    """Short commit SHA of the repo the benchmark ran in (cached).

    ``"unknown"`` when git is unavailable (e.g. an unpacked source
    tarball) — artifacts must still be written.
    """
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                cwd=Path(__file__).parent,
                timeout=10,
            )
            _GIT_SHA = proc.stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


def stamp(payload: dict) -> dict:
    """``payload`` under the versioned envelope (stamps lead)."""
    return {"schema_version": SCHEMA_VERSION, "git_sha": git_sha(), **payload}


def write_artifacts(
    results_dir: Path,
    text_name: str,
    text: str,
    json_name: str | None = None,
    payload: dict | None = None,
) -> None:
    """Write the text artifact and, when given, its stamped JSON twin."""
    (results_dir / text_name).write_text(text + "\n")
    if json_name is not None:
        (results_dir / json_name).write_text(
            json.dumps(stamp(payload or {}), indent=2) + "\n"
        )
