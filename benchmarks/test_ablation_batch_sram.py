"""Ablation 2: batch-size and SRAM-capacity sweeps.

Extends Fig. 13a to batches 1..32 and sweeps the global-buffer capacity
to map which training topologies each SRAM design point admits — the
trade the paper's three embedded architectures (4/11/26 % of weights)
navigate.
"""

from conftest import save_artifact
from repro.analysis import format_table
from repro.core import CoDesign, paper_platform
from repro.perf import TrainingIterationModel

BATCHES = (1, 2, 4, 8, 16, 32)
BUFFER_SIZES_MB = (8, 15, 30, 65)


def run_batch_sweep(cost_models):
    table = {}
    for name, model in cost_models.items():
        trainer = TrainingIterationModel(model)
        table[name] = [trainer.iteration_cost(b).fps for b in BATCHES]
    return table


def run_sram_sweep():
    feasible = {}
    for buffer_mb in BUFFER_SIZES_MB:
        fits = []
        for name in ("L2", "L3", "L4", "E2E"):
            try:
                CoDesign(name, platform=paper_platform(buffer_mb=buffer_mb))
                fits.append(name)
            except ValueError:
                pass
        feasible[buffer_mb] = fits
    return feasible


def test_ablation_batch_sweep(benchmark, cost_models, results_dir):
    table = benchmark(run_batch_sweep, cost_models)

    for name, fps in table.items():
        # fps falls monotonically with batch size...
        assert fps == sorted(fps, reverse=True), name
        # ...and roughly halves per batch doubling (batch 4 -> 8) once
        # forward+backward dominate the update step.
        assert 1.7 < fps[2] / fps[3] < 2.3, name

    rows = [
        [name] + [round(v, 2) for v in fps] for name, fps in table.items()
    ]
    save_artifact(
        results_dir,
        "ablation_batch_sweep.txt",
        format_table(["Config"] + [f"batch {b}" for b in BATCHES], rows),
    )


def test_ablation_sram_sweep(benchmark, results_dir):
    feasible = benchmark(run_sram_sweep)

    # Feasibility grows monotonically with capacity.
    assert feasible[8] == []
    assert feasible[15] == ["L2"]
    assert set(feasible[30]) == {"L2", "L3", "E2E"}
    assert set(feasible[65]) == {"L2", "L3", "L4", "E2E"}

    rows = [
        [mb, ", ".join(fits) or "(none)"] for mb, fits in feasible.items()
    ]
    save_artifact(
        results_dir,
        "ablation_sram_sweep.txt",
        format_table(["SRAM (MB)", "Feasible topologies"], rows),
    )
