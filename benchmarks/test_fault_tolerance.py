"""Fault tolerance under seeded chaos: degraded throughput + recovery cost.

A short sharded fleet run is executed four ways — fault-free, under a
crash-only :class:`~repro.faults.FaultPlan` that kills 1 of the 4
arrays mid-run, and twice under a mixed chaos plan (the same crash plus
transients, stragglers, weight-bus faults and sensor dropout).  The
chaos runs pin the stack's fault-tolerance guarantees:

* **Determinism** — both mixed-plan runs produce the identical
  per-round ledger *and* the identical fault/recovery event log
  (counter-keyed RNG streams, no wall-clock anywhere in the fault
  path).
* **Failover** — the crashed run completes, reports availability < 1,
  at least one recovered fault, and an MTTR of >= 1 round.
* **Degraded-throughput floor** — with 1 of K arrays dead, the modelled
  sustainable step rate (critical-path cycles) of the *crash-only* run
  must stay at or above the (K-1)/K scaling floor times a margin:
  failover may not cost more than the dead array's proportional share.
  The fleet width (12 envs) divides evenly over both 4 and 3 shards, so
  the floor is exact, not a granularity artifact.  Relaxable via
  ``FAULTS_DEGRADED_MARGIN``.
* **Recovery-overhead ceiling** — the cycles the mixed run charges to
  retries, rollbacks and failover health checks must stay a small
  fraction of its critical path (``FAULTS_RECOVERY_CEILING``).

Artifacts: ``fault_tolerance.txt`` + ``BENCH_faults.json`` — the
CI-uploaded record of the degraded-run floor and recovery ceiling.
"""

import os

from _artifacts import write_artifacts
from repro.backend import ShardedBackend
from repro.faults import chaos, parse_fault_spec
from repro.fleet import FleetScheduler, VecNavigationEnv
from repro.nn import build_network, scaled_drone_net_spec
from repro.rl import EpsilonSchedule, QLearningAgent, config_by_name

SIDE = 16
SHARDS = 4
#: Evenly divisible by SHARDS and SHARDS - 1, so sample-policy failover
#: redistributes the batch with no remainder — the proportional floor
#: is exact.
NUM_ENVS = 12
ROUNDS = 2
STEPS_PER_ROUND = 40
#: Kill shard 1 at fleet step 30 of 80 — the run finishes on 3 arrays.
CRASH_SPEC = "seed=7,crash=1@30"
CHAOS_SPEC = (
    CRASH_SPEC + ",sram=0.05,drop=0.1,corrupt=0.05,"
    "transient=0.05,straggler=0.05,sensor=0.02"
)
DEGRADED_MARGIN = float(os.environ.get("FAULTS_DEGRADED_MARGIN", "0.95"))
RECOVERY_CEILING = float(os.environ.get("FAULTS_RECOVERY_CEILING", "0.25"))


def _run_fleet(plan=None):
    """One short sharded fleet run; returns (report, scheduler)."""
    network = build_network(scaled_drone_net_spec(input_side=SIDE), seed=0)
    agent = QLearningAgent(
        network,
        config=config_by_name("L4"),
        epsilon=EpsilonSchedule(1.0, 0.1, 400),
        seed=0,
        batch_size=4,
        backend=ShardedBackend(network, shards=SHARDS, shard="sample"),
        sync_every=4,
    )
    vec_env = VecNavigationEnv.from_names(
        ["indoor-apartment", "outdoor-forest"],
        seeds=list(range(NUM_ENVS)),
        image_side=SIDE,
        max_episode_steps=100,
    )
    scheduler = FleetScheduler(agent, vec_env, train_every=2, eval_steps=10)
    if plan is None:
        return scheduler.run(ROUNDS, STEPS_PER_ROUND), scheduler
    with chaos(plan):
        return scheduler.run(ROUNDS, STEPS_PER_ROUND), scheduler


def _fingerprint(report):
    """Deterministic (non-wall-clock) content of a fleet report."""
    return [
        (
            r.env_steps, r.episodes, r.train_updates, r.mean_loss,
            r.inference_cycles, r.critical_path_cycles,
            r.faults_injected, r.faults_detected, r.faults_recovered,
            r.fault_recovery_cycles, r.degraded_states, r.active_shards,
        )
        for r in report.rounds
    ]


def test_fault_tolerance(benchmark, results_dir):
    crash_plan = parse_fault_spec(CRASH_SPEC)
    chaos_plan = parse_fault_spec(CHAOS_SPEC)

    def run():
        clean, _ = _run_fleet()
        crashed, _ = _run_fleet(crash_plan)
        first, scheduler = _run_fleet(chaos_plan)
        second, _ = _run_fleet(chaos_plan)
        return clean, crashed, first, second, scheduler

    clean, crashed, report, replay, scheduler = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Determinism: the same plan replays the identical run and the
    # identical fault/recovery event log.
    assert _fingerprint(report) == _fingerprint(replay)
    assert report.fault_events == replay.fault_events

    # Failover: both chaos runs completed on K-1 arrays and said so.
    for r in (crashed, report):
        assert r.total_faults_injected > 0
        assert r.total_faults_recovered >= 1
        assert r.availability < 1.0
        assert r.mttr_rounds >= 1.0
        assert any(e["kind"] == "shard.crash" for e in r.fault_events)

    # Degraded-throughput floor: modelled steps/sec of the crash-only
    # run vs fault-free, from the measured critical-path budgets.
    # Survivors absorb the dead shard's work, so per-step wall cycles
    # grow by at most K/(K-1) over the degraded stretch — the crashed
    # run must keep at least (K-1)/K of the clean modelled rate (times
    # a margin for the merge traffic of the rebuilt split).
    clean_cps = clean.critical_path_cycles_per_env_step
    crashed_cps = crashed.critical_path_cycles_per_env_step
    degraded_ratio = clean_cps / crashed_cps if crashed_cps else 1.0
    floor = (SHARDS - 1) / SHARDS * DEGRADED_MARGIN
    assert degraded_ratio >= floor, (
        f"degraded throughput ratio {degraded_ratio:.3f} fell below the "
        f"{SHARDS - 1}/{SHARDS} failover floor x {DEGRADED_MARGIN} margin "
        f"= {floor:.3f}"
    )

    # Recovery-overhead ceiling: detection + recovery of the full chaos
    # mix must stay cheap relative to the work the run actually served.
    overhead = (
        report.total_fault_recovery_cycles
        / report.total_critical_path_cycles
        if report.total_critical_path_cycles
        else 0.0
    )
    assert overhead <= RECOVERY_CEILING, (
        f"recovery overhead {overhead:.3f} of the critical path exceeds "
        f"the {RECOVERY_CEILING} ceiling"
    )

    projection = scheduler.project_load(report)
    assert projection.availability == report.availability

    by_kind: dict[str, int] = {}
    for event in report.fault_events:
        by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
    write_artifacts(
        results_dir,
        "fault_tolerance.txt",
        (
            f"chaos run ({CHAOS_SPEC}): {report.total_faults_injected} "
            f"injected / {report.total_faults_detected} detected / "
            f"{report.total_faults_recovered} recovered, availability "
            f"{report.availability:.3f}, MTTR {report.mttr_rounds:.1f} "
            f"rounds\ndegraded throughput ratio {degraded_ratio:.3f} "
            f"(floor {floor:.3f}), recovery overhead {overhead:.4f} "
            f"(ceiling {RECOVERY_CEILING})"
        ),
        "BENCH_faults.json",
        {
            "crash_spec": CRASH_SPEC,
            "chaos_spec": CHAOS_SPEC,
            "shards": SHARDS,
            "num_envs": NUM_ENVS,
            "faults_injected": report.total_faults_injected,
            "faults_detected": report.total_faults_detected,
            "faults_recovered": report.total_faults_recovered,
            "fault_kinds": by_kind,
            "availability": report.availability,
            "mttr_rounds": report.mttr_rounds,
            "degraded_fraction": report.degraded_fraction,
            "clean_critical_path_cycles_per_step": clean_cps,
            "crashed_critical_path_cycles_per_step": crashed_cps,
            "degraded_throughput_ratio": degraded_ratio,
            "degraded_throughput_floor": floor,
            "recovery_cycles": report.total_fault_recovery_cycles,
            "recovery_overhead_fraction": overhead,
            "recovery_overhead_ceiling": RECOVERY_CEILING,
            "available_sustainable_steps_per_second": (
                projection.available_sustainable_steps_per_second
            ),
        },
    )
