"""Calibration-sensitivity artifact.

Perturbs every fitted efficiency factor by up to ±25 % and re-derives
the paper's headline conclusions.  The assertion: the conclusions —
~80 % latency/energy savings and a >3x frame-rate (velocity) advantage
for the TL topologies — are properties of the co-design's *structure*
(what is trained, where weights live), not of the calibration fit.
"""

from conftest import save_artifact
from repro.analysis import format_table
from repro.perf import sensitivity_sweep

SCALES = (0.75, 0.9, 1.0, 1.1, 1.25)


def test_calibration_sensitivity(benchmark, spec, results_dir):
    points = benchmark(sensitivity_sweep, spec, SCALES)

    for point in points:
        assert 70.0 < point.latency_saving_pct < 95.0, point
        assert 70.0 < point.energy_saving_pct < 95.0, point
        assert point.fps_ratio > 3.0, point

    # The savings move by only a few points across the whole range.
    latencies = [p.latency_saving_pct for p in points]
    assert max(latencies) - min(latencies) < 10.0

    rows = [
        [
            f"x{p.scale:.2f}",
            round(p.latency_saving_pct, 1),
            round(p.energy_saving_pct, 1),
            round(p.fps_ratio, 2),
        ]
        for p in points
    ]
    save_artifact(
        results_dir,
        "sensitivity.txt",
        format_table(
            ["Calibration scale", "L4 latency saving %", "L4 energy saving %",
             "L4/E2E fps ratio"],
            rows,
        ),
    )
