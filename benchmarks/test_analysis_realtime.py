"""Real-time feasibility artifact: frame-queue simulation per topology.

Connects Fig. 13a's supply (iteration rate) to Fig. 1's demand (fps at
velocity) through an explicit bounded-buffer queue.  Asserted shape: the
TL topologies service a 10 fps camera with an empty queue; E2E drops
frames and multiplies control latency.
"""

from conftest import save_artifact
from repro.analysis import format_table
from repro.env import simulate_frame_queue
from repro.perf import TrainingIterationModel

CAMERA_FPS = 10.0


def run_all(cost_models):
    results = {}
    for name, model in cost_models.items():
        t_iter = TrainingIterationModel(model).iteration_cost(1).iteration_latency_s
        results[name] = simulate_frame_queue(
            frame_rate_hz=CAMERA_FPS,
            iteration_time_s=t_iter,
            duration_s=10.0,
            buffer_frames=4,
        )
    return results


def test_analysis_realtime(benchmark, cost_models, results_dir):
    reports = benchmark(run_all, cost_models)

    for name in ("L2", "L3", "L4"):
        assert reports[name].realtime, name
        assert reports[name].max_queue_depth <= 1, name
    assert not reports["E2E"].realtime
    assert reports["E2E"].drop_fraction > 0.1
    assert reports["E2E"].max_latency_s > 5 * reports["L3"].max_latency_s

    rows = [
        [
            name,
            "yes" if r.realtime else "NO",
            f"{100 * r.drop_fraction:.0f}%",
            r.max_queue_depth,
            round(r.max_latency_s * 1e3, 1),
        ]
        for name, r in reports.items()
    ]
    save_artifact(
        results_dir,
        "realtime_queue.txt",
        f"camera at {CAMERA_FPS:.0f} fps, 4-frame buffer, batch-1 training\n"
        + format_table(
            ["Config", "Real-time?", "Dropped", "Max queue", "Max latency (ms)"],
            rows,
        ),
    )
