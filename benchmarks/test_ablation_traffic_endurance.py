"""Ablation 3: per-iteration memory traffic and NVM endurance.

Walks one batch-4 training iteration per topology, charging every bit to
its device, then converts the sustained NVM write rate into a stack
lifetime under typical STT-MRAM endurance (1e12 cycles).  Shape: TL
topologies write zero bits to the stack (infinite NVM lifetime); the
E2E baseline's writes are dominated by the weight update + FC1 gradient
spill, a quantitative form of the paper's infeasibility argument.
"""

import numpy as np

from conftest import save_artifact
from repro.analysis import format_table
from repro.perf import TrafficSimulator, TrainingIterationModel
from repro.rl import config_by_name

BATCH = 4


def run_all(cost_models):
    results = {}
    for name in ("L2", "L3", "E2E"):
        sim = TrafficSimulator(cost_models[name].spec, config_by_name(name))
        traffic = sim.simulate_iteration(BATCH)
        fps = TrainingIterationModel(cost_models[name]).iteration_cost(BATCH).fps
        endurance = sim.endurance(traffic, iterations_per_second=fps)
        results[name] = (traffic, fps, endurance)
    return results


def test_ablation_traffic_endurance(benchmark, cost_models, results_dir):
    results = benchmark(run_all, cost_models)

    l2_traffic, _, l2_endurance = results["L2"]
    l3_traffic, _, l3_endurance = results["L3"]
    e2e_traffic, e2e_fps, e2e_endurance = results["E2E"]

    # TL topologies: zero NVM writes, unbounded stack lifetime.
    assert l2_traffic.nvm_write_bits == 0
    assert l3_traffic.nvm_write_bits == 0
    assert l2_endurance.lifetime_days == float("inf")
    assert l3_endurance.lifetime_days == float("inf")

    # E2E: writes at least the frozen model (~100 MB) per iteration,
    # plus per-image FC1 spills; finite lifetime.
    assert e2e_traffic.nvm_write_bits > 99.8e6 * 8
    assert np.isfinite(e2e_endurance.lifetime_days)

    # Reads dominate writes even for E2E (inference streams the model
    # every image), but the write *energy* is what hurts: at Table 1's
    # 4.5 vs 0.7 pJ/bit the write share of NVM energy is outsized.
    assert e2e_traffic.nvm_read_bits > e2e_traffic.nvm_write_bits
    write_energy = e2e_traffic.nvm_write_bits * 4.5e-12
    read_energy = e2e_traffic.nvm_read_bits * 0.7e-12
    assert write_energy > 0.2 * read_energy

    rows = []
    for name, (traffic, fps, endurance) in results.items():
        rows.append(
            [
                name,
                round(traffic.dram_read_bits / 8e6, 1),
                round(traffic.nvm_read_bits / 8e6, 1),
                round(traffic.nvm_write_bits / 8e6, 1),
                round((traffic.sram_read_bits + traffic.sram_write_bits) / 8e6, 1),
                round(fps, 2),
                (
                    "inf"
                    if endurance.lifetime_days == float("inf")
                    else f"{endurance.lifetime_years:.0f} y"
                ),
            ]
        )
    save_artifact(
        results_dir,
        "ablation_traffic_endurance.txt",
        format_table(
            [
                "Config",
                "DRAM rd (MB/iter)",
                "NVM rd (MB/iter)",
                "NVM wr (MB/iter)",
                "SRAM (MB/iter)",
                "fps",
                "stack lifetime",
            ],
            rows,
        ),
    )
