"""Ablation 1: NVM technology sweep (Section III.C, "Why STT-MRAM?").

Swaps the stack's technology between STT-MRAM and PCM/RRAM-like corners
(read bandwidth scaled by array read latency) and measures fps, energy
per frame and sustained NVM write traffic for L3 vs E2E.  Shape: the TL
topology is insensitive to the NVM corner and writes nothing to the
stack; E2E pays write energy and bandwidth on every iteration.
"""

import pytest

from conftest import save_artifact
from repro.analysis import format_table
from repro.core import CoDesign
from repro.core.platform import Platform
from repro.memory.devices import GlobalBuffer, SttMramStack, MB
from repro.memory.technology import NVM_TECHNOLOGIES, STT_MRAM


def build_platform(tech):
    nvm = SttMramStack(capacity_bytes=int(128 * MB), tech=tech)
    scale = STT_MRAM.read_latency_s / tech.read_latency_s
    nvm.read_bandwidth_bps *= scale
    nvm.write_bandwidth_bps = nvm.read_bandwidth_bps / tech.write_read_latency_ratio
    return Platform(name=tech.name, nvm=nvm, buffer=GlobalBuffer())


def run_sweep():
    results = {}
    for tech_name, tech in NVM_TECHNOLOGIES.items():
        platform = build_platform(tech)
        for config in ("L3", "E2E"):
            platform.reset_counters()
            hw = CoDesign(config, platform=platform).evaluate_hardware(4)
            write_bits = platform.nvm.counters.write_bits
            results[(tech_name, config)] = (
                hw.fps,
                hw.energy_per_frame_mj,
                write_bits / 8e9 * hw.fps,  # GB/s of NVM writes
            )
    return results


def test_ablation_nvm_sweep(benchmark, results_dir):
    results = benchmark(run_sweep)

    stt_l3 = results[("STT-MRAM", "L3")]
    stt_e2e = results[("STT-MRAM", "E2E")]

    # L3 never writes the stack; E2E always does.
    for tech_name in NVM_TECHNOLOGIES:
        assert results[(tech_name, "L3")][2] == 0.0
        assert results[(tech_name, "E2E")][2] > 1.0  # GB/s scale

    # L3's fps and energy are flat across technologies (<2 % spread);
    # E2E's energy strictly worsens on the write-expensive corners.
    for tech_name in ("PCM-like", "RRAM-like"):
        l3 = results[(tech_name, "L3")]
        assert l3[0] == pytest.approx(stt_l3[0], rel=0.02)
        assert l3[1] == pytest.approx(stt_l3[1], rel=0.02)
        e2e = results[(tech_name, "E2E")]
        assert e2e[1] > stt_e2e[1]

    # STT-MRAM is the best corner for E2E — the paper's Section III.C.
    assert stt_e2e[1] == min(
        results[(t, "E2E")][1] for t in NVM_TECHNOLOGIES
    )

    rows = [
        [tech, config, round(v[0], 2), round(v[1], 1), round(v[2], 3)]
        for (tech, config), v in results.items()
    ]
    save_artifact(
        results_dir,
        "ablation_nvm_sweep.txt",
        format_table(
            ["NVM", "Config", "fps", "mJ/frame", "NVM writes (GB/s)"], rows
        ),
    )
