"""Real-time feasibility: how fast can each topology actually fly?

Average-rate arithmetic (Fig. 13a's fps against Fig. 1's fps demand)
says a topology is real-time if supply >= demand.  This example checks
the claim with an explicit frame-queue simulation — frames arriving at
the camera rate, a bounded DRAM frame buffer, training draining one
frame per iteration — and reports the fastest dropped-frame-free
velocity per (topology, environment).

Run:  python examples/realtime_feasibility.py
"""

from repro import paper_platform
from repro.analysis import format_table
from repro.core import CoDesign
from repro.env import DMIN_TABLE, max_realtime_velocity, simulate_frame_queue
from repro.perf import TrainingIterationModel


def main() -> None:
    platform = paper_platform()
    designs = {
        name: CoDesign(name, platform=platform) for name in ("L2", "L3", "E2E")
    }
    designs["L4"] = CoDesign("L4", platform=paper_platform(buffer_mb=65.0))

    print("=== Fastest drop-free velocity (m/s), batch-1 training ===")
    envs = ["Indoor 1", "Indoor 3", "Outdoor 1", "Outdoor 3"]
    rows = []
    for name, design in designs.items():
        t_iter = (
            TrainingIterationModel(design.cost_model)
            .iteration_cost(1)
            .iteration_latency_s
        )
        row = [name, round(1.0 / t_iter, 1)]
        for env in envs:
            v = max_realtime_velocity(t_iter, DMIN_TABLE[env], buffer_frames=4)
            row.append(round(v, 1))
        rows.append(row)
    print(
        format_table(
            ["Config", "iter/s"] + [f"{e} (d={DMIN_TABLE[e]}m)" for e in envs],
            rows,
        )
    )

    print("\n=== Queue behaviour at a fixed 10 fps camera (Indoor 2 @ 10 m/s) ===")
    rows = []
    for name, design in designs.items():
        t_iter = (
            TrainingIterationModel(design.cost_model)
            .iteration_cost(1)
            .iteration_latency_s
        )
        report = simulate_frame_queue(
            frame_rate_hz=10.0, iteration_time_s=t_iter,
            duration_s=10.0, buffer_frames=4,
        )
        rows.append(
            [
                name,
                "yes" if report.realtime else "NO",
                f"{100 * report.drop_fraction:.0f}%",
                report.max_queue_depth,
                f"{report.max_latency_s * 1e3:.0f} ms",
            ]
        )
    print(
        format_table(
            ["Config", "Real-time?", "Dropped", "Max queue", "Max latency"],
            rows,
        )
    )
    print(
        "\nE2E cannot keep a 10 fps camera fed — it drops frames and its "
        "control latency\ngrows ~40x; the TL topologies run the same "
        "camera with an empty queue."
    )


if __name__ == "__main__":
    main()
