"""Indoor navigation: the full TL + online-RL protocol (Figs. 10/11).

Meta-trains an agent end-to-end in the complex indoor meta-environment,
then deploys it to the indoor apartment with each training topology
(L2/L3/L4/E2E) and compares learning curves and safe flight distance —
the scaled functional version of the paper's Unreal Engine experiment.

Run:  python examples/indoor_navigation.py  (about a minute)
"""

from repro.analysis import ascii_bars, ascii_curve
from repro.rl import run_transfer_experiment


def main() -> None:
    print("Running TL + online RL in 'indoor-apartment' (scaled protocol)...")
    results = run_transfer_experiment(
        "indoor-apartment",
        meta_iterations=1500,
        adapt_iterations=1500,
        seed=0,
        image_side=16,
    )

    print("\n=== Cumulative reward (moving average), per topology ===")
    for name, result in results.items():
        print()
        print(ascii_curve(result.curves.reward_curve, height=8,
                          title=f"{name} cumulative reward"))

    print("\n=== Safe flight distance (Fig. 11 metric) ===")
    sfd = {name: r.safe_flight_distance for name, r in results.items()}
    print(ascii_bars(list(sfd), list(sfd.values()), unit=" m"))

    print("\n=== Summary ===")
    print(f"{'config':>6} | {'final reward':>12} | {'SFD (m)':>8} | crashes")
    for name, r in results.items():
        print(
            f"{name:>6} | {r.final_reward:12.3f} | "
            f"{r.safe_flight_distance:8.2f} | {r.crash_count}"
        )
    e2e_sfd = sfd["E2E"]
    if e2e_sfd > 0:
        print("\nNormalised SFD vs E2E (paper reports 3-8.1% degradation):")
        for name in ("L2", "L3", "L4"):
            print(f"  {name}: {sfd[name] / e2e_sfd:.2f}")


if __name__ == "__main__":
    main()
