"""Outdoor navigation with the velocity-coupling analysis (Fig. 1).

Runs the TL protocol in the outdoor forest, then couples the hardware
model's sustainable fps with the Fig. 1 law to answer the paper's
motivating question: *how fast can the drone actually fly* under each
training topology?

Run:  python examples/outdoor_navigation.py
"""

from repro import CoDesign, paper_platform
from repro.analysis import ascii_bars
from repro.env.fps import max_safe_velocity
from repro.rl import run_transfer_experiment


def main() -> None:
    print("Running TL + online RL in 'outdoor-forest' (scaled protocol)...")
    results = run_transfer_experiment(
        "outdoor-forest",
        meta_iterations=1200,
        adapt_iterations=1200,
        seed=1,
        image_side=16,
    )
    print(f"\n{'config':>6} | {'final reward':>12} | {'SFD (m)':>8}")
    for name, r in results.items():
        print(f"{name:>6} | {r.final_reward:12.3f} | {r.safe_flight_distance:8.2f}")

    print("\n=== Hardware coupling: fps -> safe velocity (forest d_min = 3 m) ===")
    platform = paper_platform()
    velocities = {}
    for name in ("L2", "L3", "E2E"):
        hw = CoDesign(name, platform=platform).evaluate_hardware(batch_size=4)
        velocities[name] = max_safe_velocity(hw.fps, d_min=3.0)
    hw4 = CoDesign("L4", platform=paper_platform(buffer_mb=65.0)).evaluate_hardware(4)
    velocities["L4"] = max_safe_velocity(hw4.fps, d_min=3.0)

    print(
        ascii_bars(
            list(velocities),
            list(velocities.values()),
            title="Max safe velocity at batch 4",
            unit=" m/s",
        )
    )
    ratio = velocities["L4"] / velocities["E2E"]
    print(f"\nL4 permits {ratio:.1f}x the flight speed of E2E "
          "(the paper reports >3x).")


if __name__ == "__main__":
    main()
