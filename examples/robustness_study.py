"""Robustness study: seed variance and realistic drone dynamics.

Two questions a deployment engineer asks of the paper's result:

1. *Is the L-vs-E2E comparison stable across random seeds?*  We repeat
   the transfer experiment over several seeds and report mean ± std.
2. *Does the learned policy survive non-ideal actuation?*  We evaluate
   the same trained policy on a kinematic drone (the paper's idealised
   model) and on an inertial drone whose heading lags commands and whose
   speed drops in turns.

Run:  python examples/robustness_study.py   (a few minutes)
"""

from repro.analysis import format_table
from repro.env import DepthCamera, InertialDrone, NavigationEnv, make_environment
from repro.env.world import Pose
from repro.nn import build_network, scaled_drone_net_spec
from repro.rl import evaluate_policy, meta_train, run_seed_sweep


def seed_variance_study() -> None:
    print("=== 1. Seed variance (indoor apartment, 3 seeds) ===")
    sweep = run_seed_sweep(
        "indoor-apartment",
        seeds=(0, 1, 2),
        meta_iterations=900,
        adapt_iterations=900,
    )
    rows = []
    for name, stats in sweep.final_reward.items():
        sfd = sweep.safe_flight_distance[name]
        lo, hi = sfd.confidence_interval()
        rows.append(
            [
                name,
                f"{stats.mean:.3f} ± {stats.std:.3f}",
                f"{sfd.mean:.1f} ± {sfd.std:.1f}",
                f"[{lo:.1f}, {hi:.1f}]",
            ]
        )
    print(format_table(["Config", "Final reward", "SFD (m)", "SFD 95% CI"], rows))
    norm = sweep.normalised_sfd("E2E")
    print("\nMean SFD normalised to E2E:",
          {k: round(v, 2) for k, v in norm.items()})
    print()


def dynamics_study() -> None:
    print("=== 2. Kinematic vs inertial dynamics (same trained policy) ===")
    meta = meta_train("meta-indoor", iterations=1500, seed=0, image_side=16)
    spec = scaled_drone_net_spec(input_side=16)
    network = build_network(spec, seed=0)
    network.load_state_dict(meta.final_state)

    rows = []
    for label, drone_factory in [
        ("kinematic (paper)", None),
        (
            "inertial, mild lag",
            lambda d: InertialDrone(Pose(0, 0, 0), d_frame=d, turn_fraction=0.8),
        ),
        (
            "inertial, heavy lag",
            lambda d: InertialDrone(Pose(0, 0, 0), d_frame=d, turn_fraction=0.4),
        ),
    ]:
        world = make_environment("indoor-apartment", seed=2)
        drone = None if drone_factory is None else drone_factory(world.d_min / 4)
        env = NavigationEnv(
            world, camera=DepthCamera(width=16, height=16), seed=5, drone=drone
        )
        result = evaluate_policy(network, env, steps=1500, seed=5)
        rows.append(
            [
                label,
                round(result.safe_flight_distance, 2),
                result.crash_count,
                round(result.mean_reward, 3),
            ]
        )
    print(format_table(["Dynamics", "SFD (m)", "Crashes", "Mean reward"], rows))
    print(
        "\nActuation lag degrades the policy gracefully rather than "
        "catastrophically —\nthe depth-reward policy generalises beyond "
        "the idealised kinematics it\ntrained on."
    )


def main() -> None:
    seed_variance_study()
    dynamics_study()


if __name__ == "__main__":
    main()
