"""Quickstart: evaluate the paper's co-design in a few lines.

Builds the paper's platform (32x32 PE array, 30 MB SRAM buffer, stacked
STT-MRAM), attaches the L3 transfer topology (train the last 3 FC layers
online, the paper's proposed design point), and prints the headline
hardware numbers next to the E2E baseline.

Run:  python examples/quickstart.py
"""

from repro import CoDesign, paper_platform
from repro.analysis import ascii_bars

def main() -> None:
    platform = paper_platform()

    print("=== Platform ===")
    for key, value in platform.memory_summary().items():
        print(f"  {key}: {value:.1f}")
    print()

    designs = {}
    for name in ("L2", "L3", "E2E"):
        designs[name] = CoDesign(name, platform=platform)
    # L4 needs the larger-SRAM design point the paper also studies.
    designs["L4"] = CoDesign("L4", platform=paper_platform(buffer_mb=65.0))

    print("=== Memory mapping (Fig. 5) ===")
    for name, cd in designs.items():
        r = cd.mapping
        print(
            f"  {name:>3}: NVM {r.nvm_mb:6.1f} MB | SRAM "
            f"{r.sram_weight_bytes / 1e6:.1f} + {r.sram_gradient_bytes / 1e6:.1f} "
            f"+ {r.sram_scratchpad_bytes / 1e6:.1f} = {r.sram_total_mb:.1f} MB"
        )
    print()

    print("=== Training iteration at batch 4 (Figs. 13a/13b) ===")
    rows = {}
    for name, cd in designs.items():
        hw = cd.evaluate_hardware(batch_size=4)
        rows[name] = hw
        it = hw.iteration
        print(
            f"  {name:>3}: {hw.fps:5.1f} fps | per-image "
            f"{it.per_image_latency_s * 1e3:6.2f} ms / "
            f"{it.per_image_energy_j * 1e3:6.1f} mJ | "
            f"max indoor velocity {hw.max_velocities['Indoor 1']:.1f} m/s"
        )
    print()
    print(
        ascii_bars(
            list(rows),
            [rows[n].fps for n in rows],
            title="Sustainable fps (batch 4)",
            unit=" fps",
        )
    )
    print()

    l3, e2e = rows["L3"].iteration, rows["E2E"].iteration
    lat_saving = 100 * (1 - l3.per_image_latency_s / e2e.per_image_latency_s)
    energy_saving = 100 * (1 - l3.per_image_energy_j / e2e.per_image_energy_j)
    print(
        f"L3 vs E2E: {lat_saving:.1f}% lower latency, "
        f"{energy_saving:.1f}% lower energy per frame"
    )
    print("(paper headline: 79.4% / 83.45% for the proposed design)")


if __name__ == "__main__":
    main()
