"""Hardware design-space exploration beyond the paper's design point.

Sweeps the knobs the co-design exposes:

1. batch size (the Fig. 13a axis),
2. SRAM buffer capacity (which topologies become feasible),
3. NVM technology (STT-MRAM vs PCM-like vs RRAM-like corners) — the
   ablation motivating Section III.C's "Why STT-MRAM?".

Run:  python examples/hardware_design_space.py
"""

from repro import CoDesign, paper_platform
from repro.analysis import format_table
from repro.core.platform import Platform
from repro.memory.devices import GlobalBuffer, SttMramStack, MB
from repro.memory.technology import NVM_TECHNOLOGIES, STT_MRAM


def batch_sweep() -> None:
    print("=== 1. Batch-size sweep (Fig. 13a extended) ===")
    platform = paper_platform()
    rows = []
    for batch in (1, 2, 4, 8, 16, 32):
        row = [batch]
        for name in ("L2", "L3", "E2E"):
            hw = CoDesign(name, platform=platform).evaluate_hardware(batch)
            row.append(round(hw.fps, 2))
        rows.append(row)
    print(format_table(["batch", "L2 fps", "L3 fps", "E2E fps"], rows))
    print()


def sram_sweep() -> None:
    print("=== 2. SRAM capacity sweep: which topologies fit? ===")
    rows = []
    for buffer_mb in (8, 15, 30, 65):
        feasible = []
        for name in ("L2", "L3", "L4", "E2E"):
            try:
                CoDesign(name, platform=paper_platform(buffer_mb=buffer_mb))
                feasible.append(name)
            except ValueError:
                pass
        rows.append([buffer_mb, ", ".join(feasible) or "(none)"])
    print(format_table(["SRAM (MB)", "feasible topologies"], rows))
    print("(the paper's three design points store 4/11/26% of weights)")
    print()


def nvm_technology_sweep() -> None:
    print("=== 3. NVM technology ablation (Section III.C) ===")
    reference_read_latency = STT_MRAM.read_latency_s
    rows = []
    for tech_name, tech in NVM_TECHNOLOGIES.items():
        # Slower arrays sustain proportionally less of the 2 Tb/s I/O.
        scale = reference_read_latency / tech.read_latency_s
        nvm = SttMramStack(
            capacity_bytes=int(128 * MB), tech=tech,
        )
        nvm.read_bandwidth_bps *= scale
        nvm.write_bandwidth_bps = nvm.read_bandwidth_bps / tech.write_read_latency_ratio
        platform = Platform(name=tech_name, nvm=nvm, buffer=GlobalBuffer())
        for config in ("L3", "E2E"):
            platform.reset_counters()
            cd = CoDesign(config, platform=platform)
            hw = cd.evaluate_hardware(4)
            # NVM write traffic per iteration -> sustained write rate,
            # the endurance-limiting quantity for the stack.
            write_bits = platform.nvm.counters.write_bits
            write_rate_gb_s = write_bits / 8e9 * hw.fps
            rows.append(
                [
                    tech_name,
                    config,
                    round(hw.fps, 2),
                    round(hw.energy_per_frame_mj, 1),
                    round(write_rate_gb_s, 3),
                ]
            )
    print(
        format_table(
            ["NVM", "config", "fps", "mJ/frame", "NVM writes (GB/s)"], rows
        )
    )
    print(
        "\nTL topologies never write the stack (endurance-free, energy "
        "flat across\ntechnologies); E2E writes the full frozen model "
        "every iteration and pays\nthe corner technologies' write energy."
    )


def main() -> None:
    batch_sweep()
    sram_sweep()
    nvm_technology_sweep()


if __name__ == "__main__":
    main()
