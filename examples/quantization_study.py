"""Fixed-point study: does the policy survive the 16-bit datapath?

The platform computes in 16-bit fixed point (Fig. 4b).  This example
meta-trains a policy in floating point, quantises it into several
Q-formats, and measures (a) weight quantisation SNR and (b) greedy
action agreement with the float policy over real camera observations —
the question the co-design's deployment step implicitly answers.

Run:  python examples/quantization_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.env import DepthCamera, NavigationEnv, make_environment
from repro.fixedpoint import QFormat
from repro.nn import QuantizedNetwork, build_network, scaled_drone_net_spec
from repro.rl import meta_train


def collect_observations(env_name: str, count: int, seed: int = 0) -> np.ndarray:
    """Gather depth-image states from a random flight."""
    world = make_environment(env_name, seed=seed)
    env = NavigationEnv(world, camera=DepthCamera(width=16, height=16), seed=seed)
    rng = np.random.default_rng(seed)
    states = [env.reset()]
    while len(states) < count:
        obs, _, done, _ = env.step(int(rng.integers(5)))
        states.append(env.reset() if done else obs)
    return np.stack(states[:count])


def main() -> None:
    print("Meta-training a float policy (indoor meta-environment)...")
    meta = meta_train("meta-indoor", iterations=1500, seed=0, image_side=16)
    spec = scaled_drone_net_spec(input_side=16)
    network = build_network(spec, seed=0)
    network.load_state_dict(meta.final_state)

    states = collect_observations("indoor-apartment", count=256, seed=3)

    formats = [
        ("Q2.3 (6-bit)", QFormat(2, 3)),
        ("Q2.5 (8-bit)", QFormat(2, 5)),
        ("Q2.9 (12-bit)", QFormat(2, 9)),
        ("Q2.13 (16-bit, platform)", QFormat(2, 13)),
    ]
    rows = []
    for label, fmt in formats:
        qnet = QuantizedNetwork(network, weight_format=fmt)
        stats = qnet.weight_error_stats()
        agreement = qnet.agreement_rate(states)
        rows.append(
            [
                label,
                fmt.total_bits,
                round(stats.snr_db, 1),
                round(100 * stats.saturated_fraction, 3),
                round(100 * agreement, 1),
            ]
        )
    print()
    print(
        format_table(
            ["Format", "Bits", "Weight SNR (dB)", "Saturated %", "Action agreement %"],
            rows,
        )
    )
    print(
        "\nThe platform's 16-bit fixed point preserves the greedy policy "
        "almost exactly,\nwhile 6-8 bit corners start flipping actions — "
        "consistent with the paper's\nchoice of 16-bit arithmetic."
    )


if __name__ == "__main__":
    main()
