"""Setuptools shim.

Allows ``pip install -e . --no-use-pep517 --no-build-isolation`` in
offline environments that lack the ``wheel`` package (the PEP 517 editable
path needs ``bdist_wheel``).  Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
