"""Span-based tracing with wall-clock *and* modelled-cycle ledgers.

A :class:`Tracer` records **spans** — named, nested intervals of host
wall time measured on the monotonic clock (``time.perf_counter_ns``).
Each span additionally carries the modelled accelerator cycles charged
while it was open (:meth:`Span.add_cycles`), so one record answers both
halves of the ROADMAP's wall-clock question: how long the host *took*
and how long the modelled hardware *would have taken*.

Usage mirrors the fastnet ``distbase.util`` timer shape — a context
manager for blocks and a decorator for functions::

    tracer = Tracer()
    with tracer.span("phase:rollout", round=0) as sp:
        ...
        sp.add_cycles(cost.total_cycles)

    @tracer.wrap("load")
    def load(): ...

Spans nest per thread (a thread-local stack supplies parent/depth), the
finished-span list is guarded by a lock, and the whole record exports
as Chrome ``chrome://tracing`` / Perfetto trace-event JSON
(:meth:`Tracer.export_chrome`): complete events (``ph="X"``) whose
``args`` carry the cycle ledger next to the wall duration.

A *disabled* tracer is a no-op: :meth:`Tracer.span` returns the shared
:data:`NULL_SPAN` singleton after a single attribute check, so
instrumentation left in hot paths costs one branch when tracing is off.
Zero dependencies beyond the standard library.
"""

from __future__ import annotations

import functools
import json
import threading
import time

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared no-op span a disabled tracer hands out.

    Supports the full :class:`Span` surface (context manager,
    :meth:`add_cycles`, :meth:`annotate`) so instrumented code never
    branches on tracer state beyond the one check inside
    :meth:`Tracer.span`.
    """

    __slots__ = ()

    cycles = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add_cycles(self, cycles: int) -> None:
        pass

    def annotate(self, **args) -> None:
        pass

    @property
    def duration_s(self) -> float:
        return 0.0


#: The no-op span singleton (identity-testable: ``span is NULL_SPAN``).
NULL_SPAN = _NullSpan()


class Span:
    """One named wall-clock interval with an attached cycle ledger."""

    __slots__ = (
        "name", "category", "args", "cycles",
        "start_ns", "end_ns", "thread_id", "parent_name", "depth",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self.name = name
        self.category = category
        self.args = args
        self.cycles = 0
        self.start_ns = 0
        self.end_ns = 0
        self.thread_id = 0
        self.parent_name: str | None = None
        self.depth = 0
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._exit(self)
        return False

    def add_cycles(self, cycles: int) -> None:
        """Attach modelled accelerator cycles to this span."""
        self.cycles += int(cycles)

    def annotate(self, **args) -> None:
        """Merge extra key/value context into the span's args."""
        self.args.update(args)

    @property
    def duration_ns(self) -> int:
        """Wall time between enter and exit (0 while still open)."""
        return self.end_ns - self.start_ns if self.end_ns else 0

    @property
    def duration_s(self) -> float:
        """Wall time in seconds."""
        return self.duration_ns / 1e9

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds."""
        return self.duration_ns / 1e6

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
            f"cycles={self.cycles}, depth={self.depth})"
        )


class Tracer:
    """Thread-safe span recorder with Chrome trace-event export.

    Parameters
    ----------
    enabled:
        When False every :meth:`span` call returns :data:`NULL_SPAN`
        and nothing is recorded.  The flag may be flipped at runtime;
        spans already open keep recording.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: list[Span] = []
        self._origin_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "", **args):
        """Open a span; use as a context manager.

        Disabled tracers return the shared no-op singleton after one
        attribute check — the whole off-path cost of an instrumented
        block.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, category, args)

    def wrap(self, name: str | None = None, category: str = ""):
        """Decorator form: trace every call of the wrapped function."""

        def decorator(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, category=category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorator

    def record(
        self,
        name: str,
        duration_ns: int,
        cycles: int = 0,
        category: str = "",
        thread_id: int | None = None,
        **args,
    ) -> None:
        """Append an already-measured span ending now.

        For work timed elsewhere — a pool worker measures its own wall
        time and the coordinator re-emits the interval here so
        :meth:`summary` aggregates it under the same name as the serial
        path's live spans.  ``thread_id`` lets callers give off-process
        work a synthetic lane (executors use ``-(worker+1)``) so Chrome
        exports show worker overlap instead of stacking everything on
        the coordinator thread.
        """
        if not self.enabled:
            return
        span = Span(self, name, category, args)
        now = time.perf_counter_ns()
        span.start_ns = now - max(int(duration_ns), 0)
        span.end_ns = now
        span.cycles = int(cycles)
        span.thread_id = (
            thread_id if thread_id is not None else threading.get_ident()
        )
        parent = self.current()
        if parent is not None:
            span.parent_name = parent.name
            span.depth = parent.depth + 1
        with self._lock:
            self._spans.append(span)

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add_cycles(self, cycles: int) -> None:
        """Attach cycles to the calling thread's innermost open span."""
        current = self.current()
        if current is not None:
            current.add_cycles(cycles)

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.thread_id = threading.get_ident()
        span.depth = len(stack)
        span.parent_name = stack[-1].name if stack else None
        stack.append(span)
        span.start_ns = time.perf_counter_ns()

    def _exit(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: drop through to it
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop all finished spans (open spans keep recording)."""
        with self._lock:
            self._spans.clear()

    def summary(self, prefix: str = "") -> dict[str, dict[str, float]]:
        """Aggregate finished spans by name.

        Returns ``{name: {"count", "wall_s", "cycles"}}`` for spans whose
        name starts with ``prefix``, insertion-ordered by first
        completion — the per-phase wall-vs-modelled table the fleet
        report renders.
        """
        out: dict[str, dict[str, float]] = {}
        for span in self.spans:
            if prefix and not span.name.startswith(prefix):
                continue
            row = out.setdefault(
                span.name, {"count": 0, "wall_s": 0.0, "cycles": 0}
            )
            row["count"] += 1
            row["wall_s"] += span.duration_s
            row["cycles"] += span.cycles
        return out

    # ------------------------------------------------------------------
    def to_chrome(self, deterministic: bool = False) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Complete events (``ph="X"``) with microsecond timestamps
        relative to tracer construction; thread idents map to small
        integers in order of first appearance so lanes are stable
        across runs.  Load the written file in ``chrome://tracing`` or
        https://ui.perfetto.dev.

        With ``deterministic=True`` the wall-clock measurements leave
        the export entirely: timestamps become *virtual* integer
        ``ts``/``dur`` derived from the recorded structure alone
        (completion order + nesting depth, never the clock — so timing
        jitter that reorders real span boundaries between otherwise
        identical runs cannot perturb the bytes) and the ``wall_ms``
        arg is dropped.  Re-running the same single-threaded workload
        rewrites the file with an empty diff — the committed
        sample-trace artifact stays reviewable.
        """
        if deterministic:
            times = self._deterministic_times()
            spans = sorted(self.spans, key=lambda s: times[id(s)][0])
        else:
            spans = sorted(
                self.spans,
                key=lambda s: (s.start_ns, s.end_ns, s.depth, s.name),
            )
        events = []
        tids: dict[int, int] = {}
        for span in spans:
            tid = tids.setdefault(span.thread_id, len(tids))
            args = dict(span.args)
            args["cycles"] = span.cycles
            if deterministic:
                ts: float | int
                dur: float | int
                ts, dur = times[id(span)]
            else:
                args["wall_ms"] = round(span.duration_ms, 6)
                ts = (span.start_ns - self._origin_ns) / 1e3
                dur = span.duration_ns / 1e3
            events.append(
                {
                    "name": span.name,
                    "cat": span.category or "repro",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def _deterministic_times(self) -> dict[int, tuple[int, int]]:
        """Virtual ``(ts, dur)`` per span id — no wall clock involved.

        The finished-span list is a per-thread postorder walk (children
        complete before parents; :meth:`record` appends at call time),
        so completion order + depth reconstructs each thread's span
        forest exactly.  A DFS over that forest then hands out integer
        enter/exit ticks from one global counter: siblings keep their
        execution (completion) order, nesting is preserved, and none of
        it depends on measured durations — identical serial workloads
        map to identical times even when real timing jitter would have
        reordered back-dated :meth:`record` span boundaries.
        """
        by_thread: dict[int, list[Span]] = {}
        for span in self.spans:
            by_thread.setdefault(span.thread_id, []).append(span)
        times: dict[int, tuple[int, int]] = {}
        counter = 0

        def assign(span: Span, children: list) -> None:
            nonlocal counter
            start = counter
            counter += 1
            for child, grandchildren in children:
                assign(child, grandchildren)
            counter += 1
            times[id(span)] = (start, counter - start)

        for thread_spans in by_thread.values():
            # Postorder rebuild: when a span at depth d completes, the
            # pending spans one level deeper are exactly its children,
            # already in execution order.
            pending: dict[int, list] = {}
            for span in thread_spans:
                children = pending.pop(span.depth + 1, [])
                pending.setdefault(span.depth, []).append((span, children))
            for depth in sorted(pending):
                for span, children in pending[depth]:
                    assign(span, children)
        return times

    def export_chrome(self, path: str, deterministic: bool = False) -> str:
        """Write the Chrome trace-event JSON to ``path``; returns it.

        ``deterministic=True`` additionally sorts the JSON keys — with
        the rank timestamps of :meth:`to_chrome` the written bytes are
        then a pure function of the recorded workload.
        """
        with open(path, "w") as fh:
            json.dump(
                self.to_chrome(deterministic=deterministic),
                fh,
                indent=1,
                sort_keys=deterministic,
            )
        return path
