"""The instrumentation seam: one process-global probe, off by default.

Production code (the fleet scheduler, the agent, the execution
backends, the weight bus, the vectorized env) imports :data:`PROBE` and
calls its methods unconditionally::

    from repro.obs.probes import PROBE

    with PROBE.span("backend.forward_batch", backend=name) as sp:
        q_values, cost = backend.forward_batch(states)
        sp.add_cycles(cost.total_cycles)
    if PROBE.enabled:
        PROBE.observe("repro_backend_forward_seconds", sp.duration_s)

While the probe is *inactive* (the default) every call is a no-op
guarded by one attribute check — ``span`` returns the shared
:data:`~repro.obs.trace.NULL_SPAN`, the metric helpers return before
touching the registry, and an instrumented fleet run is bitwise
identical to an uninstrumented one (the disabled-identity benchmark in
``benchmarks/test_obs_overhead.py`` enforces it).

:meth:`Probe.activate` switches on a live :class:`~repro.obs.trace.Tracer`
and binds a metrics registry (a private one per run, usually — the CLI
builds a fresh registry per ``fleet --trace/--metrics`` invocation so
two runs never mix telemetry); :meth:`Probe.deactivate` restores the
no-op state.  The :func:`observed` context manager wraps the pair for
tests and CLI commands.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer
from repro.parallel.procstate import in_worker

__all__ = ["Probe", "PROBE", "observed"]


class Probe:
    """Process-global tracer + metrics front-end, inactive by default."""

    def __init__(self):
        self.enabled = False
        self.tracer = Tracer(enabled=False)
        self.metrics: MetricsRegistry = REGISTRY

    # ------------------------------------------------------------------
    def activate(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> Tracer:
        """Switch instrumentation on; returns the live tracer.

        ``tracer``/``registry`` default to a fresh :class:`Tracer` and
        the process-global :data:`~repro.obs.metrics.REGISTRY`.

        The probe seam is **process-local**: only the coordinator owns
        a live tracer/registry, and ``repro.parallel`` pool workers run
        with it permanently off (their spans would accumulate in a
        process nobody drains).  Executors re-emit worker-measured
        intervals through :meth:`record_span` instead.
        """
        if in_worker():
            raise RuntimeError(
                "PROBE is process-local: pool workers must not activate "
                "instrumentation — record spans in the coordinator via "
                "Probe.record_span instead"
            )
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.tracer.enabled = True
        if registry is not None:
            self.metrics = registry
        self.enabled = True
        return self.tracer

    def deactivate(self) -> None:
        """Restore the no-op state (recorded spans/metrics survive)."""
        self.enabled = False
        self.tracer.enabled = False
        self.metrics = REGISTRY

    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "", **args):
        """A tracer span when active, :data:`NULL_SPAN` otherwise."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, category=category, **args)

    def add_cycles(self, cycles: int) -> None:
        """Attach cycles to the innermost open span, if tracing."""
        if self.enabled:
            self.tracer.add_cycles(cycles)

    def record_span(
        self,
        name: str,
        duration_ns: int,
        cycles: int = 0,
        worker: int | None = None,
        **args,
    ) -> None:
        """Re-emit a span measured elsewhere (a pool worker, typically).

        ``worker`` tags the span and routes it to a synthetic negative
        thread lane so worker intervals overlap visibly in the Chrome
        export while :meth:`~repro.obs.trace.Tracer.summary` still
        aggregates them with the serial path's live spans by name.
        """
        if not self.enabled:
            return
        thread_id = None
        if worker is not None:
            thread_id = -(int(worker) + 1)
            args.setdefault("worker", int(worker))
        self.tracer.record(
            name, duration_ns, cycles=cycles, thread_id=thread_id, **args
        )

    # ------------------------------------------------------------------
    def count(
        self, name: str, amount: float = 1.0, help: str = "", **labels
    ) -> None:
        """Increment counter ``name`` (no-op while inactive)."""
        if not self.enabled:
            return
        self.metrics.counter(name, help=help, labels=labels or None).inc(amount)

    def gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set gauge ``name`` (no-op while inactive)."""
        if not self.enabled:
            return
        self.metrics.gauge(name, help=help, labels=labels or None).set(value)

    def observe(self, name: str, value: float, help: str = "", **labels) -> None:
        """Observe ``value`` into histogram ``name`` (no-op inactive)."""
        if not self.enabled:
            return
        self.metrics.histogram(name, help=help, labels=labels or None).observe(
            value
        )


#: The process-global probe every instrumented module imports.
PROBE = Probe()


@contextmanager
def observed(registry: MetricsRegistry | None = None):
    """Activate :data:`PROBE` for a block; yields ``(tracer, registry)``.

    Deactivates on exit even when the block raises, so a crashed run
    cannot leave the process paying tracing overhead.
    """
    tracer = PROBE.activate(registry=registry)
    try:
        yield tracer, PROBE.metrics
    finally:
        PROBE.deactivate()
