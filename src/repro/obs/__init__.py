"""Observability: span tracing, metrics, wall-vs-modelled profiling.

Three zero-dependency pieces (standard library only):

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span`: nested,
  thread-safe, monotonic-clock spans carrying host wall time *and* the
  modelled accelerator cycles charged while each span was open;
  exports Chrome ``chrome://tracing`` trace-event JSON.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` (fixed buckets +
  exact p50/p90/p99 summaries) with Prometheus text exposition and a
  deterministic :meth:`~MetricsRegistry.snapshot` API.
* :mod:`repro.obs.probes` — the process-global :data:`PROBE` seam the
  fleet/backend/systolic stack is instrumented through; inactive (and
  one-attribute-check cheap) by default, switched on by
  ``fleet --trace/--metrics/--json``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.obs.probes import PROBE, Probe, observed
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "PROBE",
    "Probe",
    "observed",
    "NULL_SPAN",
    "Span",
    "Tracer",
]
