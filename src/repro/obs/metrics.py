"""Process-global metrics: Counters, Gauges, Histograms, exposition.

A :class:`MetricsRegistry` holds named metrics with optional label
sets, Prometheus-style:

* :class:`Counter` — monotonically increasing totals (env steps,
  backend forwards, weight-bus flips);
* :class:`Gauge` — last-write-wins instantaneous values (snapshot
  staleness);
* :class:`Histogram` — fixed cumulative buckets *plus* exact
  p50/p90/p99 quantile summaries computed from the retained samples
  (numpy-compatible linear interpolation, proven against
  ``np.percentile`` in tests).

Two read paths serve two consumers:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition
  format (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``), so a
  scrape of the written ``metrics.prom`` file parses with any
  Prometheus tooling;
* :meth:`MetricsRegistry.snapshot` — a deterministic, sorted, plain
  dict for tests and machine consumers (the ``metrics`` block of the
  ``fleet --json`` / ``systolic-bench --json`` payloads).

The module-level :data:`REGISTRY` is the process-global default the
probe seam writes to; tests build private registries.  Zero
dependencies beyond the standard library.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Default histogram bucket upper bounds (seconds-flavoured latencies).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Quantiles every histogram summarises.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats print as integers."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class _Metric:
    """Shared name/help/labels plumbing."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = tuple(sorted((k, str(v)) for k, v in (labels or {}).items()))
        self._lock = threading.Lock()

    @property
    def key(self) -> tuple:
        return (self.name, self.labels)

    @property
    def labelled_name(self) -> str:
        """``name{label="value",...}`` — the snapshot/exposition key."""
        return self.name + _label_suffix(self.labels)


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge(_Metric):
    """Instantaneous value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount


class Histogram(_Metric):
    """Fixed cumulative buckets + exact quantile summaries.

    Buckets follow Prometheus semantics: ``bucket_counts[i]`` counts
    observations ``<= bounds[i]``, rendered cumulatively with a final
    ``+Inf`` bucket equal to ``count``.  Samples are retained (bounded
    by ``max_samples``, keeping the earliest) so quantiles are exact
    order statistics rather than bucket interpolations.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: tuple[float, ...] | None = None,
        max_samples: int = 100_000,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.max_samples = max_samples
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            if len(self._samples) < self.max_samples:
                self._samples.append(value)

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the retained samples.

        Linear interpolation between closest ranks — the same estimator
        as ``numpy.percentile(..., method="linear")`` — so test oracles
        can compare directly.  NaN when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return float("nan")
        position = (len(samples) - 1) * q
        lo = math.floor(position)
        hi = math.ceil(position)
        return samples[lo] + (samples[hi] - samples[lo]) * (position - lo)

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """``(le, cumulative count)`` rows ending with ``+Inf``."""
        with self._lock:
            running = 0
            rows = []
            for bound, bucket in zip(self.bounds, self.bucket_counts):
                running += bucket
                rows.append((_format_value(bound), running))
            rows.append(("+Inf", self.count))
        return rows


class MetricsRegistry:
    """Named metrics with get-or-create accessors and two read paths."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple, _Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, tuple(sorted((k, str(v)) for k, v in (labels or {}).items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, labels=labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
        return metric

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()

    def __iter__(self):
        with self._lock:
            return iter(list(self._metrics.values()))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic plain-dict view, keys sorted.

        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
        with histogram entries carrying count/sum/quantiles/buckets —
        the machine-readable telemetry block downstream consumers (the
        future ``repro.tune`` explorer) read instead of parsing report
        text.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in sorted(self, key=lambda m: (m.name, m.labels)):
            key = metric.labelled_name
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[key] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "quantiles": {
                        f"p{int(q * 100)}": metric.quantile(q)
                        for q in SUMMARY_QUANTILES
                    },
                    "buckets": dict(metric.cumulative_buckets()),
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        One ``# HELP`` / ``# TYPE`` header per metric name (first
        registration's help wins), samples sorted by (name, labels), a
        trailing newline — parseable by any Prometheus scraper.
        """
        by_name: dict[str, list[_Metric]] = {}
        for metric in sorted(self, key=lambda m: (m.name, m.labels)):
            by_name.setdefault(metric.name, []).append(metric)
        lines: list[str] = []
        for name, metrics in by_name.items():
            head = metrics[0]
            if head.help:
                lines.append(f"# HELP {name} {head.help}")
            lines.append(f"# TYPE {name} {head.kind}")
            for metric in metrics:
                suffix = _label_suffix(metric.labels)
                if isinstance(metric, Histogram):
                    for le, cumulative in metric.cumulative_buckets():
                        bucket_labels = metric.labels + (("le", le),)
                        lines.append(
                            f"{name}_bucket{_label_suffix(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{suffix} {_format_value(metric.sum)}"
                    )
                    lines.append(f"{name}_count{suffix} {metric.count}")
                else:
                    lines.append(
                        f"{name}{suffix} {_format_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n"

    def export_prometheus(self, path: str) -> str:
        """Write the exposition text to ``path``; returns it."""
        with open(path, "w") as fh:
            fh.write(self.render_prometheus())
        return path


#: The process-global registry the probe seam writes to by default.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :data:`REGISTRY`."""
    return REGISTRY
