"""Frozen-policy evaluation.

Fig. 11's safe-flight-distance comparison is cleanest when measured with
a *frozen* greedy policy (no exploration noise, no ongoing updates).
:func:`evaluate_policy` runs such an evaluation and reports SFD, reward
statistics and the action distribution; :func:`evaluate_state_dict`
wraps it for a saved model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.episode import NavigationEnv
from repro.env.generators import make_environment
from repro.env.trace import FlightTrace
from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.nn.network import Network

__all__ = ["EvaluationResult", "evaluate_policy", "evaluate_state_dict"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of a frozen-policy evaluation run."""

    environment: str
    steps: int
    safe_flight_distance: float
    crash_count: int
    mean_reward: float
    action_histogram: tuple[int, ...]
    trace: FlightTrace

    @property
    def crash_rate(self) -> float:
        """Crashes per step."""
        return self.crash_count / self.steps if self.steps else 0.0


def evaluate_policy(
    network: Network,
    env: NavigationEnv,
    steps: int = 1000,
    epsilon: float = 0.0,
    seed: int = 0,
) -> EvaluationResult:
    """Run ``network`` greedily in ``env`` for ``steps`` actions.

    ``epsilon`` adds optional residual exploration (0 = fully greedy).
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must be in [0, 1]")
    rng = np.random.default_rng(seed)
    trace = FlightTrace()
    rewards = []
    state = env.reset()
    for _ in range(steps):
        if epsilon and rng.random() < epsilon:
            action = int(rng.integers(env.num_actions))
        else:
            action = int(np.argmax(network.predict(state[None, ...])[0]))
        next_state, reward, done, info = env.step(action)
        trace.record(info["pose"], action, reward, info["crashed"])
        rewards.append(reward)
        state = env.reset() if done else next_state
    # Close the final (crash-free) flight segment so its distance counts.
    env.tracker.flush()
    histogram = tuple(int(c) for c in trace.action_histogram(env.num_actions))
    return EvaluationResult(
        environment=env.world.name,
        steps=steps,
        safe_flight_distance=env.tracker.safe_flight_distance,
        crash_count=env.tracker.crash_count,
        mean_reward=float(np.mean(rewards)),
        action_histogram=histogram,
        trace=trace,
    )


def evaluate_state_dict(
    state: dict[str, np.ndarray],
    env_name: str,
    steps: int = 1000,
    image_side: int = 16,
    seed: int = 0,
) -> EvaluationResult:
    """Evaluate a saved scaled-drone-net model in a named environment."""
    spec = scaled_drone_net_spec(input_side=image_side)
    network = build_network(spec, seed=seed)
    network.load_state_dict(state)
    world = make_environment(env_name, seed=seed)
    env = NavigationEnv(
        world,
        camera=DepthCamera(width=image_side, height=image_side, noise=StereoNoiseModel()),
        seed=seed + 31,
    )
    return evaluate_policy(network, env, steps=steps, seed=seed)
