"""Observation wrappers.

:class:`FrameStack` concatenates the last ``k`` depth images along the
channel axis — the classic DQN trick giving the (otherwise memoryless)
Q network access to short-term motion cues.  The paper's network takes a
single frame; stacking is the natural first extension and works with
any ``NavigationEnv`` unchanged.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.env.episode import NavigationEnv

__all__ = ["FrameStack"]


class FrameStack:
    """Stack the last ``k`` observations along the channel axis.

    Presents the same ``reset``/``step`` interface as
    :class:`~repro.env.episode.NavigationEnv`; on reset the stack is
    filled with copies of the first frame.
    """

    def __init__(self, env: NavigationEnv, k: int = 3):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.env = env
        self.k = k
        self._frames: deque[np.ndarray] = deque(maxlen=k)

    @property
    def num_actions(self) -> int:
        """Action-space size (delegated)."""
        return self.env.num_actions

    @property
    def observation_shape(self) -> tuple[int, int, int]:
        """(channels * k, height, width)."""
        c, h, w = self.env.observation_shape
        return (c * self.k, h, w)

    @property
    def world(self):
        """Underlying world (delegated)."""
        return self.env.world

    @property
    def tracker(self):
        """Safe-flight tracker (delegated)."""
        return self.env.tracker

    def _stacked(self) -> np.ndarray:
        return np.concatenate(list(self._frames), axis=0)

    def reset(self) -> np.ndarray:
        """Reset and fill the stack with the first frame."""
        obs = self.env.reset()
        self._frames.clear()
        for _ in range(self.k):
            self._frames.append(obs)
        return self._stacked()

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Step the wrapped env and return the stacked observation."""
        obs, reward, done, info = self.env.step(action)
        self._frames.append(obs)
        return self._stacked(), reward, done, info
