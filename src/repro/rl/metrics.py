"""Learning-curve metrics matching Fig. 10.

* **Cumulative reward** — "the moving average of last N rewards received
  by the agent", N being a smoothing constant (15000 in the paper; we
  scale it with run length).
* **Return** — "the moving average of the sum of rewards across
  episodes": rewards accumulate until a crash, each crash closes one
  episode-return sample, and the curve is the moving average of those
  per-episode means.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["MovingAverage", "ReturnTracker", "LearningCurves"]


class MovingAverage:
    """Moving average over the last ``window`` samples."""

    def __init__(self, window: int):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._buffer: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def add(self, value: float) -> float:
        """Insert ``value`` and return the current average."""
        if len(self._buffer) == self.window:
            self._sum -= self._buffer[0]
        self._buffer.append(value)
        self._sum += value
        return self.value

    @property
    def value(self) -> float:
        """Current moving average (NaN when empty)."""
        if not self._buffer:
            return float("nan")
        return self._sum / len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class ReturnTracker:
    """Per-flight mean reward, moving-averaged across flights.

    The paper's return metric: rewards accumulate between crashes and
    are normalised by the number of actions in the flight,
    ``(1/N_k) * sum r_j``.
    """

    def __init__(self, window: int = 20):
        self._avg = MovingAverage(window)
        self._sum = 0.0
        self._count = 0

    def add_reward(self, reward: float) -> None:
        """Record one step's reward within the current flight."""
        self._sum += reward
        self._count += 1

    def end_episode(self) -> float:
        """Close the flight at a crash; returns the updated average."""
        if self._count > 0:
            self._avg.add(self._sum / self._count)
        self._sum = 0.0
        self._count = 0
        return self._avg.value

    @property
    def value(self) -> float:
        """Moving average of per-flight returns."""
        return self._avg.value


class LearningCurves:
    """Collects the Fig. 10 curves during a training run."""

    def __init__(self, reward_window: int, return_window: int = 20):
        self.cumulative_reward = MovingAverage(reward_window)
        self.returns = ReturnTracker(return_window)
        self.reward_curve: list[float] = []
        self.return_curve: list[float] = []
        self.loss_curve: list[float] = []

    def record_step(self, reward: float, done: bool, loss: float | None) -> None:
        """Record one environment step (and optional training loss)."""
        self.reward_curve.append(self.cumulative_reward.add(reward))
        self.returns.add_reward(reward)
        if done:
            self.returns.end_episode()
        self.return_curve.append(self.returns.value)
        if loss is not None:
            self.loss_curve.append(loss)

    def final_reward(self, tail_fraction: float = 0.2) -> float:
        """Mean of the last ``tail_fraction`` of the reward curve."""
        if not self.reward_curve:
            return float("nan")
        tail = max(int(len(self.reward_curve) * tail_fraction), 1)
        return float(np.nanmean(self.reward_curve[-tail:]))

    def converged(self, tail_fraction: float = 0.3, tolerance: float = 0.15) -> bool:
        """Crude saturation test: the tail varies within ``tolerance``
        relative to its mean (Fig. 10's "saturating reward")."""
        if len(self.reward_curve) < 10:
            return False
        tail = max(int(len(self.reward_curve) * tail_fraction), 2)
        values = np.asarray(self.reward_curve[-tail:])
        values = values[~np.isnan(values)]
        if values.size < 2:
            return False
        mean = float(np.mean(values))
        if mean == 0.0:
            return False
        spread = float(np.max(values) - np.min(values))
        return spread / abs(mean) <= tolerance
