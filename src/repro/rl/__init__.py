"""Reinforcement learning: Q-learning agent, transfer configurations,
meta-training and online adaptation experiments.

The paper's algorithm (Sections II and VI.B):

1. **Meta-training (TL phase).** Before deployment, the Q network is
   trained with RL in a complex meta-environment (indoor or outdoor),
   starting from ImageNet weights, for many iterations.
2. **Deployment.** The meta-model is downloaded to the drone — the
   convolutional prefix and early FC layers into STT-MRAM, the trainable
   FC tail into on-die SRAM.
3. **Online RL.** In the test environment the agent keeps learning, but
   backpropagation covers only the last i FC layers (L2/L3/L4) — or the
   whole network in the E2E baseline.

The metrics match Figs. 10 and 11: cumulative reward (moving average of
the last N rewards), return (moving average of per-flight reward sums),
and safe flight distance.
"""

from repro.rl.replay import ReplayBuffer
from repro.rl.transfer import TransferConfig, TRANSFER_CONFIGS, config_by_name
from repro.rl.agent import QLearningAgent, EpsilonSchedule
from repro.rl.metrics import MovingAverage, ReturnTracker, LearningCurves
from repro.rl.experiment import (
    TrainingResult,
    train_agent,
    train_agent_in_fleet,
    meta_train,
    online_adapt,
    run_transfer_experiment,
)
from repro.rl.evaluation import (
    EvaluationResult,
    evaluate_policy,
    evaluate_state_dict,
)
from repro.rl.sweep import SeedStatistics, SweepResult, run_seed_sweep
from repro.rl.checkpoint import save_result, load_result
from repro.rl.wrappers import FrameStack

__all__ = [
    "ReplayBuffer",
    "TransferConfig",
    "TRANSFER_CONFIGS",
    "config_by_name",
    "QLearningAgent",
    "EpsilonSchedule",
    "MovingAverage",
    "ReturnTracker",
    "LearningCurves",
    "TrainingResult",
    "train_agent",
    "train_agent_in_fleet",
    "meta_train",
    "online_adapt",
    "run_transfer_experiment",
    "EvaluationResult",
    "evaluate_policy",
    "evaluate_state_dict",
    "SeedStatistics",
    "SweepResult",
    "run_seed_sweep",
    "save_result",
    "load_result",
    "FrameStack",
]
