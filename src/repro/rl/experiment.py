"""The paper's end-to-end RL experiments (Figs. 10 and 11).

``run_transfer_experiment`` executes the full protocol for one test
environment:

1. meta-train an E2E agent in the category's meta-environment,
2. for each topology (L2/L3/L4/E2E), download the meta-weights and run
   online RL in the test environment with partial backpropagation,
3. report learning curves and safe flight distance.

Network and iteration counts are scaled down from the paper's 60 k
Unreal iterations (DESIGN.md substitution) but the protocol and all the
comparative structure are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.env.episode import NavigationEnv, Transition
from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.generators import META_FOR_TEST, make_environment
from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.nn.network import Network
from repro.rl.agent import EpsilonSchedule, QLearningAgent
from repro.rl.metrics import LearningCurves
from repro.rl.transfer import TRANSFER_CONFIGS, TransferConfig, config_by_name

__all__ = [
    "TrainingResult",
    "train_agent",
    "train_agent_in_fleet",
    "meta_train",
    "online_adapt",
    "run_transfer_experiment",
]


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    config_name: str
    environment: str
    curves: LearningCurves
    safe_flight_distance: float
    crash_count: int
    iterations: int
    final_state: dict[str, np.ndarray] = field(repr=False, default_factory=dict)

    @property
    def final_reward(self) -> float:
        """Tail-mean of the cumulative-reward curve."""
        return self.curves.final_reward()


def _make_env(name: str, seed: int, image_side: int) -> NavigationEnv:
    world = make_environment(name, seed=seed)
    camera = DepthCamera(
        width=image_side, height=image_side, noise=StereoNoiseModel()
    )
    return NavigationEnv(world, camera=camera, seed=seed + 7)


def train_agent(
    agent: QLearningAgent,
    env: NavigationEnv,
    iterations: int,
    train_every: int = 2,
    max_episode_steps: int = 400,
    curves: LearningCurves | None = None,
) -> TrainingResult:
    """Run online RL for ``iterations`` environment steps."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    curves = curves or LearningCurves(reward_window=max(iterations // 8, 10))
    state = env.reset()
    episode_steps = 0
    for step in range(iterations):
        action = agent.select_action(state)
        next_state, reward, done, _info = env.step(action)
        agent.observe(Transition(state, action, reward, next_state, done))
        loss = None
        if agent.ready_to_train() and step % train_every == 0:
            loss = agent.train_step()
        curves.record_step(reward, done, loss)
        episode_steps += 1
        if done or episode_steps >= max_episode_steps:
            state = env.reset()
            episode_steps = 0
        else:
            state = next_state
    # Close the final (crash-free) flight segment so its distance counts.
    env.tracker.flush()
    return TrainingResult(
        config_name=agent.config.name,
        environment=env.world.name,
        curves=curves,
        safe_flight_distance=env.tracker.safe_flight_distance,
        crash_count=env.tracker.crash_count,
        iterations=iterations,
        final_state=agent.network.state_dict(),
    )


def train_agent_in_fleet(
    agent: QLearningAgent,
    env_name: str,
    iterations: int,
    num_envs: int,
    seed: int,
    image_side: int,
    max_episode_steps: int = 400,
) -> TrainingResult:
    """Fleet-backed counterpart of :func:`train_agent`.

    One shared agent collects experience from ``num_envs`` replicas of
    ``env_name`` (per-replica seeds), stepping and training in batches
    via :func:`repro.fleet.train_agent_fleet`.  The result aggregates
    the fleet: curves are env-means, SFD is the fleet mean, crashes sum.
    """
    from repro.fleet.runner import train_agent_fleet
    from repro.fleet.vec_env import VecNavigationEnv

    vec_env = VecNavigationEnv.from_names(
        [env_name],
        seeds=[seed + i for i in range(num_envs)],
        image_side=image_side,
        max_episode_steps=max_episode_steps,
    )
    fleet = train_agent_fleet(agent, vec_env, iterations=iterations)
    curves = LearningCurves(reward_window=max(iterations // 8, 10))
    curves.reward_curve = list(
        np.mean([c.reward_curve for c in fleet.curves], axis=0)
    )
    curves.return_curve = list(
        np.mean([c.return_curve for c in fleet.curves], axis=0)
    )
    curves.loss_curve = list(fleet.loss_curve)
    return TrainingResult(
        config_name=agent.config.name,
        environment=env_name,
        curves=curves,
        safe_flight_distance=fleet.mean_safe_flight_distance,
        crash_count=sum(fleet.crash_counts),
        iterations=iterations,
        final_state=fleet.final_state,
    )


def meta_train(
    meta_env_name: str,
    iterations: int = 1500,
    seed: int = 0,
    image_side: int = 16,
    network: Network | None = None,
    num_envs: int = 1,
) -> TrainingResult:
    """TL phase: end-to-end RL in the meta-environment.

    The paper trains 60 k Unreal iterations from ImageNet weights; we run
    a scaled count on the scaled network (seeded "imagenet stub" init).
    ``num_envs > 1`` collects the experience from a fleet of
    meta-environment replicas instead of a single env.
    """
    spec = scaled_drone_net_spec(input_side=image_side)
    network = network or build_network(spec, seed=seed)
    # The schedule counts per-state steps; a fleet consumes num_envs of
    # them per fleet step, so scale the decay to keep the same fraction
    # of the run exploratory.
    agent = QLearningAgent(
        network,
        config=config_by_name("E2E"),
        epsilon=EpsilonSchedule(1.0, 0.1, max(iterations * num_envs // 2, 1)),
        seed=seed,
    )
    if num_envs > 1:
        return train_agent_in_fleet(
            agent, meta_env_name, iterations, num_envs, seed, image_side
        )
    env = _make_env(meta_env_name, seed=seed, image_side=image_side)
    return train_agent(agent, env, iterations)


def online_adapt(
    meta_state: dict[str, np.ndarray],
    test_env_name: str,
    config: TransferConfig,
    iterations: int = 1500,
    seed: int = 1,
    image_side: int = 16,
    num_envs: int = 1,
) -> TrainingResult:
    """Deployment phase: online RL in the test environment.

    Downloads the meta-model, then trains only the layers selected by
    ``config`` (exploration restarts at a moderate rate, as the agent
    already has a useful policy).  ``num_envs > 1`` adapts against a
    fleet of test-environment replicas (batched stepping/training).
    """
    spec = scaled_drone_net_spec(input_side=image_side)
    network = build_network(spec, seed=seed)
    network.load_state_dict(meta_state)
    agent = QLearningAgent(
        network,
        config=config,
        epsilon=EpsilonSchedule(0.3, 0.05, max(iterations * num_envs // 2, 1)),
        seed=seed,
    )
    if num_envs > 1:
        return train_agent_in_fleet(
            agent, test_env_name, iterations, num_envs, seed, image_side
        )
    env = _make_env(test_env_name, seed=seed, image_side=image_side)
    return train_agent(agent, env, iterations)


def run_transfer_experiment(
    test_env_name: str,
    configs: tuple[TransferConfig, ...] = TRANSFER_CONFIGS,
    meta_iterations: int = 1500,
    adapt_iterations: int = 1500,
    seed: int = 0,
    image_side: int = 16,
    num_envs: int = 1,
) -> dict[str, TrainingResult]:
    """Full Fig. 10/11 protocol for one test environment.

    Returns one :class:`TrainingResult` per configuration name.
    ``num_envs > 1`` runs both phases against environment fleets.
    """
    meta_env_name = META_FOR_TEST[test_env_name]
    meta_result = meta_train(
        meta_env_name,
        iterations=meta_iterations,
        seed=seed,
        image_side=image_side,
        num_envs=num_envs,
    )
    results: dict[str, TrainingResult] = {}
    for config in configs:
        results[config.name] = online_adapt(
            meta_result.final_state,
            test_env_name,
            config,
            iterations=adapt_iterations,
            seed=seed + 13,
            image_side=image_side,
            num_envs=num_envs,
        )
    return results
