"""Experiment checkpointing.

Saves a :class:`~repro.rl.experiment.TrainingResult` — weights, curves
and scalar metrics — to a directory (``.npz`` for arrays, ``.json`` for
metadata) and restores it, so long meta-training runs are paid for once
and the deployment/adaptation phase can be replayed from disk.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.rl.experiment import TrainingResult
from repro.rl.metrics import LearningCurves

__all__ = ["save_result", "load_result"]

_META_FILE = "result.json"
_WEIGHTS_FILE = "weights.npz"
_CURVES_FILE = "curves.npz"


def save_result(result: TrainingResult, directory: str | Path) -> Path:
    """Persist ``result`` under ``directory`` (created if needed)."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    meta = {
        "config_name": result.config_name,
        "environment": result.environment,
        "safe_flight_distance": result.safe_flight_distance,
        "crash_count": result.crash_count,
        "iterations": result.iterations,
    }
    (out / _META_FILE).write_text(json.dumps(meta, indent=2))
    np.savez_compressed(out / _WEIGHTS_FILE, **result.final_state)
    np.savez_compressed(
        out / _CURVES_FILE,
        reward=np.asarray(result.curves.reward_curve, dtype=np.float64),
        returns=np.asarray(result.curves.return_curve, dtype=np.float64),
        loss=np.asarray(result.curves.loss_curve, dtype=np.float64),
    )
    return out


def load_result(directory: str | Path) -> TrainingResult:
    """Restore a result saved by :func:`save_result`."""
    src = Path(directory)
    meta_path = src / _META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"no checkpoint at {src}")
    meta = json.loads(meta_path.read_text())
    with np.load(src / _WEIGHTS_FILE) as data:
        state = {key: data[key] for key in data.files}
    with np.load(src / _CURVES_FILE) as data:
        reward = data["reward"]
        returns = data["returns"]
        loss = data["loss"]
    curves = LearningCurves(reward_window=max(len(reward) // 8, 10))
    curves.reward_curve = reward.tolist()
    curves.return_curve = returns.tolist()
    curves.loss_curve = loss.tolist()
    return TrainingResult(
        config_name=meta["config_name"],
        environment=meta["environment"],
        curves=curves,
        safe_flight_distance=meta["safe_flight_distance"],
        crash_count=meta["crash_count"],
        iterations=meta["iterations"],
        final_state=state,
    )
