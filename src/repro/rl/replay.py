"""Experience replay buffer."""

from __future__ import annotations

import numpy as np

from repro.env.episode import Transition

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity cyclic buffer of :class:`Transition` tuples."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._storage: list[Transition] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._storage)

    def push(self, transition: Transition) -> None:
        """Insert a transition, evicting the oldest when full."""
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniformly sample a batch.

        Returns stacked arrays: states (N, ...), actions (N,), rewards
        (N,), next_states (N, ...), dones (N,) as float 0/1.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(self._storage) < batch_size:
            raise ValueError(
                f"buffer has {len(self._storage)} transitions, need {batch_size}"
            )
        idx = rng.choice(len(self._storage), size=batch_size, replace=False)
        batch = [self._storage[i] for i in idx]
        states = np.stack([t.state for t in batch])
        actions = np.array([t.action for t in batch], dtype=np.int64)
        rewards = np.array([t.reward for t in batch], dtype=np.float64)
        next_states = np.stack([t.next_state for t in batch])
        dones = np.array([float(t.done) for t in batch], dtype=np.float64)
        return states, actions, rewards, next_states, dones

    def clear(self) -> None:
        """Drop all stored transitions."""
        self._storage.clear()
        self._cursor = 0
