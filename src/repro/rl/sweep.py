"""Multi-seed experiment sweeps with summary statistics.

Single-seed RL results are noisy (visible in Fig. 10's jagged curves);
this module repeats the transfer experiment across seeds and reports
mean, standard deviation and a normal-approximation confidence interval
per topology — what a careful reproduction reports instead of one run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rl.experiment import run_transfer_experiment
from repro.rl.transfer import TRANSFER_CONFIGS, TransferConfig

__all__ = ["SeedStatistics", "SweepResult", "run_seed_sweep"]


@dataclass(frozen=True)
class SeedStatistics:
    """Mean/std/CI summary of one metric across seeds."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        """Number of seeds."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single seed)."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean."""
        if z <= 0:
            raise ValueError("z must be positive")
        half = z * self.std / math.sqrt(self.n) if self.n > 1 else 0.0
        return (self.mean - half, self.mean + half)


@dataclass(frozen=True)
class SweepResult:
    """Per-topology statistics for one test environment."""

    environment: str
    seeds: tuple[int, ...]
    final_reward: dict[str, SeedStatistics]
    safe_flight_distance: dict[str, SeedStatistics]

    def normalised_sfd(self, baseline: str = "E2E") -> dict[str, float]:
        """Mean SFD of each topology divided by the baseline's mean."""
        base = self.safe_flight_distance[baseline].mean
        if base <= 0:
            raise ValueError(f"baseline {baseline} has non-positive SFD")
        return {
            name: stats.mean / base
            for name, stats in self.safe_flight_distance.items()
        }


def run_seed_sweep(
    test_env_name: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    configs: tuple[TransferConfig, ...] = TRANSFER_CONFIGS,
    meta_iterations: int = 1000,
    adapt_iterations: int = 1000,
    image_side: int = 16,
    num_envs: int = 1,
) -> SweepResult:
    """Repeat the Fig. 10/11 protocol across ``seeds`` and summarise.

    ``num_envs > 1`` runs every training phase against a fleet of
    environment replicas (batched stepping/training via
    :mod:`repro.fleet`) instead of a single environment.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    rewards: dict[str, list[float]] = {c.name: [] for c in configs}
    sfds: dict[str, list[float]] = {c.name: [] for c in configs}
    for seed in seeds:
        results = run_transfer_experiment(
            test_env_name,
            configs=configs,
            meta_iterations=meta_iterations,
            adapt_iterations=adapt_iterations,
            seed=seed,
            image_side=image_side,
            num_envs=num_envs,
        )
        for name, result in results.items():
            rewards[name].append(result.final_reward)
            sfds[name].append(result.safe_flight_distance)
    return SweepResult(
        environment=test_env_name,
        seeds=tuple(seeds),
        final_reward={
            name: SeedStatistics(tuple(vals)) for name, vals in rewards.items()
        },
        safe_flight_distance={
            name: SeedStatistics(tuple(vals)) for name, vals in sfds.items()
        },
    )
