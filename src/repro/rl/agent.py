"""Deep Q-learning agent with partial backpropagation.

Implements eq. (1) of the paper: ``Q(s,a) = r + gamma * max_a' Q(s',a')``
regressed with gradient descent, where backpropagation covers only the
layers selected by the active :class:`~repro.rl.transfer.TransferConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.episode import Transition
from repro.nn.losses import q_learning_loss
from repro.nn.network import Network
from repro.nn.optim import Optimizer, SGD
from repro.rl.replay import ReplayBuffer
from repro.rl.transfer import TransferConfig

__all__ = ["EpsilonSchedule", "QLearningAgent"]


@dataclass(frozen=True)
class EpsilonSchedule:
    """Linearly annealed exploration rate."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 2000

    def __post_init__(self) -> None:
        if not 0.0 <= self.end <= self.start <= 1.0:
            raise ValueError("need 0 <= end <= start <= 1")
        if self.decay_steps <= 0:
            raise ValueError("decay_steps must be positive")

    def value(self, step: int) -> float:
        """Exploration rate at ``step``."""
        if step >= self.decay_steps:
            return self.end
        frac = step / self.decay_steps
        return self.start + frac * (self.end - self.start)


class QLearningAgent:
    """DQN-style agent over a NumPy :class:`~repro.nn.network.Network`.

    Parameters
    ----------
    network:
        The Q network; outputs one value per action.
    config:
        Transfer configuration deciding which layers train online.
    num_actions:
        Size of the action space (5 in the paper).
    gamma:
        Discount factor of the long-term return.
    batch_size:
        Training batch size N (the paper evaluates N = 4, 8, 16).
    learning_rate, epsilon, replay_capacity, seed:
        Usual knobs.
    grad_clip:
        Global-norm gradient clip applied before each update; keeps the
        bootstrapped regression stable without a target network.
    target_sync_every:
        When set, maintain a frozen *target network* (a weight snapshot)
        for the bootstrap term, re-synchronised every this many training
        steps — the standard DQN stabiliser.  ``None`` bootstraps from
        the online network (the paper's plain eq. (1)).
    double_dqn:
        With a target network, select the bootstrap action with the
        online network but evaluate it with the target (double DQN);
        reduces the max-operator's overestimation bias.
    """

    def __init__(
        self,
        network: Network,
        config: TransferConfig,
        num_actions: int = 5,
        gamma: float = 0.9,
        batch_size: int = 8,
        learning_rate: float = 1e-3,
        epsilon: EpsilonSchedule | None = None,
        replay_capacity: int = 4000,
        seed: int = 0,
        optimizer: Optimizer | None = None,
        grad_clip: float = 5.0,
        target_sync_every: int | None = None,
        double_dqn: bool = False,
    ):
        if not 0.0 <= gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.network = network
        self.config = config
        self.num_actions = num_actions
        self.gamma = gamma
        self.batch_size = batch_size
        self.epsilon = epsilon or EpsilonSchedule()
        self.replay = ReplayBuffer(replay_capacity)
        self.rng = np.random.default_rng(seed)
        if grad_clip <= 0:
            raise ValueError("grad_clip must be positive")
        if target_sync_every is not None and target_sync_every <= 0:
            raise ValueError("target_sync_every must be positive or None")
        if double_dqn and target_sync_every is None:
            raise ValueError("double_dqn requires a target network")
        self.grad_clip = grad_clip
        self.target_sync_every = target_sync_every
        self.double_dqn = double_dqn
        self._target_state = (
            network.state_dict() if target_sync_every is not None else None
        )
        self.first_trainable = config.first_trainable_layer(network)
        self.optimizer = optimizer or SGD(
            network.parameters(self.first_trainable), lr=learning_rate, momentum=0.9
        )
        self.step_count = 0
        self.train_count = 0
        self.last_loss = float("nan")

    # ------------------------------------------------------------------
    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q(s, .) for a single state (adds the batch axis)."""
        return self.network.predict(state[None, ...])[0]

    def select_action(self, state: np.ndarray, greedy: bool = False) -> int:
        """Epsilon-greedy action selection."""
        eps = 0.0 if greedy else self.epsilon.value(self.step_count)
        self.step_count += 1
        if self.rng.random() < eps:
            return int(self.rng.integers(self.num_actions))
        return int(np.argmax(self.q_values(state)))

    def observe(self, transition: Transition) -> None:
        """Store a transition in the replay buffer.

        Rejects non-finite rewards/states — a corrupted sensor frame
        silently entering replay would poison every later batch.
        """
        if not np.isfinite(transition.reward):
            raise ValueError(f"non-finite reward: {transition.reward}")
        if not np.all(np.isfinite(transition.state)) or not np.all(
            np.isfinite(transition.next_state)
        ):
            raise ValueError("non-finite values in observed state")
        if not 0 <= transition.action < self.num_actions:
            raise ValueError(f"action out of range: {transition.action}")
        self.replay.push(transition)

    def ready_to_train(self) -> bool:
        """Whether the buffer holds at least one batch."""
        return len(self.replay) >= self.batch_size

    def train_step(self) -> float:
        """One training iteration (Fig. 3b): batch forward, partial
        backward, gradient-descent update.  Returns the batch loss."""
        if not self.ready_to_train():
            raise RuntimeError("not enough transitions to train")
        states, actions, rewards, next_states, dones = self.replay.sample(
            self.batch_size, self.rng
        )
        # Bellman targets (eq. 1); terminal states contribute reward only.
        bootstrap = self._bootstrap_values(next_states)
        targets = rewards + self.gamma * (1.0 - dones) * bootstrap
        q_pred = self.network.forward(states, training=True)
        loss, grad = q_learning_loss(q_pred, actions, targets)
        self.network.zero_grad()
        self.network.backward(grad, first_trainable=self.first_trainable)
        self._clip_gradients()
        self.optimizer.step()
        self.train_count += 1
        self.last_loss = loss
        if (
            self.target_sync_every is not None
            and self.train_count % self.target_sync_every == 0
        ):
            self._target_state = self.network.state_dict()
        return loss

    def _bootstrap_values(self, next_states: np.ndarray) -> np.ndarray:
        """max_a' Q(s', a') under the configured bootstrap scheme."""
        if self._target_state is None:
            return self.network.predict(next_states).max(axis=1)
        target_q = self._predict_with_state(next_states, self._target_state)
        if not self.double_dqn:
            return target_q.max(axis=1)
        online_actions = self.network.predict(next_states).argmax(axis=1)
        return target_q[np.arange(target_q.shape[0]), online_actions]

    def _predict_with_state(
        self, states: np.ndarray, state: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Forward pass with a temporary weight snapshot swapped in."""
        params = self.network.parameters()
        saved = [p.value for p in params]
        for p in params:
            p.value = state[p.name]
        try:
            return self.network.predict(states)
        finally:
            for p, value in zip(params, saved):
                p.value = value

    def _clip_gradients(self) -> None:
        """Scale trainable gradients so their global norm <= grad_clip."""
        params = self.optimizer.params
        total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in params))
        if total > self.grad_clip:
            scale = self.grad_clip / total
            for p in params:
                p.grad *= scale
