"""Deep Q-learning agent with partial backpropagation.

Implements eq. (1) of the paper: ``Q(s,a) = r + gamma * max_a' Q(s',a')``
regressed with gradient descent, where backpropagation covers only the
layers selected by the active :class:`~repro.rl.transfer.TransferConfig`.

Action selection routes through a pluggable
:class:`~repro.backend.ExecutionBackend` — float NumPy by default, or
the quantized / systolic datapaths for hardware-in-the-loop rollouts —
mirroring the paper's split: *inference* runs on the accelerator's
fixed-point datapath, *training* stays in floating point off-device.
Every backend forward records a :class:`~repro.backend.StepCost`;
:meth:`QLearningAgent.drain_inference_cost` hands the accumulated cycle
budget to whoever is accounting (the fleet scheduler, per round).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import (
    ExecutionBackend,
    NumpyBackend,
    StepCost,
    StepCostAccumulator,
    WeightBus,
    merge_step_costs,
)
from repro.env.episode import Transition
from repro.faults.injector import FAULTS
from repro.nn.losses import q_learning_loss
from repro.nn.network import Network
from repro.nn.optim import Optimizer, SGD
from repro.obs.probes import PROBE
from repro.rl.replay import ReplayBuffer
from repro.rl.transfer import TransferConfig

__all__ = ["EpsilonSchedule", "QLearningAgent"]


@dataclass(frozen=True)
class EpsilonSchedule:
    """Linearly annealed exploration rate."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 2000

    def __post_init__(self) -> None:
        if not 0.0 <= self.end <= self.start <= 1.0:
            raise ValueError("need 0 <= end <= start <= 1")
        if self.decay_steps <= 0:
            raise ValueError("decay_steps must be positive")

    def value(self, step: int) -> float:
        """Exploration rate at ``step``."""
        if step >= self.decay_steps:
            return self.end
        frac = step / self.decay_steps
        return self.start + frac * (self.end - self.start)

    def values(self, steps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value` over an array of step indices."""
        steps = np.asarray(steps, dtype=np.float64)
        frac = np.minimum(steps / self.decay_steps, 1.0)
        # Past decay, return `end` exactly as value() does — the lerp
        # at frac=1.0 is off by one ulp, enough to diverge from the
        # sequential agent's draws.
        return np.where(
            steps >= self.decay_steps,
            self.end,
            self.start + frac * (self.end - self.start),
        )


class QLearningAgent:
    """DQN-style agent over a NumPy :class:`~repro.nn.network.Network`.

    Parameters
    ----------
    network:
        The Q network; outputs one value per action.
    config:
        Transfer configuration deciding which layers train online.
    num_actions:
        Size of the action space (5 in the paper).
    gamma:
        Discount factor of the long-term return.
    batch_size:
        Training batch size N (the paper evaluates N = 4, 8, 16).
    learning_rate, epsilon, replay_capacity, seed:
        Usual knobs.
    grad_clip:
        Global-norm gradient clip applied before each update; keeps the
        bootstrapped regression stable without a target network.
    target_sync_every:
        When set, maintain a frozen *target network* (a weight snapshot)
        for the bootstrap term, re-synchronised every this many training
        steps — the standard DQN stabiliser.  ``None`` bootstraps from
        the online network (the paper's plain eq. (1)).
    double_dqn:
        With a target network, select the bootstrap action with the
        online network but evaluate it with the target (double DQN);
        reduces the max-operator's overestimation bias.
    backend:
        Execution backend for action selection (``None`` selects the
        float :class:`~repro.backend.NumpyBackend`, bitwise-identical
        to calling the network directly).  Training always
        backpropagates through the float network regardless of the
        backend — inference-on-accelerator, training-off-device.
    sync_every:
        Flip cadence of the :class:`~repro.backend.WeightBus` between
        the float trainer and the deployed datapath: the backend's
        serving snapshot refreshes every this many training updates.
        1 (default) is the synchronous write-back after every update;
        larger values let inference run on a bounded-staleness snapshot
        while training proceeds — the async-rollout tradeoff, measured
        by the bus's staleness counters.
    train_on_array:
        When True, every training update additionally charges the
        backend's array the closed-form cost of executing that batch's
        forward + backward GEMMs on it (``backend.train_cost``), and
        :meth:`drain_training_cost` hands the accumulated budget to the
        fleet scheduler per round.  The *numerics* still backpropagate
        through the float network either way — this models what
        training on the datapath would cost, so the projection can
        answer whether K arrays sustain concurrent rollout + training.
        False (default) keeps the paper's training-off-device split:
        updates charge the array nothing.
    """

    def __init__(
        self,
        network: Network,
        config: TransferConfig,
        num_actions: int = 5,
        gamma: float = 0.9,
        batch_size: int = 8,
        learning_rate: float = 1e-3,
        epsilon: EpsilonSchedule | None = None,
        replay_capacity: int = 4000,
        seed: int = 0,
        optimizer: Optimizer | None = None,
        grad_clip: float = 5.0,
        target_sync_every: int | None = None,
        double_dqn: bool = False,
        backend: ExecutionBackend | None = None,
        sync_every: int = 1,
        train_on_array: bool = False,
    ):
        if not 0.0 <= gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.network = network
        self.config = config
        self.num_actions = num_actions
        self.gamma = gamma
        self.batch_size = batch_size
        self.epsilon = epsilon or EpsilonSchedule()
        self.replay = ReplayBuffer(replay_capacity)
        self.rng = np.random.default_rng(seed)
        if grad_clip <= 0:
            raise ValueError("grad_clip must be positive")
        if target_sync_every is not None and target_sync_every <= 0:
            raise ValueError("target_sync_every must be positive or None")
        if double_dqn and target_sync_every is None:
            raise ValueError("double_dqn requires a target network")
        self.grad_clip = grad_clip
        self.target_sync_every = target_sync_every
        self.double_dqn = double_dqn
        self._target_state = (
            network.state_dict() if target_sync_every is not None else None
        )
        self.first_trainable = config.first_trainable_layer(network)
        self.optimizer = optimizer or SGD(
            network.parameters(self.first_trainable), lr=learning_rate, momentum=0.9
        )
        if backend is not None and backend.network is not network:
            # A backend over some other network would serve one policy
            # while training (and sync()-ing) another — the deployed
            # policy would silently never improve.
            raise ValueError("backend must wrap the agent's own network")
        self.backend = backend or NumpyBackend(network)
        self.weight_bus = WeightBus(self.backend, sync_every=sync_every)
        # Streaming ledgers: each record folds in once and the
        # scheduler's per-phase cycle peeks read a running total in
        # O(1), instead of re-merging an ever-growing record list.
        self._pending_costs = StepCostAccumulator(self.backend.name)
        self.train_on_array = train_on_array
        self._pending_train_costs = StepCostAccumulator(self.backend.name)
        # The closed-form training cost is a pure function of
        # (batch, state shape, boundary) — memoise it per geometry so
        # charging every update costs a dict lookup, not a layer walk.
        self._train_cost_cache: dict[tuple, StepCost] = {}
        self.step_count = 0
        self.train_count = 0
        self.last_loss = float("nan")

    # ------------------------------------------------------------------
    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q(s, .) for a single state under the *float* network.

        This is the training-side view of the policy; the deployed
        (possibly quantised) view is ``backend.forward_batch``.
        """
        return self.network.predict(state[None, ...])[0]

    def _backend_q_values(self, states: np.ndarray) -> np.ndarray:
        """Backend forward pass, recording its step cost in the ledger."""
        self.weight_bus.note_serve(states.shape[0])
        with PROBE.span(
            "backend.forward_batch",
            backend=self.backend.name,
            states=int(states.shape[0]),
        ) as sp:
            q_values, cost = self.backend.forward_batch(states)
            sp.add_cycles(cost.total_cycles)
            if cost.shards > 1:
                sp.annotate(
                    shards=cost.shards,
                    critical_shard=cost.critical_shard_index,
                )
        if PROBE.enabled:
            PROBE.count(
                "repro_backend_forwards_total",
                help="Backend forward_batch calls.",
                backend=self.backend.name,
            )
            PROBE.count(
                "repro_backend_states_total",
                states.shape[0],
                help="States served by the backend.",
                backend=self.backend.name,
            )
            PROBE.count(
                "repro_backend_cycles_total",
                cost.total_cycles,
                help="Modelled array cycles charged for inference.",
                backend=self.backend.name,
            )
            PROBE.observe(
                "repro_backend_forward_seconds",
                sp.duration_s,
                help="Host wall time of one backend forward pass.",
                backend=self.backend.name,
            )
        if FAULTS.enabled:
            q_values, cost = self._guard_q_values(states, q_values, cost)
        self._pending_costs.add(cost)
        return q_values

    def _guard_q_values(
        self, states: np.ndarray, q_values: np.ndarray, cost: StepCost
    ) -> tuple[np.ndarray, StepCost]:
        """NaN/range guard on served Q values, with flip-and-recompute.

        A bit flip in the serving weight buffer presents as non-finite
        Q values (float path) or values pinned to the activation
        format's saturation rails (the quantised datapath clamps, so a
        blown-up weight rails the output instead of producing NaN).
        On detection the agent forces a weight-bus flip — a fresh
        download from the float staging weights — and recomputes; the
        recompute's cycles are charged as recovery overhead and merged
        into the step's cost.
        """
        fmt = getattr(self.backend, "activation_format", None)
        bad = not bool(np.all(np.isfinite(q_values)))
        if (
            not bad
            and fmt is not None
            and getattr(self.backend, "quantized", False)
        ):
            bad = bool(
                np.any(q_values >= fmt.max_value)
                or np.any(q_values <= fmt.min_value)
            )
        if not bad:
            return q_values, cost
        inj = FAULTS.injector
        suspects = inj.undetected(("sram.flip", "buffer.corrupt"))
        if suspects:
            for rec in suspects:
                inj.mark_detected(rec)
        else:
            rec = inj.record(
                "qvalue.anomaly", target=self.backend.name,
                detail="non-finite or rail-pinned Q values",
            )
            inj.mark_detected(rec)
            suspects = [rec]
        with PROBE.span("recovery", kind="qvalue.guard"):
            self.weight_bus.flip()
            q_values, recompute = self.backend.forward_batch(states)
        inj.add_recovery_cycles(recompute.total_cycles)
        cost = merge_step_costs([cost, recompute], backend=self.backend.name)
        recovered = bool(np.all(np.isfinite(q_values)))
        if recovered and fmt is not None and getattr(self.backend, "quantized", False):
            recovered = not bool(
                np.any(q_values >= fmt.max_value)
                or np.any(q_values <= fmt.min_value)
            )
        if recovered:
            for rec in suspects:
                inj.mark_recovered(rec, detail="forced flip + recompute")
        return q_values, cost

    def pending_inference_cycles(self) -> int:
        """Cycles in the inference ledger since the last drain.

        A read-only peek (nothing is drained): the fleet scheduler's
        phase spans difference it around each phase to attribute the
        modelled cycle budget to rollout vs evaluation.  O(1) — the
        accumulator keeps a running total.
        """
        return self._pending_costs.total_cycles

    def pending_training_cycles(self) -> int:
        """Cycles in the training ledger since the last drain (peek)."""
        return self._pending_train_costs.total_cycles

    def drain_inference_cost(self) -> StepCost:
        """Accumulated backend :class:`StepCost` since the last drain.

        Clears the ledger; the fleet scheduler calls this once per round
        to thread per-round cycle budgets into its report.
        """
        return self._pending_costs.drain()

    def drain_training_cost(self) -> StepCost:
        """Accumulated on-array training :class:`StepCost` since last drain.

        Empty (zero cost) unless the agent was constructed with
        ``train_on_array=True`` and has trained; the fleet scheduler
        drains it per round alongside the inference ledger.
        """
        return self._pending_train_costs.drain()

    def select_action(self, state: np.ndarray, greedy: bool = False) -> int:
        """Epsilon-greedy action selection (greedy leg via the backend)."""
        eps = 0.0 if greedy else self.epsilon.value(self.step_count)
        self.step_count += 1
        if self.rng.random() < eps:
            return int(self.rng.integers(self.num_actions))
        return int(np.argmax(self._backend_q_values(state[None, ...])[0]))

    def act_batch(self, states: np.ndarray, greedy: bool = False) -> np.ndarray:
        """Epsilon-greedy actions for a whole fleet of states at once.

        ``states`` is (N, C, H, W); returns (N,) int actions.  One
        backend forward pass serves all N environments, instead of N
        single-state passes.  Each state consumes one
        exploration-schedule step and one uniform draw, mirroring N
        :meth:`select_action` calls (the random draws come from the same
        generator, in batch order).
        """
        states = np.asarray(states)
        if states.ndim < 2:
            raise ValueError("act_batch expects a batch of states")
        n = states.shape[0]
        if greedy:
            eps = np.zeros(n)
        else:
            eps = self.epsilon.values(np.arange(self.step_count, self.step_count + n))
        self.step_count += n
        explore = self.rng.random(n) < eps
        if np.all(explore):
            # Mirror select_action: a fully exploring batch skips the
            # forward pass entirely.
            return self.rng.integers(self.num_actions, size=n).astype(np.int64)
        greedy_actions = np.argmax(self._backend_q_values(states), axis=1)
        if not np.any(explore):
            return greedy_actions.astype(np.int64)
        random_actions = self.rng.integers(self.num_actions, size=n)
        return np.where(explore, random_actions, greedy_actions).astype(np.int64)

    def observe(self, transition: Transition) -> None:
        """Store a transition in the replay buffer.

        Rejects non-finite rewards/states — a corrupted sensor frame
        silently entering replay would poison every later batch.
        """
        if not np.isfinite(transition.reward):
            raise ValueError(f"non-finite reward: {transition.reward}")
        if not np.all(np.isfinite(transition.state)) or not np.all(
            np.isfinite(transition.next_state)
        ):
            raise ValueError("non-finite values in observed state")
        if not 0 <= transition.action < self.num_actions:
            raise ValueError(f"action out of range: {transition.action}")
        self.replay.push(transition)

    def observe_batch(self, transitions: list[Transition]) -> None:
        """Store one fleet step's worth of transitions.

        Applies the same corrupted-frame guards as :meth:`observe`, but
        validates the whole batch with a few vectorised checks instead
        of per-transition calls.
        """
        if not transitions:
            return
        rewards = np.array([t.reward for t in transitions])
        if not np.all(np.isfinite(rewards)):
            raise ValueError("non-finite reward in batch")
        for t in transitions:
            if not 0 <= t.action < self.num_actions:
                raise ValueError(f"action out of range: {t.action}")
        states = np.stack(
            [t.state for t in transitions] + [t.next_state for t in transitions]
        )
        if not np.all(np.isfinite(states)):
            raise ValueError("non-finite values in observed state")
        for transition in transitions:
            self.replay.push(transition)

    def ready_to_train(self) -> bool:
        """Whether the buffer holds at least one batch."""
        return len(self.replay) >= self.batch_size

    def train_step(self) -> float:
        """One training iteration (Fig. 3b): batch forward, partial
        backward, gradient-descent update.  Returns the batch loss."""
        return self.train_step_batch(self.batch_size)

    def train_step_batch(self, batch_size: int | None = None) -> float:
        """One training iteration over a custom batch size.

        The fleet path trains with ``batch_size * num_envs`` samples in
        one forward/backward pass, matching the gradient throughput of
        ``num_envs`` independent agents at a fraction of the per-call
        overhead.  Returns the batch loss.
        """
        batch_size = self.batch_size if batch_size is None else batch_size
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(self.replay) < batch_size:
            raise RuntimeError("not enough transitions to train")
        with PROBE.span("agent.train_step", batch=batch_size) as sp:
            states, actions, rewards, next_states, dones = self.replay.sample(
                batch_size, self.rng
            )
            # Bellman targets (eq. 1); terminal states contribute reward
            # only.
            bootstrap = self._bootstrap_values(next_states)
            targets = rewards + self.gamma * (1.0 - dones) * bootstrap
            q_pred = self.network.forward(states, training=True)
            loss, grad = q_learning_loss(q_pred, actions, targets)
            self.network.zero_grad()
            self.network.backward(grad, first_trainable=self.first_trainable)
            self._clip_gradients()
            self.optimizer.step()
            self.train_count += 1
            self.last_loss = loss
            if (
                self.target_sync_every is not None
                and self.train_count % self.target_sync_every == 0
            ):
                self._target_state = self.network.state_dict()
            # Publish the update on the weight bus; the deployed datapath
            # flips to the staged weights every sync_every updates (every
            # update by default — the synchronous SRAM write-back).
            self.weight_bus.publish()
            if self.train_on_array:
                if FAULTS.enabled:
                    # A crash failover changes how many arrays the batch
                    # splits over; the geometry-keyed memo would serve a
                    # stale split, so chaos runs recompute every time.
                    cost = self.backend.train_cost(
                        batch_size, states.shape[1:],
                        first_trainable=self.first_trainable,
                    )
                else:
                    key = (batch_size, states.shape[1:], self.first_trainable)
                    cost = self._train_cost_cache.get(key)
                    if cost is None:
                        cost = self.backend.train_cost(
                            batch_size, states.shape[1:],
                            first_trainable=self.first_trainable,
                        )
                        self._train_cost_cache[key] = cost
                sp.add_cycles(cost.total_cycles)
                self._pending_train_costs.add(cost)
        if PROBE.enabled:
            PROBE.count(
                "repro_agent_train_updates_total",
                help="Optimizer updates applied by the agent.",
            )
            PROBE.observe(
                "repro_agent_train_step_seconds",
                sp.duration_s,
                help="Host wall time of one training iteration.",
            )
        return loss

    def _bootstrap_values(self, next_states: np.ndarray) -> np.ndarray:
        """max_a' Q(s', a') under the configured bootstrap scheme."""
        if self._target_state is None:
            return self.network.predict(next_states).max(axis=1)
        target_q = self._predict_with_state(next_states, self._target_state)
        if not self.double_dqn:
            return target_q.max(axis=1)
        online_actions = self.network.predict(next_states).argmax(axis=1)
        return target_q[np.arange(target_q.shape[0]), online_actions]

    def _predict_with_state(
        self, states: np.ndarray, state: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Forward pass with a temporary weight snapshot swapped in."""
        params = self.network.parameters()
        saved = [p.value for p in params]
        for p in params:
            p.value = state[p.name]
        try:
            return self.network.predict(states)
        finally:
            for p, value in zip(params, saved):
                p.value = value

    def _clip_gradients(self) -> None:
        """Scale trainable gradients so their global norm <= grad_clip."""
        params = self.optimizer.params
        total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in params))
        if total > self.grad_clip:
            scale = self.grad_clip / total
            for p in params:
                p.grad *= scale
