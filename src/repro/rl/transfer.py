"""Transfer-learning configurations: E2E, L2, L3, L4.

Section VI.B: "For RL, we use 4 topologies, E2E (end-to-end RL) and L2,
L3, and L4, where Li represents TL followed by RL where the last
i-layers are trained online."

Each configuration also implies an SRAM capacity requirement (Fig. 3b:
4 %, 11 % and 26 % of total weights for L2/L3/L4) which the memory mapper
checks against the platform's global buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.network import Network
from repro.nn.specs import NetworkSpec

__all__ = ["TransferConfig", "TRANSFER_CONFIGS", "config_by_name"]


@dataclass(frozen=True)
class TransferConfig:
    """One online-training topology.

    Parameters
    ----------
    name:
        Display name ("E2E", "L2", "L3", "L4").
    last_k_fc:
        Number of FC layers trained online; ``None`` = end-to-end.
    """

    name: str
    last_k_fc: int | None

    def __post_init__(self) -> None:
        if self.last_k_fc is not None and self.last_k_fc <= 0:
            raise ValueError("last_k_fc must be positive or None")

    @property
    def is_end_to_end(self) -> bool:
        """Whether every layer trains online."""
        return self.last_k_fc is None

    def first_trainable_layer(self, network: Network) -> int:
        """Layer index in ``network`` where backpropagation stops.

        Relies on the drone networks' structure: the FC layers are the
        last parametric layers of the stack, so "last k FC layers" is
        "last k parametric layers".
        """
        return network.trainable_boundary(self.last_k_fc)

    def trainable_weights(self, spec: NetworkSpec) -> int:
        """Weights updated online under this configuration."""
        return spec.trainable_weights(self.last_k_fc)

    def trainable_fraction(self, spec: NetworkSpec) -> float:
        """Fraction of all weights updated online (Fig. 3b)."""
        return spec.trainable_fraction(self.last_k_fc)

    def trainable_fc_names(self, spec: NetworkSpec) -> tuple[str, ...]:
        """Names of the FC layers trained online (all layers for E2E)."""
        if self.last_k_fc is None:
            return tuple(l.name for l in spec.layers)
        return tuple(l.name for l in spec.last_fc(self.last_k_fc))


#: The paper's four topologies, in increasing-capability order.
TRANSFER_CONFIGS = (
    TransferConfig("L2", last_k_fc=2),
    TransferConfig("L3", last_k_fc=3),
    TransferConfig("L4", last_k_fc=4),
    TransferConfig("E2E", last_k_fc=None),
)


def config_by_name(name: str) -> TransferConfig:
    """Look up one of the paper's configurations by name."""
    for config in TRANSFER_CONFIGS:
        if config.name == name.upper():
            return config
    known = ", ".join(c.name for c in TRANSFER_CONFIGS)
    raise KeyError(f"unknown transfer config {name!r}; known: {known}")
