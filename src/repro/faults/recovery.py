"""Low-level detection/recovery primitives: checksums and bit surgery.

These are the mechanisms the detection seams are built from:
:func:`buffer_checksum` fingerprints a set of named weight buffers (the
``WeightBus`` verifies it on publish/flip and rolls back on mismatch),
and :func:`flip_raw_bit` flips one bit of a two's-complement fixed-point
code — the physical model of an SRAM soft error in a quantized weight.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.fixedpoint.qformat import QFormat

__all__ = ["buffer_checksum", "flip_raw_bit"]


def buffer_checksum(buffers: dict[str, np.ndarray] | None) -> int:
    """CRC-32 over a name-sorted set of weight buffers.

    Order-independent of dict insertion (names are sorted) and cheap
    enough to run on every weight-bus publish; any single bit flip in
    any buffer changes the value.
    """
    if not buffers:
        return 0
    crc = 0
    for name in sorted(buffers):
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(buffers[name]).tobytes(), crc)
    return crc


def flip_raw_bit(raw: int, bit: int, fmt: QFormat) -> int:
    """Flip one bit of a two's-complement raw code, staying in range.

    The flip happens in the ``fmt.total_bits``-wide unsigned image of
    the code, so flipping the top bit of a signed format toggles the
    sign — exactly what a physical upset in the stored word does — and
    the result always decodes to a representable value.
    """
    width = fmt.total_bits
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for {width}-bit format")
    mask = (1 << width) - 1
    unsigned = (int(raw) & mask) ^ (1 << bit)
    if fmt.signed and unsigned >= 1 << (width - 1):
        return unsigned - (1 << width)
    return unsigned
