"""Deterministic fault plans: what goes wrong, when, and how often.

A :class:`FaultPlan` is a frozen, seeded description of every fault a
chaos run may inject — soft-error bit flips in the serving weight
buffers, shard crashes and stragglers, weight-bus publish drops and
flip corruption, sensor dropout, and scheduled mid-round exceptions —
plus the recovery policy knobs (bounded retry, backoff, health-check
timeouts).  The plan carries *rates and schedules only*; every draw is
made by the :class:`~repro.faults.injector.FaultInjector` from
counter-keyed RNG streams, so the same plan replays the identical
fault/recovery event log run after run.

The SRAM soft-error rate can be grounded in the memory model:
:func:`sram_flip_rate_from_technology` converts a
:class:`~repro.memory.technology.MemoryTechnology`'s per-bit-per-second
upset rate into a per-update flip probability for a buffer of a given
size (with an acceleration factor, because realistic sea-level SEU
rates would never fire inside a simulated run).  ``parse_fault_spec``
turns a CLI string — a bare seed, or ``key=value`` tokens — into a
plan, so ``fleet --faults "seed=7,crash=1@30"`` is a complete chaos
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # repro.memory's package __init__ pulls in the RL stack, which pulls
    # in repro.backend, which imports this package — so the technology
    # import happens lazily inside sram_flip_rate_from_technology.
    from repro.memory.technology import MemoryTechnology

__all__ = [
    "FaultPlan",
    "parse_fault_spec",
    "sram_flip_rate_from_technology",
    "DEFAULT_CHAOS_RATES",
]

#: Rates a bare-seed spec (``--faults 7``) turns on: a little of
#: everything, no scheduled crashes.
DEFAULT_CHAOS_RATES = {
    "sram_flip_rate": 0.02,
    "shard_transient_rate": 0.05,
    "shard_straggler_rate": 0.05,
    "publish_drop_rate": 0.05,
    "buffer_corruption_rate": 0.02,
    "sensor_dropout_rate": 0.01,
}


def sram_flip_rate_from_technology(
    technology: "MemoryTechnology | None" = None,
    bits: int = 1 << 20,
    interval_s: float = 1.0,
    acceleration: float = 1e9,
) -> float:
    """Per-update probability of one bit flip in a serving buffer.

    ``technology.soft_error_rate_per_bit_s`` is the physical per-bit
    upset rate; a buffer of ``bits`` exposed for ``interval_s`` between
    weight-bus publishes accumulates ``rate * bits * interval`` expected
    upsets.  ``acceleration`` scales that into chaos-testing territory
    (realistic sea-level rates are ~1e-17/bit-s — nothing would ever
    fire in a simulated run); the result is clamped to a probability.
    """
    if technology is None:
        from repro.memory.technology import ON_DIE_SRAM

        technology = ON_DIE_SRAM
    if bits <= 0 or interval_s <= 0 or acceleration <= 0:
        raise ValueError("bits, interval_s and acceleration must be positive")
    expected = (
        technology.soft_error_rate_per_bit_s * bits * interval_s * acceleration
    )
    return min(expected, 1.0)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic description of a chaos experiment.

    Rates are probabilities per opportunity (per published update for
    the weight-bus faults, per sharded forward per array for the shard
    faults, per fleet step per env for sensor dropout).  Schedules are
    absolute counters: ``shard_crashes`` kills array ``shard``
    permanently once the fleet-step counter reaches ``step`` (1-based);
    ``raise_at_steps`` raises a
    :class:`~repro.faults.injector.FaultInjectionError` out of
    ``VecNavigationEnv.step`` at those fleet steps (crash-path testing).

    Recovery policy: transient shard faults retry up to ``max_retries``
    times, each attempt charging the shard its forward cycles again
    plus ``retry_timeout_cycles * retry_backoff**attempt`` of modelled
    timeout; a crashed shard is declared dead after
    ``health_check_timeout_cycles`` and its work fails over onto the
    survivors.
    """

    seed: int = 0
    # --- weight-path faults -------------------------------------------
    #: P(one bit flips in the serving weight buffer) per published update.
    sram_flip_rate: float = 0.0
    #: P(a due weight-bus flip is dropped) per publish.
    publish_drop_rate: float = 0.0
    #: P(a flip corrupts the freshly synced buffer) per flip.
    buffer_corruption_rate: float = 0.0
    # --- shard faults -------------------------------------------------
    #: P(a transient fault aborts one array's forward) per forward per shard.
    shard_transient_rate: float = 0.0
    #: P(one array runs slow) per forward per shard.
    shard_straggler_rate: float = 0.0
    #: Cycle multiplier a straggling array runs at.
    straggler_factor: float = 4.0
    #: Permanent kills: ``(fleet_step, shard_index)`` pairs.
    shard_crashes: tuple[tuple[int, int], ...] = ()
    # --- environment faults -------------------------------------------
    #: P(an env's sensor frame drops) per fleet step per env.
    sensor_dropout_rate: float = 0.0
    #: Fleet steps (1-based) at which ``VecNavigationEnv.step`` raises.
    raise_at_steps: tuple[int, ...] = ()
    # --- recovery policy ----------------------------------------------
    max_retries: int = 3
    retry_timeout_cycles: int = 2048
    retry_backoff: float = 2.0
    health_check_timeout_cycles: int = 4096

    def __post_init__(self) -> None:
        for name in (
            "sram_flip_rate", "publish_drop_rate", "buffer_corruption_rate",
            "shard_transient_rate", "shard_straggler_rate",
            "sensor_dropout_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.retry_timeout_cycles < 0 or self.health_check_timeout_cycles < 0:
            raise ValueError("timeout cycles cannot be negative")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        for step, shard in self.shard_crashes:
            if step < 1 or shard < 0:
                raise ValueError(
                    f"bad crash schedule ({step}, {shard}): steps are "
                    "1-based, shard indices non-negative"
                )
        for step in self.raise_at_steps:
            if step < 1:
                raise ValueError("raise_at_steps entries are 1-based")

    @property
    def any_faults(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(
            self.sram_flip_rate or self.publish_drop_rate
            or self.buffer_corruption_rate or self.shard_transient_rate
            or self.shard_straggler_rate or self.sensor_dropout_rate
            or self.shard_crashes or self.raise_at_steps
        )


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a CLI fault spec into a :class:`FaultPlan`.

    Two forms:

    * a bare integer — the seed of a default chaos mix
      (:data:`DEFAULT_CHAOS_RATES`, no scheduled crashes);
    * comma-separated ``key=value`` tokens::

          seed=7             RNG seed (default 0)
          sram=0.05|auto     bit-flip rate; ``auto`` derives it from the
                             on-die SRAM soft-error rate
          drop=0.1           publish-drop rate
          corrupt=0.05       flip-corruption rate
          transient=0.1      transient shard-fault rate
          straggler=0.1      straggler rate
          straggler-factor=8 straggler slowdown
          sensor=0.02        sensor-dropout rate
          crash=1@30         kill shard 1 at fleet step 30 (repeatable)
          raise=12           raise out of step 12 (repeatable)
          retries=3 timeout=2048 backoff=2.0 health-timeout=4096
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty fault spec")
    try:
        return FaultPlan(seed=int(spec), **DEFAULT_CHAOS_RATES)
    except ValueError as exc:
        if "invalid literal" not in str(exc):
            raise
    kwargs: dict = {}
    crashes: list[tuple[int, int]] = []
    raises: list[int] = []
    scalar = {
        "seed": ("seed", int),
        "sram": ("sram_flip_rate", float),
        "drop": ("publish_drop_rate", float),
        "corrupt": ("buffer_corruption_rate", float),
        "transient": ("shard_transient_rate", float),
        "straggler": ("shard_straggler_rate", float),
        "straggler-factor": ("straggler_factor", float),
        "sensor": ("sensor_dropout_rate", float),
        "retries": ("max_retries", int),
        "timeout": ("retry_timeout_cycles", int),
        "backoff": ("retry_backoff", float),
        "health-timeout": ("health_check_timeout_cycles", int),
    }
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"bad fault-spec token {token!r}: expected key=value")
        key = key.strip()
        value = value.strip()
        if key == "crash":
            shard_s, sep, step_s = value.partition("@")
            if not sep:
                raise ValueError(
                    f"bad crash spec {value!r}: expected SHARD@STEP"
                )
            crashes.append((int(step_s), int(shard_s)))
        elif key == "raise":
            raises.append(int(value))
        elif key == "sram" and value == "auto":
            kwargs["sram_flip_rate"] = sram_flip_rate_from_technology()
        elif key in scalar:
            field_name, cast = scalar[key]
            kwargs[field_name] = cast(value)
        else:
            raise ValueError(
                f"unknown fault-spec key {key!r}; known: "
                f"{sorted(scalar) + ['crash', 'raise']}"
            )
    if crashes:
        kwargs["shard_crashes"] = tuple(sorted(crashes))
    if raises:
        kwargs["raise_at_steps"] = tuple(sorted(raises))
    return FaultPlan(**kwargs)
