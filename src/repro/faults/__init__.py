"""Deterministic fault injection, detection, and recovery.

The paper's deployment story — a fleet of drones served by shared
systolic arrays — assumes perfect hardware; this package makes the
simulator survive imperfect hardware and *prove* it.  A seeded
:class:`FaultPlan` schedules SRAM bit flips in the serving weight
buffers, shard crashes/stragglers/transients, weight-bus publish drops
and corruption, sensor dropout, and mid-round exceptions; the
process-global :data:`FAULTS` seam (off by default, zero-perturbation
when off) lets the backend/weight-bus/agent/env/scheduler stack inject
them deterministically, detect them (checksums, Q-value guards, health
checks), and recover (bounded retry, shard failover, buffer rollback,
numpy-fallback degradation).  See ``README.md`` §"Fault tolerance &
chaos testing".
"""

from repro.faults.injector import (
    FAULTS,
    FaultInjectionError,
    FaultInjector,
    FaultRecord,
    FaultSeam,
    chaos,
)
from repro.faults.plan import (
    DEFAULT_CHAOS_RATES,
    FaultPlan,
    parse_fault_spec,
    sram_flip_rate_from_technology,
)
from repro.faults.recovery import buffer_checksum, flip_raw_bit

__all__ = [
    "FAULTS",
    "FaultInjectionError",
    "FaultInjector",
    "FaultRecord",
    "FaultSeam",
    "chaos",
    "DEFAULT_CHAOS_RATES",
    "FaultPlan",
    "parse_fault_spec",
    "sram_flip_rate_from_technology",
    "buffer_checksum",
    "flip_raw_bit",
]
