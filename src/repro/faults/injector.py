"""The chaos seam: one process-global fault injector, off by default.

Mirrors the :data:`~repro.obs.probes.PROBE` design exactly: production
code imports :data:`FAULTS` and guards every fault hook behind one
attribute check::

    from repro.faults.injector import FAULTS

    if FAULTS.enabled:
        FAULTS.injector.note_step()

While the seam is inactive (the default) no fault code runs and an
instrumented run is bitwise identical to an uninstrumented one — the
fingerprint check in ``benchmarks/test_obs_overhead.py`` enforces it.
:meth:`FaultSeam.activate` binds a :class:`FaultInjector` built from a
:class:`~repro.faults.plan.FaultPlan`; the :func:`chaos` context
manager wraps activate/deactivate for tests and the CLI.

Determinism: every fault decision is drawn from a fresh
``numpy.random.default_rng`` keyed by ``(plan.seed, kind, counters)``,
where the counters (fleet step, published update, sharded forward,
round) advance identically on every run of the same workload.  The
draw for, say, a straggler on shard 2 of forward 117 does not depend
on how many sensor frames dropped before it — the same plan replays
the identical event log, which the fault-tolerance benchmark asserts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs.probes import PROBE
from repro.parallel.procstate import in_worker

__all__ = [
    "FaultInjectionError",
    "FaultRecord",
    "FaultInjector",
    "FaultSeam",
    "FAULTS",
    "chaos",
]


class FaultInjectionError(RuntimeError):
    """An injected, scheduled failure (e.g. ``raise=STEP`` in a spec)."""


#: Independent RNG stream per fault kind; part of the draw key.
_KIND_CODES = {
    "sram.flip": 1,
    "shard.transient": 2,
    "shard.straggler": 3,
    "publish.drop": 4,
    "buffer.corrupt": 5,
    "sensor.dropout": 6,
    "env.exception": 7,
    "shard.crash": 8,
    "fleet.degraded": 9,
    "qvalue.anomaly": 10,
}


@dataclass
class FaultRecord:
    """One injected fault and what the stack did about it."""

    kind: str
    target: str
    round: int
    step: int
    update: int
    detected: bool = False
    recovered: bool = False
    recovered_round: int | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "round": self.round,
            "step": self.step,
            "update": self.update,
            "detected": self.detected,
            "recovered": self.recovered,
            "recovered_round": self.recovered_round,
            "detail": self.detail,
        }


class FaultInjector:
    """Draws faults from a plan and keeps the fault/recovery ledger.

    The integration points (weight bus, sharded backend, agent,
    vec-env, scheduler) call ``note_*`` to advance the counters and
    the decision methods (:meth:`sram_flip_rng`,
    :meth:`transient_attempts`, ...) to ask "does this fault fire
    here?".  Every injected fault becomes a :class:`FaultRecord`;
    detection and recovery mark it via :meth:`mark_detected` /
    :meth:`mark_recovered`, and the scheduler drains per-round
    injected/detected/recovered tallies with :meth:`drain_round`.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: list[FaultRecord] = []
        #: Permanently failed array indices (grows, never shrinks).
        self.dead_shards: set[int] = set()
        self.round_index = 0
        # Monotonic opportunity counters — the RNG keys.
        self.steps = 0       # fleet env steps (VecNavigationEnv.step calls)
        self.updates = 0     # WeightBus publishes
        self.forwards = 0    # ShardedBackend.forward_batch calls
        self._round = self._zero_round()

    @staticmethod
    def _zero_round() -> dict:
        return {
            "injected": 0,
            "detected": 0,
            "recovered": 0,
            "recovery_cycles": 0,
            "degraded_states": 0,
        }

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def note_round(self, index: int) -> None:
        self.round_index = index

    def note_step(self) -> int:
        self.steps += 1
        return self.steps

    def note_update(self) -> int:
        self.updates += 1
        return self.updates

    def note_forward(self) -> int:
        self.forwards += 1
        return self.forwards

    def _rng(self, kind: str, *key: int) -> np.random.Generator:
        return np.random.default_rng(
            (self.plan.seed, _KIND_CODES[kind]) + tuple(int(k) for k in key)
        )

    # ------------------------------------------------------------------
    # Decisions (pure functions of plan + counters)
    # ------------------------------------------------------------------
    def sram_flip_rng(self, update: int) -> np.random.Generator | None:
        """RNG to pick the flipped bit with, if a soft error fires."""
        if self.plan.sram_flip_rate <= 0.0:
            return None
        rng = self._rng("sram.flip", update)
        return rng if rng.random() < self.plan.sram_flip_rate else None

    def drop_publish(self, update: int) -> bool:
        if self.plan.publish_drop_rate <= 0.0:
            return False
        return bool(
            self._rng("publish.drop", update).random()
            < self.plan.publish_drop_rate
        )

    def corrupt_rng(self, flip: int) -> np.random.Generator | None:
        """RNG for a flip-time buffer corruption, if one fires."""
        if self.plan.buffer_corruption_rate <= 0.0:
            return None
        rng = self._rng("buffer.corrupt", flip)
        return rng if rng.random() < self.plan.buffer_corruption_rate else None

    def transient_attempts(self, forward: int, shard: int) -> int:
        """Failed attempts before shard ``shard``'s forward succeeds."""
        if self.plan.shard_transient_rate <= 0.0:
            return 0
        rng = self._rng("shard.transient", forward, shard)
        if rng.random() >= self.plan.shard_transient_rate:
            return 0
        return int(rng.integers(1, self.plan.max_retries + 1))

    def straggler_factor(self, forward: int, shard: int) -> float:
        if self.plan.shard_straggler_rate <= 0.0:
            return 1.0
        rng = self._rng("shard.straggler", forward, shard)
        if rng.random() >= self.plan.shard_straggler_rate:
            return 1.0
        return self.plan.straggler_factor

    def sensor_dropout(self, env_index: int) -> bool:
        if self.plan.sensor_dropout_rate <= 0.0:
            return False
        rng = self._rng("sensor.dropout", self.steps, env_index)
        return bool(rng.random() < self.plan.sensor_dropout_rate)

    def raise_now(self) -> bool:
        return self.steps in self.plan.raise_at_steps

    def due_crashes(self) -> list[int]:
        """Scheduled shard kills whose step has arrived, not yet dead."""
        return sorted(
            shard
            for step, shard in self.plan.shard_crashes
            if step <= self.steps and shard not in self.dead_shards
        )

    def kill(self, shard: int) -> None:
        self.dead_shards.add(shard)

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def record(self, kind: str, target: str, detail: str = "") -> FaultRecord:
        rec = FaultRecord(
            kind=kind,
            target=target,
            round=self.round_index,
            step=self.steps,
            update=self.updates,
            detail=detail,
        )
        self.events.append(rec)
        self._round["injected"] += 1
        if PROBE.enabled:
            PROBE.count(
                "repro_fault_injected_total",
                help="Faults injected by the chaos plan.",
                kind=kind,
            )
        return rec

    def mark_detected(self, rec: FaultRecord) -> None:
        if rec.detected:
            return
        rec.detected = True
        self._round["detected"] += 1
        if PROBE.enabled:
            PROBE.count(
                "repro_fault_detected_total",
                help="Injected faults caught by a detection seam.",
                kind=rec.kind,
            )

    def mark_recovered(self, rec: FaultRecord, detail: str = "") -> None:
        if rec.recovered:
            return
        rec.recovered = True
        rec.recovered_round = self.round_index
        if detail:
            rec.detail = f"{rec.detail}; {detail}" if rec.detail else detail
        self._round["recovered"] += 1
        if PROBE.enabled:
            PROBE.count(
                "repro_fault_recovered_total",
                help="Detected faults a recovery policy repaired.",
                kind=rec.kind,
            )

    def undetected(self, kinds: tuple[str, ...]) -> list[FaultRecord]:
        return [e for e in self.events if e.kind in kinds and not e.detected]

    def add_recovery_cycles(self, cycles: int) -> None:
        """Charge modelled cycles spent detecting/recovering (overhead)."""
        self._round["recovery_cycles"] += int(cycles)

    def note_degraded(self, states: int) -> None:
        """Count states served by the degraded (fallback) path."""
        self._round["degraded_states"] += int(states)

    def drain_round(self) -> dict:
        """Per-round tallies since the last drain; resets the bucket."""
        out, self._round = self._round, self._zero_round()
        return out

    def event_log(self) -> list[dict]:
        """The full, deterministic fault/recovery event log."""
        return [e.as_dict() for e in self.events]


class FaultSeam:
    """Process-global on/off switch binding the active injector."""

    def __init__(self):
        self.enabled = False
        self.injector: FaultInjector | None = None

    def activate(self, plan: FaultPlan | FaultInjector) -> FaultInjector:
        """Switch chaos on; returns the live injector.

        The fault seam is **process-local**: the coordinator owns the
        one live injector (counters, RNG draws, event ledger) and
        ``repro.parallel`` pool workers run pure forwards with chaos
        permanently off — every fault decision is made, and every event
        logged, in the coordinator, which is what keeps a chaos run's
        event log identical at any worker count.
        """
        if in_worker():
            raise RuntimeError(
                "FAULTS is process-local: pool workers must not activate "
                "fault injection — all chaos decisions happen in the "
                "coordinator so ledgers replay identically at any "
                "worker count"
            )
        if isinstance(plan, FaultInjector):
            self.injector = plan
        else:
            self.injector = FaultInjector(plan)
        self.enabled = True
        return self.injector

    def deactivate(self) -> None:
        """Restore the no-op state (the event ledger survives)."""
        self.enabled = False
        self.injector = None


#: The process-global fault seam every integrated module imports.
FAULTS = FaultSeam()


@contextmanager
def chaos(plan: FaultPlan | FaultInjector):
    """Activate :data:`FAULTS` for a block; yields the injector.

    Deactivates on exit even when the block raises (injected crashes
    included), so a failed chaos run cannot poison the next one.
    """
    injector = FAULTS.activate(plan)
    try:
        yield injector
    finally:
        FAULTS.deactivate()
