"""Aggregate regenerated artifacts into one markdown report.

``pytest benchmarks/ --benchmark-only`` leaves one text artifact per
paper figure/table in ``benchmarks/results/``; :func:`build_report`
stitches them into a single reviewable markdown document (the
machine-generated companion to EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["ARTIFACT_ORDER", "build_report", "write_report"]

#: Artifact files in paper order, with section titles.
ARTIFACT_ORDER = (
    ("fig01_fps_requirements.txt", "Fig. 1 — minimum fps vs drone speed"),
    ("fig03a_network_table.txt", "Fig. 3a — modified AlexNet weight table"),
    ("tab1_stt_mram.txt", "Table 1 — STT-MRAM parameters"),
    ("fig4b_system_parameters.txt", "Fig. 4b — system parameters"),
    ("fig05_memory_mapping.txt", "Fig. 5 — weight-to-memory mapping"),
    ("fig05_l3_placements.txt", "Fig. 5 — per-layer placement (L3)"),
    ("fig06_mapping_schemes.txt", "Fig. 6 — convolution mapping schemes"),
    ("fig09_environments.txt", "Fig. 9 — test environments (ASCII renders)"),
    ("fig10_learning_curves.txt", "Fig. 10 — learning curves"),
    ("fig11_safe_flight.txt", "Fig. 11 — safe flight distance"),
    ("fig12a_forward.txt", "Fig. 12a — forward per-layer costs"),
    ("fig12b_backward.txt", "Fig. 12b — backward per-layer costs"),
    ("fig13a_fps_vs_batch.txt", "Fig. 13a — max fps vs batch size"),
    ("fig13b_latency_energy.txt", "Fig. 13b — latency/energy savings"),
    ("ablation_nvm_sweep.txt", "Ablation — NVM technology sweep"),
    ("ablation_batch_sweep.txt", "Ablation — batch-size sweep"),
    ("ablation_sram_sweep.txt", "Ablation — SRAM capacity sweep"),
    ("ablation_traffic_endurance.txt", "Ablation — memory traffic & endurance"),
    ("fleet_throughput.txt", "Fleet — vectorized multi-env throughput"),
    ("roofline.txt", "Analysis — roofline of the PE array"),
    ("sensitivity.txt", "Analysis — calibration sensitivity of conclusions"),
    ("realtime_queue.txt", "Analysis — real-time frame-queue feasibility"),
)


def build_report(results_dir: str | Path) -> str:
    """Render all present artifacts as one markdown document.

    Missing artifacts are listed at the end rather than failing, so a
    partial benchmark run still produces a useful report.
    """
    results = Path(results_dir)
    if not results.is_dir():
        raise FileNotFoundError(f"no such results directory: {results}")
    sections = [
        "# Regenerated paper artifacts",
        "",
        "Produced by `pytest benchmarks/ --benchmark-only`; see "
        "EXPERIMENTS.md for the paper-vs-measured discussion.",
    ]
    missing = []
    for filename, title in ARTIFACT_ORDER:
        path = results / filename
        if not path.exists():
            missing.append(filename)
            continue
        sections.append("")
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text().rstrip("\n"))
        sections.append("```")
    if missing:
        sections.append("")
        sections.append("## Missing artifacts (benchmarks not yet run)")
        sections.append("")
        sections.extend(f"* `{name}`" for name in missing)
    return "\n".join(sections) + "\n"


def write_report(results_dir: str | Path, output: str | Path) -> Path:
    """Build and write the report; returns the output path."""
    out = Path(output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(build_report(results_dir))
    return out
