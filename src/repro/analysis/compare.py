"""Programmatic paper-vs-model fidelity metrics.

EXPERIMENTS.md discusses the residuals in prose; this module computes
them, so the fidelity claims are themselves testable artifacts:

* per-cell relative errors of the Fig. 12 latency/energy tables,
* aggregate error statistics (mean/max absolute percentage error),
* a single ``fidelity_summary`` dict the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.alexnet import modified_alexnet_spec
from repro.perf.calibration import (
    PAPER_FIG12_BACKWARD,
    PAPER_FIG12_FORWARD,
)
from repro.perf.layer_cost import LayerCostModel
from repro.rl.transfer import config_by_name

__all__ = ["CellError", "table_errors", "fidelity_summary"]


@dataclass(frozen=True)
class CellError:
    """Relative error of one (layer, quantity) cell."""

    layer: str
    quantity: str  # "latency" | "energy"
    model: float
    paper: float

    @property
    def relative_error(self) -> float:
        """(model - paper) / paper."""
        if self.paper == 0:
            raise ValueError(f"paper cell is zero: {self.layer}/{self.quantity}")
        return (self.model - self.paper) / self.paper

    @property
    def abs_pct_error(self) -> float:
        """Absolute percentage error."""
        return 100.0 * abs(self.relative_error)


def table_errors(
    direction: str = "forward",
    min_paper_latency_ms: float = 0.01,
) -> list[CellError]:
    """Per-cell errors of one Fig. 12 table.

    Cells whose paper latency is below ``min_paper_latency_ms`` (the
    sub-microsecond FC5 rows) are skipped — they are printed with one
    significant digit in the paper and dominate error metrics noise.
    """
    spec = modified_alexnet_spec()
    model = LayerCostModel(spec, config_by_name("E2E"))
    if direction == "forward":
        costs = model.forward_costs()
        paper = {r.layer: r for r in PAPER_FIG12_FORWARD}
    elif direction == "backward":
        costs = model.backward_costs()
        paper = {r.layer: r for r in PAPER_FIG12_BACKWARD}
    else:
        raise ValueError("direction must be 'forward' or 'backward'")
    errors = []
    for cost in costs:
        row = paper[cost.layer]
        if row.latency_ms < min_paper_latency_ms:
            continue
        errors.append(
            CellError(cost.layer, "latency", cost.latency_ms, row.latency_ms)
        )
        errors.append(
            CellError(cost.layer, "energy", cost.energy_mj, row.energy_mj)
        )
    return errors


def fidelity_summary() -> dict[str, float]:
    """Aggregate fidelity metrics over both Fig. 12 tables."""
    spec = modified_alexnet_spec()
    model = LayerCostModel(spec, config_by_name("E2E"))
    fwd_lat, fwd_e = model.forward_total()
    bwd_lat, bwd_e = model.backward_total()
    paper_fwd_lat = sum(r.latency_ms for r in PAPER_FIG12_FORWARD)
    paper_fwd_e = sum(r.energy_mj for r in PAPER_FIG12_FORWARD)
    paper_bwd_lat = sum(r.latency_ms for r in PAPER_FIG12_BACKWARD)
    paper_bwd_e = sum(r.energy_mj for r in PAPER_FIG12_BACKWARD)
    all_errors = table_errors("forward") + table_errors("backward")
    mape = sum(e.abs_pct_error for e in all_errors) / len(all_errors)
    worst = max(all_errors, key=lambda e: e.abs_pct_error)
    return {
        "forward_total_latency_err_pct": 100.0
        * abs(fwd_lat * 1e3 - paper_fwd_lat) / paper_fwd_lat,
        "forward_total_energy_err_pct": 100.0
        * abs(fwd_e * 1e3 - paper_fwd_e) / paper_fwd_e,
        "backward_total_latency_err_pct": 100.0
        * abs(bwd_lat * 1e3 - paper_bwd_lat) / paper_bwd_lat,
        "backward_total_energy_err_pct": 100.0
        * abs(bwd_e * 1e3 - paper_bwd_e) / paper_bwd_e,
        "per_cell_mape_pct": mape,
        "worst_cell_err_pct": worst.abs_pct_error,
    }
