"""Terminal plots for learning curves and bar comparisons."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["ascii_curve", "ascii_bars"]


def ascii_curve(
    values: Sequence[float],
    width: int = 70,
    height: int = 12,
    title: str = "",
) -> str:
    """Render a 1-D series as an ASCII line chart."""
    data = np.asarray([v for v in values if not math.isnan(v)], dtype=np.float64)
    if data.size < 2:
        return f"{title}\n(not enough data)"
    if width < 10 or height < 3:
        raise ValueError("plot too small")
    # Downsample to the plot width.
    idx = np.linspace(0, data.size - 1, width).astype(int)
    series = data[idx]
    lo, hi = float(series.min()), float(series.max())
    span = hi - lo if hi > lo else 1.0
    rows = []
    levels = np.round((series - lo) / span * (height - 1)).astype(int)
    for level in range(height - 1, -1, -1):
        line = "".join("*" if l >= level else " " for l in levels)
        rows.append(line)
    header = f"{title}  [min={lo:.3f} max={hi:.3f}]" if title else f"[min={lo:.3f} max={hi:.3f}]"
    return "\n".join([header] + rows)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return f"{title}\n(empty)"
    peak = max(values)
    if peak <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{label.rjust(label_w)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
