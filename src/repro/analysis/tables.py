"""Plain-text table formatting."""

from __future__ import annotations

from typing import Any, Sequence

from repro.perf.calibration import PaperLayerRow
from repro.perf.layer_cost import LayerCost
from repro.systolic.conv_mapping import ConvMapping

__all__ = ["format_table", "format_fig12_table", "format_mapping_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not headers:
        raise ValueError("need at least one column")
    rendered = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        rendered.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_line(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_line(r) for r in rendered)
    return "\n".join(lines)


def format_fig12_table(
    costs: Sequence[LayerCost],
    paper_rows: Sequence[PaperLayerRow] | None = None,
) -> str:
    """Fig. 12-style per-layer table, optionally with paper columns."""
    if paper_rows is None:
        headers = ["Layer", "Latency (ms)", "Active PEs", "Power (mW)", "Energy (mJ)"]
        rows = [
            [c.layer, c.latency_ms, c.active_pes, c.power_w * 1e3, c.energy_mj]
            for c in costs
        ]
        rows.append(
            [
                "total",
                sum(c.latency_ms for c in costs),
                "",
                "",
                sum(c.energy_mj for c in costs),
            ]
        )
        return format_table(headers, rows)
    paper = {r.layer: r for r in paper_rows}
    headers = [
        "Layer",
        "Lat model (ms)",
        "Lat paper (ms)",
        "E model (mJ)",
        "E paper (mJ)",
        "PEs model",
        "PEs paper",
    ]
    rows = []
    for c in costs:
        p = paper[c.layer]
        rows.append(
            [c.layer, c.latency_ms, p.latency_ms, c.energy_mj, p.energy_mj,
             c.active_pes, p.active_pes]
        )
    rows.append(
        [
            "total",
            sum(c.latency_ms for c in costs),
            sum(paper[c.layer].latency_ms for c in costs),
            sum(c.energy_mj for c in costs),
            sum(paper[c.layer].energy_mj for c in costs),
            "",
            "",
        ]
    )
    return format_table(headers, rows)


def format_mapping_table(mappings: Sequence[ConvMapping]) -> str:
    """Fig. 6-style mapping geometry table."""
    headers = [
        "Layer", "Type", "Segments", "Sets", "Cols", "Filters/seg",
        "Row passes", "Ch passes", "Active PEs",
    ]
    rows = [
        [
            m.layer,
            m.mapping_type.value,
            m.segments,
            m.sets,
            m.cols_used,
            m.filters_per_segment,
            m.row_passes,
            m.channel_passes,
            m.active_pes,
        ]
        for m in mappings
    ]
    return format_table(headers, rows)
