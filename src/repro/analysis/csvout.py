"""CSV output for experiment results."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Sequence

__all__ = ["write_csv"]


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> Path:
    """Write a table to ``path``; returns the resolved path."""
    if not headers:
        raise ValueError("need at least one column")
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width mismatch")
            writer.writerow(row)
    return out
