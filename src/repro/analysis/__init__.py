"""Reporting helpers: ASCII tables, plots and CSV emitters.

Shared by the examples and the benchmark harness so every figure/table
of the paper can be regenerated as readable terminal output.
"""

from repro.analysis.tables import format_table, format_fig12_table, format_mapping_table
from repro.analysis.ascii_plot import ascii_curve, ascii_bars
from repro.analysis.csvout import write_csv
from repro.analysis.report import build_report, write_report, ARTIFACT_ORDER
from repro.analysis.compare import CellError, table_errors, fidelity_summary

__all__ = [
    "format_table",
    "format_fig12_table",
    "format_mapping_table",
    "ascii_curve",
    "ascii_bars",
    "write_csv",
    "build_report",
    "write_report",
    "ARTIFACT_ORDER",
    "CellError",
    "table_errors",
    "fidelity_summary",
]
