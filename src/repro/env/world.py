"""World container: geometry plus spawn logic and clearance queries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.env.geometry import Box, Circle, RayCaster, Segment

__all__ = ["Pose", "World"]


@dataclass
class Pose:
    """Drone pose: position in metres, heading in radians."""

    x: float
    y: float
    heading: float

    def position(self) -> tuple[float, float]:
        """(x, y) tuple."""
        return (self.x, self.y)


@dataclass
class World:
    """A navigable 2-D world.

    Parameters
    ----------
    name:
        Environment name (e.g. ``"indoor-apartment"``).
    bounds:
        Outer boundary box; its walls are always obstacles.
    segments, circles, boxes:
        Interior obstacles.  Boxes are expanded to wall segments for ray
        casting but kept for fast interior tests.
    d_min:
        The paper's clutter measure — the designed minimum obstacle
        spacing (Fig. 1c).  Purely descriptive metadata used by the FPS
        model and reporting.
    max_range:
        Camera far plane in metres.
    is_indoor:
        Indoor worlds have a ceiling (affects the camera's 2.5-D
        projection).
    """

    name: str
    bounds: Box
    segments: list[Segment] = field(default_factory=list)
    circles: list[Circle] = field(default_factory=list)
    boxes: list[Box] = field(default_factory=list)
    d_min: float = 1.0
    max_range: float = 20.0
    is_indoor: bool = True

    def __post_init__(self) -> None:
        if self.d_min <= 0:
            raise ValueError("d_min must be positive")
        if self.max_range <= 0:
            raise ValueError("max_range must be positive")
        all_segments = list(self.bounds.segments()) + list(self.segments)
        for box in self.boxes:
            all_segments.extend(box.segments())
        self._caster = RayCaster(all_segments, list(self.circles))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cast_rays(self, pose: Pose, relative_angles: np.ndarray) -> np.ndarray:
        """Hit distances for rays at ``pose.heading + relative_angles``."""
        angles = pose.heading + np.asarray(relative_angles, dtype=np.float64)
        return self._caster.cast(pose.position(), angles, self.max_range)

    @property
    def caster(self) -> RayCaster:
        """The world's pre-packed ray caster.

        Vectorisation hook: :class:`repro.fleet.vec_env.FleetRenderer`
        reads the packed geometry arrays off this caster to batch ray
        casting across many worlds in one call.
        """
        return self._caster

    def clearance(self, x: float, y: float) -> float:
        """Distance from (x, y) to the nearest obstacle surface.

        Points inside a box obstacle or outside the outer bounds report
        zero clearance (they are in collision however small the drone).
        """
        if not self.bounds.contains(x, y):
            return 0.0
        for box in self.boxes:
            if box.contains(x, y):
                return 0.0
        return self._caster.min_distance((x, y))

    def in_collision(self, x: float, y: float, radius: float) -> bool:
        """Whether a drone of ``radius`` at (x, y) touches any obstacle."""
        if radius <= 0:
            raise ValueError("radius must be positive")
        return self.clearance(x, y) < radius

    def random_free_pose(
        self,
        rng: np.random.Generator,
        clearance: float = 0.3,
        max_tries: int = 1000,
    ) -> Pose:
        """Sample a uniformly random collision-free pose."""
        b = self.bounds
        for _ in range(max_tries):
            x = rng.uniform(b.xmin, b.xmax)
            y = rng.uniform(b.ymin, b.ymax)
            if self.clearance(x, y) >= clearance:
                heading = rng.uniform(-np.pi, np.pi)
                return Pose(x, y, heading)
        raise RuntimeError(
            f"could not find a free pose in {self.name} after {max_tries} tries"
        )

    @property
    def area(self) -> float:
        """Area of the bounding box in square metres."""
        b = self.bounds
        return (b.xmax - b.xmin) * (b.ymax - b.ymin)

    def obstacle_count(self) -> int:
        """Number of interior obstacles (segments + circles + boxes)."""
        return len(self.segments) + len(self.circles) + len(self.boxes)
