"""Drone world simulator.

The paper trains and tests in Unreal Engine 4 environments (indoor
apartment/house, outdoor forest/town; Fig. 9).  This package is the
substitution documented in DESIGN.md: a 2.5-D ray-cast simulator that
produces the same observable interface the paper's RL agent consumes —

* a depth image from a (noisy, stereo-like) forward camera,
* a reward equal to the average depth of the image's centre window,
* crash/termination events and the safe-flight-distance metric,

over procedurally generated indoor and outdoor worlds whose clutter
matches the paper's d_min settings (Fig. 1c: 0.7–1.3 m indoor, 3–5 m
outdoor).
"""

from repro.env.geometry import Segment, Circle, Box, RayCaster
from repro.env.world import World, Pose
from repro.env.generators import (
    make_environment,
    ENVIRONMENTS,
    META_ENVIRONMENTS,
    TEST_ENVIRONMENTS,
    EXTRA_ENVIRONMENTS,
    indoor_apartment,
    indoor_house,
    indoor_warehouse,
    outdoor_forest,
    outdoor_town,
    outdoor_suburb,
    meta_indoor,
    meta_outdoor,
)
from repro.env.drone import Drone, Action, ACTIONS, TURN_ANGLES_DEG
from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.reward import center_window_reward, compute_reward, RewardConfig, REWARD_KINDS
from repro.env.dynamics import InertialDrone
from repro.env.episode import NavigationEnv, Transition, SafeFlightTracker
from repro.env.fps import (
    min_fps_for_collision_avoidance,
    DMIN_TABLE,
    fps_requirement_table,
    max_safe_velocity,
)
from repro.env.trace import FlightTrace, TraceStep, render_world_ascii
from repro.env.realtime import (
    RealTimeReport,
    simulate_frame_queue,
    max_realtime_velocity,
)
from repro.env.maneuver import (
    evasive_maneuver_distance,
    required_sighting_distance,
    fig1_law_is_perception_limited,
)

__all__ = [
    "Segment",
    "Circle",
    "Box",
    "RayCaster",
    "World",
    "Pose",
    "make_environment",
    "ENVIRONMENTS",
    "META_ENVIRONMENTS",
    "TEST_ENVIRONMENTS",
    "EXTRA_ENVIRONMENTS",
    "indoor_apartment",
    "indoor_house",
    "indoor_warehouse",
    "outdoor_forest",
    "outdoor_town",
    "outdoor_suburb",
    "meta_indoor",
    "meta_outdoor",
    "Drone",
    "Action",
    "ACTIONS",
    "TURN_ANGLES_DEG",
    "DepthCamera",
    "StereoNoiseModel",
    "center_window_reward",
    "compute_reward",
    "RewardConfig",
    "REWARD_KINDS",
    "InertialDrone",
    "NavigationEnv",
    "Transition",
    "SafeFlightTracker",
    "min_fps_for_collision_avoidance",
    "DMIN_TABLE",
    "fps_requirement_table",
    "max_safe_velocity",
    "FlightTrace",
    "TraceStep",
    "render_world_ascii",
    "RealTimeReport",
    "simulate_frame_queue",
    "max_realtime_velocity",
    "evasive_maneuver_distance",
    "required_sighting_distance",
    "fig1_law_is_perception_limited",
]
