"""Stereo depth camera model.

The paper's drone derives its RL state from the *depth map* computed from
a stereo camera's disparity (Section II.B).  We model the same pipeline:

1. Cast one ray per image column across the horizontal field of view to
   get the true horizontal hit distance of walls/obstacles.
2. Project into a 2.5-D depth image: for every pixel row, the visible
   depth is the nearer of the obstacle (at the column's slant distance)
   and the floor/ceiling plane the pixel's vertical angle intersects.
3. Corrupt with a stereo-disparity noise model: a constant disparity
   error translates into a depth error growing with depth squared —
   ``sigma(d) = sigma_disparity * d^2 / (f * B)``.

The output is a ``(height, width)`` float image of depths in metres,
optionally normalised to [0, 1] by the far plane (what the CNN consumes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.world import Pose, World

__all__ = ["StereoNoiseModel", "DepthCamera"]


@dataclass(frozen=True)
class StereoNoiseModel:
    """Depth noise of a stereo pair with baseline*focal product ``fb``.

    ``sigma(d) = disparity_sigma_px * d^2 / fb`` — the classic stereo
    triangulation error law.  ``fb`` has units of metres * pixels.
    """

    disparity_sigma_px: float = 0.25
    fb: float = 60.0

    def __post_init__(self) -> None:
        if self.disparity_sigma_px < 0:
            raise ValueError("disparity sigma must be non-negative")
        if self.fb <= 0:
            raise ValueError("fb must be positive")

    def sigma(self, depth: np.ndarray) -> np.ndarray:
        """Per-pixel depth noise standard deviation."""
        return self.disparity_sigma_px * np.square(depth) / self.fb

    def corrupt(self, depth: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add depth-dependent Gaussian noise."""
        if self.disparity_sigma_px == 0.0:
            return depth
        return depth + rng.normal(0.0, 1.0, size=depth.shape) * self.sigma(depth)


@dataclass
class DepthCamera:
    """Forward-looking depth camera with a 2.5-D projection model."""

    width: int = 32
    height: int = 32
    fov_deg: float = 90.0
    vertical_fov_deg: float = 60.0
    mount_height: float = 1.0
    ceiling_height: float = 3.0
    noise: StereoNoiseModel | None = None

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("image must be at least 2x2")
        if not 0 < self.fov_deg <= 180 or not 0 < self.vertical_fov_deg < 180:
            raise ValueError("field of view out of range")
        if not 0 < self.mount_height < self.ceiling_height:
            raise ValueError("camera must sit between floor and ceiling")

    def column_angles(self) -> np.ndarray:
        """Relative horizontal ray angle per image column (left to right)."""
        half = np.deg2rad(self.fov_deg) / 2.0
        return np.linspace(half, -half, self.width)

    def row_angles(self) -> np.ndarray:
        """Vertical pixel angle per row, positive = up."""
        half = np.deg2rad(self.vertical_fov_deg) / 2.0
        return np.linspace(half, -half, self.height)

    def plane_depths(self, is_indoor: bool) -> np.ndarray:
        """Per-row depth of the floor/ceiling planes, shape (H, 1).

        Vectorisation hook shared by :meth:`render` and the fleet's
        batched renderer: the plane image depends only on the camera
        geometry and whether the world has a ceiling, so it can be
        computed once per world class and broadcast over a batch.
        """
        rows = self.row_angles()
        tan_rows = np.tan(rows)
        # Floor plane: visible at downward angles; distance to the floor
        # intersection along the viewing ray.
        with np.errstate(divide="ignore"):
            floor = np.where(
                tan_rows < -1e-6,
                self.mount_height / np.maximum(-np.sin(rows), 1e-9),
                np.inf,
            )
        if is_indoor:
            head_room = self.ceiling_height - self.mount_height
            ceiling = np.where(
                tan_rows > 1e-6,
                head_room / np.maximum(np.sin(rows), 1e-9),
                np.inf,
            )
        else:
            ceiling = np.full_like(floor, np.inf)
        return np.minimum(floor, ceiling)[:, None]  # (H, 1)

    def project(
        self,
        horizontal: np.ndarray,
        planes: np.ndarray,
        max_range: float | np.ndarray,
    ) -> np.ndarray:
        """Project horizontal hit distances into a 2.5-D depth image.

        ``horizontal`` is (W,) for one view or (..., W) for a batch;
        ``planes`` is the matching (H, 1) or (..., H, 1) plane image from
        :meth:`plane_depths`; ``max_range`` a scalar or broadcastable
        array.  All operations are elementwise, so batched projection is
        bitwise-identical to per-view projection.
        """
        rows = self.row_angles()  # (H,)
        # Obstacle slant distance for each (row, col): horizontal distance
        # stretched by the vertical viewing angle.
        cos_rows = np.cos(rows)
        obstacle = horizontal[..., None, :] / np.maximum(cos_rows[:, None], 1e-6)
        depth = np.minimum(obstacle, planes)
        return np.minimum(depth, max_range)

    def render(
        self,
        world: World,
        pose: Pose,
        rng: np.random.Generator | None = None,
        normalized: bool = True,
    ) -> np.ndarray:
        """Render the depth image seen from ``pose`` in ``world``.

        Returns a (height, width) array; if ``normalized``, depths are
        divided by the world's ``max_range`` and clipped to [0, 1].
        """
        horizontal = world.cast_rays(pose, self.column_angles())  # (W,)
        depth = self.project(
            horizontal, self.plane_depths(world.is_indoor), world.max_range
        )
        if self.noise is not None and rng is not None:
            depth = self.noise.corrupt(depth, rng)
            depth = np.clip(depth, 0.0, world.max_range)
        if normalized:
            return depth / world.max_range
        return depth
