"""Drone kinematics and the paper's five-action space.

Section II.B: "We have limited the action space to five values
A = {0,1,2,3,4} where under the action 0 the drone moves forward, 1 and 3
the drone turns left with turn angles 25 and 55 degrees respectively and
2 and 4 the drone turns right with turn angles 25 and 55."

Between consecutive camera frames the drone travels ``d_frame = v / fps``
metres (Fig. 1a); every action therefore advances the drone by d_frame
along its (possibly just-rotated) heading.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.env.world import Pose

__all__ = ["Action", "ACTIONS", "TURN_ANGLES_DEG", "Drone"]


class Action(IntEnum):
    """The five navigation actions."""

    FORWARD = 0
    LEFT_25 = 1
    RIGHT_25 = 2
    LEFT_55 = 3
    RIGHT_55 = 4


#: Signed turn angle in degrees for each action (positive = left/CCW).
TURN_ANGLES_DEG = {
    Action.FORWARD: 0.0,
    Action.LEFT_25: 25.0,
    Action.RIGHT_25: -25.0,
    Action.LEFT_55: 55.0,
    Action.RIGHT_55: -55.0,
}

#: All actions in index order.
ACTIONS = tuple(Action)


@dataclass
class Drone:
    """A kinematic drone moving in the horizontal plane.

    Parameters
    ----------
    pose:
        Current pose.
    radius:
        Collision radius in metres (typical small quadrotor ~0.3 m).
    d_frame:
        Distance travelled between frames, ``v / fps``.
    """

    pose: Pose
    radius: float = 0.3
    d_frame: float = 0.5

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.d_frame <= 0:
            raise ValueError("d_frame must be positive")

    def apply_action(self, action: int | Action) -> Pose:
        """Turn (if the action says so) then advance by ``d_frame``.

        Returns the new pose; also updates :attr:`pose` in place.
        """
        action = Action(action)
        turn = np.deg2rad(TURN_ANGLES_DEG[action])
        heading = _wrap_angle(self.pose.heading + turn)
        x = self.pose.x + self.d_frame * np.cos(heading)
        y = self.pose.y + self.d_frame * np.sin(heading)
        self.pose = Pose(float(x), float(y), float(heading))
        return self.pose

    def teleport(self, pose: Pose) -> None:
        """Reset the drone to ``pose`` (post-crash respawn)."""
        self.pose = Pose(pose.x, pose.y, pose.heading)


def _wrap_angle(angle: float) -> float:
    """Wrap to (-pi, pi]."""
    wrapped = (angle + np.pi) % (2.0 * np.pi) - np.pi
    return float(wrapped)
