"""2-D geometric primitives and vectorised ray casting.

Worlds are collections of wall segments and circular obstacles; boxes are
convenience wrappers that expand into four segments.  The
:class:`RayCaster` pre-packs all obstacle geometry into NumPy arrays so a
camera frame (tens of rays) is a handful of vectorised operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Segment", "Circle", "Box", "RayCaster"]

_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """A wall from (x1, y1) to (x2, y2)."""

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if abs(self.x1 - self.x2) < _EPS and abs(self.y1 - self.y2) < _EPS:
            raise ValueError("degenerate segment")

    @property
    def length(self) -> float:
        """Euclidean length of the wall."""
        return float(np.hypot(self.x2 - self.x1, self.y2 - self.y1))


@dataclass(frozen=True)
class Circle:
    """A circular obstacle (tree trunk, pillar, ...)."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")


@dataclass(frozen=True)
class Box:
    """An axis-aligned box obstacle (furniture, house, ...)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmax <= self.xmin or self.ymax <= self.ymin:
            raise ValueError("box must have positive extent")

    def segments(self) -> list[Segment]:
        """The four walls of the box."""
        return [
            Segment(self.xmin, self.ymin, self.xmax, self.ymin),
            Segment(self.xmax, self.ymin, self.xmax, self.ymax),
            Segment(self.xmax, self.ymax, self.xmin, self.ymax),
            Segment(self.xmin, self.ymax, self.xmin, self.ymin),
        ]

    def contains(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether (x, y) lies inside the box grown by ``margin``."""
        return (
            self.xmin - margin <= x <= self.xmax + margin
            and self.ymin - margin <= y <= self.ymax + margin
        )


class RayCaster:
    """Vectorised nearest-hit ray casting against segments and circles."""

    def __init__(self, segments: list[Segment], circles: list[Circle]):
        if not segments and not circles:
            raise ValueError("ray caster needs at least one obstacle")
        if segments:
            self._seg_a = np.array([[s.x1, s.y1] for s in segments])
            self._seg_d = np.array(
                [[s.x2 - s.x1, s.y2 - s.y1] for s in segments]
            )
        else:
            self._seg_a = np.zeros((0, 2))
            self._seg_d = np.zeros((0, 2))
        if circles:
            self._circ_c = np.array([[c.cx, c.cy] for c in circles])
            self._circ_r = np.array([c.radius for c in circles])
        else:
            self._circ_c = np.zeros((0, 2))
            self._circ_r = np.zeros(0)

    def cast(
        self, origin: tuple[float, float], angles: np.ndarray, max_range: float
    ) -> np.ndarray:
        """Distance to the nearest obstacle along each angle.

        Parameters
        ----------
        origin:
            Ray origin (shared by all rays — the drone position).
        angles:
            (R,) array of world-frame headings in radians.
        max_range:
            Distances are clipped to this value (camera far plane).

        Returns
        -------
        (R,) array of hit distances in ``(0, max_range]``.
        """
        angles = np.asarray(angles, dtype=np.float64)
        if angles.ndim != 1:
            raise ValueError("angles must be a 1-D array")
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        o = np.asarray(origin, dtype=np.float64)
        d = np.stack([np.cos(angles), np.sin(angles)], axis=1)  # (R, 2)
        best = np.full(angles.shape[0], max_range)
        if self._seg_a.shape[0]:
            best = np.minimum(best, self._cast_segments(o, d))
        if self._circ_c.shape[0]:
            best = np.minimum(best, self._cast_circles(o, d))
        return np.clip(best, _EPS, max_range)

    def _cast_segments(self, o: np.ndarray, d: np.ndarray) -> np.ndarray:
        # Solve o + t*d = a + u*s for each (ray, segment) pair.
        a, s = self._seg_a, self._seg_d  # (S,2), (S,2)
        # Cross products; denom[r, k] = d_r x s_k
        denom = d[:, 0:1] * s[None, :, 1] - d[:, 1:2] * s[None, :, 0]  # (R,S)
        ao = a[None, :, :] - o[None, None, :].reshape(1, 1, 2)  # (1,S,2)
        ao = np.broadcast_to(ao, (d.shape[0], a.shape[0], 2))
        t_num = ao[:, :, 0] * s[None, :, 1] - ao[:, :, 1] * s[None, :, 0]
        u_num = ao[:, :, 0] * d[:, 1:2] - ao[:, :, 1] * d[:, 0:1]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t = t_num / denom
            u = u_num / denom
        valid = (np.abs(denom) > _EPS) & (t > _EPS) & (u >= 0.0) & (u <= 1.0)
        t = np.where(valid, t, np.inf)
        return t.min(axis=1)

    def _cast_circles(self, o: np.ndarray, d: np.ndarray) -> np.ndarray:
        # |o + t*d - c|^2 = r^2, with |d| = 1.
        oc = o[None, None, :] - self._circ_c[None, :, :]  # (1,C,2)
        oc = np.broadcast_to(oc, (d.shape[0], self._circ_c.shape[0], 2))
        b = np.einsum("rcx,rx->rc", oc, d)  # (R,C)
        c_term = np.einsum("rcx,rcx->rc", oc, oc) - self._circ_r[None, :] ** 2
        disc = b**2 - c_term
        hit = disc >= 0.0
        sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
        t1 = -b - sqrt_disc
        t2 = -b + sqrt_disc
        # Nearest positive root; if the origin is inside, t1 < 0 < t2.
        t = np.where(t1 > _EPS, t1, np.where(t2 > _EPS, t2, np.inf))
        t = np.where(hit, t, np.inf)
        return t.min(axis=1)

    # ------------------------------------------------------------------
    # Clearance queries (collision checks)
    # ------------------------------------------------------------------
    def min_distance(self, point: tuple[float, float]) -> float:
        """Distance from ``point`` to the nearest obstacle surface."""
        p = np.asarray(point, dtype=np.float64)
        best = np.inf
        if self._seg_a.shape[0]:
            ap = p[None, :] - self._seg_a  # (S,2)
            seg_len_sq = np.einsum("sx,sx->s", self._seg_d, self._seg_d)
            t = np.clip(np.einsum("sx,sx->s", ap, self._seg_d) / seg_len_sq, 0.0, 1.0)
            nearest = self._seg_a + t[:, None] * self._seg_d
            dist = np.hypot(*(p[None, :] - nearest).T)
            best = min(best, float(dist.min()))
        if self._circ_c.shape[0]:
            dist = np.hypot(*(p[None, :] - self._circ_c).T) - self._circ_r
            best = min(best, float(dist.min()))
        return best
