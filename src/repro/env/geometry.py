"""2-D geometric primitives and vectorised ray casting.

Worlds are collections of wall segments and circular obstacles; boxes are
convenience wrappers that expand into four segments.  The
:class:`RayCaster` pre-packs all obstacle geometry into NumPy arrays so a
camera frame (tens of rays) is a handful of vectorised operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Segment",
    "Circle",
    "Box",
    "RayCaster",
    "intersect_segments",
    "intersect_circles",
    "segment_distances",
    "circle_distances",
]

_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """A wall from (x1, y1) to (x2, y2)."""

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if abs(self.x1 - self.x2) < _EPS and abs(self.y1 - self.y2) < _EPS:
            raise ValueError("degenerate segment")

    @property
    def length(self) -> float:
        """Euclidean length of the wall."""
        return float(np.hypot(self.x2 - self.x1, self.y2 - self.y1))


@dataclass(frozen=True)
class Circle:
    """A circular obstacle (tree trunk, pillar, ...)."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")


@dataclass(frozen=True)
class Box:
    """An axis-aligned box obstacle (furniture, house, ...)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmax <= self.xmin or self.ymax <= self.ymin:
            raise ValueError("box must have positive extent")

    def segments(self) -> list[Segment]:
        """The four walls of the box."""
        return [
            Segment(self.xmin, self.ymin, self.xmax, self.ymin),
            Segment(self.xmax, self.ymin, self.xmax, self.ymax),
            Segment(self.xmax, self.ymax, self.xmin, self.ymax),
            Segment(self.xmin, self.ymax, self.xmin, self.ymin),
        ]

    def contains(self, x: float, y: float, margin: float = 0.0) -> bool:
        """Whether (x, y) lies inside the box grown by ``margin``."""
        return (
            self.xmin - margin <= x <= self.xmax + margin
            and self.ymin - margin <= y <= self.ymax + margin
        )


def intersect_segments(
    origin: np.ndarray,
    dirs: np.ndarray,
    seg_a: np.ndarray,
    seg_d: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Nearest-hit distance of rays against wall segments, batched.

    Solves ``origin + t*dir = a + u*s`` per (ray, segment) pair.  Shapes
    broadcast over leading batch axes: ``origin`` is (..., 2), ``dirs``
    is (..., R, 2), ``seg_a``/``seg_d`` are (..., S, 2) and the optional
    ``mask`` (..., S) marks real (non-padding) segments.  Returns
    (..., R) distances, ``inf`` where a ray hits nothing.

    Every operation is elementwise (or an exact ``min`` reduction), so a
    batched call is bitwise-identical to per-item calls — the property
    the fleet's vectorised renderer relies on.
    """
    # denom[..., r, k] = dir_r x s_k
    denom = (
        dirs[..., :, None, 0] * seg_d[..., None, :, 1]
        - dirs[..., :, None, 1] * seg_d[..., None, :, 0]
    )  # (..., R, S)
    ao = seg_a[..., None, :, :] - origin[..., None, None, :]  # (..., 1, S, 2)
    t_num = ao[..., 0] * seg_d[..., None, :, 1] - ao[..., 1] * seg_d[..., None, :, 0]
    u_num = ao[..., 0] * dirs[..., :, None, 1] - ao[..., 1] * dirs[..., :, None, 0]
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        t = t_num / denom
        u = u_num / denom
    valid = (np.abs(denom) > _EPS) & (t > _EPS) & (u >= 0.0) & (u <= 1.0)
    if mask is not None:
        valid = valid & mask[..., None, :]
    t = np.where(valid, t, np.inf)
    return t.min(axis=-1)


def intersect_circles(
    origin: np.ndarray,
    dirs: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Nearest-hit distance of rays against circles, batched.

    Solves ``|origin + t*dir - c|^2 = r^2`` with ``|dir| = 1``.  Shapes
    broadcast like :func:`intersect_segments`: ``origin`` (..., 2),
    ``dirs`` (..., R, 2), ``centers`` (..., C, 2), ``radii`` (..., C),
    optional ``mask`` (..., C).  Returns (..., R) distances with ``inf``
    misses; batched calls are bitwise-identical to per-item calls.
    """
    oc = origin[..., None, None, :] - centers[..., None, :, :]  # (..., 1, C, 2)
    b = oc[..., 0] * dirs[..., :, None, 0] + oc[..., 1] * dirs[..., :, None, 1]
    c_term = (oc[..., 0] * oc[..., 0] + oc[..., 1] * oc[..., 1]) - radii[
        ..., None, :
    ] ** 2
    disc = b**2 - c_term
    hit = disc >= 0.0
    sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
    t1 = -b - sqrt_disc
    t2 = -b + sqrt_disc
    # Nearest positive root; if the origin is inside, t1 < 0 < t2.
    t = np.where(t1 > _EPS, t1, np.where(t2 > _EPS, t2, np.inf))
    if mask is not None:
        hit = hit & mask[..., None, :]
    t = np.where(hit, t, np.inf)
    return t.min(axis=-1)


def segment_distances(
    points: np.ndarray,
    seg_a: np.ndarray,
    seg_d: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Distance from each point to each wall segment, batched.

    ``points`` is (..., 2), ``seg_a``/``seg_d`` (..., S, 2), optional
    ``mask`` (..., S) marking real segments (padding reports ``inf``).
    Returns (..., S) distances; all operations are elementwise, so
    batched calls match per-point calls bitwise.
    """
    ap = points[..., None, :] - seg_a  # (..., S, 2)
    seg_len_sq = seg_d[..., 0] * seg_d[..., 0] + seg_d[..., 1] * seg_d[..., 1]
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.clip(
            (ap[..., 0] * seg_d[..., 0] + ap[..., 1] * seg_d[..., 1]) / seg_len_sq,
            0.0,
            1.0,
        )
    nearest = seg_a + t[..., None] * seg_d
    dist = np.hypot(
        points[..., None, 0] - nearest[..., 0],
        points[..., None, 1] - nearest[..., 1],
    )
    if mask is not None:
        dist = np.where(mask, dist, np.inf)
    return dist


def circle_distances(
    points: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Distance from each point to each circle surface, batched.

    Shapes follow :func:`segment_distances`; negative values mean the
    point is inside the circle.
    """
    dist = (
        np.hypot(
            points[..., None, 0] - centers[..., 0],
            points[..., None, 1] - centers[..., 1],
        )
        - radii
    )
    if mask is not None:
        dist = np.where(mask, dist, np.inf)
    return dist


class RayCaster:
    """Vectorised nearest-hit ray casting against segments and circles."""

    def __init__(self, segments: list[Segment], circles: list[Circle]):
        if not segments and not circles:
            raise ValueError("ray caster needs at least one obstacle")
        if segments:
            self._seg_a = np.array([[s.x1, s.y1] for s in segments])
            self._seg_d = np.array(
                [[s.x2 - s.x1, s.y2 - s.y1] for s in segments]
            )
        else:
            self._seg_a = np.zeros((0, 2))
            self._seg_d = np.zeros((0, 2))
        if circles:
            self._circ_c = np.array([[c.cx, c.cy] for c in circles])
            self._circ_r = np.array([c.radius for c in circles])
        else:
            self._circ_c = np.zeros((0, 2))
            self._circ_r = np.zeros(0)

    def cast(
        self, origin: tuple[float, float], angles: np.ndarray, max_range: float
    ) -> np.ndarray:
        """Distance to the nearest obstacle along each angle.

        Parameters
        ----------
        origin:
            Ray origin (shared by all rays — the drone position).
        angles:
            (R,) array of world-frame headings in radians.
        max_range:
            Distances are clipped to this value (camera far plane).

        Returns
        -------
        (R,) array of hit distances in ``(0, max_range]``.
        """
        angles = np.asarray(angles, dtype=np.float64)
        if angles.ndim != 1:
            raise ValueError("angles must be a 1-D array")
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        o = np.asarray(origin, dtype=np.float64)
        d = np.stack([np.cos(angles), np.sin(angles)], axis=1)  # (R, 2)
        best = np.full(angles.shape[0], max_range)
        if self._seg_a.shape[0]:
            best = np.minimum(best, intersect_segments(o, d, self._seg_a, self._seg_d))
        if self._circ_c.shape[0]:
            best = np.minimum(best, intersect_circles(o, d, self._circ_c, self._circ_r))
        return np.clip(best, _EPS, max_range)

    @property
    def segment_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Packed segment geometry ``(anchors (S, 2), deltas (S, 2))``.

        Vectorisation hook for the fleet renderer, which pads these
        across worlds into one batched intersection call.
        """
        return self._seg_a, self._seg_d

    @property
    def circle_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Packed circle geometry ``(centers (C, 2), radii (C,))``."""
        return self._circ_c, self._circ_r

    # ------------------------------------------------------------------
    # Clearance queries (collision checks)
    # ------------------------------------------------------------------
    def min_distance(self, point: tuple[float, float]) -> float:
        """Distance from ``point`` to the nearest obstacle surface."""
        p = np.asarray(point, dtype=np.float64)
        best = np.inf
        if self._seg_a.shape[0]:
            dist = segment_distances(p, self._seg_a, self._seg_d)
            best = min(best, float(dist.min()))
        if self._circ_c.shape[0]:
            dist = circle_distances(p, self._circ_c, self._circ_r)
            best = min(best, float(dist.min()))
        return best
