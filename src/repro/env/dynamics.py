"""Drone dynamics models.

Section VI.B: "The algorithm is tested on a simulated environment with
the dynamics of realistic drones."  The default :class:`~repro.env.drone.Drone`
is purely kinematic (it turns and moves exactly as commanded); this
module adds a first-order *inertial* model where heading and speed lag
the commands — closer to a real quadrotor — so the library can study how
much the learned policy depends on ideal actuation.

The inertial drone honours the same five-action interface, making the
two models drop-in interchangeable in :class:`~repro.env.episode.NavigationEnv`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.drone import Action, TURN_ANGLES_DEG, _wrap_angle
from repro.env.world import Pose

__all__ = ["InertialDrone"]


@dataclass
class InertialDrone:
    """A drone with first-order heading and speed dynamics.

    Commands set a *target* heading change and the drone slews toward it
    at a bounded turn rate; forward speed relaxes toward the cruise
    speed with a time constant.  With ``turn_rate`` and
    ``speed_tau`` pushed to their limits this degenerates to the
    kinematic model.

    Parameters
    ----------
    pose:
        Initial pose.
    radius:
        Collision radius in metres.
    d_frame:
        Nominal distance per frame (cruise speed x frame period).
    turn_fraction:
        Fraction of a commanded turn executed within one frame (1.0 =
        kinematic; realistic quadrotors at a few m/s: ~0.5-0.8).
    speed_recovery:
        Per-frame recovery of forward speed after a turn scrubs it
        (turning sheds speed proportionally to the turn magnitude).
    """

    pose: Pose
    radius: float = 0.3
    d_frame: float = 0.5
    turn_fraction: float = 0.7
    speed_recovery: float = 0.5

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.d_frame <= 0:
            raise ValueError("radius and d_frame must be positive")
        if not 0.0 < self.turn_fraction <= 1.0:
            raise ValueError("turn_fraction must be in (0, 1]")
        if not 0.0 < self.speed_recovery <= 1.0:
            raise ValueError("speed_recovery must be in (0, 1]")
        self._pending_turn = 0.0
        self._speed_scale = 1.0

    def apply_action(self, action: int | Action) -> Pose:
        """Execute one (lagged) action; returns and stores the new pose."""
        action = Action(action)
        commanded = np.deg2rad(TURN_ANGLES_DEG[action])
        # New command merges with whatever turn is still pending.
        self._pending_turn += commanded
        executed = self.turn_fraction * self._pending_turn
        self._pending_turn -= executed
        heading = _wrap_angle(self.pose.heading + executed)
        # Turning scrubs speed; straight flight recovers it.
        scrub = min(abs(executed) / np.pi, 1.0)
        self._speed_scale *= 1.0 - 0.5 * scrub
        self._speed_scale += self.speed_recovery * (1.0 - self._speed_scale)
        self._speed_scale = float(np.clip(self._speed_scale, 0.1, 1.0))
        dist = self.d_frame * self._speed_scale
        x = self.pose.x + dist * np.cos(heading)
        y = self.pose.y + dist * np.sin(heading)
        self.pose = Pose(float(x), float(y), float(heading))
        return self.pose

    def teleport(self, pose: Pose) -> None:
        """Reset pose and dynamic state (post-crash respawn)."""
        self.pose = Pose(pose.x, pose.y, pose.heading)
        self._pending_turn = 0.0
        self._speed_scale = 1.0
