"""Episode runner: the RL-facing navigation environment.

Wraps a :class:`~repro.env.world.World`, a :class:`~repro.env.drone.Drone`
and a :class:`~repro.env.camera.DepthCamera` behind a gym-style
``reset``/``step`` interface, and tracks the paper's task metric — the
*safe flight distance* (SFD), "the average distance (in meters) travelled
by the drone before it crashes".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.env.camera import DepthCamera
from repro.env.drone import ACTIONS, Drone
from repro.env.reward import RewardConfig, compute_reward
from repro.env.world import Pose, World

__all__ = ["Transition", "SafeFlightTracker", "NavigationEnv"]


@dataclass(frozen=True)
class Transition:
    """One RL data tuple (s_t, a_t, r_t, s_{t+1}, done)."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


@dataclass
class SafeFlightTracker:
    """Accumulates flight distances between crashes.

    ``safe_flight_distance`` is the mean distance per completed flight
    segment — the paper's Fig. 11 metric.
    """

    distances: list[float] = field(default_factory=list)
    _current: float = 0.0

    def record_step(self, distance: float) -> None:
        """Add distance flown during one action."""
        if distance < 0:
            raise ValueError("distance cannot be negative")
        self._current += distance

    def record_crash(self) -> None:
        """Close the current flight segment."""
        self.distances.append(self._current)
        self._current = 0.0

    @property
    def crash_count(self) -> int:
        """Number of crashes recorded."""
        return len(self.distances)

    @property
    def safe_flight_distance(self) -> float:
        """Mean metres flown per crash (0 if no segment completed)."""
        if not self.distances:
            return self._current
        return float(np.mean(self.distances))


class NavigationEnv:
    """Camera-based navigation environment (gym-like API).

    Parameters
    ----------
    world:
        The environment geometry.
    camera:
        Depth camera; its output (normalised depth image with a leading
        channel axis) is the RL state.
    d_frame:
        Distance flown per action, ``v / fps`` (Fig. 1a).
    reward_config:
        Centre-window and crash-reward settings.
    drone_radius:
        Collision radius.
    seed:
        Seed for spawn poses and camera noise.
    drone:
        Optional pre-built drone (e.g.
        :class:`~repro.env.dynamics.InertialDrone`); defaults to the
        kinematic :class:`~repro.env.drone.Drone`.
    """

    def __init__(
        self,
        world: World,
        camera: DepthCamera | None = None,
        d_frame: float | None = None,
        reward_config: RewardConfig | None = None,
        drone_radius: float = 0.3,
        seed: int = 0,
        drone=None,
    ):
        self.world = world
        self.camera = camera or DepthCamera()
        # Default travel-per-frame: a quarter of the world's d_min keeps
        # the control problem solvable (several frames per gap).
        self.d_frame = d_frame if d_frame is not None else world.d_min / 4.0
        if self.d_frame <= 0:
            raise ValueError("d_frame must be positive")
        self.reward_config = reward_config or RewardConfig()
        self.rng = np.random.default_rng(seed)
        if drone is None:
            drone = Drone(
                pose=Pose(0.0, 0.0, 0.0),
                radius=drone_radius,
                d_frame=self.d_frame,
            )
        self.drone = drone
        self.tracker = SafeFlightTracker()
        self.num_actions = len(ACTIONS)
        self._last_obs: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _observe(self) -> np.ndarray:
        image = self.camera.render(self.world, self.drone.pose, rng=self.rng)
        return image[None, :, :]  # (1, H, W) for the CNN

    def reset(self) -> np.ndarray:
        """Respawn at a random collision-free pose and return the state."""
        pose = self.world.random_free_pose(
            self.rng, clearance=self.drone.radius + 0.2
        )
        self.drone.teleport(pose)
        self._last_obs = self._observe()
        return self._last_obs

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply ``action``; returns (next_state, reward, done, info)."""
        if self._last_obs is None:
            raise RuntimeError("call reset() before step()")
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action out of range: {action}")
        before = self.drone.pose
        self.drone.apply_action(action)
        after = self.drone.pose
        moved = float(np.hypot(after.x - before.x, after.y - before.y))
        crashed = self.world.in_collision(after.x, after.y, self.drone.radius)
        if crashed:
            self.tracker.record_crash()
            reward = self.reward_config.crash_reward
            obs = self._last_obs  # terminal frame: camera is in the wall
            done = True
        else:
            self.tracker.record_step(moved)
            obs = self._observe()
            reward = compute_reward(obs[0], self.reward_config)
            done = False
        self._last_obs = obs if not done else None
        info = {
            "pose": after,
            "crashed": crashed,
            "distance": moved,
            "safe_flight_distance": self.tracker.safe_flight_distance,
        }
        return obs, reward, done, info

    @property
    def observation_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of observations."""
        return (1, self.camera.height, self.camera.width)
