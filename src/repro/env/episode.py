"""Episode runner: the RL-facing navigation environment.

Wraps a :class:`~repro.env.world.World`, a :class:`~repro.env.drone.Drone`
and a :class:`~repro.env.camera.DepthCamera` behind a gym-style
``reset``/``step`` interface, and tracks the paper's task metric — the
*safe flight distance* (SFD), "the average distance (in meters) travelled
by the drone before it crashes".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.env.camera import DepthCamera
from repro.env.drone import ACTIONS, Drone
from repro.env.reward import RewardConfig, compute_reward
from repro.env.world import Pose, World

__all__ = ["Transition", "SafeFlightTracker", "NavigationEnv"]


@dataclass(frozen=True)
class Transition:
    """One RL data tuple (s_t, a_t, r_t, s_{t+1}, done)."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


@dataclass
class SafeFlightTracker:
    """Accumulates flight distances between crashes.

    ``safe_flight_distance`` is the mean distance per completed flight
    segment — the paper's Fig. 11 metric.  A flight segment normally
    closes at a crash (:meth:`record_crash`), but an episode can also
    end *without* one — truncation at a step limit, or the end of a run.
    :meth:`flush` closes such a segment so its distance is not silently
    dropped from the metric; crashes are counted separately so flushed
    segments never inflate :attr:`crash_count`.
    """

    distances: list[float] = field(default_factory=list)
    _current: float = 0.0
    _crashes: int = 0
    _mean_cache: tuple[int, float] = (-1, 0.0)

    def record_step(self, distance: float) -> None:
        """Add distance flown during one action."""
        if distance < 0:
            raise ValueError("distance cannot be negative")
        self._current += distance

    def record_crash(self) -> None:
        """Close the current flight segment at a crash."""
        self.distances.append(self._current)
        self._current = 0.0
        self._crashes += 1

    def flush(self) -> float:
        """Close a flight segment that ended without a crash.

        Returns the flushed distance (0.0 when nothing was pending).
        Call at episode truncation or end-of-run so a successful final
        flight still contributes to the safe-flight-distance mean.
        """
        flushed = self._current
        if self._current > 0.0:
            self.distances.append(self._current)
            self._current = 0.0
        return flushed

    @property
    def pending_distance(self) -> float:
        """Distance flown in the still-open segment."""
        return self._current

    @property
    def total_distance(self) -> float:
        """All metres flown, including the still-open segment."""
        return float(sum(self.distances)) + self._current

    @property
    def crash_count(self) -> int:
        """Number of crashes recorded."""
        return self._crashes

    @property
    def safe_flight_distance(self) -> float:
        """Mean metres flown per completed flight segment.

        Falls back to the open segment's distance when no segment has
        completed yet.
        """
        if not self.distances:
            return self._current
        # Queried every step but appended rarely; memoise the mean.
        if self._mean_cache[0] != len(self.distances):
            self._mean_cache = (
                len(self.distances), float(np.mean(self.distances))
            )
        return self._mean_cache[1]


class NavigationEnv:
    """Camera-based navigation environment (gym-like API).

    Parameters
    ----------
    world:
        The environment geometry.
    camera:
        Depth camera; its output (normalised depth image with a leading
        channel axis) is the RL state.
    d_frame:
        Distance flown per action, ``v / fps`` (Fig. 1a).
    reward_config:
        Centre-window and crash-reward settings.
    drone_radius:
        Collision radius.
    seed:
        Seed for spawn poses and camera noise.
    drone:
        Optional pre-built drone (e.g.
        :class:`~repro.env.dynamics.InertialDrone`); defaults to the
        kinematic :class:`~repro.env.drone.Drone`.
    """

    def __init__(
        self,
        world: World,
        camera: DepthCamera | None = None,
        d_frame: float | None = None,
        reward_config: RewardConfig | None = None,
        drone_radius: float = 0.3,
        seed: int = 0,
        drone=None,
    ):
        self.world = world
        self.camera = camera or DepthCamera()
        # Default travel-per-frame: a quarter of the world's d_min keeps
        # the control problem solvable (several frames per gap).
        self.d_frame = d_frame if d_frame is not None else world.d_min / 4.0
        if self.d_frame <= 0:
            raise ValueError("d_frame must be positive")
        self.reward_config = reward_config or RewardConfig()
        self.rng = np.random.default_rng(seed)
        if drone is None:
            drone = Drone(
                pose=Pose(0.0, 0.0, 0.0),
                radius=drone_radius,
                d_frame=self.d_frame,
            )
        self.drone = drone
        self.tracker = SafeFlightTracker()
        self.num_actions = len(ACTIONS)
        self._last_obs: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _observe(self) -> np.ndarray:
        image = self.camera.render(self.world, self.drone.pose, rng=self.rng)
        return image[None, :, :]  # (1, H, W) for the CNN

    def respawn(self) -> Pose:
        """Flush the open flight segment and teleport to a fresh pose.

        Vectorisation hook: the physics half of :meth:`reset`, without
        the camera render — the fleet respawns every reset env first and
        renders all of them in one batched call.
        """
        self.tracker.flush()
        pose = self.world.random_free_pose(
            self.rng, clearance=self.drone.radius + 0.2
        )
        self.drone.teleport(pose)
        return pose

    def set_observation(self, obs: np.ndarray) -> None:
        """Install an externally rendered observation as the current state.

        Vectorisation hook: the fleet renders whole batches and hands
        each env its slice instead of calling ``_observe()`` per env.
        """
        self._last_obs = obs

    def reset(self) -> np.ndarray:
        """Respawn at a random collision-free pose and return the state."""
        self.respawn()
        self._last_obs = self._observe()
        return self._last_obs

    def advance(self, action: int) -> dict:
        """Validate and apply ``action``; no collision resolution yet.

        Vectorisation hook: the fleet advances every drone first, then
        resolves all collisions in one batched clearance query.
        """
        if self._last_obs is None:
            raise RuntimeError("call reset() before step()")
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action out of range: {action}")
        before = self.drone.pose
        self.drone.apply_action(action)
        after = self.drone.pose
        moved = float(np.hypot(after.x - before.x, after.y - before.y))
        return {"pose": after, "distance": moved}

    def resolve_collision(self, physics: dict, crashed: bool | None = None) -> dict:
        """Record the outcome of an :meth:`advance` in the tracker.

        ``crashed`` may be precomputed (the fleet's batched collision
        check); when ``None`` the world is queried directly.
        """
        if crashed is None:
            pose = physics["pose"]
            crashed = self.world.in_collision(pose.x, pose.y, self.drone.radius)
        physics["crashed"] = bool(crashed)
        if physics["crashed"]:
            self.tracker.record_crash()
        else:
            self.tracker.record_step(physics["distance"])
        return physics

    def step_physics(self, action: int) -> dict:
        """Apply ``action`` to the drone and resolve collisions.

        The camera-free half of :meth:`step`.  Returns the info dict
        (pose, crashed, distance); pair with :meth:`complete_step` once
        an observation is available.
        """
        return self.resolve_collision(self.advance(action))

    def complete_step(
        self, physics: dict, obs: np.ndarray | None, reward: float | None = None
    ) -> tuple[np.ndarray, float, bool, dict]:
        """Finish a step started by :meth:`step_physics`.

        ``obs`` is the freshly rendered observation, or ``None`` when the
        step crashed (the terminal frame is the previous observation —
        the camera is in the wall).  ``reward`` may be precomputed (the
        fleet batches the centre-window means); it is ignored on a crash.
        """
        if physics["crashed"]:
            reward = self.reward_config.crash_reward
            obs = self._last_obs
            done = True
        else:
            if reward is None:
                reward = compute_reward(obs[0], self.reward_config)
            done = False
        self._last_obs = obs if not done else None
        info = dict(physics)
        info["safe_flight_distance"] = self.tracker.safe_flight_distance
        return obs, reward, done, info

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply ``action``; returns (next_state, reward, done, info)."""
        physics = self.step_physics(action)
        obs = None if physics["crashed"] else self._observe()
        return self.complete_step(physics, obs)

    @property
    def observation_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of observations."""
        return (1, self.camera.height, self.camera.width)
