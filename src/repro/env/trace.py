"""Flight trajectory recording and ASCII world rendering.

Debugging an RL policy needs eyes: :class:`FlightTrace` records poses,
actions, rewards and crash sites during an episode, and
:func:`render_world_ascii` draws the world map with obstacles, the
flight path and crash markers as terminal art — the scaled stand-in for
the paper's Unreal screenshots (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.env.world import Pose, World

__all__ = ["TraceStep", "FlightTrace", "render_world_ascii"]


@dataclass(frozen=True)
class TraceStep:
    """One recorded step."""

    pose: Pose
    action: int
    reward: float
    crashed: bool


@dataclass
class FlightTrace:
    """An append-only record of one or more flights."""

    steps: list[TraceStep] = field(default_factory=list)

    def record(self, pose: Pose, action: int, reward: float, crashed: bool) -> None:
        """Append one step."""
        self.steps.append(TraceStep(Pose(pose.x, pose.y, pose.heading), action, reward, crashed))

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def crash_sites(self) -> list[tuple[float, float]]:
        """Positions where the drone crashed."""
        return [(s.pose.x, s.pose.y) for s in self.steps if s.crashed]

    @property
    def path(self) -> np.ndarray:
        """(N, 2) array of visited positions."""
        if not self.steps:
            return np.zeros((0, 2))
        return np.array([[s.pose.x, s.pose.y] for s in self.steps])

    def total_distance(self) -> float:
        """Path length in metres."""
        path = self.path
        if path.shape[0] < 2:
            return 0.0
        return float(np.sum(np.hypot(*np.diff(path, axis=0).T)))

    def mean_reward(self) -> float:
        """Average recorded reward."""
        if not self.steps:
            return float("nan")
        return float(np.mean([s.reward for s in self.steps]))

    def action_histogram(self, num_actions: int = 5) -> np.ndarray:
        """Counts per action index."""
        counts = np.zeros(num_actions, dtype=int)
        for step in self.steps:
            if not 0 <= step.action < num_actions:
                raise ValueError(f"action out of range: {step.action}")
            counts[step.action] += 1
        return counts


def render_world_ascii(
    world: World,
    trace: FlightTrace | None = None,
    width: int = 72,
    height: int = 28,
) -> str:
    """Draw the world (and optionally a flight path) as ASCII art.

    Legend: ``#`` wall/box, ``o`` circular obstacle, ``.`` flight path,
    ``X`` crash site, space = free.
    """
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    bounds = world.bounds
    span_x = bounds.xmax - bounds.xmin
    span_y = bounds.ymax - bounds.ymin

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - bounds.xmin) / span_x * (width - 1))
        row = int((bounds.ymax - y) / span_y * (height - 1))
        return (
            min(max(row, 0), height - 1),
            min(max(col, 0), width - 1),
        )

    grid = [[" "] * width for _ in range(height)]

    # Obstacles: sample world clearance on the grid for walls/segments.
    for row in range(height):
        for col in range(width):
            x = bounds.xmin + (col + 0.5) / width * span_x
            y = bounds.ymax - (row + 0.5) / height * span_y
            cell_metres = max(span_x / width, span_y / height) / 2
            if world.clearance(x, y) < cell_metres:
                grid[row][col] = "#"
    for circle in world.circles:
        r, c = to_cell(circle.cx, circle.cy)
        grid[r][c] = "o"

    if trace is not None:
        for point in trace.path:
            r, c = to_cell(float(point[0]), float(point[1]))
            if grid[r][c] == " ":
                grid[r][c] = "."
        for x, y in trace.crash_sites:
            r, c = to_cell(x, y)
            grid[r][c] = "X"

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    header = f"{world.name}  ({span_x:.0f} x {span_y:.0f} m, d_min = {world.d_min} m)"
    return "\n".join([header, border, body, border])
