"""Real-time feasibility: frame arrivals vs training service rate.

Fig. 1 sets the *demand* (minimum fps at a flight velocity) and Fig. 13a
the *supply* (iterations per second the hardware sustains).  This module
closes the loop with a deterministic queueing simulation: camera frames
arrive at a fixed rate into a bounded buffer (the off-chip DRAM of
Fig. 4a); the training pipeline drains them one iteration at a time.
Outputs: dropped-frame fraction, queue occupancy, and worst-case
frame-to-training latency — the numbers that decide whether a topology
is *really* real-time at a given velocity, beyond average-rate
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RealTimeReport", "simulate_frame_queue", "max_realtime_velocity"]


@dataclass(frozen=True)
class RealTimeReport:
    """Outcome of a frame-queue simulation."""

    frame_rate_hz: float
    service_rate_hz: float
    frames_offered: int
    frames_processed: int
    frames_dropped: int
    max_queue_depth: int
    max_latency_s: float

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered frames dropped at the full buffer."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    @property
    def realtime(self) -> bool:
        """Whether the pipeline kept up (no drops, bounded queue)."""
        return self.frames_dropped == 0


def simulate_frame_queue(
    frame_rate_hz: float,
    iteration_time_s: float,
    duration_s: float = 10.0,
    buffer_frames: int = 8,
) -> RealTimeReport:
    """Deterministically simulate the camera -> training queue.

    Frames arrive every ``1/frame_rate_hz`` seconds; the trainer takes
    ``iteration_time_s`` per frame; at most ``buffer_frames`` may wait.
    """
    if frame_rate_hz <= 0 or iteration_time_s <= 0:
        raise ValueError("rates must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if buffer_frames < 1:
        raise ValueError("buffer must hold at least one frame")
    period = 1.0 / frame_rate_hz
    offered = int(duration_s / period)
    queue: list[float] = []  # arrival timestamps
    server_free_at = 0.0
    processed = 0
    dropped = 0
    max_depth = 0
    max_latency = 0.0
    for i in range(offered):
        arrival = i * period
        # Drain everything the server finishes before this arrival.
        while queue and server_free_at <= arrival:
            start = max(server_free_at, queue[0])
            if start > arrival:
                break
            latency = start + iteration_time_s - queue.pop(0)
            max_latency = max(max_latency, latency)
            server_free_at = start + iteration_time_s
            processed += 1
        if len(queue) >= buffer_frames:
            dropped += 1
        else:
            queue.append(arrival)
        max_depth = max(max_depth, len(queue))
    # Drain the tail.
    while queue:
        start = max(server_free_at, queue[0])
        latency = start + iteration_time_s - queue.pop(0)
        max_latency = max(max_latency, latency)
        server_free_at = start + iteration_time_s
        processed += 1
    return RealTimeReport(
        frame_rate_hz=frame_rate_hz,
        service_rate_hz=1.0 / iteration_time_s,
        frames_offered=offered,
        frames_processed=processed,
        frames_dropped=dropped,
        max_queue_depth=max_depth,
        max_latency_s=max_latency,
    )


def max_realtime_velocity(
    iteration_time_s: float,
    d_min: float,
    buffer_frames: int = 8,
    duration_s: float = 20.0,
    precision: float = 0.05,
) -> float:
    """Largest velocity whose required frame rate the pipeline sustains.

    Binary-searches the velocity axis using the Fig. 1 law
    ``fps = v / d_min`` and the queue simulation as the feasibility
    oracle (no dropped frames).
    """
    if d_min <= 0 or precision <= 0:
        raise ValueError("d_min and precision must be positive")
    lo, hi = 0.0, 10.0 * d_min / iteration_time_s  # generous upper bound
    while hi - lo > precision:
        mid = (lo + hi) / 2.0
        fps = mid / d_min
        report = simulate_frame_queue(
            fps, iteration_time_s, duration_s=duration_s,
            buffer_frames=buffer_frames,
        )
        if report.realtime:
            lo = mid
        else:
            hi = mid
    return lo
