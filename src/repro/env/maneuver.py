"""Manoeuvrability analysis: what Fig. 1's d_min actually buys.

Fig. 1a defines d_min as "the minimum distance required for obstacle
avoidance" and the law fps = v / d_min makes the drone receive exactly
one decision per d_min of travel.  This module decomposes the required
sighting distance from first principles:

    sighting distance = perception latency + evasive manoeuvre
                      = latency_frames * d_frame + manoeuvre(d_frame)

* **Perception latency**: the frame showing the obstacle must be
  captured, propagated through the CNN and turned into an action while
  the drone keeps flying straight — at least one frame, more if the
  training pipeline is backed up (see :mod:`repro.env.realtime`).
* **Evasive manoeuvre**: turning hard (55 degrees/frame) until the
  accumulated lateral displacement clears the obstacle's half-width
  plus the drone radius.

With the paper's one-frame-per-d_min budget, the perception term alone
consumes the whole d_min — Fig. 1's law is the perception-limited
*necessary* condition, and the manoeuvre term (a few tenths of a metre
at indoor speeds) is the safety margin the d_min settings leave on top.
"""

from __future__ import annotations

import numpy as np

from repro.env.drone import TURN_ANGLES_DEG, Action

__all__ = [
    "evasive_maneuver_distance",
    "required_sighting_distance",
    "fig1_law_is_perception_limited",
]

_MAX_TURN_DEG = abs(TURN_ANGLES_DEG[Action.LEFT_55])


def evasive_maneuver_distance(
    obstacle_halfwidth: float,
    d_frame: float,
    drone_radius: float = 0.3,
    max_turn_deg: float = _MAX_TURN_DEG,
    max_frames: int = 1000,
) -> float:
    """Forward distance consumed by a hard-turn evasion.

    The drone turns ``max_turn_deg`` every frame until its lateral
    displacement exceeds ``obstacle_halfwidth + drone_radius``; returns
    the forward distance covered meanwhile.
    """
    if obstacle_halfwidth <= 0 or drone_radius <= 0:
        raise ValueError("geometry must be positive")
    if d_frame <= 0:
        raise ValueError("d_frame must be positive")
    if not 0 < max_turn_deg <= 90:
        raise ValueError("max_turn_deg must be in (0, 90]")
    needed = obstacle_halfwidth + drone_radius
    heading = 0.0
    forward = 0.0
    lateral = 0.0
    for _ in range(max_frames):
        if lateral >= needed:
            return forward
        heading = min(heading + np.deg2rad(max_turn_deg), np.pi / 2)
        forward += d_frame * np.cos(heading)
        lateral += d_frame * np.sin(heading)
    raise ValueError("obstacle too wide to evade within max_frames")


def required_sighting_distance(
    obstacle_halfwidth: float,
    d_frame: float,
    drone_radius: float = 0.3,
    latency_frames: int = 1,
    max_turn_deg: float = _MAX_TURN_DEG,
) -> float:
    """Total distance at which the obstacle must first be visible."""
    if latency_frames < 0:
        raise ValueError("latency_frames must be non-negative")
    perception = latency_frames * d_frame
    maneuver = evasive_maneuver_distance(
        obstacle_halfwidth, d_frame, drone_radius, max_turn_deg
    )
    return perception + maneuver


def fig1_law_is_perception_limited(
    d_min: float,
    obstacle_halfwidth: float,
    drone_radius: float = 0.3,
    latency_frames: int = 1,
) -> bool:
    """Check Fig. 1's law against the decomposition at this d_min.

    Under the law, one frame arrives per ``d_min`` travelled
    (``d_frame = d_min``).  Returns True when the perception term
    dominates the manoeuvre term — i.e. the frame budget, not agility,
    is what d_min pays for.
    """
    if d_min <= 0:
        raise ValueError("d_min must be positive")
    d_frame = d_min
    perception = latency_frames * d_frame
    maneuver = evasive_maneuver_distance(
        obstacle_halfwidth, d_frame, drone_radius
    )
    return perception >= maneuver
