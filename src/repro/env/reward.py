"""Reward generation from depth images.

Section II.B: "The depth map generated is segmented into a smaller window
in the center.  The reward is taken to be the average depth in this
center window.  The closer the drone is to the obstacles, the lesser the
average depth in the center window and the smaller the reward is."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RewardConfig", "REWARD_KINDS", "center_window_reward", "compute_reward"]


#: Supported reward aggregations over the centre window.  "mean" is the
#: paper's; "min" is a conservative variant (reward tracks the nearest
#: obstacle in view); "softmin" interpolates between the two.
REWARD_KINDS = ("mean", "min", "softmin")


@dataclass(frozen=True)
class RewardConfig:
    """Reward shaping parameters.

    Parameters
    ----------
    window_fraction:
        Side of the centre window as a fraction of each image dimension.
    crash_reward:
        Reward delivered on collision (episode-terminal).
    kind:
        Window aggregation; ``"mean"`` (the paper), ``"min"`` or
        ``"softmin"``.
    softmin_temperature:
        Sharpness of the softmin variant (smaller = closer to min).
    """

    window_fraction: float = 1.0 / 3.0
    crash_reward: float = -1.0
    kind: str = "mean"
    softmin_temperature: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.window_fraction <= 1.0:
            raise ValueError("window_fraction must be in (0, 1]")
        if self.crash_reward >= 0.0:
            raise ValueError("crash reward should be negative")
        if self.kind not in REWARD_KINDS:
            raise ValueError(f"kind must be one of {REWARD_KINDS}")
        if self.softmin_temperature <= 0.0:
            raise ValueError("softmin temperature must be positive")


def center_window_reward(
    depth_image: np.ndarray, window_fraction: float = 1.0 / 3.0
) -> float:
    """Average normalised depth over the image's centre window.

    ``depth_image`` must already be normalised to [0, 1] (divide by the
    camera far plane); the reward is then in [0, 1] with larger values
    meaning more open space ahead.
    """
    img = np.asarray(depth_image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("depth image must be 2-D")
    if not 0.0 < window_fraction <= 1.0:
        raise ValueError("window_fraction must be in (0, 1]")
    h, w = img.shape
    wh = max(int(round(h * window_fraction)), 1)
    ww = max(int(round(w * window_fraction)), 1)
    top = (h - wh) // 2
    left = (w - ww) // 2
    window = img[top : top + wh, left : left + ww]
    return float(window.mean())


def _center_window(img: np.ndarray, window_fraction: float) -> np.ndarray:
    h, w = img.shape
    wh = max(int(round(h * window_fraction)), 1)
    ww = max(int(round(w * window_fraction)), 1)
    top = (h - wh) // 2
    left = (w - ww) // 2
    return img[top : top + wh, left : left + ww]


def compute_reward(depth_image: np.ndarray, config: RewardConfig) -> float:
    """Aggregate the centre window according to ``config.kind``."""
    img = np.asarray(depth_image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("depth image must be 2-D")
    window = _center_window(img, config.window_fraction)
    if config.kind == "mean":
        return float(window.mean())
    if config.kind == "min":
        return float(window.min())
    # softmin: temperature-weighted toward the nearest depth.
    flat = window.reshape(-1)
    weights = np.exp(-flat / config.softmin_temperature)
    return float(np.sum(flat * weights) / np.sum(weights))
