"""Minimum frame-rate model (Fig. 1).

Fig. 1a defines d_min as the minimum distance required for obstacle
avoidance and d_frame as the distance travelled between frames.  To avoid
an obstacle the drone must see at least one frame within every d_min of
travel, so at velocity ``v``:

    fps_min = v / d_min

This law reproduces all 24 cells of the Fig. 1c table exactly (e.g.
Indoor 1 at 2.5 m/s: 2.5 / 0.7 = 3.571 fps).  Inverting it couples the
hardware's achievable frame rate (Fig. 13a) to the maximum safe flight
velocity — the paper's ">3x increase in velocity" claim.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DMIN_TABLE",
    "min_fps_for_collision_avoidance",
    "max_safe_velocity",
    "fps_requirement_table",
    "PAPER_SPEEDS",
]

#: Fig. 1c: d_min per sample environment, in metres.
DMIN_TABLE = {
    "Indoor 1": 0.7,
    "Indoor 2": 1.0,
    "Indoor 3": 1.3,
    "Outdoor 1": 3.0,
    "Outdoor 2": 4.0,
    "Outdoor 3": 5.0,
}

#: Drone speeds swept in Fig. 1b/c, in m/s.
PAPER_SPEEDS = (2.5, 5.0, 7.5, 10.0)


def min_fps_for_collision_avoidance(velocity: float, d_min: float) -> float:
    """Minimum camera/training frame rate at ``velocity`` given ``d_min``."""
    if velocity <= 0:
        raise ValueError("velocity must be positive")
    if d_min <= 0:
        raise ValueError("d_min must be positive")
    return velocity / d_min


def max_safe_velocity(fps: float, d_min: float) -> float:
    """Largest safe velocity sustainable at ``fps`` (inverse of the law)."""
    if fps <= 0:
        raise ValueError("fps must be positive")
    if d_min <= 0:
        raise ValueError("d_min must be positive")
    return fps * d_min


def fps_requirement_table(
    speeds: tuple[float, ...] = PAPER_SPEEDS,
    dmin_table: dict[str, float] | None = None,
) -> dict[str, np.ndarray]:
    """Reproduce the Fig. 1c grid: required fps per (speed, environment).

    Returns a mapping from environment name to an array aligned with
    ``speeds``.
    """
    table = dmin_table if dmin_table is not None else DMIN_TABLE
    return {
        env: np.array(
            [min_fps_for_collision_avoidance(v, d_min) for v in speeds]
        )
        for env, d_min in table.items()
    }
