"""Procedural environment generators.

The paper uses four Unreal Engine *test* environments — indoor apartment,
indoor house, outdoor forest, outdoor town (Fig. 9) — plus larger,
"complex" indoor and outdoor *meta* environments used for transfer
learning.  These generators build 2-D analogues with clutter densities
chosen so the designed minimum obstacle spacing matches the paper's
d_min settings (Fig. 1c):

========  ==================  ======
category  environment         d_min
========  ==================  ======
indoor    apartment           0.7 m
indoor    house               1.0 m
outdoor   forest              3.0 m
outdoor   town                5.0 m
========  ==================  ======

All generators are deterministic in their ``seed`` argument.  Meta and
test environments for the same category share *statistics* but not
layouts, which is exactly the structure transfer learning exploits: the
CONV features transfer, the FC tail must adapt online.
"""

from __future__ import annotations

import numpy as np

from repro.env.geometry import Box, Circle, Segment
from repro.env.world import World

__all__ = [
    "indoor_apartment",
    "indoor_house",
    "outdoor_forest",
    "outdoor_town",
    "meta_indoor",
    "meta_outdoor",
    "make_environment",
    "ENVIRONMENTS",
    "META_ENVIRONMENTS",
    "TEST_ENVIRONMENTS",
]


def _wall_with_door(
    x1: float, y1: float, x2: float, y2: float, door_at: float, door_width: float
) -> list[Segment]:
    """A straight wall broken by a door gap.

    ``door_at`` is the fractional position of the door centre along the
    wall, ``door_width`` the gap size in metres.
    """
    dx, dy = x2 - x1, y2 - y1
    length = float(np.hypot(dx, dy))
    if not 0.0 < door_at < 1.0:
        raise ValueError("door_at must be a fraction in (0, 1)")
    if door_width >= length:
        raise ValueError("door wider than the wall")
    half = door_width / (2.0 * length)
    lo = max(door_at - half, 0.0)
    hi = min(door_at + half, 1.0)
    walls = []
    if lo > 1e-6:
        walls.append(Segment(x1, y1, x1 + lo * dx, y1 + lo * dy))
    if hi < 1.0 - 1e-6:
        walls.append(Segment(x1 + hi * dx, y1 + hi * dy, x2, y2))
    return walls


def _scatter_circles(
    rng: np.random.Generator,
    bounds: Box,
    count: int,
    radius_range: tuple[float, float],
    min_gap: float,
    margin: float = 2.0,
    max_tries: int = 4000,
) -> list[Circle]:
    """Rejection-sample circles whose surfaces keep ``min_gap`` apart."""
    circles: list[Circle] = []
    tries = 0
    while len(circles) < count and tries < max_tries:
        tries += 1
        r = rng.uniform(*radius_range)
        x = rng.uniform(bounds.xmin + margin + r, bounds.xmax - margin - r)
        y = rng.uniform(bounds.ymin + margin + r, bounds.ymax - margin - r)
        ok = all(
            np.hypot(x - c.cx, y - c.cy) >= r + c.radius + min_gap for c in circles
        )
        if ok:
            circles.append(Circle(x, y, r))
    return circles


def _scatter_boxes(
    rng: np.random.Generator,
    bounds: Box,
    count: int,
    size_range: tuple[float, float],
    min_gap: float,
    margin: float = 2.0,
    max_tries: int = 4000,
) -> list[Box]:
    """Rejection-sample axis-aligned boxes keeping ``min_gap`` apart."""
    boxes: list[Box] = []
    tries = 0
    while len(boxes) < count and tries < max_tries:
        tries += 1
        w = rng.uniform(*size_range)
        h = rng.uniform(*size_range)
        x = rng.uniform(bounds.xmin + margin, bounds.xmax - margin - w)
        y = rng.uniform(bounds.ymin + margin, bounds.ymax - margin - h)
        candidate = Box(x, y, x + w, y + h)
        ok = all(
            candidate.xmin - min_gap > b.xmax
            or candidate.xmax + min_gap < b.xmin
            or candidate.ymin - min_gap > b.ymax
            or candidate.ymax + min_gap < b.ymin
            for b in boxes
        )
        if ok:
            boxes.append(candidate)
    return boxes


# ----------------------------------------------------------------------
# Indoor test environments
# ----------------------------------------------------------------------

def indoor_apartment(seed: int = 0) -> World:
    """A three-room apartment with furniture; d_min = 0.7 m (Indoor 1)."""
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 18.0, 12.0)
    segments: list[Segment] = []
    # Two interior walls with doors split the flat into three rooms.
    segments += _wall_with_door(6.0, 0.0, 6.0, 12.0, rng.uniform(0.3, 0.7), 1.6)
    segments += _wall_with_door(12.0, 0.0, 12.0, 12.0, rng.uniform(0.3, 0.7), 1.6)
    # A partial corridor wall in the middle room.
    segments += _wall_with_door(6.0, 7.0, 12.0, 7.0, rng.uniform(0.35, 0.65), 1.8)
    furniture = _scatter_boxes(
        rng, bounds, count=8, size_range=(0.6, 1.4), min_gap=0.7, margin=1.0
    )
    return World(
        name="indoor-apartment",
        bounds=bounds,
        segments=segments,
        boxes=furniture,
        d_min=0.7,
        max_range=12.0,
        is_indoor=True,
    )


def indoor_house(seed: int = 0) -> World:
    """A house with an L-shaped hall; d_min = 1.0 m (Indoor 2)."""
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 16.0, 14.0)
    segments: list[Segment] = []
    segments += _wall_with_door(0.0, 8.0, 10.0, 8.0, rng.uniform(0.3, 0.7), 1.8)
    segments += _wall_with_door(10.0, 8.0, 10.0, 14.0, rng.uniform(0.3, 0.7), 1.8)
    segments += _wall_with_door(8.0, 0.0, 8.0, 5.0, rng.uniform(0.3, 0.7), 1.8)
    furniture = _scatter_boxes(
        rng, bounds, count=6, size_range=(0.8, 1.6), min_gap=1.0, margin=1.2
    )
    pillars = _scatter_circles(
        rng, bounds, count=3, radius_range=(0.2, 0.35), min_gap=1.0, margin=1.5
    )
    return World(
        name="indoor-house",
        bounds=bounds,
        segments=segments,
        boxes=furniture,
        circles=pillars,
        d_min=1.0,
        max_range=14.0,
        is_indoor=True,
    )


# ----------------------------------------------------------------------
# Outdoor test environments
# ----------------------------------------------------------------------

def outdoor_forest(seed: int = 0) -> World:
    """A tree field; d_min = 3.0 m (Outdoor 1)."""
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 80.0, 80.0)
    trees = _scatter_circles(
        rng, bounds, count=70, radius_range=(0.3, 0.9), min_gap=3.0, margin=3.0
    )
    return World(
        name="outdoor-forest",
        bounds=bounds,
        circles=trees,
        d_min=3.0,
        max_range=50.0,
        is_indoor=False,
    )


def outdoor_town(seed: int = 0) -> World:
    """Blocks of houses along open streets; d_min = 5.0 m (Outdoor 3)."""
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 100.0, 100.0)
    houses = _scatter_boxes(
        rng, bounds, count=14, size_range=(6.0, 12.0), min_gap=5.0, margin=4.0
    )
    trees = _scatter_circles(
        rng, bounds, count=10, radius_range=(0.4, 1.0), min_gap=5.0, margin=4.0
    )
    # Drop trees that ended up inside houses.
    trees = [
        t
        for t in trees
        if not any(h.contains(t.cx, t.cy, margin=t.radius + 1.0) for h in houses)
    ]
    return World(
        name="outdoor-town",
        bounds=bounds,
        boxes=houses,
        circles=trees,
        d_min=5.0,
        max_range=60.0,
        is_indoor=False,
    )


def indoor_warehouse(seed: int = 0) -> World:
    """A warehouse with shelving aisles; d_min = 1.3 m (Indoor 3).

    Beyond the paper's four Fig. 9 test environments — completes the
    Fig. 1c d_min ladder on the indoor side.
    """
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 24.0, 16.0)
    segments: list[Segment] = []
    # Shelf rows with aisle gaps.
    for y in (4.0, 8.0, 12.0):
        segments += _wall_with_door(2.0, y, 22.0, y, rng.uniform(0.25, 0.75), 2.2)
    crates = _scatter_boxes(
        rng, bounds, count=6, size_range=(0.8, 1.5), min_gap=1.3, margin=1.2
    )
    return World(
        name="indoor-warehouse",
        bounds=bounds,
        segments=segments,
        boxes=crates,
        d_min=1.3,
        max_range=16.0,
        is_indoor=True,
    )


def outdoor_suburb(seed: int = 0) -> World:
    """Houses with garden trees; d_min = 4.0 m (Outdoor 2).

    Beyond the paper's four Fig. 9 test environments — completes the
    Fig. 1c d_min ladder on the outdoor side.
    """
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 90.0, 90.0)
    houses = _scatter_boxes(
        rng, bounds, count=12, size_range=(5.0, 9.0), min_gap=4.0, margin=3.5
    )
    trees = _scatter_circles(
        rng, bounds, count=25, radius_range=(0.3, 0.8), min_gap=4.0, margin=3.0
    )
    trees = [
        t
        for t in trees
        if not any(h.contains(t.cx, t.cy, margin=t.radius + 1.0) for h in houses)
    ]
    return World(
        name="outdoor-suburb",
        bounds=bounds,
        boxes=houses,
        circles=trees,
        d_min=4.0,
        max_range=55.0,
        is_indoor=False,
    )


# ----------------------------------------------------------------------
# Meta (transfer-learning) environments
# ----------------------------------------------------------------------

def meta_indoor(seed: int = 100) -> World:
    """Complex indoor meta-environment for TL (richer than any test)."""
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 26.0, 18.0)
    segments: list[Segment] = []
    for x in (7.0, 13.0, 19.0):
        segments += _wall_with_door(x, 0.0, x, 18.0, rng.uniform(0.25, 0.75), 1.7)
    segments += _wall_with_door(0.0, 9.0, 7.0, 9.0, rng.uniform(0.3, 0.7), 1.7)
    segments += _wall_with_door(13.0, 9.0, 19.0, 9.0, rng.uniform(0.3, 0.7), 1.7)
    furniture = _scatter_boxes(
        rng, bounds, count=14, size_range=(0.6, 1.6), min_gap=0.8, margin=1.0
    )
    pillars = _scatter_circles(
        rng, bounds, count=4, radius_range=(0.2, 0.4), min_gap=0.8, margin=1.2
    )
    return World(
        name="meta-indoor",
        bounds=bounds,
        segments=segments,
        boxes=furniture,
        circles=pillars,
        d_min=0.85,
        max_range=14.0,
        is_indoor=True,
    )


def meta_outdoor(seed: int = 200) -> World:
    """Complex outdoor meta-environment: mixed forest and buildings."""
    rng = np.random.default_rng(seed)
    bounds = Box(0.0, 0.0, 120.0, 120.0)
    houses = _scatter_boxes(
        rng, bounds, count=10, size_range=(5.0, 10.0), min_gap=5.0, margin=4.0
    )
    trees = _scatter_circles(
        rng, bounds, count=80, radius_range=(0.3, 1.0), min_gap=3.5, margin=3.0
    )
    trees = [
        t
        for t in trees
        if not any(h.contains(t.cx, t.cy, margin=t.radius + 1.0) for h in houses)
    ]
    return World(
        name="meta-outdoor",
        bounds=bounds,
        boxes=houses,
        circles=trees,
        d_min=4.0,
        max_range=60.0,
        is_indoor=False,
    )


#: Test environments keyed by the names used in Figs. 9–11.
TEST_ENVIRONMENTS = {
    "indoor-apartment": indoor_apartment,
    "indoor-house": indoor_house,
    "outdoor-forest": outdoor_forest,
    "outdoor-town": outdoor_town,
}

#: Extra environments completing the Fig. 1c d_min ladder (Indoor 3 and
#: Outdoor 2 have no Fig. 9 counterpart in the paper).
EXTRA_ENVIRONMENTS = {
    "indoor-warehouse": indoor_warehouse,
    "outdoor-suburb": outdoor_suburb,
}

#: Meta-environments used for the transfer-learning phase.
META_ENVIRONMENTS = {
    "meta-indoor": meta_indoor,
    "meta-outdoor": meta_outdoor,
}

#: All registered environments.
ENVIRONMENTS = {**TEST_ENVIRONMENTS, **EXTRA_ENVIRONMENTS, **META_ENVIRONMENTS}

#: Which meta-environment trains the TL model for each test environment.
META_FOR_TEST = {
    "indoor-apartment": "meta-indoor",
    "indoor-house": "meta-indoor",
    "indoor-warehouse": "meta-indoor",
    "outdoor-forest": "meta-outdoor",
    "outdoor-town": "meta-outdoor",
    "outdoor-suburb": "meta-outdoor",
}


def make_environment(name: str, seed: int = 0) -> World:
    """Build a registered environment by name."""
    try:
        factory = ENVIRONMENTS[name]
    except KeyError:
        known = ", ".join(sorted(ENVIRONMENTS))
        raise KeyError(f"unknown environment {name!r}; known: {known}") from None
    return factory(seed)
