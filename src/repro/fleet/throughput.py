"""Fleet-vs-sequential throughput comparison.

The fleet's reason to exist is wall-clock: one batched fleet doing the
*same* protocol as N independent sequential runs — same env steps, same
training-sample throughput, same network — should be several times
faster because every NN pass serves N states and every update carries
``N * batch_size`` samples.  :func:`compare_throughput` runs both sides
under identical workloads and reports the speedup; the benchmark
harness (``benchmarks/test_fleet_throughput.py``) asserts the floor and
persists the artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.episode import NavigationEnv
from repro.env.generators import make_environment
from repro.fleet.runner import train_agent_fleet
from repro.fleet.vec_env import VecNavigationEnv
from repro.nn.alexnet import build_network, scaled_drone_net_spec
from repro.rl.agent import EpsilonSchedule, QLearningAgent
from repro.rl.experiment import train_agent
from repro.rl.transfer import config_by_name

__all__ = ["ThroughputComparison", "compare_throughput"]


@dataclass(frozen=True)
class ThroughputComparison:
    """Wall-clock comparison of fleet vs sequential training."""

    num_envs: int
    steps_per_env: int
    total_env_steps: int
    sequential_seconds: float
    fleet_seconds: float

    @property
    def sequential_steps_per_second(self) -> float:
        """Baseline throughput."""
        return self.total_env_steps / self.sequential_seconds

    @property
    def fleet_steps_per_second(self) -> float:
        """Fleet throughput."""
        return self.total_env_steps / self.fleet_seconds

    @property
    def speedup(self) -> float:
        """Fleet steps/sec over sequential steps/sec."""
        return self.sequential_seconds / self.fleet_seconds


def _make_agent(config_name: str, image_side: int, seed: int) -> QLearningAgent:
    spec = scaled_drone_net_spec(input_side=image_side)
    network = build_network(spec, seed=seed)
    return QLearningAgent(
        network,
        config=config_by_name(config_name),
        epsilon=EpsilonSchedule(1.0, 0.1, 500),
        seed=seed,
    )


def compare_throughput(
    env_names: tuple[str, ...] = (
        "indoor-apartment",
        "indoor-house",
        "outdoor-forest",
        "outdoor-town",
    ),
    num_envs: int = 16,
    steps_per_env: int = 48,
    image_side: int = 16,
    train_every: int = 2,
    config_name: str = "L4",
    seed: int = 0,
    max_episode_steps: int = 200,
) -> ThroughputComparison:
    """Time N sequential training runs against one N-wide fleet run.

    Both sides execute ``num_envs * steps_per_env`` environment steps
    with online training every ``train_every`` (per-env) steps; the
    fleet's scaled batch carries the same number of gradient samples as
    the baseline's many small batches.
    """
    if num_envs <= 0 or steps_per_env <= 0:
        raise ValueError("num_envs and steps_per_env must be positive")

    def build_env(i: int) -> NavigationEnv:
        world = make_environment(env_names[i % len(env_names)], seed=seed + i)
        camera = DepthCamera(
            width=image_side, height=image_side, noise=StereoNoiseModel()
        )
        return NavigationEnv(world, camera=camera, seed=seed + i + 7)

    # Construction (networks, worlds) happens outside both timed
    # windows — the comparison measures stepping/training throughput,
    # not setup cost.
    sequential_agents = [
        _make_agent(config_name, image_side, seed + i) for i in range(num_envs)
    ]
    sequential_envs = [build_env(i) for i in range(num_envs)]
    start = time.perf_counter()
    for agent, env in zip(sequential_agents, sequential_envs):
        train_agent(
            agent,
            env,
            iterations=steps_per_env,
            train_every=train_every,
            max_episode_steps=max_episode_steps,
        )
    sequential_seconds = time.perf_counter() - start

    # Fleet: one shared agent over the same worlds.
    vec_env = VecNavigationEnv(
        [build_env(i) for i in range(num_envs)],
        max_episode_steps=max_episode_steps,
    )
    agent = _make_agent(config_name, image_side, seed)
    start = time.perf_counter()
    train_agent_fleet(
        agent,
        vec_env,
        iterations=steps_per_env,
        train_every=train_every,
    )
    fleet_seconds = time.perf_counter() - start

    return ThroughputComparison(
        num_envs=num_envs,
        steps_per_env=steps_per_env,
        total_env_steps=num_envs * steps_per_env,
        sequential_seconds=sequential_seconds,
        fleet_seconds=fleet_seconds,
    )
