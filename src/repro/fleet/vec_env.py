"""Vectorized multi-environment stepping.

:class:`VecNavigationEnv` steps N heterogeneous navigation environments
(mixed indoor/outdoor worlds, per-env seeds) as one batch:

* drone kinematics, collision bookkeeping and RNG streams stay per-env
  (each env owns exactly the state a sequential
  :class:`~repro.env.episode.NavigationEnv` would), so a fleet rollout
  is *bitwise-identical* to N seeded sequential rollouts;
* the expensive math — ray-segment/circle intersection, clearance
  queries, the 2.5-D depth projection, stereo-noise application and the
  centre-window reward — runs batched over the fleet.  The kernels in
  :mod:`repro.env.geometry` are elementwise (plus exact ``min``
  reductions), so batching does not change a single bit of the output.

Environments are grouped by world class (``world.name``): padding
obstacle arrays to a common width is only paid within a group, so an
indoor apartment is never padded out to a 70-tree forest.

Auto-reset semantics: a crashed env is respawned in the same step and
its fresh observation returned as the next state; truncated episodes
(``max_episode_steps``) respawn *without* ``done`` and flush the open
flight segment, matching the sequential training loop.  Either way the
transition's own next-state survives in ``info["final_observation"]``.
"""

from __future__ import annotations

import numpy as np

from repro.env.camera import DepthCamera, StereoNoiseModel
from repro.env.episode import NavigationEnv, Transition
from repro.env.generators import make_environment
from repro.env.geometry import (
    circle_distances,
    intersect_circles,
    intersect_segments,
    segment_distances,
)
from repro.faults.injector import FAULTS, FaultInjectionError
from repro.obs.probes import PROBE
from repro.parallel.pool import resolve_workers

__all__ = [
    "FleetRenderer",
    "FleetCollider",
    "VecNavigationEnv",
    "group_horizontal",
]


def _pad_stack(arrays: list[np.ndarray], width: int) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length (S_i, ...) arrays into (N, S_max, ...) + mask."""
    n = len(arrays)
    trailing = arrays[0].shape[1:]
    out = np.zeros((n, width) + trailing)
    mask = np.zeros((n, width), dtype=bool)
    for i, arr in enumerate(arrays):
        out[i, : arr.shape[0]] = arr
        mask[i, : arr.shape[0]] = True
    return out, mask


class _WorldGroup:
    """Padded obstacle geometry for the envs sharing one world class."""

    def __init__(self, env_indices: list[int], envs: list[NavigationEnv]):
        self.env_indices = np.asarray(env_indices, dtype=np.intp)
        members = [envs[i] for i in env_indices]
        seg = [env.world.caster.segment_arrays for env in members]
        circ = [env.world.caster.circle_arrays for env in members]
        s_max = max(a.shape[0] for a, _ in seg)
        c_max = max(c.shape[0] for c, _ in circ)
        self.seg_a, self.seg_mask = _pad_stack([a for a, _ in seg], s_max)
        self.seg_d, _ = _pad_stack([d for _, d in seg], s_max)
        if c_max:
            self.circ_c, self.circ_mask = _pad_stack([c for c, _ in circ], c_max)
            self.circ_r, _ = _pad_stack([r for _, r in circ], c_max)
        else:
            self.circ_c = self.circ_r = self.circ_mask = None
        boxes = [
            np.array(
                [[b.xmin, b.ymin, b.xmax, b.ymax] for b in env.world.boxes]
            ).reshape(-1, 4)
            for env in members
        ]
        b_max = max(b.shape[0] for b in boxes)
        if b_max:
            self.boxes, self.box_mask = _pad_stack(boxes, b_max)
        else:
            self.boxes = self.box_mask = None
        self.bounds = np.array(
            [
                [env.world.bounds.xmin, env.world.bounds.ymin,
                 env.world.bounds.xmax, env.world.bounds.ymax]
                for env in members
            ]
        )
        self.max_range = np.array([env.world.max_range for env in members])


def _build_groups(
    envs: list[NavigationEnv],
) -> tuple[list[_WorldGroup], np.ndarray, np.ndarray]:
    """Group envs by world class; returns (groups, group_id, group_row)."""
    by_name: dict[str, list[int]] = {}
    for i, env in enumerate(envs):
        by_name.setdefault(env.world.name, []).append(i)
    groups = []
    group_id = np.zeros(len(envs), dtype=np.intp)
    group_row = np.zeros(len(envs), dtype=np.intp)
    for gid, indices in enumerate(by_name.values()):
        groups.append(_WorldGroup(indices, envs))
        for row, i in enumerate(indices):
            group_id[i] = gid
            group_row[i] = row
    return groups, group_id, group_row


def group_horizontal(
    group: _WorldGroup,
    origins: np.ndarray,
    dirs: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Ray-intersection distances for one world group's members.

    The renderer's heaviest kernel, extracted as a pure function of the
    group's static padded geometry plus the member poses so the serial
    loop and the process-pool path run the *same* code on the *same*
    inputs — which is what makes parallel rendering bitwise identical.
    ``origins``/``dirs`` are the (M, 2)/(M, W, 2) rows for the group's
    members, ``rows`` their rows within the group's padded arrays.
    """
    width = dirs.shape[1]
    max_range = group.max_range[rows]
    best = np.broadcast_to(max_range[:, None], (len(origins), width)).copy()
    best = np.minimum(
        best,
        intersect_segments(
            origins,
            dirs,
            group.seg_a[rows],
            group.seg_d[rows],
            group.seg_mask[rows],
        ),
    )
    if group.circ_c is not None:
        best = np.minimum(
            best,
            intersect_circles(
                origins,
                dirs,
                group.circ_c[rows],
                group.circ_r[rows],
                group.circ_mask[rows],
            ),
        )
    return np.clip(best, 1e-9, max_range[:, None])


class FleetRenderer:
    """Batched depth-camera rendering across many worlds.

    One intersection + projection + noise pass serves any subset of the
    fleet.  Per-env transcendentals (heading cos/sin) and the per-env
    noise *draws* stay in a small loop so every env consumes its RNG
    stream exactly as the sequential renderer would; all the remaining
    arithmetic is batched and bitwise-identical.

    With a :class:`~repro.parallel.dispatch.GroupExecutor` attached
    (``VecNavigationEnv(workers=...)``), multi-group intersection
    kernels run on the process pool — the geometry ships to workers
    once, only poses travel per call, and the per-env noise draws stay
    in the coordinator in index order, so parallel rendering consumes
    every RNG stream exactly as the serial path does.
    """

    def __init__(
        self,
        envs: list[NavigationEnv],
        groups: list[_WorldGroup] | None = None,
        group_id: np.ndarray | None = None,
        group_row: np.ndarray | None = None,
    ):
        if not envs:
            raise ValueError("need at least one environment")
        camera = envs[0].camera
        for env in envs[1:]:
            if env.camera != camera:
                raise ValueError(
                    "fleet rendering requires identical camera configurations"
                )
        self.envs = envs
        self.camera = camera
        if groups is None:
            groups, group_id, group_row = _build_groups(envs)
        self._groups = groups
        self._group_id = group_id
        self._group_row = group_row
        self._max_range = np.array([env.world.max_range for env in envs])
        self._planes = np.stack(
            [camera.plane_depths(env.world.is_indoor) for env in envs]
        )  # (N, H, 1)
        self._col_angles = camera.column_angles()
        self._executor = None

    def attach_executor(self, executor) -> None:
        """Route multi-group intersection kernels through a pool executor."""
        self._executor = executor

    def render(self, indices: list[int]) -> list[np.ndarray]:
        """Render the current pose of each env in ``indices``.

        Returns one (1, H, W) normalised observation per index, bitwise
        equal to what each env's own ``_observe()`` would produce.
        """
        if not indices:
            return []
        with PROBE.span("vec_env.render", envs=len(indices)):
            return self._render(indices)

    def _render(self, indices: list[int]) -> list[np.ndarray]:
        idx = np.asarray(indices, dtype=np.intp)
        width = self._col_angles.shape[0]
        origins = np.array(
            [self.envs[i].drone.pose.position() for i in indices]
        )  # (M, 2)
        # Heading-dependent ray directions per env, at the sequential
        # path's exact array shape (transcendentals can be sensitive to
        # SIMD batch layout; everything downstream is elementwise-safe).
        dirs = np.empty((len(indices), width, 2))
        for row, i in enumerate(indices):
            angles = self.envs[i].drone.pose.heading + self._col_angles
            dirs[row, :, 0] = np.cos(angles)
            dirs[row, :, 1] = np.sin(angles)
        by_group: dict[int, list[int]] = {}
        for k, i in enumerate(indices):
            by_group.setdefault(int(self._group_id[i]), []).append(k)
        horizontal = np.empty((len(indices), width))
        items = [
            (
                gid,
                ks,
                np.array([self._group_row[indices[k]] for k in ks], dtype=np.intp),
            )
            for gid, ks in by_group.items()
        ]
        if self._executor is not None and len(items) > 1:
            # Pool path: one task per group, same kernel on the same
            # inputs — only the process it runs in changes.
            tasks = [
                (gid, origins[ks], dirs[ks], rows) for gid, ks, rows in items
            ]
            for (gid, ks, rows), result in zip(
                items, self._executor.render(tasks)
            ):
                horizontal[ks] = result
        else:
            for gid, ks, rows in items:
                horizontal[ks] = group_horizontal(
                    self._groups[gid], origins[ks], dirs[ks], rows
                )
        max_range = self._max_range[idx]
        depth = self.camera.project(
            horizontal, self._planes[idx], max_range[:, None, None]
        )  # (M, H, W)
        noise = self.camera.noise
        if noise is not None:
            # Per-env draws keep each env's RNG stream identical to the
            # sequential renderer's; the arithmetic is batched.
            if noise.disparity_sigma_px != 0.0:
                draws = np.stack(
                    [
                        self.envs[i].rng.normal(0.0, 1.0, size=depth.shape[1:])
                        for i in indices
                    ]
                )
                depth = depth + draws * noise.sigma(depth)
            depth = np.clip(depth, 0.0, max_range[:, None, None])
        normalized = depth / max_range[:, None, None]
        return [normalized[row][None, :, :] for row in range(len(indices))]


class FleetCollider:
    """Batched collision resolution across many worlds.

    Mirrors :meth:`repro.env.world.World.clearance` — out-of-bounds and
    inside-a-box positions report zero clearance, everything else the
    distance to the nearest obstacle surface — but answers for the
    whole fleet in one padded call per world group.  Bitwise-identical
    to per-env queries.
    """

    def __init__(self, envs: list[NavigationEnv], groups: list[_WorldGroup]):
        self.envs = envs
        self._groups = groups
        self._radii = np.array([env.drone.radius for env in envs])

    def clearances(self, points: np.ndarray) -> np.ndarray:
        """Per-env clearance at ``points`` (N, 2)."""
        out = np.empty(points.shape[0])
        for group in self._groups:
            p = points[group.env_indices]
            x, y = p[:, 0], p[:, 1]
            blocked = ~(
                (group.bounds[:, 0] <= x)
                & (x <= group.bounds[:, 2])
                & (group.bounds[:, 1] <= y)
                & (y <= group.bounds[:, 3])
            )
            if group.boxes is not None:
                in_box = (
                    (group.boxes[:, :, 0] <= x[:, None])
                    & (x[:, None] <= group.boxes[:, :, 2])
                    & (group.boxes[:, :, 1] <= y[:, None])
                    & (y[:, None] <= group.boxes[:, :, 3])
                    & group.box_mask
                ).any(axis=1)
                blocked = blocked | in_box
            dist = segment_distances(
                p, group.seg_a, group.seg_d, group.seg_mask
            ).min(axis=-1)
            if group.circ_c is not None:
                dist = np.minimum(
                    dist,
                    circle_distances(
                        p, group.circ_c, group.circ_r, group.circ_mask
                    ).min(axis=-1),
                )
            out[group.env_indices] = np.where(blocked, 0.0, dist)
        return out

    def collisions(self, points: np.ndarray) -> np.ndarray:
        """Per-env crash flags at ``points`` (N, 2)."""
        return self.clearances(points) < self._radii


class VecNavigationEnv:
    """Steps N navigation environments as one batch (gym VecEnv style).

    Parameters
    ----------
    envs:
        The member environments.  All must share one camera
        configuration; worlds, seeds, reward configs and drones may
        differ freely.
    max_episode_steps:
        When set, episodes are truncated (respawn without ``done``)
        after this many steps — the sequential training loop's
        semantics.
    auto_reset:
        Respawn crashed/truncated envs inside :meth:`step` so the
        returned batch is always ready for the next action.
    workers:
        Process-pool size for the renderer's per-group intersection
        kernels (``"auto"`` = one per CPU, capped at the number of
        world groups).  ``1`` (default) keeps rendering serial; any
        setting is bitwise-identical — the pool runs the same kernel
        on the same inputs, and every RNG draw stays in the
        coordinator in env-index order.
    """

    def __init__(
        self,
        envs: list[NavigationEnv],
        max_episode_steps: int | None = None,
        auto_reset: bool = True,
        workers: int | str = 1,
    ):
        if not envs:
            raise ValueError("need at least one environment")
        if max_episode_steps is not None and max_episode_steps <= 0:
            raise ValueError("max_episode_steps must be positive")
        self.envs = envs
        self.num_envs = len(envs)
        self.max_episode_steps = max_episode_steps
        self.auto_reset = auto_reset
        self.num_actions = envs[0].num_actions
        groups, group_id, group_row = _build_groups(envs)
        self.renderer = FleetRenderer(envs, groups, group_id, group_row)
        self.collider = FleetCollider(envs, groups)
        self.workers = resolve_workers(workers, tasks=len(groups))
        if self.workers > 1 and len(groups) > 1:
            from repro.parallel.dispatch import GroupExecutor

            self.renderer.attach_executor(GroupExecutor(groups, self.workers))
        self.episode_steps = np.zeros(self.num_envs, dtype=np.int64)
        self.episode_counts = np.zeros(self.num_envs, dtype=np.int64)
        self.total_steps = 0
        # Centre-window rewards batch when every env shares the paper's
        # "mean" aggregation; other kinds fall back to per-env calls.
        config = envs[0].reward_config
        self._batch_rewards = config.kind == "mean" and all(
            env.reward_config == config for env in envs
        )
        if self._batch_rewards:
            h, w = envs[0].camera.height, envs[0].camera.width
            wh = max(int(round(h * config.window_fraction)), 1)
            ww = max(int(round(w * config.window_fraction)), 1)
            top, left = (h - wh) // 2, (w - ww) // 2
            self._window = (slice(top, top + wh), slice(left, left + ww))
        # Last served frame per env — the hold-last-frame recovery
        # target for injected sensor dropout (chaos runs only).
        self._last_frames: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_names(
        cls,
        names: list[str],
        seeds: list[int] | None = None,
        image_side: int = 16,
        noise: bool = True,
        max_episode_steps: int | None = None,
        auto_reset: bool = True,
        workers: int | str = 1,
    ) -> "VecNavigationEnv":
        """Build a fleet from environment names (cycled) and seeds."""
        if not names:
            raise ValueError("need at least one environment name")
        if seeds is None:
            seeds = list(range(len(names)))
        camera_noise = StereoNoiseModel() if noise else None
        envs = []
        for i, seed in enumerate(seeds):
            name = names[i % len(names)]
            world = make_environment(name, seed=seed)
            camera = DepthCamera(
                width=image_side, height=image_side, noise=camera_noise
            )
            envs.append(NavigationEnv(world, camera=camera, seed=seed + 7))
        return cls(
            envs, max_episode_steps=max_episode_steps, auto_reset=auto_reset,
            workers=workers,
        )

    @property
    def observation_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of one env's observation."""
        return self.envs[0].observation_shape

    def reset(self) -> np.ndarray:
        """Respawn every env; returns the (N, C, H, W) state batch."""
        for env in self.envs:
            env.respawn()
        observations = self.renderer.render(list(range(self.num_envs)))
        for env, obs in zip(self.envs, observations):
            env.set_observation(obs)
        self.episode_steps[:] = 0
        return np.stack(observations)

    def _batched_rewards(self, rendered: dict[int, np.ndarray]) -> dict[int, float]:
        """Centre-window mean reward for every rendered observation."""
        if not self._batch_rewards or not rendered:
            return {}
        keys = list(rendered)
        stack = np.stack([rendered[i][0] for i in keys])  # (M, H, W)
        values = stack[:, self._window[0], self._window[1]].mean(axis=(1, 2))
        return {i: float(v) for i, v in zip(keys, values)}

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Apply one action per env; returns (states, rewards, dones, infos).

        ``states`` is the batch to act on next: for crashed or truncated
        envs it is the fresh post-respawn observation (``auto_reset``),
        with the transition's own next-state preserved in
        ``info["final_observation"]`` (the terminal frame on a crash,
        the rendered observation on truncation — ``done`` stays False
        for truncation, matching the sequential training loop).
        """
        actions = np.asarray(actions)
        if actions.shape != (self.num_envs,):
            raise ValueError(
                f"expected {self.num_envs} actions, got shape {actions.shape}"
            )
        if FAULTS.enabled:
            inj = FAULTS.injector
            inj.note_step()
            if inj.raise_now():
                inj.record(
                    "env.exception",
                    target="vec_env",
                    detail=f"scheduled raise at fleet step {inj.steps}",
                )
                raise FaultInjectionError(
                    f"injected environment fault at fleet step {inj.steps}"
                )
        with PROBE.span("vec_env.physics", envs=self.num_envs):
            physics = [
                env.advance(int(a)) for env, a in zip(self.envs, actions)
            ]
            crashed = self.collider.collisions(
                np.array([[p["pose"].x, p["pose"].y] for p in physics])
            )
            for env, p, c in zip(self.envs, physics, crashed):
                env.resolve_collision(p, crashed=bool(c))
        # Crashed envs respawn *before* the fleet-wide render, so alive
        # next-states and respawn states come out of one batched call.
        # Per-env RNG stream order matches the sequential flow: a crash
        # renders nothing, then reset draws a pose and a noise frame.
        if self.auto_reset:
            for i, p in enumerate(physics):
                if p["crashed"]:
                    self.envs[i].respawn()
            render_idx = list(range(self.num_envs))
        else:
            render_idx = [i for i, p in enumerate(physics) if not p["crashed"]]
        rendered = dict(zip(render_idx, self.renderer.render(render_idx)))
        batched_rewards = self._batched_rewards(rendered)
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: list[dict] = []
        states: list[np.ndarray | None] = [None] * self.num_envs
        truncated_respawn = []
        for i, env in enumerate(self.envs):
            obs, reward, done, info = env.complete_step(
                physics[i],
                None if physics[i]["crashed"] else rendered.get(i),
                reward=batched_rewards.get(i),
            )
            rewards[i] = reward
            dones[i] = done
            states[i] = obs
            self.episode_steps[i] += 1
            # == not >=: without auto-reset an over-limit episode keeps
            # running, and truncation must fire (and count) only once.
            info["truncated"] = bool(
                not done
                and self.max_episode_steps is not None
                and self.episode_steps[i] == self.max_episode_steps
            )
            if done or info["truncated"]:
                # The transition's own next-state: the terminal frame on
                # a crash (camera in the wall), the rendered observation
                # on truncation.  Survives the auto-reset overwrite.
                info["final_observation"] = obs
                self.episode_counts[i] += 1
            if done and self.auto_reset:
                env.set_observation(rendered[i])
                states[i] = rendered[i]
                self.episode_steps[i] = 0
            elif info["truncated"] and self.auto_reset:
                truncated_respawn.append(i)
            infos.append(info)
        if truncated_respawn:
            for i in truncated_respawn:
                self.envs[i].respawn()
                self.episode_steps[i] = 0
            for i, obs in zip(
                truncated_respawn, self.renderer.render(truncated_respawn)
            ):
                self.envs[i].set_observation(obs)
                states[i] = obs
        self.total_steps += self.num_envs
        if PROBE.enabled:
            PROBE.count(
                "repro_vecenv_steps_total",
                self.num_envs,
                help="Per-env steps taken by the fleet.",
            )
            PROBE.count(
                "repro_vecenv_crashes_total",
                int(np.count_nonzero(dones)),
                help="Crashes (done transitions) across the fleet.",
            )
            PROBE.count(
                "repro_vecenv_episodes_total",
                sum(
                    1
                    for i, info in enumerate(infos)
                    if dones[i] or info["truncated"]
                ),
                help="Episodes ended (crash or truncation) across the fleet.",
            )
        batch = np.stack(states)
        if FAULTS.enabled:
            batch = self._chaos_sensors(batch)
        return batch, rewards, dones, infos

    def _chaos_sensors(self, batch: np.ndarray) -> np.ndarray:
        """Inject sensor dropout, detect dead frames, hold last good.

        A dropped sensor serves an all-zero frame.  Detection is the
        dead-frame check a flight stack would run (an all-zero camera
        frame is physically implausible — the renderer always emits
        noise); recovery holds the env's last good frame so the policy
        acts on stale-but-sane input.  The first step has no history,
        so the dead frame is served as-is (injected, detected, not
        recovered).
        """
        inj = FAULTS.injector
        if inj.plan.sensor_dropout_rate > 0.0:
            batch = batch.copy()
            for i in range(self.num_envs):
                if not inj.sensor_dropout(i):
                    continue
                record = inj.record(
                    "sensor.dropout",
                    target=f"env{i}",
                    detail=f"fleet step {inj.steps}",
                )
                batch[i] = 0.0
                if not np.any(batch[i]):  # dead-frame check
                    inj.mark_detected(record)
                    if self._last_frames is not None:
                        batch[i] = self._last_frames[i]
                        inj.mark_recovered(record, "hold-last-frame")
        self._last_frames = batch.copy()
        return batch

    # ------------------------------------------------------------------
    # Fleet-level metrics
    # ------------------------------------------------------------------
    @property
    def safe_flight_distances(self) -> np.ndarray:
        """Per-env safe flight distance."""
        return np.array([e.tracker.safe_flight_distance for e in self.envs])

    @property
    def crash_counts(self) -> np.ndarray:
        """Per-env crash count."""
        return np.array([e.tracker.crash_count for e in self.envs])

    def env_classes(self) -> list[str]:
        """Per-env world class name (e.g. ``indoor-apartment``)."""
        return [env.world.name for env in self.envs]

    def sfd_by_class(self) -> dict[str, float]:
        """Mean safe flight distance per environment class."""
        by_class: dict[str, list[float]] = {}
        for env in self.envs:
            by_class.setdefault(env.world.name, []).append(
                env.tracker.safe_flight_distance
            )
        return {name: float(np.mean(v)) for name, v in sorted(by_class.items())}

    def make_transitions(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        dones: np.ndarray,
        next_states: np.ndarray,
        infos: list[dict],
    ) -> list[Transition]:
        """Assemble per-env transitions from one batched step.

        For crashed and truncated envs the stored next-state comes from
        ``info["final_observation"]``, exactly as the sequential loop
        stores it — never the auto-reset respawn observation.
        """
        transitions = []
        for i in range(self.num_envs):
            if dones[i] or infos[i]["truncated"]:
                next_state = infos[i]["final_observation"]
            else:
                next_state = next_states[i]
            transitions.append(
                Transition(
                    states[i],
                    int(actions[i]),
                    float(rewards[i]),
                    next_state,
                    bool(dones[i]),
                )
            )
        return transitions
