"""Fleet engine: vectorized multi-environment simulation with batched
agent inference.

The paper's core argument is throughput under real-time constraints
(Fig. 13), yet a naive reproduction steps one environment with one agent
at a time.  This subsystem scales the simulation side the same way the
accelerator scales the compute side — by batching:

* :class:`VecNavigationEnv` steps N heterogeneous environments (mixed
  indoor/outdoor worlds, per-env seeds) in one call, with vectorised
  depth-camera rendering and auto-reset semantics.  A fleet rollout is
  bitwise-identical to N seeded sequential rollouts.
* :func:`train_agent_fleet` runs online RL with one shared agent: one
  forward pass selects all N actions
  (:meth:`~repro.rl.agent.QLearningAgent.act_batch`), one scaled update
  (:meth:`~repro.rl.agent.QLearningAgent.train_step_batch`) replaces N
  small ones, and one replay buffer pools the fleet's experience with
  per-env episode accounting.
* :class:`FleetScheduler` drives pipelined rollout/train rounds
  (rollout chunks interleave with the training due between them, on a
  double-buffered weight snapshot, so a pipelined platform overlaps
  the two — the measured hidden fraction is reported) plus a greedy
  evaluate phase, measures throughput (steps/sec, episodes/sec, SFD
  per environment class) and projects the load onto the paper
  platform's FPS / latency / energy / endurance model via
  :func:`repro.perf.traffic.project_fleet_load` — including what K
  sharded arrays sustain when the agent's backend shards.

``python -m repro fleet`` exposes the scheduler from the shell;
``benchmarks/test_fleet_throughput.py`` proves the fleet beats the
sequential baseline by the required margin.
"""

from repro.fleet.vec_env import FleetRenderer, VecNavigationEnv
from repro.fleet.runner import FleetTrainingResult, train_agent_fleet
from repro.fleet.scheduler import FleetReport, FleetScheduler, RoundStats
from repro.fleet.throughput import ThroughputComparison, compare_throughput

__all__ = [
    "FleetRenderer",
    "VecNavigationEnv",
    "FleetTrainingResult",
    "train_agent_fleet",
    "FleetReport",
    "FleetScheduler",
    "RoundStats",
    "ThroughputComparison",
    "compare_throughput",
]
