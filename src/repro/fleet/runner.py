"""Fleet training loop: one agent, many environments, batched compute.

``train_agent_fleet`` is the fleet counterpart of
:func:`repro.rl.experiment.train_agent`: each fleet step selects actions
for all N environments with one forward pass
(:meth:`~repro.rl.agent.QLearningAgent.act_batch`), pushes all N
transitions into the shared replay buffer, and trains with one
``batch_size * N`` update instead of N small ones — the same gradient
throughput as N independent agents at a fraction of the per-call
overhead.  Episode accounting (learning curves, safe flight distance)
stays per-env.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.vec_env import VecNavigationEnv
from repro.rl.agent import QLearningAgent
from repro.rl.metrics import LearningCurves

__all__ = ["FleetTrainingResult", "scaled_train_batch", "train_agent_fleet"]


def scaled_train_batch(
    agent: QLearningAgent, num_envs: int, batch_scale: int | None = None
) -> int:
    """Validated fleet training-batch size: ``agent.batch_size * scale``.

    Shared by :func:`train_agent_fleet` and the scheduler so the
    replay-capacity check cannot diverge between entry points.
    """
    scale = num_envs if batch_scale is None else batch_scale
    if scale <= 0:
        raise ValueError("batch_scale must be positive")
    train_batch = agent.batch_size * scale
    if train_batch > agent.replay.capacity:
        raise ValueError(
            f"scaled train batch {train_batch} exceeds replay capacity "
            f"{agent.replay.capacity}; raise replay_capacity or lower "
            "batch_scale — training would otherwise never trigger"
        )
    return train_batch


@dataclass
class FleetTrainingResult:
    """Outcome of one fleet training run."""

    config_name: str
    environments: list[str]
    curves: list[LearningCurves]
    safe_flight_distances: list[float]
    crash_counts: list[int]
    episode_counts: list[int]
    iterations: int
    num_envs: int
    train_updates: int
    wall_seconds: float
    loss_curve: list[float] = field(repr=False, default_factory=list)
    final_state: dict[str, np.ndarray] = field(repr=False, default_factory=dict)

    @property
    def total_env_steps(self) -> int:
        """Environment steps executed across the fleet."""
        return self.iterations * self.num_envs

    @property
    def steps_per_second(self) -> float:
        """Fleet throughput in env steps per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.total_env_steps / self.wall_seconds

    @property
    def mean_safe_flight_distance(self) -> float:
        """Fleet-mean SFD."""
        return float(np.mean(self.safe_flight_distances))

    def final_rewards(self) -> list[float]:
        """Per-env tail-mean of the cumulative-reward curve."""
        return [c.final_reward() for c in self.curves]


def train_agent_fleet(
    agent: QLearningAgent,
    vec_env: VecNavigationEnv,
    iterations: int,
    train_every: int = 2,
    batch_scale: int | None = None,
    curves: list[LearningCurves] | None = None,
) -> FleetTrainingResult:
    """Run online RL for ``iterations`` fleet steps (N env steps each).

    ``train_every`` counts fleet steps, so with ``batch_scale = N``
    (default) the samples-per-env-step training throughput matches the
    sequential loop's.  Returns per-env curves plus fleet throughput.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if train_every <= 0:
        raise ValueError("train_every must be positive")
    n = vec_env.num_envs
    train_batch = scaled_train_batch(agent, n, batch_scale)
    if curves is None:
        curves = [
            LearningCurves(reward_window=max(iterations // 8, 10))
            for _ in range(n)
        ]
    if len(curves) != n:
        raise ValueError("need one LearningCurves per environment")
    loss_curve: list[float] = []
    train_updates = 0
    start = time.perf_counter()
    states = vec_env.reset()
    for step in range(iterations):
        actions = agent.act_batch(states)
        next_states, rewards, dones, infos = vec_env.step(actions)
        agent.observe_batch(
            vec_env.make_transitions(
                states, actions, rewards, dones, next_states, infos
            )
        )
        loss = None
        if len(agent.replay) >= train_batch and step % train_every == 0:
            loss = agent.train_step_batch(train_batch)
            loss_curve.append(loss)
            train_updates += 1
        for i in range(n):
            curves[i].record_step(float(rewards[i]), bool(dones[i]), loss)
        states = next_states
    wall = time.perf_counter() - start
    for env in vec_env.envs:
        env.tracker.flush()
    return FleetTrainingResult(
        config_name=agent.config.name,
        environments=vec_env.env_classes(),
        curves=curves,
        safe_flight_distances=[float(v) for v in vec_env.safe_flight_distances],
        crash_counts=[int(v) for v in vec_env.crash_counts],
        episode_counts=[int(v) for v in vec_env.episode_counts],
        iterations=iterations,
        num_envs=n,
        train_updates=train_updates,
        wall_seconds=wall,
        loss_curve=loss_curve,
        final_state=agent.network.state_dict(),
    )
