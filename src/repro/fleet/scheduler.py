"""Fleet scheduler: rollout → train → evaluate rounds with throughput
accounting.

:class:`FleetScheduler` drives a :class:`~repro.fleet.vec_env.VecNavigationEnv`
and a shared :class:`~repro.rl.agent.QLearningAgent` through repeated
rounds:

1. **rollout** — collect experience from all N environments with
   batched action selection, training online every ``train_every``
   fleet steps;
2. **train** — extra replay-only updates (experience re-use, no env
   stepping);
3. **evaluate** — greedy batched rollout measuring safe flight distance
   per environment class, without training.

Each round records wall-clock throughput (env steps/sec, episodes/sec,
training iterations/sec).  :meth:`FleetScheduler.project_load` feeds the
measured rates into :func:`repro.perf.traffic.project_fleet_load`, so a
simulated fleet's demand maps onto the paper platform's FPS / latency /
energy / endurance model — the "heavy traffic" question made concrete.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.runner import scaled_train_batch
from repro.fleet.vec_env import VecNavigationEnv
from repro.perf.traffic import (
    FleetLoadProjection,
    TrafficSimulator,
    project_fleet_load,
)
from repro.rl.agent import QLearningAgent

__all__ = [
    "RoundStats",
    "FleetReport",
    "FleetScheduler",
    "FleetObservationCost",
]


@dataclass(frozen=True)
class FleetObservationCost:
    """Systolic-array cost of one fleet observation batch.

    Produced by :meth:`FleetScheduler.cost_observation_batch`: the
    whole fleet's observations go through the functional systolic fast
    path in one batched call per layer, yielding both the Q values the
    array would produce and the cycles it would charge — the
    accelerator-in-the-loop precursor.
    """

    num_envs: int
    q_values: np.ndarray
    layer_cycles: dict[str, int]
    total_cycles: int
    array_seconds: float


@dataclass(frozen=True)
class RoundStats:
    """Throughput and task metrics of one scheduler round."""

    round_index: int
    env_steps: int
    episodes: int
    train_updates: int
    rollout_seconds: float
    train_seconds: float
    eval_seconds: float
    mean_loss: float
    eval_sfd_by_class: dict[str, float]

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time of the round."""
        return self.rollout_seconds + self.train_seconds + self.eval_seconds

    @property
    def steps_per_second(self) -> float:
        """Env steps per second over the whole round."""
        return self.env_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        """Completed episodes per second over the whole round."""
        return self.episodes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def train_iterations_per_second(self) -> float:
        """Training updates per second over the whole round."""
        return (
            self.train_updates / self.wall_seconds if self.wall_seconds else 0.0
        )


@dataclass
class FleetReport:
    """Aggregated outcome of a scheduler run."""

    num_envs: int
    config_name: str
    rounds: list[RoundStats] = field(default_factory=list)
    sfd_by_class: dict[str, float] = field(default_factory=dict)
    crash_counts: list[int] = field(default_factory=list)

    @property
    def total_env_steps(self) -> int:
        """Env steps across all rounds."""
        return sum(r.env_steps for r in self.rounds)

    @property
    def total_episodes(self) -> int:
        """Episodes completed across all rounds."""
        return sum(r.episodes for r in self.rounds)

    @property
    def total_train_updates(self) -> int:
        """Training updates across all rounds."""
        return sum(r.train_updates for r in self.rounds)

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time across all rounds."""
        return sum(r.wall_seconds for r in self.rounds)

    @property
    def steps_per_second(self) -> float:
        """Aggregate env-step throughput."""
        return self.total_env_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        """Aggregate episode throughput."""
        return self.total_episodes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def train_iterations_per_second(self) -> float:
        """Aggregate training-update throughput."""
        return (
            self.total_train_updates / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )


class FleetScheduler:
    """Drives rollout → train → evaluate rounds over a fleet.

    Parameters
    ----------
    agent:
        The shared Q-learning agent (its ``config`` names the transfer
        topology, which also selects the accelerator cost model for
        load projection).
    vec_env:
        The environment fleet.
    train_every:
        Online-training cadence during rollout, in fleet steps.
    extra_train_updates:
        Replay-only updates in each round's train phase.
    eval_steps:
        Greedy fleet steps in each round's evaluate phase (0 disables).
    batch_scale:
        Training-batch multiplier (default: fleet width), so one update
        carries ``agent.batch_size * batch_scale`` samples.
    """

    def __init__(
        self,
        agent: QLearningAgent,
        vec_env: VecNavigationEnv,
        train_every: int = 2,
        extra_train_updates: int = 0,
        eval_steps: int = 0,
        batch_scale: int | None = None,
    ):
        if train_every <= 0:
            raise ValueError("train_every must be positive")
        if extra_train_updates < 0 or eval_steps < 0:
            raise ValueError("phase sizes cannot be negative")
        self.agent = agent
        self.vec_env = vec_env
        self.train_every = train_every
        self.extra_train_updates = extra_train_updates
        self.eval_steps = eval_steps
        self.train_batch = scaled_train_batch(agent, vec_env.num_envs, batch_scale)
        self._states: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _rollout(self, steps: int) -> tuple[int, int, int, list[float], float]:
        """Collect ``steps`` fleet steps with online training."""
        if self._states is None:
            self._states = self.vec_env.reset()
        states = self._states
        episodes = 0
        updates = 0
        losses: list[float] = []
        start = time.perf_counter()
        for step in range(steps):
            actions = self.agent.act_batch(states)
            next_states, rewards, dones, infos = self.vec_env.step(actions)
            self.agent.observe_batch(
                self.vec_env.make_transitions(
                    states, actions, rewards, dones, next_states, infos
                )
            )
            episodes += sum(
                1 for i, info in enumerate(infos) if dones[i] or info["truncated"]
            )
            if (
                len(self.agent.replay) >= self.train_batch
                and step % self.train_every == 0
            ):
                losses.append(self.agent.train_step_batch(self.train_batch))
                updates += 1
            states = next_states
        self._states = states
        wall = time.perf_counter() - start
        return steps * self.vec_env.num_envs, episodes, updates, losses, wall

    def _train(self) -> tuple[int, list[float], float]:
        """Replay-only updates (no env stepping)."""
        losses: list[float] = []
        start = time.perf_counter()
        updates = 0
        for _ in range(self.extra_train_updates):
            if len(self.agent.replay) < self.train_batch:
                break
            losses.append(self.agent.train_step_batch(self.train_batch))
            updates += 1
        return updates, losses, time.perf_counter() - start

    def _evaluate(self) -> tuple[int, int, dict[str, float], float]:
        """Greedy rollout measuring per-class SFD over the eval window."""
        if self.eval_steps == 0:
            return 0, 0, {}, 0.0
        if self._states is None:
            self._states = self.vec_env.reset()
        states = self._states
        before_distance = [
            env.tracker.total_distance for env in self.vec_env.envs
        ]
        before_crashes = [env.tracker.crash_count for env in self.vec_env.envs]
        episodes = 0
        start = time.perf_counter()
        for _ in range(self.eval_steps):
            actions = self.agent.act_batch(states, greedy=True)
            states, _rewards, dones, infos = self.vec_env.step(actions)
            episodes += sum(
                1 for i, info in enumerate(infos) if dones[i] or info["truncated"]
            )
        self._states = states
        wall = time.perf_counter() - start
        by_class: dict[str, list[float]] = {}
        for i, env in enumerate(self.vec_env.envs):
            flown = env.tracker.total_distance - before_distance[i]
            crashes = env.tracker.crash_count - before_crashes[i]
            by_class.setdefault(env.world.name, []).append(
                flown / max(crashes, 1)
            )
        sfd = {name: float(np.mean(v)) for name, v in sorted(by_class.items())}
        return self.eval_steps * self.vec_env.num_envs, episodes, sfd, wall

    # ------------------------------------------------------------------
    def run(self, rounds: int, steps_per_round: int) -> FleetReport:
        """Execute ``rounds`` rollout/train/evaluate rounds."""
        if rounds <= 0 or steps_per_round <= 0:
            raise ValueError("rounds and steps_per_round must be positive")
        report = FleetReport(
            num_envs=self.vec_env.num_envs, config_name=self.agent.config.name
        )
        for index in range(rounds):
            steps, episodes, updates, losses, roll_wall = self._rollout(
                steps_per_round
            )
            extra_updates, extra_losses, train_wall = self._train()
            eval_steps, eval_episodes, eval_sfd, eval_wall = self._evaluate()
            losses = losses + extra_losses
            report.rounds.append(
                RoundStats(
                    round_index=index,
                    env_steps=steps + eval_steps,
                    episodes=episodes + eval_episodes,
                    train_updates=updates + extra_updates,
                    rollout_seconds=roll_wall,
                    train_seconds=train_wall,
                    eval_seconds=eval_wall,
                    mean_loss=float(np.mean(losses)) if losses else float("nan"),
                    eval_sfd_by_class=eval_sfd,
                )
            )
        # Close every env's final crash-free segment so it counts.
        for env in self.vec_env.envs:
            env.tracker.flush()
        report.sfd_by_class = self.vec_env.sfd_by_class()
        report.crash_counts = [int(v) for v in self.vec_env.crash_counts]
        return report

    def cost_observation_batch(self, fidelity: str = "fast") -> FleetObservationCost:
        """Cost one fleet observation batch on the functional array.

        Runs the current fleet states (N, C, H, W) through the agent's
        Q network with the systolic simulators doing the arithmetic:
        each Conv2D layer becomes one batched
        :meth:`~repro.systolic.FunctionalSystolicArray.conv2d` call and
        each Dense layer one batched FC pass, while the surrounding
        ReLU/pool/flatten layers execute functionally.  Because the
        fast path and :mod:`repro.nn.layers` share the same GEMM
        kernels, the returned ``q_values`` match ``network.predict``
        while ``total_cycles``/``array_seconds`` say what the paper's
        array would charge to serve the whole fleet one step.
        """
        from repro.nn.layers import Conv2D, Dense
        from repro.systolic import (
            FunctionalSystolicArray,
            PAPER_ARRAY,
            simulate_fc_forward,
        )

        if self._states is None:
            self._states = self.vec_env.reset()
        x = np.asarray(self._states, dtype=np.float64)
        sim = FunctionalSystolicArray(fidelity=fidelity)
        layer_cycles: dict[str, int] = {}

        def charge(layer, cycles: int) -> None:
            # Layer names are not guaranteed unique; never let a
            # duplicate silently swallow another layer's cycles.
            key = layer.name
            while key in layer_cycles:
                key += "'"
            layer_cycles[key] = cycles

        for layer in self.agent.network.layers:
            if isinstance(layer, Conv2D):
                x, stats = sim.conv2d(
                    x, layer.weight.value, stride=layer.stride, pad=layer.pad
                )
                x += layer.bias.value[None, :, None, None]
                charge(layer, stats.total_cycles)
            elif isinstance(layer, Dense):
                result = simulate_fc_forward(
                    x, layer.weight.value, fidelity=fidelity
                )
                x = result.output + layer.bias.value
                charge(layer, result.total_cycles)
            else:
                x = layer.forward(x)
        total = sum(layer_cycles.values())
        return FleetObservationCost(
            num_envs=self.vec_env.num_envs,
            q_values=x,
            layer_cycles=layer_cycles,
            total_cycles=total,
            array_seconds=PAPER_ARRAY.seconds(total),
        )

    def project_load(
        self,
        report: FleetReport,
        simulator: TrafficSimulator | None = None,
    ) -> FleetLoadProjection:
        """Project the measured fleet load onto the accelerator model.

        Builds a paper-scale :class:`TrafficSimulator` for the agent's
        transfer config unless one is supplied.  Raises ``ValueError``
        when the report measured no training iterations — there is no
        load to project, and a clamped rate would print a nonsense
        utilization/endurance instead of surfacing the problem.
        """
        if report.total_train_updates == 0:
            raise ValueError(
                "report measured zero training iterations; run more "
                "steps per round (the fleet needs train_batch "
                f"= {self.train_batch} transitions before it can train)"
            )
        if simulator is None:
            from repro.nn.alexnet import modified_alexnet_spec

            simulator = TrafficSimulator(modified_alexnet_spec(), self.agent.config)
        return project_fleet_load(
            simulator,
            num_envs=self.vec_env.num_envs,
            batch_size=self.train_batch,
            steps_per_second=report.steps_per_second,
            train_iterations_per_second=report.train_iterations_per_second,
        )
