"""Fleet scheduler: pipelined rollout/train rounds with throughput
accounting.

:class:`FleetScheduler` drives a :class:`~repro.fleet.vec_env.VecNavigationEnv`
and a shared :class:`~repro.rl.agent.QLearningAgent` through repeated
rounds.  Each round's rollout phase is an **interleaved pipeline**
rather than a strict rollout-then-train sequence: the rollout splits
into chunks of ``pipeline_chunk`` fleet steps, and the training updates
due after chunk *i* are eligible to overlap chunk *i+1*'s inference —
the deployed datapath serves a double-buffered weight snapshot (the
agent's :class:`~repro.backend.WeightBus`), so acting never has to wait
for the float optimizer.  Execution in-process stays serial and
deterministic (one RNG stream, fixed interleave order); the *measured*
chunk timings quantify the overlap a two-stage pipelined platform
would hide (``pipeline_overlap_fraction``).  A round ends with extra
replay-only updates and a greedy evaluation window, as before.

Each round records wall-clock throughput (env steps/sec, episodes/sec,
training iterations/sec) and — when the agent's execution backend
models hardware — the per-round accelerator cycle budget its forward
passes were charged (:class:`~repro.backend.StepCost` totals, drained
from the agent's ledger), including the multi-array fields when the
backend shards (:class:`~repro.backend.ShardCost`): shard count,
critical-path cycles, and the mean weight-snapshot staleness served.
Agents built with ``train_on_array=True`` additionally charge every
training update the whole-network training-step cost
(:mod:`repro.systolic.training`); the scheduler drains that second
ledger per round too (``training_cycles`` /
``training_cycles_per_update``), so the projection can report the
combined rollout+training utilization of the array(s).
:meth:`FleetScheduler.project_load` feeds the measured rates *and*
measured cycles into :func:`repro.perf.traffic.project_fleet_load`, so
a simulated fleet's demand maps onto the paper platform's FPS /
latency / energy / endurance model — the "heavy traffic" question made
concrete, now including what K arrays sustain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.faults.injector import FAULTS
from repro.fleet.runner import scaled_train_batch
from repro.fleet.vec_env import VecNavigationEnv
from repro.obs.probes import PROBE
from repro.parallel.memo import publish_memo_metrics
from repro.perf.traffic import (
    FleetLoadProjection,
    TrafficSimulator,
    project_fleet_load,
)
from repro.rl.agent import QLearningAgent
from repro.systolic.array import PAPER_ARRAY

__all__ = [
    "RoundStats",
    "FleetReport",
    "FleetScheduler",
]


@dataclass(frozen=True)
class RoundStats:
    """Throughput and task metrics of one scheduler round.

    The ``inference_*`` fields carry the accelerator cycle budget the
    agent's execution backend charged during the round's rollout and
    evaluation forward passes (zero under the float ``numpy`` backend,
    which has no hardware model).
    """

    round_index: int
    env_steps: int
    episodes: int
    train_updates: int
    rollout_seconds: float
    train_seconds: float
    eval_seconds: float
    mean_loss: float
    eval_sfd_by_class: dict[str, float]
    backend: str = "numpy"
    inference_states: int = 0
    inference_macs: int = 0
    inference_cycles: int = 0
    inference_array_seconds: float = 0.0
    #: Arrays the backend executed on (1 unless sharded).
    shards: int = 1
    #: Wall-clock cycles of the (possibly parallel) backend schedule.
    critical_path_cycles: int = 0
    #: Index of the array the round's wall clock waited on (0 unless
    #: sharded; argmax of the merged per-array cycle totals).
    critical_shard_index: int = 0
    #: Mean weight-snapshot staleness (in updates) of served states.
    sync_staleness: float = 0.0
    #: Fraction of rollout+train wall time a two-stage pipeline hides.
    pipeline_overlap_fraction: float = 0.0
    #: Array cycles charged for this round's on-array training updates
    #: (zero unless the agent trains on the array).
    training_cycles: int = 0
    training_macs: int = 0
    training_array_seconds: float = 0.0
    #: Wall-clock cycles of the (possibly sharded) training schedule.
    training_critical_path_cycles: int = 0
    #: Inter-array NoC cycles (gathers, broadcasts, stage hand-offs,
    #: gradient reductions) this round, inference + training.
    merge_cycles: int = 0
    #: Pipeline fill/drain bubble cycles this round (pipeline policy
    #: only; zero elsewhere).
    fill_drain_cycles: int = 0
    # --- fault-injection ledger (all zero unless a chaos run) ---------
    #: Faults injected / detected / recovered during this round.
    faults_injected: int = 0
    faults_detected: int = 0
    faults_recovered: int = 0
    #: Modelled array cycles spent on recovery (retries, health-check
    #: timeouts, rollbacks, guard recomputes) this round.
    fault_recovery_cycles: int = 0
    #: States served by the degraded numpy fallback this round.
    degraded_states: int = 0
    #: Arrays still alive at the end of the round (== ``shards`` unless
    #: a chaos run killed some).
    active_shards: int = 0

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time of the round."""
        return self.rollout_seconds + self.train_seconds + self.eval_seconds

    @property
    def training_cycles_per_update(self) -> float:
        """Modelled array cycles per training update this round."""
        return (
            self.training_cycles / self.train_updates if self.train_updates else 0.0
        )

    @property
    def cycles_per_env_step(self) -> float:
        """Modelled array cycles per env step served this round."""
        return self.inference_cycles / self.env_steps if self.env_steps else 0.0

    @property
    def critical_path_cycles_per_env_step(self) -> float:
        """Wall-clock array cycles per env step (max over shards)."""
        return (
            self.critical_path_cycles / self.env_steps if self.env_steps else 0.0
        )

    @property
    def steps_per_second(self) -> float:
        """Env steps per second over the whole round."""
        return self.env_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        """Completed episodes per second over the whole round."""
        return self.episodes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def train_iterations_per_second(self) -> float:
        """Training updates per second over the whole round."""
        return (
            self.train_updates / self.wall_seconds if self.wall_seconds else 0.0
        )


@dataclass
class FleetReport:
    """Aggregated outcome of a scheduler run."""

    num_envs: int
    config_name: str
    backend: str = "numpy"
    rounds: list[RoundStats] = field(default_factory=list)
    sfd_by_class: dict[str, float] = field(default_factory=dict)
    crash_counts: list[int] = field(default_factory=list)
    #: Full fault/recovery event log of a chaos run (empty otherwise);
    #: each entry is a :meth:`~repro.faults.injector.FaultRecord.as_dict`.
    fault_events: list[dict] = field(default_factory=list)

    @property
    def total_env_steps(self) -> int:
        """Env steps across all rounds."""
        return sum(r.env_steps for r in self.rounds)

    @property
    def total_episodes(self) -> int:
        """Episodes completed across all rounds."""
        return sum(r.episodes for r in self.rounds)

    @property
    def total_train_updates(self) -> int:
        """Training updates across all rounds."""
        return sum(r.train_updates for r in self.rounds)

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time across all rounds."""
        return sum(r.wall_seconds for r in self.rounds)

    @property
    def steps_per_second(self) -> float:
        """Aggregate env-step throughput."""
        return self.total_env_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        """Aggregate episode throughput."""
        return self.total_episodes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def train_iterations_per_second(self) -> float:
        """Aggregate training-update throughput."""
        return (
            self.total_train_updates / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )

    @property
    def total_inference_cycles(self) -> int:
        """Backend-charged array cycles across all rounds."""
        return sum(r.inference_cycles for r in self.rounds)

    @property
    def total_inference_states(self) -> int:
        """States served by the backend across all rounds."""
        return sum(r.inference_states for r in self.rounds)

    @property
    def inference_array_seconds(self) -> float:
        """Modelled array time of all backend forwards."""
        return sum(r.inference_array_seconds for r in self.rounds)

    @property
    def cycles_per_env_step(self) -> float:
        """Average modelled array cycles charged per env step."""
        return (
            self.total_inference_cycles / self.total_env_steps
            if self.total_env_steps
            else 0.0
        )

    @property
    def shards(self) -> int:
        """Arrays the backend executed on (max over rounds)."""
        return max((r.shards for r in self.rounds), default=1)

    @property
    def total_critical_path_cycles(self) -> int:
        """Wall-clock array cycles across all rounds (max over shards)."""
        return sum(r.critical_path_cycles for r in self.rounds)

    @property
    def critical_shard_index(self) -> int:
        """The array most often on the critical path (0 if unsharded).

        The per-round indices vote; ties break toward the lowest index,
        matching the per-cost ``argmax`` convention.
        """
        votes: dict[int, int] = {}
        for r in self.rounds:
            if r.shards > 1:
                votes[r.critical_shard_index] = (
                    votes.get(r.critical_shard_index, 0) + 1
                )
        if not votes:
            return 0
        return max(sorted(votes), key=votes.__getitem__)

    @property
    def critical_path_cycles_per_env_step(self) -> float:
        """Average wall-clock array cycles per env step."""
        return (
            self.total_critical_path_cycles / self.total_env_steps
            if self.total_env_steps
            else 0.0
        )

    @property
    def total_merge_cycles(self) -> int:
        """Inter-array NoC cycles across all rounds."""
        return sum(r.merge_cycles for r in self.rounds)

    @property
    def total_fill_drain_cycles(self) -> int:
        """Pipeline fill/drain bubble cycles across all rounds."""
        return sum(r.fill_drain_cycles for r in self.rounds)

    @property
    def merge_cycles_per_env_step(self) -> float:
        """Average NoC cycles per env step served."""
        return (
            self.total_merge_cycles / self.total_env_steps
            if self.total_env_steps
            else 0.0
        )

    @property
    def fill_drain_cycles_per_env_step(self) -> float:
        """Average pipeline bubble cycles per env step served."""
        return (
            self.total_fill_drain_cycles / self.total_env_steps
            if self.total_env_steps
            else 0.0
        )

    @property
    def total_training_cycles(self) -> int:
        """On-array training cycles across all rounds."""
        return sum(r.training_cycles for r in self.rounds)

    @property
    def total_training_critical_path_cycles(self) -> int:
        """Wall-clock training cycles across all rounds (max over shards)."""
        return sum(r.training_critical_path_cycles for r in self.rounds)

    @property
    def training_array_seconds(self) -> float:
        """Modelled array time of all on-array training updates."""
        return sum(r.training_array_seconds for r in self.rounds)

    @property
    def training_cycles_per_update(self) -> float:
        """Average array cycles charged per training update."""
        return (
            self.total_training_cycles / self.total_train_updates
            if self.total_train_updates
            else 0.0
        )

    @property
    def training_critical_path_cycles_per_update(self) -> float:
        """Average wall-clock training cycles per update."""
        return (
            self.total_training_critical_path_cycles / self.total_train_updates
            if self.total_train_updates
            else 0.0
        )

    @property
    def mean_sync_staleness(self) -> float:
        """Env-step-weighted mean staleness of the served weight snapshot."""
        if self.total_env_steps == 0:
            return 0.0
        weighted = sum(r.sync_staleness * r.env_steps for r in self.rounds)
        return weighted / self.total_env_steps

    @property
    def pipeline_overlap_fraction(self) -> float:
        """Wall-time-weighted mean pipeline overlap across rounds."""
        wall = sum(r.rollout_seconds + r.train_seconds for r in self.rounds)
        if wall <= 0.0:
            return 0.0
        weighted = sum(
            r.pipeline_overlap_fraction * (r.rollout_seconds + r.train_seconds)
            for r in self.rounds
        )
        return weighted / wall

    # --- fault-tolerance outcomes (all trivial unless a chaos run) ----
    @property
    def total_faults_injected(self) -> int:
        """Faults injected across all rounds."""
        return sum(r.faults_injected for r in self.rounds)

    @property
    def total_faults_detected(self) -> int:
        """Faults detected across all rounds."""
        return sum(r.faults_detected for r in self.rounds)

    @property
    def total_faults_recovered(self) -> int:
        """Faults recovered across all rounds."""
        return sum(r.faults_recovered for r in self.rounds)

    @property
    def total_fault_recovery_cycles(self) -> int:
        """Modelled array cycles spent on recovery across all rounds."""
        return sum(r.fault_recovery_cycles for r in self.rounds)

    @property
    def total_degraded_states(self) -> int:
        """States served by the degraded numpy fallback."""
        return sum(r.degraded_states for r in self.rounds)

    @property
    def availability(self) -> float:
        """Mean fraction of configured arrays alive, round-weighted.

        1.0 for a fault-free run; a chaos run that kills 1 of 4 arrays
        halfway through K rounds reports ``1 - (K/2)/(4K)``.
        """
        total = sum(r.shards for r in self.rounds)
        if total == 0:
            return 1.0
        return sum(r.active_shards for r in self.rounds) / total

    @property
    def mttr_rounds(self) -> float:
        """Mean time to recovery, in scheduler rounds.

        Averaged over recovered faults; a fault detected and recovered
        within the same round counts 1 round.  0.0 when nothing was
        recovered (including fault-free runs).
        """
        times = [
            e["recovered_round"] - e["round"] + 1
            for e in self.fault_events
            if e.get("recovered") and e.get("recovered_round") is not None
        ]
        return float(np.mean(times)) if times else 0.0

    @property
    def degraded_fraction(self) -> float:
        """Fraction of served states that fell back to degraded numpy."""
        if self.total_inference_states == 0:
            return 0.0
        return self.total_degraded_states / self.total_inference_states


class FleetScheduler:
    """Drives rollout → train → evaluate rounds over a fleet.

    Parameters
    ----------
    agent:
        The shared Q-learning agent (its ``config`` names the transfer
        topology, which also selects the accelerator cost model for
        load projection).
    vec_env:
        The environment fleet.
    train_every:
        Online-training cadence during rollout, in fleet steps.
    extra_train_updates:
        Replay-only updates in each round's train phase.
    eval_steps:
        Greedy fleet steps in each round's evaluate phase (0 disables).
    batch_scale:
        Training-batch multiplier (default: fleet width), so one update
        carries ``agent.batch_size * batch_scale`` samples.
    pipeline_chunk:
        Rollout chunk size (fleet steps) of the interleaved pipeline;
        the training updates due in a chunk run between chunks, on
        experience up to that boundary, and may overlap the next
        chunk's inference on a pipelined platform.  Defaults to
        ``train_every`` — one update between consecutive chunks, the
        finest-grained pipeline the training cadence allows.
    """

    def __init__(
        self,
        agent: QLearningAgent,
        vec_env: VecNavigationEnv,
        train_every: int = 2,
        extra_train_updates: int = 0,
        eval_steps: int = 0,
        batch_scale: int | None = None,
        pipeline_chunk: int | None = None,
    ):
        if train_every <= 0:
            raise ValueError("train_every must be positive")
        if extra_train_updates < 0 or eval_steps < 0:
            raise ValueError("phase sizes cannot be negative")
        if pipeline_chunk is not None and pipeline_chunk <= 0:
            raise ValueError("pipeline_chunk must be positive")
        self.agent = agent
        self.vec_env = vec_env
        self.train_every = train_every
        self.extra_train_updates = extra_train_updates
        self.eval_steps = eval_steps
        self.pipeline_chunk = pipeline_chunk or train_every
        self.train_batch = scaled_train_batch(agent, vec_env.num_envs, batch_scale)
        self._states: np.ndarray | None = None

    @property
    def observations(self) -> np.ndarray:
        """Current fleet observation batch (resets the fleet if needed).

        The (N, C, H, W) states the next rollout step would act on —
        the natural batch to cost on a backend post hoc.
        """
        if self._states is None:
            self._states = self.vec_env.reset()
        return np.asarray(self._states, dtype=np.float64)

    @property
    def _array_config(self):
        """Array geometry cycles are converted with: the backend's own
        config when it models one (a custom SystolicBackend may run at a
        different clock), the paper array otherwise."""
        return getattr(self.agent.backend, "config", None) or PAPER_ARRAY

    # ------------------------------------------------------------------
    def _rollout(
        self, steps: int
    ) -> tuple[int, int, int, list[float], float, float, float]:
        """Collect ``steps`` fleet steps as an interleaved pipeline.

        The rollout splits into chunks of ``pipeline_chunk`` steps.
        Within a chunk the fleet only acts and observes (inference on
        the bus's weight snapshot); the training updates due in the
        chunk (one per ``train_every`` steps, once replay holds a
        batch) run at the chunk boundary.  Because inference reads the
        double-buffered snapshot and training writes the float staging
        weights, chunk *i*'s training is independent of chunk *i+1*'s
        inference until the bus flips — a pipelined platform runs them
        concurrently.  Execution here stays serial (determinism: one
        RNG stream, fixed order), but both stage durations are
        measured, and the overlap a two-stage pipeline would hide —
        ``sum(min(train_i, rollout_{i+1}))`` — is returned in seconds.

        Returns ``(env_steps, episodes, updates, losses,
        rollout_seconds, train_seconds, hidden_seconds)``.
        """
        if self._states is None:
            self._states = self.vec_env.reset()
        states = self._states
        episodes = 0
        updates = 0
        losses: list[float] = []
        chunk_rollout_walls: list[float] = []
        chunk_train_walls: list[float] = []
        done_steps = 0
        while done_steps < steps:
            this_chunk = min(self.pipeline_chunk, steps - done_steps)
            start = time.perf_counter()
            with PROBE.span("phase:rollout", steps=this_chunk) as sp:
                before = (
                    self.agent.pending_inference_cycles() if PROBE.enabled else 0
                )
                for _ in range(this_chunk):
                    actions = self.agent.act_batch(states)
                    next_states, rewards, dones, infos = self.vec_env.step(actions)
                    self.agent.observe_batch(
                        self.vec_env.make_transitions(
                            states, actions, rewards, dones, next_states, infos
                        )
                    )
                    episodes += sum(
                        1
                        for i, info in enumerate(infos)
                        if dones[i] or info["truncated"]
                    )
                    states = next_states
                if PROBE.enabled:
                    sp.add_cycles(
                        self.agent.pending_inference_cycles() - before
                    )
            acted = time.perf_counter()
            # Updates due in this chunk: the train_every cadence points
            # it covered, run back to back at the boundary.
            due = sum(
                1
                for s in range(done_steps, done_steps + this_chunk)
                if s % self.train_every == 0
            )
            with PROBE.span("phase:train", due=due) as sp:
                before = (
                    self.agent.pending_training_cycles() if PROBE.enabled else 0
                )
                for _ in range(due):
                    if len(self.agent.replay) < self.train_batch:
                        break
                    losses.append(self.agent.train_step_batch(self.train_batch))
                    updates += 1
                if PROBE.enabled:
                    sp.add_cycles(
                        self.agent.pending_training_cycles() - before
                    )
            trained = time.perf_counter()
            chunk_rollout_walls.append(acted - start)
            chunk_train_walls.append(trained - acted)
            done_steps += this_chunk
        self._states = states
        rollout_wall = sum(chunk_rollout_walls)
        train_wall = sum(chunk_train_walls)
        hidden = sum(
            min(chunk_train_walls[i], chunk_rollout_walls[i + 1])
            for i in range(len(chunk_rollout_walls) - 1)
        )
        return (
            steps * self.vec_env.num_envs,
            episodes,
            updates,
            losses,
            rollout_wall,
            train_wall,
            hidden,
        )

    def _train(self) -> tuple[int, list[float], float]:
        """Replay-only updates (no env stepping)."""
        losses: list[float] = []
        start = time.perf_counter()
        updates = 0
        with PROBE.span("phase:train", due=self.extra_train_updates) as sp:
            before = (
                self.agent.pending_training_cycles() if PROBE.enabled else 0
            )
            for _ in range(self.extra_train_updates):
                if len(self.agent.replay) < self.train_batch:
                    break
                losses.append(self.agent.train_step_batch(self.train_batch))
                updates += 1
            if PROBE.enabled:
                sp.add_cycles(self.agent.pending_training_cycles() - before)
        return updates, losses, time.perf_counter() - start

    def _evaluate(self) -> tuple[int, int, dict[str, float], float]:
        """Greedy rollout measuring per-class SFD over the eval window."""
        if self.eval_steps == 0:
            return 0, 0, {}, 0.0
        if self._states is None:
            self._states = self.vec_env.reset()
        states = self._states
        before_distance = [
            env.tracker.total_distance for env in self.vec_env.envs
        ]
        before_crashes = [env.tracker.crash_count for env in self.vec_env.envs]
        episodes = 0
        start = time.perf_counter()
        with PROBE.span("phase:eval", steps=self.eval_steps) as sp:
            before = (
                self.agent.pending_inference_cycles() if PROBE.enabled else 0
            )
            for _ in range(self.eval_steps):
                actions = self.agent.act_batch(states, greedy=True)
                states, _rewards, dones, infos = self.vec_env.step(actions)
                episodes += sum(
                    1 for i, info in enumerate(infos) if dones[i] or info["truncated"]
                )
            if PROBE.enabled:
                sp.add_cycles(self.agent.pending_inference_cycles() - before)
        self._states = states
        wall = time.perf_counter() - start
        by_class: dict[str, list[float]] = {}
        for i, env in enumerate(self.vec_env.envs):
            flown = env.tracker.total_distance - before_distance[i]
            crashes = env.tracker.crash_count - before_crashes[i]
            by_class.setdefault(env.world.name, []).append(
                flown / max(crashes, 1)
            )
        sfd = {name: float(np.mean(v)) for name, v in sorted(by_class.items())}
        return self.eval_steps * self.vec_env.num_envs, episodes, sfd, wall

    # ------------------------------------------------------------------
    def run(self, rounds: int, steps_per_round: int) -> FleetReport:
        """Execute ``rounds`` pipelined rollout/train/evaluate rounds."""
        if rounds <= 0 or steps_per_round <= 0:
            raise ValueError("rounds and steps_per_round must be positive")
        report = FleetReport(
            num_envs=self.vec_env.num_envs,
            config_name=self.agent.config.name,
            backend=self.agent.backend.name,
        )
        # Discard cost/staleness records from before this run so round 0
        # only carries its own budget.
        self.agent.drain_inference_cost()
        self.agent.drain_training_cost()
        self.agent.weight_bus.drain_serve_staleness()
        try:
            for index in range(rounds):
                if FAULTS.enabled:
                    FAULTS.injector.note_round(index)
                with PROBE.span("fleet.round", round=index) as round_span:
                    (
                        steps, episodes, updates, losses,
                        roll_wall, pipeline_train_wall, hidden_seconds,
                    ) = self._rollout(steps_per_round)
                    extra_updates, extra_losses, train_wall = self._train()
                    eval_steps, eval_episodes, eval_sfd, eval_wall = (
                        self._evaluate()
                    )
                    losses = losses + extra_losses
                    # Fraction of the round's rollout+train wall a
                    # two-stage pipeline hides; the denominator matches
                    # the rollout_seconds + train_seconds recorded below,
                    # so the report-level weighted mean is exactly
                    # total-hidden / total-serial.
                    serial = roll_wall + pipeline_train_wall + train_wall
                    overlap = hidden_seconds / serial if serial > 0.0 else 0.0
                    with PROBE.span("phase:drain"):
                        cost = self.agent.drain_inference_cost()
                        train_cost = self.agent.drain_training_cost()
                        staleness = (
                            self.agent.weight_bus.drain_serve_staleness()
                        )
                        if FAULTS.enabled:
                            fault = FAULTS.injector.drain_round()
                            dead = len(FAULTS.injector.dead_shards)
                        else:
                            fault = None
                            dead = 0
                        if PROBE.enabled:
                            # Refresh the cost-oracle memo gauges so the
                            # run's metrics snapshot carries end-of-round
                            # hit rates.
                            publish_memo_metrics(PROBE)
                    round_span.add_cycles(
                        cost.total_cycles + train_cost.total_cycles
                    )
                    if cost.shards > 1:
                        round_span.annotate(
                            shards=cost.shards,
                            critical_shard=cost.critical_shard_index,
                        )
                stats = RoundStats(
                    round_index=index,
                    env_steps=steps + eval_steps,
                    episodes=episodes + eval_episodes,
                    train_updates=updates + extra_updates,
                    rollout_seconds=roll_wall,
                    train_seconds=pipeline_train_wall + train_wall,
                    eval_seconds=eval_wall,
                    mean_loss=float(np.mean(losses)) if losses else float("nan"),
                    eval_sfd_by_class=eval_sfd,
                    backend=cost.backend,
                    inference_states=cost.states,
                    inference_macs=cost.macs,
                    inference_cycles=cost.total_cycles,
                    inference_array_seconds=cost.array_seconds(self._array_config),
                    shards=max(cost.shards, train_cost.shards),
                    critical_path_cycles=cost.critical_path_cycles,
                    critical_shard_index=cost.critical_shard_index,
                    sync_staleness=staleness,
                    pipeline_overlap_fraction=overlap,
                    training_cycles=train_cost.total_cycles,
                    training_macs=train_cost.macs,
                    training_array_seconds=train_cost.array_seconds(
                        self._array_config
                    ),
                    training_critical_path_cycles=train_cost.critical_path_cycles,
                    merge_cycles=cost.merge_cycles + train_cost.merge_cycles,
                    fill_drain_cycles=(
                        cost.fill_drain_cycles + train_cost.fill_drain_cycles
                    ),
                    faults_injected=fault["injected"] if fault else 0,
                    faults_detected=fault["detected"] if fault else 0,
                    faults_recovered=fault["recovered"] if fault else 0,
                    fault_recovery_cycles=(
                        fault["recovery_cycles"] if fault else 0
                    ),
                    degraded_states=fault["degraded_states"] if fault else 0,
                    active_shards=max(cost.shards, train_cost.shards) - dead,
                )
                report.rounds.append(stats)
                if PROBE.enabled:
                    PROBE.count(
                        "repro_fleet_env_steps_total",
                        stats.env_steps,
                        help="Fleet env steps (rollout + eval).",
                    )
                    PROBE.count(
                        "repro_fleet_episodes_total",
                        stats.episodes,
                        help="Episodes completed by the fleet.",
                    )
                    PROBE.count(
                        "repro_fleet_train_updates_total",
                        stats.train_updates,
                        help="Training updates applied by the fleet.",
                    )
                    PROBE.gauge(
                        "repro_fleet_sync_staleness_updates",
                        stats.sync_staleness,
                        help="Mean served weight-snapshot staleness, last round.",
                    )
                    PROBE.observe(
                        "repro_fleet_round_seconds",
                        stats.wall_seconds,
                        help="Host wall time of one scheduler round.",
                    )
            # Deployment barrier: a completed run leaves no undeployed
            # updates — the bus bounds staleness *during* serving, but
            # the final weights must ship when the run hands back.
            if self.agent.weight_bus.staleness > 0:
                self.agent.weight_bus.flip()
        finally:
            # A mid-round exception must not leak this round's partial
            # costs (inference *or* training, or staleness — or fault
            # ledgers) into the next run's first round.
            self.agent.drain_inference_cost()
            self.agent.drain_training_cost()
            self.agent.weight_bus.drain_serve_staleness()
            if FAULTS.enabled:
                FAULTS.injector.drain_round()
        # Close every env's final crash-free segment so it counts.
        for env in self.vec_env.envs:
            env.tracker.flush()
        report.sfd_by_class = self.vec_env.sfd_by_class()
        report.crash_counts = [int(v) for v in self.vec_env.crash_counts]
        if FAULTS.enabled:
            report.fault_events = FAULTS.injector.event_log()
        return report

    def project_load(
        self,
        report: FleetReport,
        simulator: TrafficSimulator | None = None,
    ) -> FleetLoadProjection:
        """Project the measured fleet load onto the accelerator model.

        Builds a paper-scale :class:`TrafficSimulator` for the agent's
        transfer config unless one is supplied.  When the report's
        backend charged cycles, the measured cycles-per-step budget is
        threaded into the projection (``inference_cycles_per_step``),
        so the platform's inference headroom comes from what the
        datapath actually charged rather than an analytic estimate;
        sharded backends additionally thread their array count and
        measured critical-path budget, so the projection reports what
        K arrays sustain and the scaling efficiency of the split.
        Raises ``ValueError`` when the report measured no training
        iterations — there is no load to project, and a clamped rate
        would print a nonsense utilization/endurance instead of
        surfacing the problem.
        """
        if report.total_train_updates == 0:
            raise ValueError(
                "report measured zero training iterations; run more "
                "steps per round (the fleet needs train_batch "
                f"= {self.train_batch} transitions before it can train)"
            )
        if simulator is None:
            from repro.nn.alexnet import modified_alexnet_spec

            simulator = TrafficSimulator(modified_alexnet_spec(), self.agent.config)
        return project_fleet_load(
            simulator,
            num_envs=self.vec_env.num_envs,
            batch_size=self.train_batch,
            steps_per_second=report.steps_per_second,
            train_iterations_per_second=report.train_iterations_per_second,
            inference_cycles_per_step=report.cycles_per_env_step,
            array=self._array_config,
            shards=report.shards,
            critical_path_cycles_per_step=report.critical_path_cycles_per_env_step,
            training_cycles_per_update=report.training_cycles_per_update,
            training_critical_path_cycles_per_update=(
                report.training_critical_path_cycles_per_update
            ),
            availability=report.availability,
            degraded_fraction=report.degraded_fraction,
            interconnect_cycles_per_step=report.merge_cycles_per_env_step,
            fill_drain_cycles_per_step=report.fill_drain_cycles_per_env_step,
        )
