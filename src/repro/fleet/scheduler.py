"""Fleet scheduler: rollout → train → evaluate rounds with throughput
accounting.

:class:`FleetScheduler` drives a :class:`~repro.fleet.vec_env.VecNavigationEnv`
and a shared :class:`~repro.rl.agent.QLearningAgent` through repeated
rounds:

1. **rollout** — collect experience from all N environments with
   batched action selection, training online every ``train_every``
   fleet steps;
2. **train** — extra replay-only updates (experience re-use, no env
   stepping);
3. **evaluate** — greedy batched rollout measuring safe flight distance
   per environment class, without training.

Each round records wall-clock throughput (env steps/sec, episodes/sec,
training iterations/sec) and — when the agent's execution backend
models hardware — the per-round accelerator cycle budget its forward
passes were charged (:class:`~repro.backend.StepCost` totals, drained
from the agent's ledger).  :meth:`FleetScheduler.project_load` feeds
the measured rates *and* measured cycles into
:func:`repro.perf.traffic.project_fleet_load`, so a simulated fleet's
demand maps onto the paper platform's FPS / latency / energy /
endurance model — the "heavy traffic" question made concrete.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.backend import StepCost
from repro.fleet.runner import scaled_train_batch
from repro.fleet.vec_env import VecNavigationEnv
from repro.perf.traffic import (
    FleetLoadProjection,
    TrafficSimulator,
    project_fleet_load,
)
from repro.rl.agent import QLearningAgent
from repro.systolic.array import PAPER_ARRAY

__all__ = [
    "RoundStats",
    "FleetReport",
    "FleetScheduler",
    "FleetObservationCost",
]


@dataclass(frozen=True)
class FleetObservationCost:
    """Systolic-array cost of one fleet observation batch.

    Produced by the deprecated
    :meth:`FleetScheduler.cost_observation_batch`: the whole fleet's
    observations go through the functional systolic fast path in one
    batched call per layer, yielding both the Q values the array would
    produce and the cycles it would charge.  Superseded by routing the
    rollouts themselves through a
    :class:`~repro.backend.SystolicBackend`, which charges the same
    budgets continuously instead of post hoc.
    """

    num_envs: int
    q_values: np.ndarray
    layer_cycles: dict[str, int]
    total_cycles: int
    array_seconds: float


@dataclass(frozen=True)
class RoundStats:
    """Throughput and task metrics of one scheduler round.

    The ``inference_*`` fields carry the accelerator cycle budget the
    agent's execution backend charged during the round's rollout and
    evaluation forward passes (zero under the float ``numpy`` backend,
    which has no hardware model).
    """

    round_index: int
    env_steps: int
    episodes: int
    train_updates: int
    rollout_seconds: float
    train_seconds: float
    eval_seconds: float
    mean_loss: float
    eval_sfd_by_class: dict[str, float]
    backend: str = "numpy"
    inference_states: int = 0
    inference_macs: int = 0
    inference_cycles: int = 0
    inference_array_seconds: float = 0.0

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time of the round."""
        return self.rollout_seconds + self.train_seconds + self.eval_seconds

    @property
    def cycles_per_env_step(self) -> float:
        """Modelled array cycles per env step served this round."""
        return self.inference_cycles / self.env_steps if self.env_steps else 0.0

    @property
    def steps_per_second(self) -> float:
        """Env steps per second over the whole round."""
        return self.env_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        """Completed episodes per second over the whole round."""
        return self.episodes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def train_iterations_per_second(self) -> float:
        """Training updates per second over the whole round."""
        return (
            self.train_updates / self.wall_seconds if self.wall_seconds else 0.0
        )


@dataclass
class FleetReport:
    """Aggregated outcome of a scheduler run."""

    num_envs: int
    config_name: str
    backend: str = "numpy"
    rounds: list[RoundStats] = field(default_factory=list)
    sfd_by_class: dict[str, float] = field(default_factory=dict)
    crash_counts: list[int] = field(default_factory=list)

    @property
    def total_env_steps(self) -> int:
        """Env steps across all rounds."""
        return sum(r.env_steps for r in self.rounds)

    @property
    def total_episodes(self) -> int:
        """Episodes completed across all rounds."""
        return sum(r.episodes for r in self.rounds)

    @property
    def total_train_updates(self) -> int:
        """Training updates across all rounds."""
        return sum(r.train_updates for r in self.rounds)

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time across all rounds."""
        return sum(r.wall_seconds for r in self.rounds)

    @property
    def steps_per_second(self) -> float:
        """Aggregate env-step throughput."""
        return self.total_env_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        """Aggregate episode throughput."""
        return self.total_episodes / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def train_iterations_per_second(self) -> float:
        """Aggregate training-update throughput."""
        return (
            self.total_train_updates / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )

    @property
    def total_inference_cycles(self) -> int:
        """Backend-charged array cycles across all rounds."""
        return sum(r.inference_cycles for r in self.rounds)

    @property
    def total_inference_states(self) -> int:
        """States served by the backend across all rounds."""
        return sum(r.inference_states for r in self.rounds)

    @property
    def inference_array_seconds(self) -> float:
        """Modelled array time of all backend forwards."""
        return sum(r.inference_array_seconds for r in self.rounds)

    @property
    def cycles_per_env_step(self) -> float:
        """Average modelled array cycles charged per env step."""
        return (
            self.total_inference_cycles / self.total_env_steps
            if self.total_env_steps
            else 0.0
        )


class FleetScheduler:
    """Drives rollout → train → evaluate rounds over a fleet.

    Parameters
    ----------
    agent:
        The shared Q-learning agent (its ``config`` names the transfer
        topology, which also selects the accelerator cost model for
        load projection).
    vec_env:
        The environment fleet.
    train_every:
        Online-training cadence during rollout, in fleet steps.
    extra_train_updates:
        Replay-only updates in each round's train phase.
    eval_steps:
        Greedy fleet steps in each round's evaluate phase (0 disables).
    batch_scale:
        Training-batch multiplier (default: fleet width), so one update
        carries ``agent.batch_size * batch_scale`` samples.
    """

    def __init__(
        self,
        agent: QLearningAgent,
        vec_env: VecNavigationEnv,
        train_every: int = 2,
        extra_train_updates: int = 0,
        eval_steps: int = 0,
        batch_scale: int | None = None,
    ):
        if train_every <= 0:
            raise ValueError("train_every must be positive")
        if extra_train_updates < 0 or eval_steps < 0:
            raise ValueError("phase sizes cannot be negative")
        self.agent = agent
        self.vec_env = vec_env
        self.train_every = train_every
        self.extra_train_updates = extra_train_updates
        self.eval_steps = eval_steps
        self.train_batch = scaled_train_batch(agent, vec_env.num_envs, batch_scale)
        self._states: np.ndarray | None = None

    @property
    def _array_config(self):
        """Array geometry cycles are converted with: the backend's own
        config when it models one (a custom SystolicBackend may run at a
        different clock), the paper array otherwise."""
        return getattr(self.agent.backend, "config", None) or PAPER_ARRAY

    # ------------------------------------------------------------------
    def _rollout(self, steps: int) -> tuple[int, int, int, list[float], float]:
        """Collect ``steps`` fleet steps with online training."""
        if self._states is None:
            self._states = self.vec_env.reset()
        states = self._states
        episodes = 0
        updates = 0
        losses: list[float] = []
        start = time.perf_counter()
        for step in range(steps):
            actions = self.agent.act_batch(states)
            next_states, rewards, dones, infos = self.vec_env.step(actions)
            self.agent.observe_batch(
                self.vec_env.make_transitions(
                    states, actions, rewards, dones, next_states, infos
                )
            )
            episodes += sum(
                1 for i, info in enumerate(infos) if dones[i] or info["truncated"]
            )
            if (
                len(self.agent.replay) >= self.train_batch
                and step % self.train_every == 0
            ):
                losses.append(self.agent.train_step_batch(self.train_batch))
                updates += 1
            states = next_states
        self._states = states
        wall = time.perf_counter() - start
        return steps * self.vec_env.num_envs, episodes, updates, losses, wall

    def _train(self) -> tuple[int, list[float], float]:
        """Replay-only updates (no env stepping)."""
        losses: list[float] = []
        start = time.perf_counter()
        updates = 0
        for _ in range(self.extra_train_updates):
            if len(self.agent.replay) < self.train_batch:
                break
            losses.append(self.agent.train_step_batch(self.train_batch))
            updates += 1
        return updates, losses, time.perf_counter() - start

    def _evaluate(self) -> tuple[int, int, dict[str, float], float]:
        """Greedy rollout measuring per-class SFD over the eval window."""
        if self.eval_steps == 0:
            return 0, 0, {}, 0.0
        if self._states is None:
            self._states = self.vec_env.reset()
        states = self._states
        before_distance = [
            env.tracker.total_distance for env in self.vec_env.envs
        ]
        before_crashes = [env.tracker.crash_count for env in self.vec_env.envs]
        episodes = 0
        start = time.perf_counter()
        for _ in range(self.eval_steps):
            actions = self.agent.act_batch(states, greedy=True)
            states, _rewards, dones, infos = self.vec_env.step(actions)
            episodes += sum(
                1 for i, info in enumerate(infos) if dones[i] or info["truncated"]
            )
        self._states = states
        wall = time.perf_counter() - start
        by_class: dict[str, list[float]] = {}
        for i, env in enumerate(self.vec_env.envs):
            flown = env.tracker.total_distance - before_distance[i]
            crashes = env.tracker.crash_count - before_crashes[i]
            by_class.setdefault(env.world.name, []).append(
                flown / max(crashes, 1)
            )
        sfd = {name: float(np.mean(v)) for name, v in sorted(by_class.items())}
        return self.eval_steps * self.vec_env.num_envs, episodes, sfd, wall

    # ------------------------------------------------------------------
    def run(self, rounds: int, steps_per_round: int) -> FleetReport:
        """Execute ``rounds`` rollout/train/evaluate rounds."""
        if rounds <= 0 or steps_per_round <= 0:
            raise ValueError("rounds and steps_per_round must be positive")
        report = FleetReport(
            num_envs=self.vec_env.num_envs,
            config_name=self.agent.config.name,
            backend=self.agent.backend.name,
        )
        # Discard cost records from before this run so round 0 only
        # carries its own budget.
        self.agent.drain_inference_cost()
        for index in range(rounds):
            steps, episodes, updates, losses, roll_wall = self._rollout(
                steps_per_round
            )
            extra_updates, extra_losses, train_wall = self._train()
            eval_steps, eval_episodes, eval_sfd, eval_wall = self._evaluate()
            losses = losses + extra_losses
            cost = self.agent.drain_inference_cost()
            report.rounds.append(
                RoundStats(
                    round_index=index,
                    env_steps=steps + eval_steps,
                    episodes=episodes + eval_episodes,
                    train_updates=updates + extra_updates,
                    rollout_seconds=roll_wall,
                    train_seconds=train_wall,
                    eval_seconds=eval_wall,
                    mean_loss=float(np.mean(losses)) if losses else float("nan"),
                    eval_sfd_by_class=eval_sfd,
                    backend=cost.backend,
                    inference_states=cost.states,
                    inference_macs=cost.macs,
                    inference_cycles=cost.total_cycles,
                    inference_array_seconds=cost.array_seconds(self._array_config),
                )
            )
        # Close every env's final crash-free segment so it counts.
        for env in self.vec_env.envs:
            env.tracker.flush()
        report.sfd_by_class = self.vec_env.sfd_by_class()
        report.crash_counts = [int(v) for v in self.vec_env.crash_counts]
        return report

    def cost_observation_batch(self, fidelity: str = "fast") -> FleetObservationCost:
        """Deprecated: cost one fleet observation batch post hoc.

        Thin wrapper over a float-numerics
        :class:`~repro.backend.SystolicBackend` (``quantized=False``
        keeps the historical ``q_values == network.predict`` contract).
        Prefer constructing the agent with a systolic backend so every
        rollout forward pass carries its cycle budget into
        :class:`RoundStats` instead of costing one snapshot after the
        fact.
        """
        from repro.backend import SystolicBackend

        warnings.warn(
            "FleetScheduler.cost_observation_batch is deprecated; build the "
            "agent with backend=SystolicBackend(network) so fleet rounds "
            "carry per-step cycle budgets in RoundStats/FleetReport",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._states is None:
            self._states = self.vec_env.reset()
        backend = SystolicBackend(
            self.agent.network, fidelity=fidelity, quantized=False
        )
        q_values, cost = backend.forward_batch(
            np.asarray(self._states, dtype=np.float64)
        )
        return FleetObservationCost(
            num_envs=self.vec_env.num_envs,
            q_values=q_values,
            layer_cycles=dict(cost.layer_cycles),
            total_cycles=cost.total_cycles,
            array_seconds=cost.array_seconds(PAPER_ARRAY),
        )

    def project_load(
        self,
        report: FleetReport,
        simulator: TrafficSimulator | None = None,
    ) -> FleetLoadProjection:
        """Project the measured fleet load onto the accelerator model.

        Builds a paper-scale :class:`TrafficSimulator` for the agent's
        transfer config unless one is supplied.  When the report's
        backend charged cycles, the measured cycles-per-step budget is
        threaded into the projection (``inference_cycles_per_step``),
        so the platform's inference headroom comes from what the
        datapath actually charged rather than an analytic estimate.
        Raises ``ValueError`` when the report measured no training
        iterations — there is no load to project, and a clamped rate
        would print a nonsense utilization/endurance instead of
        surfacing the problem.
        """
        if report.total_train_updates == 0:
            raise ValueError(
                "report measured zero training iterations; run more "
                "steps per round (the fleet needs train_batch "
                f"= {self.train_batch} transitions before it can train)"
            )
        if simulator is None:
            from repro.nn.alexnet import modified_alexnet_spec

            simulator = TrafficSimulator(modified_alexnet_spec(), self.agent.config)
        return project_fleet_load(
            simulator,
            num_envs=self.vec_env.num_envs,
            batch_size=self.train_batch,
            steps_per_second=report.steps_per_second,
            train_iterations_per_second=report.train_iterations_per_second,
            inference_cycles_per_step=report.cycles_per_env_step,
            array=self._array_config,
        )
