"""repro — reproduction of "Transfer and Online Reinforcement Learning
in STT-MRAM Based Embedded Systems for Autonomous Drones"
(Yoon, Anwar, Rakshit, Raychowdhury — DATE 2019).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the algorithm-hardware co-design (headline API)
* :mod:`repro.nn` — NumPy CNN with partial backpropagation
* :mod:`repro.rl` — Q-learning, transfer configurations, experiments
* :mod:`repro.env` — drone world simulator (Unreal Engine substitute)
* :mod:`repro.fleet` — vectorized multi-env fleet engine (batched
  stepping, batched inference/training, throughput scheduler)
* :mod:`repro.backend` — pluggable execution backends (float NumPy,
  16-bit fixed point, quantized systolic datapath with cycle budgets)
* :mod:`repro.memory` — STT-MRAM / SRAM / DRAM hierarchy model
* :mod:`repro.systolic` — 32x32 PE array and Fig. 6-8 mappings
* :mod:`repro.perf` — Fig. 12/13 performance model
* :mod:`repro.fixedpoint` — 16-bit Q-format arithmetic
* :mod:`repro.analysis` — tables, ASCII plots, experiment reports
"""

from repro.backend import ExecutionBackend, StepCost, make_backend
from repro.core import CoDesign, Platform, paper_platform
from repro.nn import modified_alexnet_spec, scaled_drone_net_spec, build_network
from repro.rl import (
    TransferConfig,
    TRANSFER_CONFIGS,
    config_by_name,
    QLearningAgent,
    run_transfer_experiment,
)
from repro.env import NavigationEnv, make_environment, DepthCamera

__version__ = "1.0.0"

__all__ = [
    "ExecutionBackend",
    "StepCost",
    "make_backend",
    "CoDesign",
    "Platform",
    "paper_platform",
    "modified_alexnet_spec",
    "scaled_drone_net_spec",
    "build_network",
    "TransferConfig",
    "TRANSFER_CONFIGS",
    "config_by_name",
    "QLearningAgent",
    "run_transfer_experiment",
    "NavigationEnv",
    "make_environment",
    "DepthCamera",
    "__version__",
]
