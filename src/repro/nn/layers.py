"""NumPy layer implementations (NCHW data layout).

Each layer exposes ``forward(x, training)`` and ``backward(grad_out)``,
returning the gradient with respect to its input, and accumulates
parameter gradients into :class:`Parameter` objects.  The layer set is
exactly what the paper's modified AlexNet needs: convolution, ReLU, local
response normalisation, overlapping max-pooling, flatten and dense.

The im2col/col2im unfolding and the convolution GEMMs are the shared
batched kernels of :mod:`repro.systolic.kernels` — the same code paths
the functional systolic fast path uses, so training layers and
accelerator simulation stay numerically aligned.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal
from repro.systolic.kernels import col2im, conv_out_size, im2col

__all__ = [
    "im2col",
    "col2im",
    "Parameter",
    "Layer",
    "Conv2D",
    "Dense",
    "ReLU",
    "LocalResponseNorm",
    "MaxPool2D",
    "Dropout",
    "Flatten",
]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return self.value.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer:
    """Base class for all layers."""

    #: Human-readable name; set by subclasses or the network container.
    name: str = "layer"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``grad_out`` to the input, accumulating param grads."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters (empty for stateless layers)."""
        return []

    @property
    def weight_count(self) -> int:
        """Total number of trainable scalars in this layer."""
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


# im2col/col2im live in repro.systolic.kernels (stride-tricks based) and
# are re-exported here for backward compatibility.
_out_size = conv_out_size


class Conv2D(Layer):
    """2-D convolution via im2col, as mapped onto the systolic array."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        name: str = "conv",
        rng: np.random.Generator | None = None,
    ):
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.name = name
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        weights = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
        )
        self.weight = Parameter(f"{name}.weight", weights)
        self.bias = Parameter(f"{name}.bias", np.zeros(out_channels))
        self._cache: tuple | None = None

    def output_shape(self, h: int, w: int) -> tuple[int, int, int]:
        """(channels, height, width) of the output for an (h, w) input."""
        oh = _out_size(h, self.kernel_size, self.stride, self.pad)
        ow = _out_size(w, self.kernel_size, self.stride, self.pad)
        return self.out_channels, oh, ow

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        k, s, p = self.kernel_size, self.stride, self.pad
        cols = im2col(x, k, k, s, p)
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        # One broadcast GEMM over the whole batch: (OC, F) @ (N, F, P).
        out = np.matmul(w_mat, cols) + self.bias.value[None, :, None]
        _, oh, ow = self.output_shape(h, w)
        out = out.reshape(n, self.out_channels, oh, ow)
        if training:
            self._cache = (x.shape, cols)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward(training=True)")
        x_shape, cols = self._cache
        n = grad_out.shape[0]
        grad_mat = grad_out.reshape(n, self.out_channels, -1)
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += np.tensordot(
            grad_mat, cols, axes=([0, 2], [0, 2])
        ).reshape(self.weight.value.shape)
        self.bias.grad += grad_mat.sum(axis=(0, 2))
        dcols = np.matmul(w_mat.T, grad_mat)
        k, s, p = self.kernel_size, self.stride, self.pad
        return col2im(dcols, x_shape, k, k, s, p)

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: str = "fc",
        rng: np.random.Generator | None = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            f"{name}.weight", he_normal((in_features, out_features), in_features, rng)
        )
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features))
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_features}) input, got {x.shape}"
            )
        if training:
            self._cache = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward(training=True)")
        x = self._cache
        self.weight.grad += x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Layer):
    """Rectified linear unit (hardware: the PE comparator units)."""

    def __init__(self, name: str = "relu"):
        self.name = name
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward(training=True)")
        return grad_out * self._mask


class LocalResponseNorm(Layer):
    """AlexNet-style local response normalisation across channels.

    ``b[i] = a[i] / (k + alpha/n * sum_{j near i} a[j]^2) ** beta``
    """

    def __init__(
        self,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 2.0,
        name: str = "norm",
    ):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.name = name
        self._cache: tuple | None = None

    def _denominators(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        sq = x**2
        half = self.size // 2
        padded = np.zeros((n, c + 2 * half, h, w), dtype=x.dtype)
        padded[:, half : half + c] = sq
        window_sum = np.zeros_like(x)
        for offset in range(self.size):
            window_sum += padded[:, offset : offset + c]
        return self.k + (self.alpha / self.size) * window_sum

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        denom = self._denominators(x)
        out = x * denom ** (-self.beta)
        if training:
            self._cache = (x, denom)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward(training=True)")
        x, denom = self._cache
        n, c, h, w = x.shape
        half = self.size // 2
        pow_term = denom ** (-self.beta)
        # d(out_j)/d(x_i) has a direct term (i == j) and cross terms for
        # every j whose window contains i.
        direct = grad_out * pow_term
        cross_coeff = (
            grad_out * x * (-self.beta) * denom ** (-self.beta - 1.0)
        ) * (2.0 * self.alpha / self.size)
        padded = np.zeros((n, c + 2 * half, h, w), dtype=x.dtype)
        for offset in range(self.size):
            padded[:, offset : offset + c] += cross_coeff
        cross = padded[:, half : half + c] * x
        return direct + cross


class MaxPool2D(Layer):
    """Max pooling with overlapping windows (AlexNet uses 3x3 stride 2)."""

    def __init__(self, pool_size: int = 3, stride: int = 2, name: str = "maxpool"):
        if pool_size <= 0 or stride <= 0:
            raise ValueError("pool_size and stride must be positive")
        self.pool_size = pool_size
        self.stride = stride
        self.name = name
        self._cache: tuple | None = None

    def output_shape(self, h: int, w: int) -> tuple[int, int]:
        return (
            _out_size(h, self.pool_size, self.stride, 0),
            _out_size(w, self.pool_size, self.stride, 0),
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        cols = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        # cols: (n*c, k*k, oh*ow)
        argmax = cols.argmax(axis=1)
        out = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
        oh, ow = self.output_shape(h, w)
        if training:
            self._cache = (x.shape, argmax, cols.shape)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward(training=True)")
        x_shape, argmax, cols_shape = self._cache
        n, c, h, w = x_shape
        k, s = self.pool_size, self.stride
        grad_cols = np.zeros(cols_shape)
        flat = grad_out.reshape(n * c, -1)
        np.put_along_axis(grad_cols, argmax[:, None, :], flat[:, None, :], axis=1)
        dx = col2im(grad_cols, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class Dropout(Layer):
    """Inverted dropout (AlexNet regularises its FC layers with p=0.5).

    Active only in training mode; inference passes activations through
    unchanged (the inverted scaling keeps expectations equal), so the
    deployed fixed-point datapath never sees it.
    """

    def __init__(self, rate: float = 0.5, name: str = "dropout", seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self.name = name
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Flatten (N, C, H, W) feature maps into (N, C*H*W) vectors."""

    def __init__(self, name: str = "flatten"):
        self.name = name
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError(f"{self.name}: backward before forward(training=True)")
        return grad_out.reshape(self._shape)
