"""Weight initialisers.

The paper initialises the meta-training run with ImageNet weights; lacking
those (and any network access), :func:`imagenet_stub` provides a fixed,
seeded He-style initialisation that plays the same role: a deterministic,
reproducible "pretrained" starting point shared by every configuration so
that L2/L3/L4/E2E comparisons start from identical weights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "glorot_uniform", "imagenet_stub"]

#: Seed offset giving the "ImageNet stub" its own reproducible stream.
_IMAGENET_STUB_SEED = 0x1A5E


def he_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def glorot_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot (Xavier) uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def imagenet_stub(shape: tuple[int, ...], fan_in: int, seed: int = 0) -> np.ndarray:
    """Deterministic stand-in for ImageNet-pretrained weights.

    The paper downloads ImageNet weights before meta-training; we cannot,
    so this returns He-normal weights drawn from a stream that depends only
    on ``shape`` and ``seed`` — every caller asking for the "pretrained"
    weights of a given layer gets the same tensor.
    """
    mix = hash((shape, seed, _IMAGENET_STUB_SEED)) & 0x7FFFFFFF
    rng = np.random.default_rng(mix)
    return he_normal(shape, fan_in, rng)
