"""Sequential network container with partial backpropagation.

The paper's central algorithmic knob is training only the last ``i``
layers online (Fig. 3b): forward propagation always traverses the whole
network, but backpropagation stops after the last ``i`` *parametric*
layers.  :meth:`Network.backward` implements exactly that with its
``first_trainable`` argument, and :meth:`Network.trainable_boundary`
translates "train the last k FC layers" into a layer index.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Layer, Parameter

__all__ = ["Network"]


class Network:
    """An ordered stack of layers with whole- or tail-network training."""

    def __init__(self, layers: list[Layer], name: str = "network"):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def parameters(self, first_trainable: int = 0) -> list[Parameter]:
        """Parameters of layers at index >= ``first_trainable``."""
        params: list[Parameter] = []
        for layer in self.layers[first_trainable:]:
            params.extend(layer.parameters())
        return params

    def parametric_layers(self) -> list[tuple[int, Layer]]:
        """(index, layer) pairs for layers that own parameters."""
        return [(i, l) for i, l in enumerate(self.layers) if l.parameters()]

    @property
    def weight_count(self) -> int:
        """Total number of trainable scalars in the network."""
        return sum(layer.weight_count for layer in self.layers)

    def trainable_boundary(self, last_k_parametric: int | None) -> int:
        """Layer index such that the last ``k`` parametric layers train.

        ``None`` (or a count >= the number of parametric layers) means
        end-to-end training and returns 0.
        """
        parametric = self.parametric_layers()
        if last_k_parametric is None or last_k_parametric >= len(parametric):
            return 0
        if last_k_parametric <= 0:
            raise ValueError("must train at least one parametric layer")
        return parametric[-last_k_parametric][0]

    def trainable_fraction(self, first_trainable: int) -> float:
        """Fraction of all weights that are trainable at this boundary."""
        total = self.weight_count
        if total == 0:
            raise ValueError("network has no parameters")
        trainable = sum(p.size for p in self.parameters(first_trainable))
        return trainable / total

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray, first_trainable: int = 0) -> None:
        """Backpropagate ``grad_out`` through layers >= ``first_trainable``.

        Gradient does not flow into the frozen prefix — on the paper's
        platform those weights live in STT-MRAM and are never written
        during flight.
        """
        if not 0 <= first_trainable < len(self.layers):
            raise ValueError(f"first_trainable out of range: {first_trainable}")
        for layer in reversed(self.layers[first_trainable:]):
            grad_out = layer.backward(grad_out)

    def zero_grad(self) -> None:
        """Clear every accumulated parameter gradient."""
        for param in self.parameters():
            param.zero_grad()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (no caches kept)."""
        return self.forward(x, training=False)

    # ------------------------------------------------------------------
    # Weight transfer / persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter tensors keyed by parameter name."""
        return {p.name: p.value.copy() for p in self.parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load tensors produced by :meth:`state_dict` (strict matching)."""
        params = {p.name: p for p in self.parameters()}
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"{name}: shape {value.shape} != expected {param.value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)

    def copy_weights_from(self, other: "Network") -> None:
        """Transfer-learning download: copy all weights from ``other``."""
        self.load_state_dict(other.state_dict())

    def save(self, path: str | Path) -> None:
        """Serialise weights to an ``.npz`` file."""
        np.savez_compressed(Path(path), **self.state_dict())

    def load(self, path: str | Path) -> None:
        """Load weights from an ``.npz`` file written by :meth:`save`."""
        with np.load(Path(path)) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(layer.name for layer in self.layers)
        return f"Network({self.name}: {inner})"
