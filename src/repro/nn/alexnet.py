"""The paper's modified AlexNet, at paper scale and reduced scale.

Fig. 2/3 of the paper: the Q network is a modified AlexNet with 5
convolutional layers (CONV1..CONV5, with ReLU, two local response norms
and three overlapping max-pools) followed by 5 fully connected layers
(FC1..FC5) ending in 5 Q outputs — one per action of the drone's action
space.

Two spec factories are provided:

* :func:`modified_alexnet_spec` — the exact paper-scale network whose
  weight table reproduces Fig. 3a (56 190 341 weights).  Used analytically
  by the hardware cost model; *can* also be built functionally.
* :func:`scaled_drone_net_spec` — a reduced network with the same
  topology family (conv prefix + 5 FC tail) that trains in seconds in
  pure NumPy, used for the functional RL experiments (Figs. 10 and 11).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
)
from repro.nn.network import Network
from repro.nn.specs import ConvSpec, FCSpec, NetworkSpec

__all__ = [
    "modified_alexnet_spec",
    "scaled_drone_net_spec",
    "build_network",
    "parameter_table",
    "NUM_ACTIONS",
]

#: The paper's action space: forward, left 25deg, right 25deg, left 55deg,
#: right 55deg.
NUM_ACTIONS = 5


def modified_alexnet_spec(num_actions: int = NUM_ACTIONS) -> NetworkSpec:
    """Paper-scale modified AlexNet (Fig. 3a).

    Input is a 227x227x3 camera frame (the text quotes n = 224, but the
    published CONV1 output of 55x55 with an 11x11 stride-4 filter implies
    the classic 227 AlexNet input; we follow the published layer shapes).
    """
    conv1 = ConvSpec(
        "CONV1", in_height=227, in_width=227, in_channels=3, out_channels=96,
        kernel=11, stride=4, pad=0, norm=True, pool=3,
    )
    conv2 = ConvSpec(
        "CONV2", in_height=conv1.pooled_height, in_width=conv1.pooled_width,
        in_channels=96, out_channels=256, kernel=5, stride=1, pad=2,
        norm=True, pool=3,
    )
    conv3 = ConvSpec(
        "CONV3", in_height=conv2.pooled_height, in_width=conv2.pooled_width,
        in_channels=256, out_channels=384, kernel=3, stride=1, pad=1,
    )
    conv4 = ConvSpec(
        "CONV4", in_height=conv3.pooled_height, in_width=conv3.pooled_width,
        in_channels=384, out_channels=384, kernel=3, stride=1, pad=1,
    )
    conv5 = ConvSpec(
        "CONV5", in_height=conv4.pooled_height, in_width=conv4.pooled_width,
        in_channels=384, out_channels=256, kernel=3, stride=1, pad=1, pool=3,
    )
    flat = conv5.pooled_height * conv5.pooled_width * conv5.out_channels
    layers = (
        conv1, conv2, conv3, conv4, conv5,
        FCSpec("FC1", in_features=flat, out_features=4096),
        FCSpec("FC2", in_features=4096, out_features=2048),
        FCSpec("FC3", in_features=2048, out_features=2048),
        FCSpec("FC4", in_features=2048, out_features=1024),
        FCSpec("FC5", in_features=1024, out_features=num_actions),
    )
    return NetworkSpec("modified-alexnet", layers, input_side=227, input_channels=3)


def scaled_drone_net_spec(
    input_side: int = 32, num_actions: int = NUM_ACTIONS
) -> NetworkSpec:
    """Reduced drone Q network: 2 CONV + 5 FC layers.

    Preserves the structure the paper's experiments rely on — a
    convolutional feature extractor followed by a five-deep FC tail so
    that the L2/L3/L4/E2E training configurations are all meaningful —
    while staying small enough for pure-NumPy online RL.
    """
    conv1 = ConvSpec(
        "CONV1", in_height=input_side, in_width=input_side, in_channels=1,
        out_channels=8, kernel=5, stride=2, pad=2, pool=3,
    )
    conv2 = ConvSpec(
        "CONV2", in_height=conv1.pooled_height, in_width=conv1.pooled_width,
        in_channels=8, out_channels=16, kernel=3, stride=1, pad=1, pool=3,
    )
    flat = conv2.pooled_height * conv2.pooled_width * conv2.out_channels
    layers = (
        conv1, conv2,
        FCSpec("FC1", in_features=flat, out_features=96),
        FCSpec("FC2", in_features=96, out_features=64),
        FCSpec("FC3", in_features=64, out_features=48),
        FCSpec("FC4", in_features=48, out_features=32),
        FCSpec("FC5", in_features=32, out_features=num_actions),
    )
    return NetworkSpec(
        "scaled-drone-net", layers, input_side=input_side, input_channels=1
    )


def build_network(spec: NetworkSpec, seed: int = 0) -> Network:
    """Instantiate a functional NumPy :class:`Network` from a spec."""
    rng = np.random.default_rng(seed)
    layers = []
    for layer_spec in spec.layers:
        if isinstance(layer_spec, ConvSpec):
            layers.append(
                Conv2D(
                    layer_spec.in_channels,
                    layer_spec.out_channels,
                    layer_spec.kernel,
                    stride=layer_spec.stride,
                    pad=layer_spec.pad,
                    name=layer_spec.name,
                    rng=rng,
                )
            )
            layers.append(ReLU(name=f"{layer_spec.name}.relu"))
            if layer_spec.norm:
                layers.append(LocalResponseNorm(name=f"{layer_spec.name}.norm"))
            if layer_spec.pool is not None:
                layers.append(
                    MaxPool2D(
                        layer_spec.pool,
                        layer_spec.pool_stride,
                        name=f"{layer_spec.name}.pool",
                    )
                )
        elif isinstance(layer_spec, FCSpec):
            if not any(isinstance(l, Flatten) for l in layers):
                layers.append(Flatten())
            layers.append(
                Dense(
                    layer_spec.in_features,
                    layer_spec.out_features,
                    name=layer_spec.name,
                    rng=rng,
                )
            )
            if layer_spec is not spec.layers[-1]:
                layers.append(ReLU(name=f"{layer_spec.name}.relu"))
        else:  # pragma: no cover - spec classes are closed
            raise TypeError(f"unknown spec type: {type(layer_spec)!r}")
    return Network(layers, name=spec.name)


def parameter_table(spec: NetworkSpec) -> list[dict[str, float]]:
    """Reproduce the Fig. 3a table for the FC layers of ``spec``.

    Each row gives the layer name, input neuron count, weight count, the
    layer's percentage of total network weights, and the cumulative
    percentage from this layer to the output (the paper's "% cumulative
    weights" column, which is what the L2/L3/L4 SRAM capacities store).
    """
    total = spec.total_weights
    fcs = spec.fc_layers
    rows = []
    cumulative_from = {}
    running = 0
    for layer in reversed(fcs):
        running += layer.weight_count
        cumulative_from[layer.name] = running
    for layer in fcs:
        rows.append(
            {
                "layer": layer.name,
                "neurons": layer.in_features,
                "weights": layer.weight_count,
                "pct_total": 100.0 * layer.weight_count / total,
                "pct_cumulative": 100.0 * cumulative_from[layer.name] / total,
            }
        )
    return rows
