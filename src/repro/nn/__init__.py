"""Pure-NumPy neural-network substrate.

The paper trains a modified AlexNet (5 CONV + 5 FC layers, Fig. 3a) with
deep Q-learning, and its central algorithmic idea is *partial* online
training: only the last ``i`` fully connected layers are updated in real
time (configurations L2/L3/L4), while the frozen prefix lives in STT-MRAM.

This package implements the layers, the network container with
``backward(..., first_trainable=...)`` partial backpropagation, optimisers,
Q-learning losses, and the paper's network specifications at both paper
scale (for analytic hardware costing) and reduced scale (for functional RL
training inside tests and benchmarks).
"""

from repro.nn.initializers import he_normal, glorot_uniform, imagenet_stub
from repro.nn.layers import (
    Layer,
    Parameter,
    Conv2D,
    Dense,
    ReLU,
    LocalResponseNorm,
    MaxPool2D,
    Dropout,
    Flatten,
)
from repro.nn.network import Network
from repro.nn.optim import SGD, RMSProp, Optimizer
from repro.nn.losses import mse_loss, huber_loss, q_learning_loss
from repro.nn.specs import ConvSpec, FCSpec, LayerSpec, NetworkSpec
from repro.nn.alexnet import (
    modified_alexnet_spec,
    scaled_drone_net_spec,
    build_network,
    parameter_table,
)
from repro.nn.quantize import QuantizedNetwork, quantize_network_report

__all__ = [
    "he_normal",
    "glorot_uniform",
    "imagenet_stub",
    "Layer",
    "Parameter",
    "Conv2D",
    "Dense",
    "ReLU",
    "LocalResponseNorm",
    "MaxPool2D",
    "Dropout",
    "Flatten",
    "Network",
    "SGD",
    "RMSProp",
    "Optimizer",
    "mse_loss",
    "huber_loss",
    "q_learning_loss",
    "ConvSpec",
    "FCSpec",
    "LayerSpec",
    "NetworkSpec",
    "modified_alexnet_spec",
    "scaled_drone_net_spec",
    "build_network",
    "parameter_table",
    "QuantizedNetwork",
    "quantize_network_report",
]
