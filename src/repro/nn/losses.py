"""Loss functions for Q-learning.

The DQN-style target of eq. (1) in the paper,
``Q(s, a) = r + gamma * max_a' Q(s', a')``, is regressed with a mean
squared (or Huber) loss applied only to the Q output of the action that
was actually taken.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "huber_loss", "q_learning_loss"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss and gradient — quadratic near zero, linear in the tails."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    losses = np.where(quadratic, 0.5 * diff**2, delta * (abs_diff - 0.5 * delta))
    grads = np.where(quadratic, diff, delta * np.sign(diff))
    return float(np.mean(losses)), grads / diff.size


def q_learning_loss(
    q_values: np.ndarray,
    actions: np.ndarray,
    targets: np.ndarray,
    kind: str = "mse",
) -> tuple[float, np.ndarray]:
    """Loss over the Q outputs of the *taken* actions only.

    Parameters
    ----------
    q_values:
        (N, num_actions) predicted Q values.
    actions:
        (N,) integer indices of the actions taken.
    targets:
        (N,) Bellman targets ``r + gamma * max_a' Q(s', a')``.

    Returns
    -------
    loss, grad
        Scalar loss and an (N, num_actions) gradient that is zero for
        actions that were not taken.
    """
    q_values = np.asarray(q_values, dtype=np.float64)
    actions = np.asarray(actions)
    targets = np.asarray(targets, dtype=np.float64)
    if q_values.ndim != 2:
        raise ValueError("q_values must be (N, num_actions)")
    n = q_values.shape[0]
    if actions.shape != (n,) or targets.shape != (n,):
        raise ValueError("actions and targets must be (N,)")
    if actions.min() < 0 or actions.max() >= q_values.shape[1]:
        raise ValueError("action index out of range")
    taken = q_values[np.arange(n), actions]
    if kind == "mse":
        loss, dtaken = mse_loss(taken, targets)
    elif kind == "huber":
        loss, dtaken = huber_loss(taken, targets)
    else:
        raise ValueError(f"unknown loss kind: {kind!r}")
    grad = np.zeros_like(q_values)
    grad[np.arange(n), actions] = dtaken
    return loss, grad
