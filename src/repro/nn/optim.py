"""Gradient-descent optimisers.

The paper's platform accumulates weight/bias gradient *sums* over a batch
in the SRAM global buffer and applies one update per training iteration
(Fig. 3b); both optimisers here therefore expose a plain ``step()`` over
already-accumulated gradients, mirroring that execution model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "RMSProp"]


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimiser needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear the gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for vel, p in zip(self._velocity, self.params):
            if self.momentum:
                vel *= self.momentum
                vel += p.grad
                p.value -= self.lr * vel
            else:
                p.value -= self.lr * p.grad


class RMSProp(Optimizer):
    """RMSProp, the optimiser conventionally used with DQN-style agents."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        decay: float = 0.95,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = decay
        self.eps = eps
        self._mean_square = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for ms, p in zip(self._mean_square, self.params):
            ms *= self.decay
            ms += (1.0 - self.decay) * p.grad**2
            p.value -= self.lr * p.grad / (np.sqrt(ms) + self.eps)
