"""Fixed-point (quantised) inference.

The platform computes in 16-bit fixed point (Fig. 4b); the TL model
downloaded to the drone is therefore a quantised snapshot of the
floating-point meta-model.  :class:`QuantizedNetwork` wraps a trained
:class:`~repro.nn.network.Network` with per-layer weight quantisation
and activation re-quantisation between layers, so the library can answer
the practical question the paper's co-design assumes away: *does the
policy survive 16-bit arithmetic?*  (It does — see the tests and the
``quantization_study`` example.)
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat, Q2_13, Q8_8, quantization_stats
from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Network
from repro.systolic.kernels import conv2d_gemm, fc_forward_gemm

__all__ = ["QuantizedNetwork", "quantize_network_report"]


class QuantizedNetwork:
    """A 16-bit fixed-point view of a trained network.

    Parameters
    ----------
    network:
        The trained floating-point network (not modified).
    weight_format:
        Q-format for weights/biases; defaults to Q2.13 (weights of a
        trained ReLU network are small).
    activation_format:
        Q-format for inter-layer activations; defaults to Q8.8 (sums can
        exceed the weight range).
    """

    def __init__(
        self,
        network: Network,
        weight_format: QFormat = Q2_13,
        activation_format: QFormat = Q8_8,
    ):
        self.network = network
        self.weight_format = weight_format
        self.activation_format = activation_format
        self._quantized_state: dict[str, np.ndarray] = {}
        self.refresh_quantized_state()

    def refresh_quantized_state(self) -> None:
        """Re-quantise the float network's current weights.

        The constructor snapshot models the one-time TL model download;
        call this after an online training update so the fixed-point
        view tracks the live weights (the platform's SRAM write-back).
        """
        self._quantized_state = {
            p.name: self.weight_format.quantize(p.value)
            for p in self.network.parameters()
        }

    def weight_error_stats(self):
        """Quantisation error statistics over all weights."""
        flat = np.concatenate(
            [p.value.ravel() for p in self.network.parameters()]
        )
        return quantization_stats(flat, self.weight_format)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass with quantised weights and activations.

        Weights are swapped in layer by layer; activations are
        re-quantised after every layer, emulating the 16-bit datapath.
        """
        x = self.activation_format.quantize(x)
        for layer in self.network.layers:
            params = layer.parameters()
            if params:
                saved = [p.value for p in params]
                for p in params:
                    p.value = self._quantized_state[p.name]
                try:
                    x = layer.forward(x, training=False)
                finally:
                    for p, value in zip(params, saved):
                        p.value = value
            else:
                x = layer.forward(x, training=False)
            x = self.activation_format.quantize(x)
        return x

    def predict_batch(self, x: np.ndarray) -> np.ndarray:
        """Batched quantised forward pass through the shared GEMM kernels.

        Bitwise-identical to :meth:`predict` (the per-layer weight-swap
        reference path, kept as the cross-validation oracle), but runs
        the parametric layers directly through
        :mod:`repro.systolic.kernels` with the pre-quantised weight
        tensors — no ``Parameter`` mutation, so concurrent callers never
        observe a half-swapped network, and conv/FC layers hit the same
        batched BLAS dispatches as the systolic fast path.
        """
        x = self.activation_format.quantize(np.asarray(x, dtype=np.float64))
        for layer in self.network.layers:
            if isinstance(layer, Conv2D):
                w = self._quantized_state[layer.weight.name]
                b = self._quantized_state[layer.bias.name]
                x = conv2d_gemm(x, w, stride=layer.stride, pad=layer.pad)
                x = x + b[None, :, None, None]
            elif isinstance(layer, Dense):
                w = self._quantized_state[layer.weight.name]
                b = self._quantized_state[layer.bias.name]
                x = fc_forward_gemm(x, w) + b
            else:
                x = layer.forward(x, training=False)
            x = self.activation_format.quantize(x)
        return x

    def agreement_rate(self, states: np.ndarray) -> float:
        """Fraction of states whose greedy action survives quantisation."""
        if states.ndim < 2 or states.shape[0] == 0:
            raise ValueError("states must be a non-empty batch")
        fp = self.network.predict(states).argmax(axis=1)
        qp = self.predict_batch(states).argmax(axis=1)
        return float(np.mean(fp == qp))


def quantize_network_report(
    network: Network, formats: list[QFormat] | None = None
) -> list[dict[str, float]]:
    """Weight-quantisation error per format, for a format-choice study."""
    if formats is None:
        formats = [QFormat(2, 5), Q8_8, Q2_13]
    rows = []
    flat = np.concatenate([p.value.ravel() for p in network.parameters()])
    for fmt in formats:
        stats = quantization_stats(flat, fmt)
        rows.append(
            {
                "format": str(fmt),
                "bits": fmt.total_bits,
                "max_abs_error": stats.max_abs_error,
                "snr_db": stats.snr_db,
                "saturated_fraction": stats.saturated_fraction,
            }
        )
    return rows
