"""Shape-level network specifications.

The hardware cost model (:mod:`repro.perf`) and memory mapper
(:mod:`repro.memory.mapping`) need per-layer shapes, weight counts and MAC
counts for the paper-scale modified AlexNet *without* allocating its
56 million weights.  These dataclasses carry exactly that arithmetic and
also drive :func:`repro.nn.alexnet.build_network` when a functional
(NumPy) instance is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LayerSpec", "ConvSpec", "FCSpec", "NetworkSpec"]


@dataclass(frozen=True)
class LayerSpec:
    """Common interface for layer shape arithmetic."""

    name: str

    @property
    def weight_count(self) -> int:
        """Trainable scalars, including biases."""
        raise NotImplementedError

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations in one forward pass (batch 1)."""
        raise NotImplementedError

    @property
    def output_activations(self) -> int:
        """Number of scalar activations produced."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConvSpec(LayerSpec):
    """Convolution layer shape (optionally followed by ReLU/norm/pool)."""

    in_height: int = 0
    in_width: int = 0
    in_channels: int = 0
    out_channels: int = 0
    kernel: int = 0
    stride: int = 1
    pad: int = 0
    norm: bool = False
    pool: int | None = None  # pool kernel (stride fixed at 2, AlexNet style)
    pool_stride: int = 2

    def __post_init__(self) -> None:
        if min(self.in_height, self.in_width, self.in_channels, self.out_channels) <= 0:
            raise ValueError(f"{self.name}: dimensions must be positive")
        if self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"{self.name}: kernel and stride must be positive")

    @property
    def out_height(self) -> int:
        """Convolution output height (pre-pooling)."""
        return (self.in_height + 2 * self.pad - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Convolution output width (pre-pooling)."""
        return (self.in_width + 2 * self.pad - self.kernel) // self.stride + 1

    @property
    def pooled_height(self) -> int:
        """Output height after the optional max-pool."""
        if self.pool is None:
            return self.out_height
        return (self.out_height - self.pool) // self.pool_stride + 1

    @property
    def pooled_width(self) -> int:
        """Output width after the optional max-pool."""
        if self.pool is None:
            return self.out_width
        return (self.out_width - self.pool) // self.pool_stride + 1

    @property
    def weight_count(self) -> int:
        return self.out_channels * (self.in_channels * self.kernel * self.kernel) + self.out_channels

    @property
    def macs(self) -> int:
        return (
            self.out_height
            * self.out_width
            * self.out_channels
            * self.kernel
            * self.kernel
            * self.in_channels
        )

    @property
    def input_activations(self) -> int:
        """Scalar activations consumed (one input frame)."""
        return self.in_height * self.in_width * self.in_channels

    @property
    def output_activations(self) -> int:
        return self.pooled_height * self.pooled_width * self.out_channels


@dataclass(frozen=True)
class FCSpec(LayerSpec):
    """Fully connected layer shape (optionally followed by ReLU)."""

    in_features: int = 0
    out_features: int = 0

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError(f"{self.name}: feature counts must be positive")

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features + self.out_features

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def input_activations(self) -> int:
        """Scalar activations consumed."""
        return self.in_features

    @property
    def output_activations(self) -> int:
        return self.out_features


@dataclass(frozen=True)
class NetworkSpec:
    """An ordered list of layer specs plus bookkeeping helpers."""

    name: str
    layers: tuple[LayerSpec, ...]
    input_side: int = 227
    input_channels: int = 3
    weight_bits: int = 16

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("network spec needs at least one layer")

    @property
    def conv_layers(self) -> tuple[ConvSpec, ...]:
        """The convolutional prefix."""
        return tuple(l for l in self.layers if isinstance(l, ConvSpec))

    @property
    def fc_layers(self) -> tuple[FCSpec, ...]:
        """The fully connected tail."""
        return tuple(l for l in self.layers if isinstance(l, FCSpec))

    @property
    def total_weights(self) -> int:
        """Grand total weight count (Fig. 3a: 56 190 341 at paper scale)."""
        return sum(l.weight_count for l in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Model size in bytes at the platform's fixed-point width."""
        return self.total_weights * self.weight_bits // 8

    def layer(self, name: str) -> LayerSpec:
        """Look a layer up by name (e.g. ``"FC2"``)."""
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise KeyError(f"no layer named {name!r} in {self.name}")

    def last_fc(self, count: int) -> tuple[FCSpec, ...]:
        """The last ``count`` FC layers (the online-trainable tail)."""
        fcs = self.fc_layers
        if not 1 <= count <= len(fcs):
            raise ValueError(f"count must be in [1, {len(fcs)}]")
        return fcs[len(fcs) - count :]

    def trainable_weights(self, last_k_fc: int | None) -> int:
        """Weights updated online when training the last ``k`` FC layers.

        ``None`` means end-to-end (every weight trains).
        """
        if last_k_fc is None:
            return self.total_weights
        return sum(l.weight_count for l in self.last_fc(last_k_fc))

    def trainable_fraction(self, last_k_fc: int | None) -> float:
        """Fraction of all weights trained online (Fig. 3b: 4/11/26 %)."""
        return self.trainable_weights(last_k_fc) / self.total_weights
