"""Command-line interface: regenerate any paper artifact from the shell.

    python -m repro fig1          # min-fps table (Fig. 1c)
    python -m repro fig3          # network/weight table (Fig. 3a)
    python -m repro fig5          # memory mapping (Fig. 5)
    python -m repro fig6          # conv mapping schemes (Fig. 6)
    python -m repro fig12         # per-layer costs vs paper (Fig. 12)
    python -m repro fig13         # fps vs batch + savings (Fig. 13)
    python -m repro params        # Table 1 + Fig. 4b parameters
    python -m repro rl --env indoor-apartment --iters 800 --seed 0
    python -m repro map --env outdoor-forest  # ASCII world render
    python -m repro fleet --num-envs 16 --rounds 2 --steps 150 --seed 0
    python -m repro fleet --backend systolic  # hardware-in-the-loop rollouts
    python -m repro fleet --backend sharded --shards 4 --shard-policy sample \\
        --sync-every 4                        # K arrays + async weight bus
    python -m repro fleet --backend systolic --train-on-array \\
                                              # charge training to the array
    python -m repro fleet --backend sharded --shards 4 \\
        --trace trace.json --metrics metrics.prom \\
                                              # span trace + metrics export
    python -m repro fleet --backend sharded --shards 4 \\
        --faults "seed=7,crash=1@30"          # seeded chaos run + failover
    python -m repro systolic-bench            # fast path vs PE oracle
    python -m repro systolic-bench --training # whole-network training step

The ``systolic-bench`` command measures the vectorized systolic fast
path (:mod:`repro.systolic`, ``fidelity="fast"``) against the loop-level
PE oracle on a small conv layer — re-proving output and cycle-count
equivalence as it times them — then runs the paper-scale modified
AlexNet through the functional simulators (infeasible for the oracle)
and reports per-layer wall time, MACs and modelled array cycles.  Its
``--training`` mode does the same for a whole training step (Fig. 3b):
the paper-scale per-layer forward / dL/dW / dL/dX cycle table from the
closed-form model, plus a fast-vs-oracle equivalence benchmark of the
chained backward passes on a reduced spec.

The ``fleet`` command runs the vectorized multi-environment engine
(:mod:`repro.fleet`): one shared agent drives N environments through
rollout → train → evaluate rounds with batched inference/updates, then
reports per-round throughput (env steps/sec, episodes/sec), safe flight
distance per environment class, and the measured load projected onto
the paper platform's FPS / energy / NVM-endurance model.  Its
``--backend {numpy,quantized,systolic,sharded}`` flag selects the
execution backend action selection routes through (:mod:`repro.backend`):
``numpy`` is the float path, ``quantized`` the 16-bit fixed-point
datapath, ``systolic`` the accelerator-in-the-loop path whose
rollouts carry per-step array-cycle budgets into the report and the
platform projection, and ``sharded`` composes K systolic arrays
(``--shards K``, ``--shard-policy {sample,layer}``) and additionally
reports critical-path cycles, scaling efficiency and pipeline overlap.
``--sync-every N`` sets the weight-bus flip cadence — the deployed
datapath refreshes its quantised snapshot every N training updates
instead of after every one, and the report carries the measured
snapshot staleness.  ``--train-on-array`` charges every training update
the closed-form whole-network training-step cost on the backend's
array(s) and projects whether rollout and training fit *concurrently*
(combined utilization, single- and K-array).  ``--pipeline-chunk N``
sets the rollout chunk size of the interleaved pipeline.  ``--faults
SPEC`` runs the whole fleet under seeded deterministic fault injection
(:mod:`repro.faults`: SRAM bit flips, shard crashes/stragglers,
weight-bus drops and corruption, sensor dropout) and appends a
fault-tolerance section — injected/detected/recovered counts,
availability, MTTR in rounds, degraded-mode fraction and recovery
overhead.  A fixed-point-vs-float action-agreement check over replayed
rollout states closes the report.
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    ascii_bars,
    format_fig12_table,
    format_mapping_table,
    format_table,
)
from repro.core import paper_system_parameters
from repro.env.fps import DMIN_TABLE, PAPER_SPEEDS, fps_requirement_table
from repro.env.generators import ENVIRONMENTS, make_environment
from repro.env.trace import render_world_ascii
from repro.memory import STT_MRAM, WeightMapper
from repro.nn import modified_alexnet_spec, parameter_table
from repro.perf import (
    LayerCostModel,
    PAPER_FIG12_BACKWARD,
    PAPER_FIG12_FORWARD,
    fps_vs_batch_table,
    savings_vs_e2e,
)
from repro.rl import config_by_name, run_transfer_experiment
from repro.systolic import NOC_TOPOLOGIES, map_conv_layer

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    """argparse type for flags that must be >= 1 (counts, cadences)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _workers_spec(value: str) -> str:
    """argparse type for --workers: 'auto' or a positive integer."""
    if value == "auto":
        return value
    _positive_int(value)
    return value


def _cmd_fig1(_args) -> None:
    table = fps_requirement_table()
    rows = [
        [env, DMIN_TABLE[env]] + [round(float(v), 3) for v in table[env]]
        for env in sorted(table)
    ]
    print(format_table(["Environment", "d_min"] + [f"{v} m/s" for v in PAPER_SPEEDS], rows))


def _cmd_fig3(_args) -> None:
    spec = modified_alexnet_spec()
    rows = [
        [r["layer"], r["neurons"], r["weights"],
         round(r["pct_total"], 3), round(r["pct_cumulative"], 3)]
        for r in parameter_table(spec)
    ]
    rows.append(["total", "", spec.total_weights, 100.0, ""])
    print(format_table(["Layer", "# neurons", "# weights", "% total", "% cumul"], rows))


def _cmd_fig5(_args) -> None:
    spec = modified_alexnet_spec()
    rows = []
    for name in ("L2", "L3", "L4", "E2E"):
        r = WeightMapper(spec, config_by_name(name)).build()
        rows.append(
            [name, round(r.nvm_mb, 1), round(r.sram_weight_bytes / 1e6, 1),
             round(r.sram_gradient_bytes / 1e6, 1),
             round(r.sram_scratchpad_bytes / 1e6, 1), round(r.sram_total_mb, 1)]
        )
    print(format_table(
        ["Config", "NVM MB", "SRAM wts", "SRAM grads", "Scratch", "SRAM total"], rows
    ))


def _cmd_fig6(_args) -> None:
    spec = modified_alexnet_spec()
    print(format_mapping_table([map_conv_layer(c) for c in spec.conv_layers]))


def _cmd_fig12(_args) -> None:
    spec = modified_alexnet_spec()
    model = LayerCostModel(spec, config_by_name("E2E"))
    print("Forward (model vs paper):")
    print(format_fig12_table(model.forward_costs(), PAPER_FIG12_FORWARD))
    print()
    print("Backward, E2E baseline (model vs paper):")
    print(format_fig12_table(model.backward_costs(), PAPER_FIG12_BACKWARD))


def _cmd_fig13(_args) -> None:
    spec = modified_alexnet_spec()
    models = {
        name: LayerCostModel(spec, config_by_name(name))
        for name in ("L2", "L3", "L4", "E2E")
    }
    table = fps_vs_batch_table(models)
    rows = [
        [name] + [round(table[name][b], 2) for b in (4, 8, 16)]
        for name in table
    ]
    print(format_table(["Config", "batch 4", "batch 8", "batch 16"], rows))
    print()
    print(ascii_bars(list(table), [table[n][4] for n in table],
                     title="fps at batch 4", unit=" fps"))
    print()
    for name in ("L2", "L3", "L4"):
        s = savings_vs_e2e(models[name], models["E2E"])
        print(
            f"{name} vs E2E: latency -{s['latency_decrease_pct']:.1f}%, "
            f"energy -{s['energy_decrease_pct']:.1f}%"
        )


def _cmd_params(_args) -> None:
    print("Table 1 — STT-MRAM:")
    print(format_table(
        ["Parameter", "Value"],
        [
            ["Write latency", f"{STT_MRAM.write_latency_s * 1e9:.0f} ns"],
            ["Read latency", f"{STT_MRAM.read_latency_s * 1e9:.0f} ns"],
            ["Write energy", f"{STT_MRAM.write_energy_per_bit_j * 1e12:.1f} pJ/bit"],
            ["Read energy", f"{STT_MRAM.read_energy_per_bit_j * 1e12:.1f} pJ/bit"],
        ],
    ))
    print()
    p = paper_system_parameters()
    print("Fig. 4b — system parameters:")
    print(format_table(
        ["Parameter", "Value"],
        [
            ["Technology", p.technology],
            ["PEs", f"{p.num_pes} ({p.pe_grid[0]}x{p.pe_grid[1]})"],
            ["Buffer/scratch", f"{p.global_buffer_mb}/{p.scratchpad_mb} MB"],
            ["RF per PE", f"{p.register_file_per_pe_kb} KB"],
            ["Voltage", f"{p.operating_voltage_v} V"],
            ["Clock", f"{p.clock_hz / 1e9:.0f} GHz"],
            ["Precision", f"{p.arithmetic_precision_bits}-bit fixed"],
            ["PE link", f"{p.pe_link_bits} bit"],
        ],
    ))


def _cmd_timeline(args) -> None:
    from repro.perf import build_timeline

    spec = modified_alexnet_spec()
    model = LayerCostModel(spec, config_by_name(args.config))
    timeline = build_timeline(model)
    print(timeline.gantt_ascii())
    by_kind = timeline.by_kind()
    print()
    for kind, seconds in by_kind.items():
        print(f"  {kind}: {seconds * 1e3:.2f} ms")
    print(f"  hidden NVM stream time: {timeline.hidden_stream_s * 1e3:.3f} ms")


def _cmd_rl(args) -> None:
    results = run_transfer_experiment(
        args.env,
        meta_iterations=args.iters,
        adapt_iterations=args.iters,
        seed=args.seed,
        image_side=16,
    )
    rows = [
        [name, round(r.final_reward, 3), round(r.safe_flight_distance, 2),
         r.crash_count]
        for name, r in results.items()
    ]
    print(format_table(["Config", "Final reward", "SFD (m)", "Crashes"], rows))


def _timing_breakdown(tracer, array_config) -> str:
    """The fleet report's "Timing breakdown" section.

    One row per span name: host wall time next to the modelled array
    time of the cycles charged while the span was open, and their ratio
    — >1 means the host is slower than the hardware it simulates, the
    visibility half of the ROADMAP's wall-clock item.  Phase rows
    (``phase:*``) additionally render as a bar chart.
    """
    summary = tracer.summary()
    if not summary:
        return "Timing breakdown: no spans recorded"

    def order(item):
        name = item[0]
        if name == "fleet.round":
            return (0, name)
        if name.startswith("phase:"):
            return (1, name)
        return (2, name)

    rows = []
    for name, row in sorted(summary.items(), key=order):
        wall_ms = row["wall_s"] * 1e3
        modelled_ms = array_config.seconds(row["cycles"]) * 1e3
        ratio = (
            f"{wall_ms / modelled_ms:.0f}x" if modelled_ms > 0 else "-"
        )
        rows.append(
            [
                name,
                row["count"],
                round(wall_ms, 2),
                round(row["cycles"] / 1e6, 3),
                round(modelled_ms, 3),
                ratio,
            ]
        )
    table = format_table(
        ["Span", "Count", "Wall ms", "Mcycles", "Modelled ms", "Wall/modelled"],
        rows,
    )
    phases = [
        (name, row) for name, row in summary.items()
        if name.startswith("phase:")
    ]
    chart = ascii_bars(
        [name for name, _ in sorted(phases)],
        [row["wall_s"] * 1e3 for _, row in sorted(phases)],
        title="phase wall time",
        unit=" ms",
    )
    return "Timing breakdown:\n" + table + "\n\n" + chart


def _cmd_fleet(args) -> None:
    import numpy as np

    from repro.backend import SystolicBackend, make_backend
    from repro.fleet import FleetScheduler, VecNavigationEnv
    from repro.nn import build_network, scaled_drone_net_spec
    from repro.rl import EpsilonSchedule, QLearningAgent

    names = args.envs or sorted(ENVIRONMENTS)
    if args.envs and args.num_envs < len(args.envs):
        raise SystemExit(
            f"error: --num-envs {args.num_envs} is smaller than the "
            f"{len(args.envs)} requested --envs classes; some classes "
            "would be silently dropped"
        )
    vec_env = VecNavigationEnv.from_names(
        names,
        seeds=[args.seed + i for i in range(args.num_envs)],
        image_side=args.image_side,
        max_episode_steps=400,
        workers=args.workers,
    )
    network = build_network(
        scaled_drone_net_spec(input_side=args.image_side), seed=args.seed
    )
    # decay_steps counts per-state schedule steps: each fleet step
    # consumes num_envs of them (rollout and eval phases alike).
    total_agent_steps = (
        args.num_envs * (args.steps + args.eval_steps) * args.rounds
    )
    backend_kwargs = (
        {
            "shards": args.shards,
            "shard": args.shard_policy,
            "workers": args.workers,
            "noc": args.noc,
        }
        if args.backend == "sharded"
        else {}
    )
    agent = QLearningAgent(
        network,
        config=config_by_name(args.config),
        epsilon=EpsilonSchedule(1.0, 0.1, max(total_agent_steps // 2, 1)),
        seed=args.seed,
        backend=make_backend(args.backend, network, **backend_kwargs),
        sync_every=args.sync_every,
        train_on_array=args.train_on_array,
    )
    scheduler = FleetScheduler(
        agent, vec_env, train_every=args.train_every,
        eval_steps=args.eval_steps, pipeline_chunk=args.pipeline_chunk,
    )
    plan = None
    if args.faults is not None:
        from repro.faults import FAULTS, parse_fault_spec

        try:
            plan = parse_fault_spec(args.faults)
        except ValueError as exc:
            raise SystemExit(f"error: bad --faults spec: {exc}")
    # Any observability output switches the probe seam on for the run —
    # a fresh tracer and a private registry, so two invocations in one
    # process never mix telemetry.
    probing = bool(args.trace or args.metrics or args.json)
    tracer = registry = None
    if probing:
        from repro.obs import PROBE, MetricsRegistry

        registry = MetricsRegistry()
        tracer = PROBE.activate(registry=registry)
    try:
        if plan is not None:
            FAULTS.activate(plan)
        report = scheduler.run(rounds=args.rounds, steps_per_round=args.steps)
    finally:
        if plan is not None:
            FAULTS.deactivate()
        if probing:
            PROBE.deactivate()
    rows = [
        [
            r.round_index,
            r.env_steps,
            r.episodes,
            r.train_updates,
            round(r.steps_per_second, 1),
            round(r.episodes_per_second, 2),
            round(r.mean_loss, 4),
        ]
        for r in report.rounds
    ]
    print(format_table(
        ["Round", "Steps", "Episodes", "Updates", "Steps/s", "Episodes/s", "Loss"],
        rows,
    ))
    print()
    print(format_table(
        ["Environment class", "SFD (m)"],
        [[name, round(v, 2)] for name, v in report.sfd_by_class.items()],
    ))
    if plan is not None:
        _print_fleet_faults(report)
    projection = None
    try:
        projection = scheduler.project_load(report)
    except ValueError as exc:
        print()
        print(f"no platform projection: {exc}")
    if projection is not None:
        _print_fleet_projection(args, agent, scheduler, report, projection, np)
    if probing:
        _finish_fleet_observability(
            args, report, projection, scheduler, tracer, registry
        )


def _print_fleet_faults(report) -> None:
    """The fleet report's fault-tolerance section (chaos runs only)."""
    print()
    print(
        f"fault injection: {report.total_faults_injected} injected, "
        f"{report.total_faults_detected} detected, "
        f"{report.total_faults_recovered} recovered; "
        f"availability {report.availability:.3f}, "
        f"MTTR {report.mttr_rounds:.1f} rounds, "
        f"degraded-mode fraction {report.degraded_fraction:.3f}"
    )
    if report.total_fault_recovery_cycles > 0:
        print(
            f"recovery overhead: "
            f"{report.total_fault_recovery_cycles / 1e3:.1f} kcycles "
            "charged to retries, rollbacks and failover health checks"
        )
    by_kind: dict[str, list[dict]] = {}
    for event in report.fault_events:
        by_kind.setdefault(event["kind"], []).append(event)
    if by_kind:
        print(format_table(
            ["Fault kind", "Injected", "Detected", "Recovered"],
            [
                [
                    kind,
                    len(events),
                    sum(1 for e in events if e["detected"]),
                    sum(1 for e in events if e["recovered"]),
                ]
                for kind, events in sorted(by_kind.items())
            ],
        ))


def _print_fleet_projection(args, agent, scheduler, report, projection, np):
    from repro.backend import SystolicBackend

    network = agent.network
    print()
    print(
        f"fleet of {report.num_envs} envs @ {report.steps_per_second:.1f} "
        f"steps/s, {report.train_iterations_per_second:.2f} updates/s "
        f"(batch {projection.batch_size})"
    )
    print(
        f"platform ({projection.config_name}): {projection.accelerator_fps:.2f} "
        f"iterations/s sustainable, utilization {projection.utilization:.2f} "
        f"({'feasible' if projection.realtime_feasible else 'OVERLOADED'}), "
        f"{projection.energy_watts:.2f} W"
    )
    print(
        f"NVM write load {projection.nvm_write_bits_per_second / 1e6:.2f} Mbit/s"
        f" -> endurance {projection.endurance.lifetime_years:.1f} years"
    )
    if report.total_inference_cycles > 0:
        print(
            f"backend '{report.backend}': "
            f"{report.cycles_per_env_step / 1e3:.1f} kcycles/env-step measured "
            f"-> array sustains "
            f"{projection.inference_sustainable_steps_per_second:.0f} steps/s, "
            f"inference utilization {projection.inference_utilization:.4f} "
            f"({'feasible' if projection.inference_realtime_feasible else 'OVERLOADED'})"
        )
    elif args.backend == "numpy":
        # Float rollouts carry no budget: cost the current observation
        # batch post hoc on a float-numerics systolic backend.
        q_cost = SystolicBackend(network, quantized=False).forward_batch(
            scheduler.observations
        )[1]
        print(
            f"systolic fast path: one {q_cost.states}-env observation batch = "
            f"{q_cost.total_cycles / 1e6:.2f} Mcycles "
            f"({q_cost.array_seconds() * 1e6:.0f} us on the paper array)"
        )
    if report.total_training_cycles > 0:
        print(
            f"training on array: "
            f"{report.training_cycles_per_update / 1e3:.1f} kcycles/update "
            f"measured -> array sustains "
            f"{projection.training_sustainable_updates_per_second:.1f} updates/s; "
            f"combined rollout+train utilization "
            f"{projection.combined_array_utilization:.4f} "
            f"({'feasible' if projection.combined_realtime_feasible else 'OVERLOADED'})"
        )
    if report.shards > 1:
        print(
            f"sharded over {report.shards} arrays "
            f"({args.shard_policy} policy): critical path "
            f"{report.critical_path_cycles_per_env_step / 1e3:.1f} "
            f"kcycles/env-step -> {report.shards}-array platform sustains "
            f"{projection.sharded_sustainable_steps_per_second:.0f} steps/s "
            f"(speedup {projection.sharding_speedup:.2f}x, scaling "
            f"efficiency {projection.scaling_efficiency:.2f})"
        )
        print(
            f"critical shard: array {report.critical_shard_index} carried "
            f"the most cycles in "
            f"{sum(1 for r in report.rounds if r.shards > 1 and r.critical_shard_index == report.critical_shard_index)}"
            f"/{sum(1 for r in report.rounds if r.shards > 1)} rounds"
        )
        if report.total_merge_cycles > 0:
            line = (
                f"interconnect ({args.noc} NoC): "
                f"{report.merge_cycles_per_env_step / 1e3:.2f} "
                f"kcycles/env-step on inter-array links "
                f"({projection.interconnect_fraction:.1%} of the "
                f"critical path)"
            )
            if report.total_fill_drain_cycles > 0:
                line += (
                    f"; pipeline fill/drain "
                    f"{report.fill_drain_cycles_per_env_step / 1e3:.2f} "
                    f"kcycles/env-step"
                )
            print(line)
        if report.total_training_cycles > 0:
            print(
                f"concurrent rollout+train on {report.shards} arrays: "
                f"training critical path "
                f"{report.training_critical_path_cycles_per_update / 1e3:.1f} "
                f"kcycles/update -> combined utilization "
                f"{projection.sharded_combined_utilization:.4f} "
                f"({'feasible' if projection.sharded_combined_utilization <= 1.0 else 'OVERLOADED'})"
            )
    if report.total_inference_cycles > 0 or (
        args.sync_every > 1 and agent.backend.has_snapshot
    ):
        print(
            f"weight bus: sync every {agent.weight_bus.sync_every} updates, "
            f"mean served staleness {report.mean_sync_staleness:.2f} updates; "
            f"pipeline overlap fraction {report.pipeline_overlap_fraction:.2f}"
        )
    if args.backend != "numpy" and len(agent.replay) > 0:
        sample = min(len(agent.replay), 256)
        states, _, _, _, _ = agent.replay.sample(
            sample, np.random.default_rng(args.seed)
        )
        agreement = agent.backend.agreement_rate(states)
        print(
            f"{args.backend} policy vs float: {agreement:.3f} action agreement "
            f"over {sample} rollout states"
        )


def _round_payload(r) -> dict:
    """One :class:`~repro.fleet.RoundStats` as a JSON-safe dict."""
    import math

    return {
        "round": r.round_index,
        "env_steps": r.env_steps,
        "episodes": r.episodes,
        "train_updates": r.train_updates,
        "wall_seconds": r.wall_seconds,
        "steps_per_second": r.steps_per_second,
        "mean_loss": None if math.isnan(r.mean_loss) else r.mean_loss,
        "inference_cycles": r.inference_cycles,
        "critical_path_cycles": r.critical_path_cycles,
        "critical_shard_index": r.critical_shard_index,
        "shards": r.shards,
        "sync_staleness": r.sync_staleness,
        "training_cycles": r.training_cycles,
        "eval_sfd_by_class": r.eval_sfd_by_class,
        "faults_injected": r.faults_injected,
        "faults_detected": r.faults_detected,
        "faults_recovered": r.faults_recovered,
        "fault_recovery_cycles": r.fault_recovery_cycles,
        "degraded_states": r.degraded_states,
        "active_shards": r.active_shards,
    }


def _finish_fleet_observability(args, report, projection, scheduler, tracer, registry):
    """Timing breakdown + trace/metrics/json exports of a probed run."""
    import json

    from repro.systolic.array import PAPER_ARRAY

    array_config = (
        getattr(scheduler.agent.backend, "config", None) or PAPER_ARRAY
    )
    print()
    print(_timing_breakdown(tracer, array_config))
    if args.trace:
        tracer.export_chrome(args.trace)
        print(f"wrote {args.trace}")
    if args.metrics:
        registry.export_prometheus(args.metrics)
        print(f"wrote {args.metrics}")
    if args.json:
        payload = {
            "fleet": {
                "num_envs": report.num_envs,
                "backend": report.backend,
                "config": report.config_name,
                "rounds": [_round_payload(r) for r in report.rounds],
                "totals": {
                    "env_steps": report.total_env_steps,
                    "episodes": report.total_episodes,
                    "train_updates": report.total_train_updates,
                    "wall_seconds": report.wall_seconds,
                    "steps_per_second": report.steps_per_second,
                    "train_iterations_per_second": (
                        report.train_iterations_per_second
                    ),
                    "inference_cycles": report.total_inference_cycles,
                    "critical_path_cycles": report.total_critical_path_cycles,
                    "training_cycles": report.total_training_cycles,
                    "shards": report.shards,
                    "critical_shard_index": report.critical_shard_index,
                    "mean_sync_staleness": report.mean_sync_staleness,
                    "pipeline_overlap_fraction": (
                        report.pipeline_overlap_fraction
                    ),
                },
                "sfd_by_class": report.sfd_by_class,
                "crash_counts": report.crash_counts,
                "faults": {
                    "injected": report.total_faults_injected,
                    "detected": report.total_faults_detected,
                    "recovered": report.total_faults_recovered,
                    "recovery_cycles": report.total_fault_recovery_cycles,
                    "degraded_states": report.total_degraded_states,
                    "availability": report.availability,
                    "mttr_rounds": report.mttr_rounds,
                    "degraded_fraction": report.degraded_fraction,
                    "events": report.fault_events,
                },
            },
            "projection": None
            if projection is None
            else {
                "config": projection.config_name,
                "batch_size": projection.batch_size,
                "accelerator_fps": projection.accelerator_fps,
                "utilization": projection.utilization,
                "realtime_feasible": projection.realtime_feasible,
                "energy_watts": projection.energy_watts,
                "nvm_write_bits_per_second": (
                    projection.nvm_write_bits_per_second
                ),
                "endurance_lifetime_years": (
                    projection.endurance.lifetime_years
                ),
                "inference_utilization": projection.inference_utilization,
                "sharding_speedup": projection.sharding_speedup,
                "scaling_efficiency": projection.scaling_efficiency,
            },
            "phases": tracer.summary(),
            "metrics": registry.snapshot(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")


def _cmd_systolic_bench(args) -> None:
    import json

    from repro.systolic import bench_conv_fast_vs_pe, simulate_network_forward
    from repro.systolic.bench import bench_payload

    if args.training:
        _systolic_training_bench(args)
        return
    result = bench_conv_fast_vs_pe(
        channels=args.channels, side=args.side, filters=args.filters,
        kernel=args.kernel, stride=args.stride, seed=args.seed,
    )
    print(format_table(
        ["Path", "Seconds", "MMAC/s"],
        [
            ["pe oracle", round(result.pe_seconds, 4),
             round(result.pe_macs_per_second / 1e6, 2)],
            ["fast", round(result.fast_seconds, 6),
             round(result.fast_macs_per_second / 1e6, 2)],
        ],
    ))
    print(f"{result.shape}: fast path {result.speedup:.0f}x over the PE oracle "
          "(outputs and cycle counters verified identical)")
    forward = None
    if not args.skip_alexnet:
        forward = simulate_network_forward(batch=args.batch, seed=args.seed)
        print()
        print(format_table(
            ["Layer", "Kind", "MMAC", "Mcycles", "Wall ms"],
            [
                [l.name, l.kind, round(l.macs / 1e6, 1),
                 round(l.array_cycles / 1e6, 1),
                 round(l.wall_seconds * 1e3, 2)]
                for l in forward.layers
            ],
        ))
        print(
            f"{forward.network} batch {forward.batch}: "
            f"{forward.total_macs / 1e9:.2f} GMAC in {forward.wall_seconds:.2f}s "
            f"wall ({forward.macs_per_second / 1e6:.0f} MMAC/s simulated); "
            f"modelled array time {forward.array_seconds() * 1e3:.2f} ms"
        )
    if args.json:
        payload = bench_payload(result, forward)
        payload["metrics"] = _bench_metrics_snapshot(
            {
                "repro_bench_fast_seconds": result.fast_seconds,
                "repro_bench_pe_seconds": result.pe_seconds,
                "repro_bench_speedup": result.speedup,
            },
            forward
            and {
                "repro_bench_forward_wall_seconds": forward.wall_seconds,
                "repro_bench_forward_macs": forward.total_macs,
            },
        )
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")


def _bench_metrics_snapshot(*gauge_dicts) -> dict:
    """A registry snapshot built from bench-result gauges.

    The ``metrics`` block of the ``systolic-bench --json`` payloads:
    the same ``{"counters", "gauges", "histograms"}`` shape the fleet
    payload carries, so the future ``repro.tune`` explorer reads one
    telemetry schema everywhere.
    """
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    for gauges in gauge_dicts:
        if not gauges:
            continue
        for name, value in gauges.items():
            registry.gauge(
                name, help="systolic-bench result gauge."
            ).set(value)
    return registry.snapshot()


def _systolic_training_bench(args) -> None:
    """``systolic-bench --training``: whole-network training-step costs.

    Prints the paper-scale per-layer forward / dL/dW / dL/dX cycle
    table from the closed-form training-step model, the modelled
    iteration rate at the requested batch, and a fast-vs-oracle
    equivalence check (counters identical, gradients matching) on a
    reduced spec the PE oracle can finish.
    """
    import json

    from repro.systolic import bench_training_fast_vs_pe, training_step_stats

    step = training_step_stats(batch=args.batch)
    print(format_table(
        ["Layer", "Kind", "Fwd Mcyc", "dW Mcyc", "dX Mcyc", "Upd kwts"],
        [
            [l.name, l.kind, round(l.forward_cycles / 1e6, 1),
             round(l.dw_cycles / 1e6, 1), round(l.dx_cycles / 1e6, 1),
             round(l.weight_elements / 1e3, 1)]
            for l in step.layers
        ],
    ))
    print(
        f"{step.network} batch {step.batch} training step: "
        f"{step.total_cycles / 1e9:.2f} Gcycles "
        f"({step.total_forward_cycles / 1e9:.2f} fwd + "
        f"{step.total_backward_cycles / 1e9:.2f} bwd) -> "
        f"{step.iterations_per_second():.3f} iterations/s on the paper array; "
        f"weight update {step.weight_update_bits() / 8e6:.1f} MB/step"
    )
    print()
    bench = bench_training_fast_vs_pe(batch=args.batch, seed=args.seed)
    print(format_table(
        ["Path", "Seconds", "MMAC/s"],
        [
            ["pe oracle", round(bench.pe_seconds, 4),
             round(bench.pe_macs_per_second / 1e6, 2)],
            ["fast", round(bench.fast_seconds, 6),
             round(bench.fast_macs_per_second / 1e6, 2)],
        ],
    ))
    print(
        f"{bench.network} batch {bench.batch} training step: fast path "
        f"{bench.speedup:.0f}x over the oracle (counters and gradients "
        "verified identical)"
    )
    if args.json:
        payload = {
            "training_step": {
                "network": step.network,
                "batch": step.batch,
                "total_cycles": step.total_cycles,
                "forward_cycles": step.total_forward_cycles,
                "backward_cycles": step.total_backward_cycles,
                "iterations_per_second": step.iterations_per_second(),
                "weight_update_elements": step.weight_update_elements,
            },
            "bench_training": {
                "network": bench.network,
                "batch": bench.batch,
                "speedup": bench.speedup,
                "pe_seconds": bench.pe_seconds,
                "fast_seconds": bench.fast_seconds,
            },
            "metrics": _bench_metrics_snapshot(
                {
                    "repro_training_step_cycles": step.total_cycles,
                    "repro_training_iterations_per_second": (
                        step.iterations_per_second()
                    ),
                    "repro_bench_training_fast_seconds": bench.fast_seconds,
                    "repro_bench_training_pe_seconds": bench.pe_seconds,
                    "repro_bench_training_speedup": bench.speedup,
                }
            ),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")


def _cmd_map(args) -> None:
    world = make_environment(args.env, seed=args.seed)
    print(render_world_ascii(world))


def _cmd_report(args) -> None:
    from repro.analysis import write_report

    out = write_report(args.results, args.output)
    print(f"wrote {out}")


def _cmd_roofline(_args) -> None:
    from repro.perf import RooflineModel

    spec = modified_alexnet_spec()
    model = RooflineModel()
    print(
        f"peak {model.peak_gmacs:.0f} GMAC/s | stream {model.stream_gbytes:.0f} "
        f"GB/s | ridge {model.ridge_intensity:.0f} MAC/B"
    )
    rows = [
        [
            p.layer,
            round(p.operational_intensity, 2),
            round(p.attainable_gmacs, 1),
            "compute" if p.compute_bound else "bandwidth",
        ]
        for p in model.analyze_network(spec)
    ]
    print(format_table(["Layer", "MAC/B", "GMAC/s", "Bound"], rows))


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of the DATE 2019 STT-MRAM drone paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in [
        ("fig1", _cmd_fig1), ("fig3", _cmd_fig3), ("fig5", _cmd_fig5),
        ("fig6", _cmd_fig6), ("fig12", _cmd_fig12), ("fig13", _cmd_fig13),
        ("params", _cmd_params), ("roofline", _cmd_roofline),
    ]:
        p = sub.add_parser(name, help=fn.__doc__)
        p.set_defaults(func=fn)
    p_tl = sub.add_parser(
        "timeline", help="Gantt chart of one training pass on the platform"
    )
    p_tl.add_argument("--config", default="L3", choices=["L2", "L3", "L4", "E2E"])
    p_tl.set_defaults(func=_cmd_timeline)
    p_rl = sub.add_parser("rl", help="run the scaled TL + online-RL experiment")
    p_rl.add_argument("--env", default="indoor-apartment", choices=sorted(ENVIRONMENTS))
    p_rl.add_argument("--iters", type=int, default=800)
    p_rl.add_argument("--seed", type=int, default=0)
    p_rl.set_defaults(func=_cmd_rl)
    p_fleet = sub.add_parser(
        "fleet", help="vectorized multi-env rollout/train/evaluate rounds"
    )
    p_fleet.add_argument(
        "--envs", nargs="*", choices=sorted(ENVIRONMENTS), default=None,
        help="environment classes to cycle over (default: all)",
    )
    p_fleet.add_argument("--num-envs", type=int, default=16)
    p_fleet.add_argument("--rounds", type=int, default=2)
    p_fleet.add_argument("--steps", type=int, default=150,
                         help="fleet steps per round")
    p_fleet.add_argument("--train-every", type=int, default=2)
    p_fleet.add_argument("--eval-steps", type=int, default=50)
    p_fleet.add_argument("--image-side", type=int, default=16)
    p_fleet.add_argument("--config", default="L4",
                         choices=["L2", "L3", "L4", "E2E"])
    p_fleet.add_argument(
        "--backend", default="numpy",
        choices=["numpy", "quantized", "systolic", "sharded"],
        help="execution backend for action selection: float numpy "
             "(default), 16-bit fixed point, the quantized systolic "
             "datapath with per-step cycle budgets, or K sharded "
             "systolic arrays (see --shards/--shard-policy)",
    )
    p_fleet.add_argument(
        "--shards", type=_positive_int, default=4,
        help="number of systolic arrays composed by --backend sharded",
    )
    p_fleet.add_argument(
        "--shard-policy", default="sample",
        choices=["sample", "layer", "pipeline"],
        help="sharded backend policy: split the observation batch "
             "(sample), each layer's filters/neurons (layer), or "
             "stage the layers across arrays and stream the batch "
             "through in micro-batches (pipeline)",
    )
    p_fleet.add_argument(
        "--noc", default="flat", choices=list(NOC_TOPOLOGIES),
        help="inter-array interconnect model for --backend sharded: "
             "the legacy 1-cycle-per-element single-hop model (flat, "
             "default — reproduces all pinned sharding numbers), a "
             "bidirectional ring, or a 2D mesh, both over 128-bit "
             "links at the quantised word width",
    )
    p_fleet.add_argument(
        "--workers", default="1", type=_workers_spec, metavar="N|auto",
        help="process-pool width for sharded child forwards and env "
             "group raycasts ('auto' = one per CPU core); workers=1 "
             "is the serial path and stays bitwise-identical to the "
             "parallel one",
    )
    p_fleet.add_argument(
        "--sync-every", type=_positive_int, default=1,
        help="weight-bus flip cadence: the deployed datapath refreshes "
             "its quantised snapshot every N training updates "
             "(1 = synchronous write-back)",
    )
    p_fleet.add_argument(
        "--pipeline-chunk", type=_positive_int, default=None,
        help="rollout chunk size (fleet steps) of the interleaved "
             "rollout/train pipeline (default: --train-every, the "
             "finest-grained pipeline the training cadence allows)",
    )
    p_fleet.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="run under deterministic fault injection: a bare seed "
             "(default chaos mix) or key=value tokens, e.g. "
             "'seed=7,crash=1@30,sram=auto,drop=0.1' "
             "(see repro.faults.parse_fault_spec)",
    )
    p_fleet.add_argument(
        "--train-on-array", action="store_true",
        help="charge every training update to the backend's array "
             "(whole-network forward + backward GEMM cycle model) and "
             "project concurrent rollout+training feasibility",
    )
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record spans and write a Chrome trace-event JSON file "
             "(load in chrome://tracing or ui.perfetto.dev)",
    )
    p_fleet.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics in Prometheus text exposition "
             "format to this path",
    )
    p_fleet.add_argument(
        "--json", default=None, metavar="PATH",
        help="write a machine-readable payload (rounds, totals, "
             "projection, per-phase timings, metrics snapshot)",
    )
    p_fleet.set_defaults(func=_cmd_fleet)
    p_sys = sub.add_parser(
        "systolic-bench",
        help="systolic fast path vs PE oracle + paper-scale AlexNet forward",
    )
    p_sys.add_argument("--channels", type=int, default=3)
    p_sys.add_argument("--side", type=int, default=32)
    p_sys.add_argument("--filters", type=int, default=16)
    p_sys.add_argument("--kernel", type=int, default=3)
    p_sys.add_argument("--stride", type=int, default=1)
    p_sys.add_argument("--batch", type=int, default=1,
                       help="AlexNet forward batch size")
    p_sys.add_argument("--skip-alexnet", action="store_true",
                       help="only run the fast-vs-oracle layer benchmark")
    p_sys.add_argument("--training", action="store_true",
                       help="whole-network training-step mode: paper-scale "
                            "fwd/dW/dX cycle table + fast-vs-oracle "
                            "training equivalence benchmark")
    p_sys.add_argument("--json", default=None,
                       help="also write machine-readable results to this path")
    p_sys.add_argument("--seed", type=int, default=0)
    p_sys.set_defaults(func=_cmd_systolic_bench)
    p_map = sub.add_parser("map", help="render an environment as ASCII art")
    p_map.add_argument("--env", default="indoor-apartment", choices=sorted(ENVIRONMENTS))
    p_map.add_argument("--seed", type=int, default=0)
    p_map.set_defaults(func=_cmd_map)
    p_report = sub.add_parser(
        "report", help="aggregate benchmark artifacts into one markdown report"
    )
    p_report.add_argument("--results", default="benchmarks/results")
    p_report.add_argument("--output", default="benchmarks/results/REPORT.md")
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0
