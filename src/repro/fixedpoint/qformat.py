"""Q-format fixed-point representation.

A ``QFormat(integer_bits, fraction_bits, signed=True)`` describes numbers
stored as ``total_bits``-wide two's-complement integers with an implicit
binary point.  The paper's platform uses 16-bit fixed point; the default
formats exported here (:data:`Q8_8` and :data:`Q2_13`) are the two useful
16-bit corners for weights and activations.

All conversion functions are vectorised over NumPy arrays and use
*saturating* arithmetic, matching hardware MAC behaviour (overflow clamps
instead of wrapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QFormat", "Q8_8", "Q2_13", "QuantizationStats", "quantization_stats"]


@dataclass(frozen=True)
class QFormat:
    """A fixed-point number format ``Qm.n``.

    Parameters
    ----------
    integer_bits:
        Number of bits before the binary point (``m``), excluding the sign
        bit when ``signed``.
    fraction_bits:
        Number of bits after the binary point (``n``).
    signed:
        Whether a sign bit is included.  Defaults to two's-complement
        signed, which is what the paper's 16-bit MACs use.
    """

    integer_bits: int
    fraction_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("bit widths must be non-negative")
        if self.total_bits <= 0:
            raise ValueError("format must have at least one bit")
        if self.total_bits > 62:
            raise ValueError("formats wider than 62 bits are not supported")

    @property
    def total_bits(self) -> int:
        """Total storage width in bits, including the sign bit."""
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        """Value of one least-significant bit (the quantisation step)."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return (self.max_raw) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable real value."""
        return (self.min_raw) * self.scale

    @property
    def max_raw(self) -> int:
        """Largest raw integer code."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def min_raw(self) -> int:
        """Smallest raw integer code."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_raw(self, values: np.ndarray | float) -> np.ndarray:
        """Quantise real ``values`` to raw integer codes, saturating."""
        arr = np.asarray(values, dtype=np.float64)
        raw = np.round(arr / self.scale)
        raw = np.clip(raw, self.min_raw, self.max_raw)
        return raw.astype(np.int64)

    def from_raw(self, raw: np.ndarray | int) -> np.ndarray:
        """Convert raw integer codes back to real values."""
        return np.asarray(raw, dtype=np.int64) * self.scale

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Round-trip ``values`` through the format (round + saturate)."""
        return self.from_raw(self.to_raw(values))

    def representable(self, values: np.ndarray | float, atol: float = 1e-12) -> np.ndarray:
        """Return a boolean mask of values exactly representable."""
        arr = np.asarray(values, dtype=np.float64)
        return np.abs(self.quantize(arr) - arr) <= atol

    # ------------------------------------------------------------------
    # Saturating arithmetic on raw codes
    # ------------------------------------------------------------------
    def saturate(self, raw: np.ndarray | int) -> np.ndarray:
        """Clamp raw codes into the representable range."""
        return np.clip(np.asarray(raw, dtype=np.int64), self.min_raw, self.max_raw)

    def add_raw(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Saturating addition of raw codes."""
        return self.saturate(np.asarray(a, np.int64) + np.asarray(b, np.int64))

    def sub_raw(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Saturating subtraction of raw codes."""
        return self.saturate(np.asarray(a, np.int64) - np.asarray(b, np.int64))

    def mul_raw(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Saturating multiplication of raw codes.

        The product of two ``Qm.n`` numbers carries ``2n`` fraction bits;
        hardware MACs shift right by ``n`` (with rounding toward nearest)
        before saturating back into the format.
        """
        wide = np.asarray(a, np.int64) * np.asarray(b, np.int64)
        half = 1 << max(self.fraction_bits - 1, 0)
        shifted = (wide + half) >> self.fraction_bits
        return self.saturate(shifted)

    def multiply(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Real-valued saturating fixed-point multiply (quantise inputs first)."""
        return self.from_raw(self.mul_raw(self.to_raw(a), self.to_raw(b)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "s" if self.signed else "u"
        return f"{sign}Q{self.integer_bits}.{self.fraction_bits}"


#: 16-bit format with range [-128, 128) — suits pre-activation sums.
Q8_8 = QFormat(integer_bits=7, fraction_bits=8)

#: 16-bit format with range [-4, 4) — suits normalised weights.
Q2_13 = QFormat(integer_bits=2, fraction_bits=13)


@dataclass
class QuantizationStats:
    """Error statistics from quantising an array into a :class:`QFormat`."""

    fmt: QFormat
    max_abs_error: float
    mean_abs_error: float
    saturated_fraction: float
    snr_db: float = field(default=float("inf"))


def quantization_stats(values: np.ndarray, fmt: QFormat) -> QuantizationStats:
    """Measure the error introduced by quantising ``values`` into ``fmt``.

    Returns max/mean absolute error, the fraction of elements that hit the
    saturation rails, and the signal-to-quantisation-noise ratio in dB.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot compute statistics of an empty array")
    quant = fmt.quantize(arr)
    err = quant - arr
    saturated = np.logical_or(arr > fmt.max_value, arr < fmt.min_value)
    signal_power = float(np.mean(arr**2))
    noise_power = float(np.mean(err**2))
    if noise_power == 0.0:
        snr = float("inf")
    elif signal_power == 0.0:
        snr = float("-inf")
    else:
        snr = 10.0 * np.log10(signal_power / noise_power)
    return QuantizationStats(
        fmt=fmt,
        max_abs_error=float(np.max(np.abs(err))),
        mean_abs_error=float(np.mean(np.abs(err))),
        saturated_fraction=float(np.mean(saturated)),
        snr_db=snr,
    )
