"""Fixed-point arithmetic used by the embedded platform model.

The paper's accelerator computes in 16-bit fixed point (Fig. 4b,
"Arithmetic precision: 16 bit fixed-point").  This package provides a
small, NumPy-vectorised Q-format toolkit used by

* :mod:`repro.nn` for optional quantised inference,
* :mod:`repro.memory` for sizing weights in bits, and
* tests validating that quantisation error behaves as expected.
"""

from repro.fixedpoint.qformat import (
    QFormat,
    Q8_8,
    Q2_13,
    QuantizationStats,
    quantization_stats,
)

__all__ = [
    "QFormat",
    "Q8_8",
    "Q2_13",
    "QuantizationStats",
    "quantization_stats",
]
