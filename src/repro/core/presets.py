"""Preset platforms matching the paper's published design points."""

from __future__ import annotations

from repro.core.platform import Platform, SystemParameters
from repro.memory.devices import CameraDram, GlobalBuffer, SttMramStack, MB
from repro.systolic.array import PAPER_ARRAY

__all__ = ["paper_platform", "paper_system_parameters"]


def paper_platform(buffer_mb: float = 30.0, nvm_mb: float = 128.0) -> Platform:
    """The Fig. 4 platform.

    Defaults: 30 MB global buffer with a 4.2 MB scratchpad slice, and an
    STT-MRAM stack sized for the ~100 MB frozen model with headroom.
    The paper studies three SRAM capacities (for L2/L3/L4 — 4 %, 11 %
    and 26 % of weights); pass a larger ``buffer_mb`` (e.g. 62) to model
    the L4-capable design point.
    """
    if buffer_mb <= 4.2:
        raise ValueError("buffer must exceed the 4.2 MB scratchpad")
    if nvm_mb <= 0:
        raise ValueError("nvm_mb must be positive")
    return Platform(
        name=f"paper-{buffer_mb:g}MB-sram",
        array=PAPER_ARRAY,
        nvm=SttMramStack(capacity_bytes=int(nvm_mb * MB)),
        buffer=GlobalBuffer(
            capacity_bytes=int(buffer_mb * MB),
            scratchpad_bytes=int(4.2 * MB),
        ),
        camera_dram=CameraDram(),
    )


def paper_system_parameters() -> SystemParameters:
    """The Fig. 4b parameter table."""
    return SystemParameters(
        technology="NanGate 15nm FreePDK",
        num_pes=1024,
        pe_grid=(32, 32),
        global_buffer_mb=30.0,
        scratchpad_mb=4.2,
        register_file_per_pe_kb=4.5,
        operating_voltage_v=0.8,
        clock_hz=1e9,
        peak_throughput_tops_per_w=1.5,
        arithmetic_precision_bits=16,
        pe_link_bits=128,
        nvm_ios=1024,
        nvm_io_gbps=2.0,
    )
