"""Hardware platform container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.devices import CameraDram, GlobalBuffer, SttMramStack
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = ["Platform", "SystemParameters"]


@dataclass(frozen=True)
class SystemParameters:
    """The Fig. 4b parameter table as structured data."""

    technology: str
    num_pes: int
    pe_grid: tuple[int, int]
    global_buffer_mb: float
    scratchpad_mb: float
    register_file_per_pe_kb: float
    operating_voltage_v: float
    clock_hz: float
    peak_throughput_tops_per_w: float
    arithmetic_precision_bits: int
    pe_link_bits: int
    nvm_ios: int
    nvm_io_gbps: float


@dataclass
class Platform:
    """An embedded drone compute platform.

    Bundles the systolic array configuration with the three memories of
    Fig. 4a: stacked STT-MRAM (weights), on-die SRAM global buffer
    (trainable tail + gradients + scratch) and the off-chip camera DRAM.
    """

    name: str = "paper-platform"
    array: ArrayConfig = PAPER_ARRAY
    nvm: SttMramStack = field(default_factory=SttMramStack)
    buffer: GlobalBuffer = field(default_factory=GlobalBuffer)
    camera_dram: CameraDram = field(default_factory=CameraDram)

    def reset_counters(self) -> None:
        """Zero every device's access statistics."""
        self.nvm.reset_counters()
        self.buffer.reset_counters()
        self.camera_dram.reset_counters()

    def memory_summary(self) -> dict[str, float]:
        """Capacities in (decimal) MB per device."""
        return {
            "nvm_mb": self.nvm.capacity_bytes / 1e6,
            "buffer_mb": self.buffer.capacity_bytes / 1e6,
            "scratchpad_mb": self.buffer.scratchpad_bytes / 1e6,
            "camera_dram_mb": self.camera_dram.capacity_bytes / 1e6,
        }
