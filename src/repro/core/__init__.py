"""The paper's contribution: the algorithm-hardware co-design.

:class:`~repro.core.platform.Platform` bundles the embedded hardware
(systolic array + STT-MRAM stack + SRAM buffer + camera DRAM);
:class:`~repro.core.codesign.CoDesign` ties a transfer-learning topology
to a platform, validates that the trainable tail fits the SRAM budget,
and evaluates both sides of the co-design:

* hardware: per-layer costs, sustainable fps, energy per frame, maximum
  safe flight velocity (Figs. 12, 13, 1);
* algorithm: the RL task metrics via the scaled functional experiments
  (Figs. 10, 11).
"""

from repro.core.platform import Platform, SystemParameters
from repro.core.presets import paper_platform, paper_system_parameters
from repro.core.codesign import CoDesign, HardwareEvaluation

__all__ = [
    "Platform",
    "SystemParameters",
    "paper_platform",
    "paper_system_parameters",
    "CoDesign",
    "HardwareEvaluation",
]
