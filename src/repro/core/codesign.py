"""CoDesign: one transfer topology on one platform.

This is the library's headline API.  A ``CoDesign`` validates that the
configuration's trainable tail (plus gradient accumulators and
scratchpad) fits the platform's SRAM and that the frozen prefix fits the
NVM, then answers the paper's questions:

* what does a training iteration cost (latency / energy / fps)?
* how fast may the drone fly (fps -> velocity via Fig. 1)?
* does the learned policy still work (scaled RL experiment)?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.platform import Platform
from repro.env.fps import DMIN_TABLE
from repro.memory.mapping import MappingReport, WeightMapper
from repro.nn.alexnet import modified_alexnet_spec
from repro.nn.specs import NetworkSpec
from repro.perf.layer_cost import LayerCost, LayerCostModel
from repro.perf.training import IterationCost, TrainingIterationModel
from repro.rl.experiment import TrainingResult, online_adapt, meta_train
from repro.rl.transfer import TransferConfig, config_by_name

__all__ = ["HardwareEvaluation", "CoDesign"]


@dataclass(frozen=True)
class HardwareEvaluation:
    """Hardware-side results for one (config, platform, batch) point."""

    config_name: str
    batch_size: int
    iteration: IterationCost
    mapping: MappingReport
    max_velocities: dict[str, float]

    @property
    def fps(self) -> float:
        """Sustainable training-iteration rate."""
        return self.iteration.fps

    @property
    def energy_per_frame_mj(self) -> float:
        """Energy per image frame in mJ."""
        return self.iteration.energy_per_frame_j * 1e3


class CoDesign:
    """One algorithm-hardware design point.

    Parameters
    ----------
    config:
        Transfer topology (L2/L3/L4/E2E) or its name.
    platform:
        Hardware platform; defaults to the paper's.
    spec:
        Network shape; defaults to the paper-scale modified AlexNet.
    strict:
        When true (default), constructing a design point whose SRAM
        demand exceeds the platform buffer raises immediately.
    """

    def __init__(
        self,
        config: TransferConfig | str,
        platform: Platform | None = None,
        spec: NetworkSpec | None = None,
        strict: bool = True,
    ):
        if isinstance(config, str):
            config = config_by_name(config)
        self.config = config
        self.platform = platform or Platform()
        self.spec = spec or modified_alexnet_spec()
        mapper = WeightMapper(
            self.spec,
            self.config,
            scratchpad_bytes=self.platform.buffer.scratchpad_bytes,
        )
        if strict:
            self.mapping = mapper.validate(
                self.platform.buffer.capacity_bytes,
                self.platform.nvm.capacity_bytes,
            )
        else:
            self.mapping = mapper.build()
        self.cost_model = LayerCostModel(
            self.spec,
            self.config,
            array=self.platform.array,
            nvm=self.platform.nvm,
            buffer=self.platform.buffer,
        )
        self.trainer = TrainingIterationModel(self.cost_model)

    # ------------------------------------------------------------------
    # Hardware side
    # ------------------------------------------------------------------
    def evaluate_hardware(self, batch_size: int = 4) -> HardwareEvaluation:
        """Iteration cost, fps and velocity envelope at ``batch_size``."""
        iteration = self.trainer.iteration_cost(batch_size)
        velocities = {
            env: self.trainer.max_velocity(batch_size, d_min)
            for env, d_min in DMIN_TABLE.items()
        }
        return HardwareEvaluation(
            config_name=self.config.name,
            batch_size=batch_size,
            iteration=iteration,
            mapping=self.mapping,
            max_velocities=velocities,
        )

    def layer_costs(self) -> dict[str, list[LayerCost]]:
        """Fig. 12-style per-layer cost tables."""
        return {
            "forward": self.cost_model.forward_costs(),
            "backward": self.cost_model.backward_costs(),
        }

    # ------------------------------------------------------------------
    # Algorithm side
    # ------------------------------------------------------------------
    def evaluate_task(
        self,
        test_env_name: str,
        meta_iterations: int = 1500,
        adapt_iterations: int = 1500,
        seed: int = 0,
    ) -> TrainingResult:
        """Run the scaled RL experiment for this topology.

        Meta-trains in the matching meta-environment, then adapts online
        in ``test_env_name`` with this design point's topology.
        """
        from repro.env.generators import META_FOR_TEST

        meta = meta_train(
            META_FOR_TEST[test_env_name], iterations=meta_iterations, seed=seed
        )
        return online_adapt(
            meta.final_state,
            test_env_name,
            self.config,
            iterations=adapt_iterations,
            seed=seed + 13,
        )
