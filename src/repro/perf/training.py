"""Training-iteration model: Fig. 13a (fps vs batch) and Fig. 13b
(latency/energy totals and savings).

Fig. 3b defines one training iteration with batch size N as N forward+
backward passes over single images followed by one weight update.  The
sustainable frame rate the paper plots is the iteration rate,

    fps(config, N) = 1 / (N * (t_fwd + t_bwd(config)) + t_update(config))

which reproduces the published anchors: at batch 4 the L4 topology
sustains ~15 fps and E2E ~3 fps.  Per-image latency/energy (Fig. 13b)
are ``t_fwd + t_bwd`` and ``e_fwd + e_bwd``; the savings of a TL
topology over E2E follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.env.fps import max_safe_velocity
from repro.perf.layer_cost import LayerCostModel

__all__ = [
    "IterationCost",
    "TrainingIterationModel",
    "fps_vs_batch_table",
    "savings_vs_e2e",
]

#: Batch sizes swept in Fig. 13a.
PAPER_BATCH_SIZES = (4, 8, 16)


@dataclass(frozen=True)
class IterationCost:
    """Cost of one batch-N training iteration.

    ``forward_cycles``/``backward_cycles`` carry the whole-batch array
    cycles of the systolic training-step model when the iteration model
    was built with ``use_systolic=True`` (zero otherwise — the analytic
    path has latencies but no cycle ledger); ``cycle_source`` records
    which model produced them.
    """

    config_name: str
    batch_size: int
    forward_latency_s: float
    backward_latency_s: float
    update_latency_s: float
    forward_energy_j: float
    backward_energy_j: float
    update_energy_j: float
    forward_cycles: int = 0
    backward_cycles: int = 0
    weight_update_elements: int = 0
    cycle_source: str = "analytic"

    @property
    def per_image_latency_s(self) -> float:
        """Forward + backward latency of one image (Fig. 13b bar)."""
        return self.forward_latency_s + self.backward_latency_s

    @property
    def per_image_energy_j(self) -> float:
        """Forward + backward energy of one image (Fig. 13b bar)."""
        return self.forward_energy_j + self.backward_energy_j

    @property
    def iteration_latency_s(self) -> float:
        """Latency of the whole batch-N iteration including the update."""
        return self.batch_size * self.per_image_latency_s + self.update_latency_s

    @property
    def iteration_energy_j(self) -> float:
        """Energy of the whole batch-N iteration including the update."""
        return self.batch_size * self.per_image_energy_j + self.update_energy_j

    @property
    def fps(self) -> float:
        """Sustainable training iterations per second (Fig. 13a)."""
        return 1.0 / self.iteration_latency_s

    @property
    def energy_per_frame_j(self) -> float:
        """Iteration energy amortised per image frame."""
        return self.iteration_energy_j / self.batch_size


class TrainingIterationModel:
    """Wraps a :class:`LayerCostModel` with batch-iteration arithmetic.

    ``use_systolic`` (default True) sources the per-iteration *cycles*
    from the whole-network systolic training-step model
    (:func:`repro.systolic.training.training_step_stats`) — the same
    closed-form accounting the execution backends charge, proven equal
    to the loop-level PE oracle — instead of leaving the ledger empty.
    Latencies and energies stay on the analytic path (the calibrated
    Fig. 12/13 model, whose per-layer efficiency factors reproduce the
    published anchors): the systolic counters are *work* cycles at one
    MAC per PE-cycle, so the two views bracket each other — the
    analytic wall-clock must lie between the fully parallel
    (``cycles / total_pes``) and fully serial (``cycles``) execution of
    the systolic work, an invariant the tests pin.  ``use_systolic=
    False`` keeps the pure analytic path (no cycle ledger) as the
    fallback.
    """

    def __init__(self, cost_model: LayerCostModel, use_systolic: bool = True):
        self.cost_model = cost_model
        self.use_systolic = use_systolic

    def _systolic_step(self, batch_size: int):
        """Whole-network training-step counters at ``batch_size``."""
        from repro.systolic.training import training_step_stats

        return training_step_stats(
            self.cost_model.spec,
            batch=batch_size,
            config=self.cost_model.array,
            train_last_k=self.cost_model.config.last_k_fc,
        )

    def iteration_cost(self, batch_size: int) -> IterationCost:
        """Cost of one training iteration at ``batch_size``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        fwd_lat, fwd_energy = self.cost_model.forward_total()
        bwd_lat, bwd_energy = self.cost_model.backward_total()
        update = self.cost_model.update_cost()
        forward_cycles = backward_cycles = update_elements = 0
        source = "analytic"
        if self.use_systolic:
            step = self._systolic_step(batch_size)
            forward_cycles = step.total_forward_cycles
            backward_cycles = step.total_backward_cycles
            update_elements = step.weight_update_elements
            source = "systolic"
        return IterationCost(
            config_name=self.cost_model.config.name,
            batch_size=batch_size,
            forward_latency_s=fwd_lat,
            backward_latency_s=bwd_lat,
            update_latency_s=update.latency_s,
            forward_energy_j=fwd_energy,
            backward_energy_j=bwd_energy,
            update_energy_j=update.energy_j,
            forward_cycles=forward_cycles,
            backward_cycles=backward_cycles,
            weight_update_elements=update_elements,
            cycle_source=source,
        )

    def max_velocity(self, batch_size: int, d_min: float) -> float:
        """Fastest safe flight (m/s) given the achievable fps (Fig. 1)."""
        return max_safe_velocity(self.iteration_cost(batch_size).fps, d_min)


def fps_vs_batch_table(
    models: dict[str, LayerCostModel],
    batch_sizes: tuple[int, ...] = PAPER_BATCH_SIZES,
) -> dict[str, dict[int, float]]:
    """Fig. 13a: fps per (config, batch size)."""
    table: dict[str, dict[int, float]] = {}
    for name, model in models.items():
        trainer = TrainingIterationModel(model)
        table[name] = {
            n: trainer.iteration_cost(n).fps for n in batch_sizes
        }
    return table


def savings_vs_e2e(
    config_model: LayerCostModel, e2e_model: LayerCostModel
) -> dict[str, float]:
    """Fig. 13b: percentage latency/energy decrease vs the E2E baseline.

    Uses the per-image (forward + backward) cost, matching the paper's
    "processing latency / dissipated energy" bars.
    """
    cfg = TrainingIterationModel(config_model).iteration_cost(1)
    e2e = TrainingIterationModel(e2e_model).iteration_cost(1)
    if e2e.per_image_latency_s <= 0 or e2e.per_image_energy_j <= 0:
        raise ValueError("E2E baseline has non-positive cost")
    return {
        "latency_decrease_pct": 100.0
        * (1.0 - cfg.per_image_latency_s / e2e.per_image_latency_s),
        "energy_decrease_pct": 100.0
        * (1.0 - cfg.per_image_energy_j / e2e.per_image_energy_j),
    }
