"""Training-iteration timeline and latency-hiding analysis.

The layer cost model charges each layer's weight streaming as exposed
time.  In the real platform, the global buffer double-buffers: while the
PE array computes layer *k*, the next layer's weights can prefetch from
the STT-MRAM stack over the 2 Tb/s interface.  This module builds the
explicit phase timeline of one training iteration and answers:

* which layer streams are *hidden* behind compute and which are exposed,
* what the iteration looks like as a Gantt-style ASCII chart,
* how much of the E2E/L-config gap is fundamentally compute vs memory.

The NVM-side prefetch analysis is conservative: a stream is hidden only
if the *previous* phase's compute time covers it and the buffer's
scratchpad can hold the incoming tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.layer_cost import LayerCostModel

__all__ = ["Phase", "IterationTimeline", "build_timeline"]


@dataclass(frozen=True)
class Phase:
    """One scheduled interval of the iteration."""

    name: str
    kind: str        # "frame" | "forward" | "backward" | "update"
    start_s: float
    duration_s: float
    stream_s: float = 0.0   # weight-stream time demanded by this phase
    hidden_s: float = 0.0   # portion of the stream hidden under the
                            # previous phase's compute

    @property
    def end_s(self) -> float:
        """Phase end time."""
        return self.start_s + self.duration_s

    @property
    def exposed_stream_s(self) -> float:
        """Stream time that extends the critical path."""
        return max(self.stream_s - self.hidden_s, 0.0)


@dataclass(frozen=True)
class IterationTimeline:
    """The full phase sequence of one batch-1 training pass."""

    config_name: str
    phases: tuple[Phase, ...]

    @property
    def total_s(self) -> float:
        """End-to-end iteration time."""
        return self.phases[-1].end_s if self.phases else 0.0

    @property
    def hidden_stream_s(self) -> float:
        """Total stream time hidden behind compute."""
        return sum(p.hidden_s for p in self.phases)

    def by_kind(self) -> dict[str, float]:
        """Total duration per phase kind."""
        out: dict[str, float] = {}
        for phase in self.phases:
            out[phase.kind] = out.get(phase.kind, 0.0) + phase.duration_s
        return out

    def gantt_ascii(self, width: int = 72) -> str:
        """Render the timeline as a proportional ASCII Gantt chart."""
        if width < 20:
            raise ValueError("chart too narrow")
        total = self.total_s
        if total <= 0:
            return "(empty timeline)"
        glyphs = {"frame": "F", "forward": "=", "backward": "<", "update": "U"}
        label_w = max(len(p.name) for p in self.phases)
        lines = [f"{self.config_name}: one training pass, {total * 1e3:.2f} ms"]
        for phase in self.phases:
            start = int(phase.start_s / total * width)
            span = max(int(phase.duration_s / total * width), 1)
            bar = " " * start + glyphs[phase.kind] * span
            lines.append(
                f"{phase.name.rjust(label_w)} |{bar.ljust(width)}| "
                f"{phase.duration_s * 1e3:7.3f} ms"
            )
        return "\n".join(lines)


def build_timeline(
    cost_model: LayerCostModel,
    frame_load_s: float | None = None,
    prefetch: bool = True,
) -> IterationTimeline:
    """Schedule one batch-1 forward+backward+update pass.

    Parameters
    ----------
    cost_model:
        Source of per-layer costs and residency.
    frame_load_s:
        Camera-frame DMA time; derived from the spec and the DDR6 link
        if omitted.
    prefetch:
        Model double-buffered weight prefetch from the NVM (hides each
        layer's stream under the previous layer's compute).
    """
    spec = cost_model.spec
    if frame_load_s is None:
        frame_bits = (
            spec.input_side * spec.input_side * spec.input_channels * spec.weight_bits
        )
        frame_load_s = frame_bits / 256e9  # DDR6-class link
    phases: list[Phase] = []
    clock = 0.0
    phases.append(Phase("frame-in", "frame", 0.0, frame_load_s))
    clock = frame_load_s

    prev_compute_slack = 0.0
    for cost in cost_model.forward_costs():
        layer = spec.layer(cost.layer)
        stream_s = 0.0
        hidden_s = 0.0
        if cost_model.is_nvm_resident(cost.layer):
            weight_bits = layer.weight_count * spec.weight_bits
            stream_s = weight_bits / cost_model.nvm.read_bandwidth_bps
            if prefetch:
                hidden_s = min(stream_s, prev_compute_slack)
        duration = cost.latency_s + (stream_s - hidden_s)
        phases.append(
            Phase(
                cost.layer, "forward", clock, duration,
                stream_s=stream_s, hidden_s=hidden_s,
            )
        )
        clock += duration
        prev_compute_slack = cost.latency_s
    for cost in cost_model.backward_costs():
        phases.append(Phase(f"{cost.layer}'", "backward", clock, cost.latency_s))
        clock += cost.latency_s
    update = cost_model.update_cost()
    phases.append(Phase("update", "update", clock, update.latency_s))
    return IterationTimeline(
        config_name=cost_model.config.name, phases=tuple(phases)
    )
