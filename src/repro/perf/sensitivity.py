"""Sensitivity of the reproduction's conclusions to its calibration.

The cost model's only non-derived inputs are the efficiency factors in
:mod:`repro.perf.calibration`.  A reproduction is only as strong as its
robustness to those choices, so this module perturbs each factor over a
range and measures how the paper's *conclusions* move:

* the L4-vs-E2E latency/energy savings (the 79-84 % headline),
* the L4/E2E frame-rate ratio (the >3x-velocity claim).

The shipped benchmark asserts that the qualitative conclusions survive
±25 % perturbation of every factor simultaneously — i.e. the headline
claims do not hinge on the fit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nn.specs import NetworkSpec
from repro.perf.calibration import CostCalibration, DEFAULT_CALIBRATION
from repro.perf.layer_cost import LayerCostModel
from repro.perf.training import TrainingIterationModel, savings_vs_e2e
from repro.rl.transfer import config_by_name

__all__ = ["SensitivityPoint", "scale_calibration", "sensitivity_sweep"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Conclusions at one calibration perturbation."""

    scale: float
    latency_saving_pct: float
    energy_saving_pct: float
    fps_ratio: float


def scale_calibration(
    calibration: CostCalibration, scale: float
) -> CostCalibration:
    """Multiply every efficiency factor of ``calibration`` by ``scale``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return replace(
        calibration,
        conv_forward_efficiency={
            k: v * scale for k, v in calibration.conv_forward_efficiency.items()
        },
        fc_forward_overhead=max(calibration.fc_forward_overhead * scale, 1.0),
        fc_backward_overhead=max(calibration.fc_backward_overhead * scale, 1.0),
        conv_backward_efficiency={
            k: v * scale
            for k, v in calibration.conv_backward_efficiency.items()
        },
        conv_backward_fallback=calibration.conv_backward_fallback * scale,
    )


def _conclusions(spec: NetworkSpec, calibration: CostCalibration, scale: float):
    l4 = LayerCostModel(spec, config_by_name("L4"), calibration=calibration)
    e2e = LayerCostModel(spec, config_by_name("E2E"), calibration=calibration)
    savings = savings_vs_e2e(l4, e2e)
    fps_l4 = TrainingIterationModel(l4).iteration_cost(4).fps
    fps_e2e = TrainingIterationModel(e2e).iteration_cost(4).fps
    return SensitivityPoint(
        scale=scale,
        latency_saving_pct=savings["latency_decrease_pct"],
        energy_saving_pct=savings["energy_decrease_pct"],
        fps_ratio=fps_l4 / fps_e2e,
    )


def sensitivity_sweep(
    spec: NetworkSpec,
    scales: tuple[float, ...] = (0.75, 0.9, 1.0, 1.1, 1.25),
    calibration: CostCalibration = DEFAULT_CALIBRATION,
) -> list[SensitivityPoint]:
    """Evaluate the headline conclusions across calibration scales."""
    if not scales:
        raise ValueError("need at least one scale")
    return [
        _conclusions(spec, scale_calibration(calibration, s), s) for s in scales
    ]
