"""Per-iteration memory-traffic simulation and NVM endurance model.

The layer-cost model answers "how long / how much energy"; this module
answers "which device moved how many bits" by walking one full training
iteration (Fig. 3b) and charging every transfer to the platform's device
counters:

* camera DRAM → global buffer: one frame per image over the DDR6 link,
* STT-MRAM → PE array: frozen weights, once per forward pass,
* SRAM buffer: trainable-tail weights (fwd + bwd passes) and gradient
  accumulator read-modify-writes,
* STT-MRAM writes (E2E only): the frozen portion's weight update plus
  any gradient spill round trips.

From the sustained NVM write rate an **endurance estimate** follows: how
long until the most-written cell exceeds the technology's write budget —
the quantitative version of the paper's "NVM is unsuitable for real-time
RL model storage" argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.devices import CameraDram, GlobalBuffer, SttMramStack
from repro.nn.specs import FCSpec, NetworkSpec
from repro.perf.layer_cost import LayerCostModel
from repro.rl.transfer import TransferConfig
from repro.systolic.array import ArrayConfig, PAPER_ARRAY

__all__ = [
    "IterationTraffic",
    "TrafficSimulator",
    "EnduranceEstimate",
    "FleetLoadProjection",
    "project_fleet_load",
]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class IterationTraffic:
    """Bits moved per device in one batch-N training iteration."""

    config_name: str
    batch_size: int
    dram_read_bits: int
    nvm_read_bits: int
    nvm_write_bits: int
    sram_read_bits: int
    sram_write_bits: int

    @property
    def total_bits(self) -> int:
        """All bits moved in the iteration."""
        return (
            self.dram_read_bits
            + self.nvm_read_bits
            + self.nvm_write_bits
            + self.sram_read_bits
            + self.sram_write_bits
        )

    @property
    def nvm_write_fraction(self) -> float:
        """Share of traffic that is NVM writes (the expensive kind)."""
        if self.total_bits == 0:
            return 0.0
        return self.nvm_write_bits / self.total_bits


@dataclass(frozen=True)
class EnduranceEstimate:
    """Lifetime of the NVM stack under a sustained write rate."""

    writes_per_cell_per_day: float
    endurance_cycles: float

    @property
    def lifetime_days(self) -> float:
        """Days until the write budget is exhausted (inf if no writes)."""
        if self.writes_per_cell_per_day == 0.0:
            return float("inf")
        return self.endurance_cycles / self.writes_per_cell_per_day

    @property
    def lifetime_years(self) -> float:
        """Lifetime in years."""
        return self.lifetime_days / 365.25


class TrafficSimulator:
    """Walks one training iteration and charges the device counters."""

    def __init__(
        self,
        spec: NetworkSpec,
        config: TransferConfig,
        nvm: SttMramStack | None = None,
        buffer: GlobalBuffer | None = None,
        camera_dram: CameraDram | None = None,
    ):
        self.spec = spec
        self.config = config
        self.nvm = nvm or SttMramStack()
        self.buffer = buffer or GlobalBuffer()
        self.camera_dram = camera_dram or CameraDram()
        self.cost_model = LayerCostModel(
            spec, config, nvm=self.nvm, buffer=self.buffer
        )
        self._frame_bits = (
            spec.input_side * spec.input_side * spec.input_channels * spec.weight_bits
        )

    def _layer_bits(self, name: str) -> int:
        return self.spec.layer(name).weight_count * self.spec.weight_bits

    def simulate_iteration(self, batch_size: int) -> IterationTraffic:
        """Charge one batch-N iteration; returns the traffic summary.

        Device counters accumulate (call the devices'
        ``reset_counters()`` between experiments to separate runs).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        dram_r = nvm_r = nvm_w = sram_r = sram_w = 0
        trainable = set(self.cost_model.trainable_layer_names())
        for _ in range(batch_size):
            # Camera frame: DRAM -> buffer.
            dram_r += self.camera_dram.read(self._frame_bits).bits
            sram_w += self.buffer.write(self._frame_bits).bits
            # Forward: every layer's weights stream from their device.
            for layer in self.spec.layers:
                bits = self._layer_bits(layer.name)
                if self.cost_model.is_nvm_resident(layer.name):
                    nvm_r += self.nvm.read(bits).bits
                else:
                    sram_r += self.buffer.read(bits).bits
            # Backward: trainable layers stream weights again (dX pass)
            # and read-modify-write their gradient accumulators.
            for name in trainable:
                bits = self._layer_bits(name)
                if self.cost_model.is_nvm_resident(name):
                    nvm_r += self.nvm.read(bits).bits
                else:
                    sram_r += self.buffer.read(bits).bits
                layer = self.spec.layer(name)
                if isinstance(layer, FCSpec) and self.cost_model._gradient_spills(layer):
                    nvm_w += self.nvm.write(bits).bits
                    nvm_r += self.nvm.read(bits).bits
                else:
                    sram_r += self.buffer.read(bits).bits
                    sram_w += self.buffer.write(bits).bits
        # Weight update: read gradient + read/write weights.
        for name in trainable:
            bits = self._layer_bits(name)
            sram_r += self.buffer.read(bits).bits
            if self.cost_model.is_nvm_resident(name):
                nvm_r += self.nvm.read(bits).bits
                nvm_w += self.nvm.write(bits).bits
            else:
                sram_r += self.buffer.read(bits).bits
                sram_w += self.buffer.write(bits).bits
        return IterationTraffic(
            config_name=self.config.name,
            batch_size=batch_size,
            dram_read_bits=dram_r,
            nvm_read_bits=nvm_r,
            nvm_write_bits=nvm_w,
            sram_read_bits=sram_r,
            sram_write_bits=sram_w,
        )

    def endurance(
        self,
        traffic: IterationTraffic,
        iterations_per_second: float,
        endurance_cycles: float = 1e12,
    ) -> EnduranceEstimate:
        """Endurance under a sustained iteration rate.

        Assumes writes spread uniformly over the written footprint (the
        trainable NVM-resident weights plus spill region) — optimistic,
        i.e. real lifetimes are shorter.
        """
        if iterations_per_second <= 0:
            raise ValueError("iterations_per_second must be positive")
        if endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive")
        if traffic.nvm_write_bits == 0:
            return EnduranceEstimate(0.0, endurance_cycles)
        footprint_bits = self.nvm.capacity_bytes * 8
        writes_per_bit_per_iter = traffic.nvm_write_bits / footprint_bits
        per_day = writes_per_bit_per_iter * iterations_per_second * SECONDS_PER_DAY
        return EnduranceEstimate(per_day, endurance_cycles)


@dataclass(frozen=True)
class FleetLoadProjection:
    """A measured fleet workload projected onto the accelerator model.

    The fleet scheduler measures *simulated* throughput (env steps/sec
    and training iterations/sec); this dataclass answers whether the
    paper's platform could sustain that load, and at what cost:

    * ``accelerator_fps`` — training iterations/sec the platform
      sustains at the fleet's batch size (Fig. 13a model),
    * ``utilization`` — demanded over sustainable iteration rate
      (> 1 means the fleet generates frames faster than the platform
      can train on them),
    * ``energy_watts`` — average power of serving the demanded rate,
    * ``traffic`` / ``bits_per_second`` / ``endurance`` — per-device
      memory traffic of the load and the NVM lifetime under it,
    * ``inference_cycles_per_step`` / ``inference_step_latency_s`` —
      the *measured* per-env-step cycle budget an execution backend
      charged during the fleet run (zero when rollouts ran on the
      uncosted float path); from it, the inference rate the array
      sustains and the fleet's utilization of it,
    * ``shards`` / ``critical_path_cycles_per_step`` — when the backend
      executed on K arrays, the measured wall-clock (critical-path)
      cycle budget per env step; from it, the step rate the K-array
      platform sustains and the scaling efficiency of the split,
    * ``training_cycles_per_update`` — the measured array cycles one
      on-array training update charged (``fleet --train-on-array``;
      zero when training stays off-device); from it the update rate the
      array sustains and, combined with the inference budget, whether
      the platform sustains *concurrent* rollout + training — on one
      array (``combined_array_utilization``) or on the K sharded arrays
      (``sharded_combined_utilization``, from the training critical
      path).
    """

    config_name: str
    num_envs: int
    batch_size: int
    steps_per_second: float
    train_iterations_per_second: float
    accelerator_iteration_latency_s: float
    accelerator_fps: float
    iteration_energy_j: float
    traffic: IterationTraffic
    endurance: EnduranceEstimate
    inference_cycles_per_step: float = 0.0
    inference_step_latency_s: float = 0.0
    shards: int = 1
    critical_path_cycles_per_step: float = 0.0
    critical_path_step_latency_s: float = 0.0
    training_cycles_per_update: float = 0.0
    training_update_latency_s: float = 0.0
    training_critical_path_cycles_per_update: float = 0.0
    training_critical_path_latency_s: float = 0.0
    #: Mean fraction of configured arrays alive during the measured run
    #: (1.0 unless a chaos run killed shards).
    availability: float = 1.0
    #: Fraction of served states that fell back to the degraded float
    #: path (0.0 unless a chaos run lost every array).
    degraded_fraction: float = 0.0
    #: Measured inter-array NoC cycles per env step (gathers,
    #: broadcasts, pipeline hand-offs, gradient reductions; 0 when the
    #: backend runs on one array).
    interconnect_cycles_per_step: float = 0.0
    #: Measured pipeline fill/drain bubble cycles per env step (0
    #: unless the backend runs the pipeline shard policy).
    fill_drain_cycles_per_step: float = 0.0

    @property
    def interconnect_fraction(self) -> float:
        """NoC share of the sharded wall-clock budget per env step."""
        if self.critical_path_cycles_per_step <= 0.0:
            return 0.0
        return self.interconnect_cycles_per_step / self.critical_path_cycles_per_step

    @property
    def utilization(self) -> float:
        """Demanded iteration rate / sustainable iteration rate."""
        if self.accelerator_fps <= 0.0:
            return float("inf")
        return self.train_iterations_per_second / self.accelerator_fps

    @property
    def realtime_feasible(self) -> bool:
        """Whether the platform keeps up with the fleet's demand."""
        return self.utilization <= 1.0

    @property
    def energy_watts(self) -> float:
        """Average power (J/s) of serving the demanded iteration rate."""
        return self.iteration_energy_j * self.train_iterations_per_second

    @property
    def bits_per_second(self) -> float:
        """Total memory traffic demanded, bits/sec."""
        return self.traffic.total_bits * self.train_iterations_per_second

    @property
    def nvm_write_bits_per_second(self) -> float:
        """NVM write traffic demanded, bits/sec (the endurance driver)."""
        return self.traffic.nvm_write_bits * self.train_iterations_per_second

    @property
    def inference_sustainable_steps_per_second(self) -> float:
        """Env steps/sec the array sustains at the measured cycle budget.

        ``inf`` when no backend cycles were measured (nothing to bound).
        """
        if self.inference_step_latency_s <= 0.0:
            return float("inf")
        return 1.0 / self.inference_step_latency_s

    @property
    def inference_utilization(self) -> float:
        """Demanded step rate / sustainable inference step rate."""
        return self.steps_per_second * self.inference_step_latency_s

    @property
    def inference_realtime_feasible(self) -> bool:
        """Whether the array keeps up with the fleet's inference demand."""
        return self.inference_utilization <= 1.0

    @property
    def sharded_sustainable_steps_per_second(self) -> float:
        """Env steps/sec the K-array platform sustains.

        Uses the measured critical-path budget — the wall-clock cycles
        of the parallel schedule — so it reflects what sharding
        actually buys.  ``inf`` when no critical path was measured.
        """
        if self.critical_path_step_latency_s <= 0.0:
            return float("inf")
        return 1.0 / self.critical_path_step_latency_s

    @property
    def sharded_utilization(self) -> float:
        """Demanded step rate / K-array sustainable step rate."""
        return self.steps_per_second * self.critical_path_step_latency_s

    @property
    def available_sustainable_steps_per_second(self) -> float:
        """K-array sustainable step rate, derated by availability.

        What the platform sustains *on average* across a run in which
        only ``availability`` of its arrays were alive — the headline
        capacity number a fault-tolerance SLO compares against.  Equals
        the sharded rate for a fault-free run; ``inf`` stays ``inf``
        (no measured bound is still no bound, dead shards or not).
        """
        rate = self.sharded_sustainable_steps_per_second
        if rate == float("inf"):
            return rate
        return rate * self.availability

    @property
    def training_sustainable_updates_per_second(self) -> float:
        """Training updates/sec the array sustains at the measured cost.

        ``inf`` when training charged no cycles (off-device training).
        """
        if self.training_update_latency_s <= 0.0:
            return float("inf")
        return 1.0 / self.training_update_latency_s

    @property
    def training_array_utilization(self) -> float:
        """Demanded update rate x measured per-update array time."""
        return self.train_iterations_per_second * self.training_update_latency_s

    @property
    def combined_array_utilization(self) -> float:
        """Single-array utilization of rollout inference *plus* training.

        The datapath is time-shared: serving the fleet's forward passes
        and executing its training updates both burn the same array's
        cycles, so feasibility of concurrent rollout + training is the
        sum of the two utilizations staying under 1.
        """
        return self.inference_utilization + self.training_array_utilization

    @property
    def combined_realtime_feasible(self) -> bool:
        """Whether one array sustains rollout and training concurrently."""
        return self.combined_array_utilization <= 1.0

    @property
    def sharded_combined_utilization(self) -> float:
        """K-array utilization of concurrent rollout + training.

        Uses the measured critical paths of both schedules — what the
        K arrays actually spend wall-clock cycles on.
        """
        return (
            self.sharded_utilization
            + self.train_iterations_per_second
            * self.training_critical_path_latency_s
        )

    @property
    def sharding_speedup(self) -> float:
        """Single-array-equivalent work cycles over critical-path cycles.

        How much faster the K-array schedule serves a step than one
        array burning the same work serially (<= ``shards``; the gap is
        merge traffic plus replicated FC tile loads).  1.0 when
        unsharded or unmeasured.
        """
        if self.critical_path_cycles_per_step <= 0.0:
            return 1.0
        return self.inference_cycles_per_step / self.critical_path_cycles_per_step

    @property
    def scaling_efficiency(self) -> float:
        """Sharding speedup per array (1.0 = perfect scaling)."""
        return self.sharding_speedup / self.shards if self.shards else 0.0


def project_fleet_load(
    simulator: TrafficSimulator,
    num_envs: int,
    batch_size: int,
    steps_per_second: float,
    train_iterations_per_second: float,
    endurance_cycles: float = 1e12,
    inference_cycles_per_step: float = 0.0,
    array: ArrayConfig = PAPER_ARRAY,
    shards: int = 1,
    critical_path_cycles_per_step: float = 0.0,
    training_cycles_per_update: float = 0.0,
    training_critical_path_cycles_per_update: float = 0.0,
    availability: float = 1.0,
    degraded_fraction: float = 0.0,
    interconnect_cycles_per_step: float = 0.0,
    fill_drain_cycles_per_step: float = 0.0,
) -> FleetLoadProjection:
    """Map a measured fleet workload onto the accelerator's cost model.

    ``batch_size`` is the fleet's training batch (typically the agent
    batch times the fleet width); ``steps_per_second`` and
    ``train_iterations_per_second`` come from the scheduler's measured
    rounds.  ``inference_cycles_per_step`` is the average array-cycle
    budget the fleet's execution backend charged per env step (0 when
    rollouts ran on the uncosted float path); ``array`` converts it to
    latency.  ``shards`` and ``critical_path_cycles_per_step`` carry a
    sharded backend's array count and measured wall-clock budget, from
    which the K-array sustainable step rate and scaling efficiency
    derive.  ``training_cycles_per_update`` (and its critical-path
    counterpart for sharded training) carries the measured on-array cost
    of one training update, from which the combined rollout+training
    utilizations derive.  ``availability`` and ``degraded_fraction``
    carry a chaos run's fault-tolerance outcomes (fraction of arrays
    alive, fraction of states served by the degraded float fallback),
    from which the availability-derated sustainable step rate derives.
    Combines the Fig. 13 iteration-cost model with the traffic
    simulator's per-device bit counts and the NVM endurance estimate.
    """
    if num_envs <= 0:
        raise ValueError("num_envs must be positive")
    if steps_per_second <= 0 or train_iterations_per_second <= 0:
        raise ValueError("rates must be positive")
    if inference_cycles_per_step < 0:
        raise ValueError("inference_cycles_per_step cannot be negative")
    if shards <= 0:
        raise ValueError("shards must be positive")
    if critical_path_cycles_per_step < 0:
        raise ValueError("critical_path_cycles_per_step cannot be negative")
    if training_cycles_per_update < 0 or training_critical_path_cycles_per_update < 0:
        raise ValueError("training cycle budgets cannot be negative")
    if not 0.0 <= availability <= 1.0:
        raise ValueError("availability must be a fraction in [0, 1]")
    if not 0.0 <= degraded_fraction <= 1.0:
        raise ValueError("degraded_fraction must be a fraction in [0, 1]")
    if interconnect_cycles_per_step < 0 or fill_drain_cycles_per_step < 0:
        raise ValueError("interconnect cycle budgets cannot be negative")
    from repro.perf.training import TrainingIterationModel

    cost = TrainingIterationModel(simulator.cost_model).iteration_cost(batch_size)
    traffic = simulator.simulate_iteration(batch_size)
    endurance = simulator.endurance(
        traffic, train_iterations_per_second, endurance_cycles=endurance_cycles
    )
    return FleetLoadProjection(
        config_name=simulator.config.name,
        num_envs=num_envs,
        batch_size=batch_size,
        steps_per_second=steps_per_second,
        train_iterations_per_second=train_iterations_per_second,
        accelerator_iteration_latency_s=cost.iteration_latency_s,
        accelerator_fps=cost.fps,
        iteration_energy_j=cost.iteration_energy_j,
        traffic=traffic,
        endurance=endurance,
        inference_cycles_per_step=inference_cycles_per_step,
        inference_step_latency_s=array.seconds(inference_cycles_per_step),
        shards=shards,
        critical_path_cycles_per_step=critical_path_cycles_per_step,
        critical_path_step_latency_s=array.seconds(critical_path_cycles_per_step),
        training_cycles_per_update=training_cycles_per_update,
        training_update_latency_s=array.seconds(training_cycles_per_update),
        training_critical_path_cycles_per_update=(
            training_critical_path_cycles_per_update
        ),
        training_critical_path_latency_s=array.seconds(
            training_critical_path_cycles_per_update
        ),
        availability=availability,
        degraded_fraction=degraded_fraction,
        interconnect_cycles_per_step=interconnect_cycles_per_step,
        fill_drain_cycles_per_step=fill_drain_cycles_per_step,
    )
