"""Per-layer latency/power/energy model (Fig. 12).

Forward propagation
-------------------
* CONV layers are compute-bound: ``ideal MAC cycles x per-mapping-type
  efficiency`` (Type I/II/III from :mod:`repro.systolic.conv_mapping`).
* FC layers are weight-streaming-bound: the weight matrix enters the
  array at 128 bits/cycle, so latency tracks ``weight_bits / 128``
  regardless of layer size — exactly the ~7-8 GMAC/s plateau visible in
  Fig. 12a.

Backward propagation
--------------------
FC backprop makes *passes* over the weight matrix at the same streaming
bound:

* 2 passes always (input-gradient via the Fig. 8 transposed mapping, and
  weight-gradient outer product);
* +2 passes when the layer's weights are resident in STT-MRAM (they must
  be staged through the global buffer to support the transposed access
  pattern);
* +2 passes when the layer's gradient accumulator cannot fit the
  buffer's transient space and spills (FC1's 75.5 MB accumulator is the
  only such layer at the paper's design point — the dominant cost in
  Fig. 12b's FC rows).

CONV backprop (E2E baseline only) is the GEMM formulation of Section V.B
with per-layer utilisation factors from the calibration table.

Energy is power (linear active-PE model) x latency, plus explicit NVM
access energy charged against the device counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.memory.devices import GlobalBuffer, SttMramStack
from repro.memory.mapping import WeightMapper
from repro.nn.specs import ConvSpec, FCSpec, NetworkSpec
from repro.perf.calibration import CostCalibration, DEFAULT_CALIBRATION
from repro.perf.power import PowerModel
from repro.rl.transfer import TransferConfig
from repro.systolic.array import ArrayConfig, PAPER_ARRAY
from repro.systolic.conv_mapping import map_conv_layer
from repro.systolic.fc_mapping import map_fc_layer

__all__ = ["LayerCost", "LayerCostModel"]

#: Backward-pass active-PE counts for the paper's conv layers (Fig. 12b);
#: the GEMM mapping uses out_height rows and an inner-dimension-dependent
#: column count the paper does not derive, so we use the published values
#: at the paper design point and the forward compute-PE count elsewhere.
_PAPER_BWD_ACTIVE_PES = {
    "CONV1": 1024,
    "CONV2": 432,
    "CONV3": 260,
    "CONV4": 260,
    "CONV5": 208,
}


@dataclass(frozen=True)
class LayerCost:
    """Cost of one layer in one direction."""

    layer: str
    direction: str  # "forward" | "backward"
    latency_s: float
    active_pes: int
    power_w: float
    energy_j: float
    nvm_write: bool = False

    @property
    def latency_ms(self) -> float:
        """Latency in milliseconds (Fig. 12 units)."""
        return self.latency_s * 1e3

    @property
    def energy_mj(self) -> float:
        """Energy in millijoules (Fig. 12 units)."""
        return self.energy_j * 1e3


class LayerCostModel:
    """Costs every layer of ``spec`` on the given platform devices."""

    def __init__(
        self,
        spec: NetworkSpec,
        config: TransferConfig,
        array: ArrayConfig = PAPER_ARRAY,
        nvm: SttMramStack | None = None,
        buffer: GlobalBuffer | None = None,
        calibration: CostCalibration = DEFAULT_CALIBRATION,
        power: PowerModel | None = None,
    ):
        self.spec = spec
        self.config = config
        self.array = array
        self.nvm = nvm or SttMramStack()
        self.buffer = buffer or GlobalBuffer()
        self.calibration = calibration
        self.power = power or PowerModel()
        mapper = WeightMapper(spec, config, scratchpad_bytes=self.buffer.scratchpad_bytes)
        self.mapping_report = mapper.build()
        self._nvm_resident = set(mapper.nvm_resident_layers())
        self._sram_weight_bytes = self.mapping_report.sram_weight_bytes

    # ------------------------------------------------------------------
    # Residency helpers
    # ------------------------------------------------------------------
    def is_nvm_resident(self, layer_name: str) -> bool:
        """Whether a layer's weights stream from the STT-MRAM stack."""
        return layer_name in self._nvm_resident

    def _gradient_spills(self, layer: FCSpec) -> bool:
        """Whether the layer's gradient accumulator exceeds the buffer's
        transient space (capacity minus the resident trainable weights)."""
        grad_bytes = layer.weight_count * self.spec.weight_bits // 8
        transient = self.buffer.capacity_bytes - self._sram_weight_bytes
        return grad_bytes > transient

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward_cost(self, layer_name: str) -> LayerCost:
        """Forward latency/power/energy for one layer."""
        layer = self.spec.layer(layer_name)
        if isinstance(layer, ConvSpec):
            mapping = map_conv_layer(layer, self.array)
            eff = self.calibration.conv_fwd_eff(mapping.mapping_type.value)
            cycles = mapping.ideal_cycles() * eff
            active = mapping.active_pes
        elif isinstance(layer, FCSpec):
            mapping = map_fc_layer(layer, self.array, self.spec.weight_bits)
            cycles = mapping.stream_cycles(self.array) * self.calibration.fc_forward_overhead
            cycles += self.array.rows + self.array.cols  # wavefront fill/drain
            active = mapping.active_pes
        else:  # pragma: no cover - closed spec hierarchy
            raise TypeError(f"unknown layer spec: {type(layer)!r}")
        latency = self.array.seconds(cycles)
        power = self.power.forward_power_w(active)
        energy = power * latency
        # Weight fetch energy from the owning memory.
        weight_bits = layer.weight_count * self.spec.weight_bits
        device = self.nvm if self.is_nvm_resident(layer_name) else self.buffer
        energy += device.read(weight_bits).energy_j
        return LayerCost(
            layer=layer_name,
            direction="forward",
            latency_s=latency,
            active_pes=active,
            power_w=power,
            energy_j=energy,
        )

    def forward_costs(self) -> list[LayerCost]:
        """Forward costs for every layer, input to output."""
        return [self.forward_cost(l.name) for l in self.spec.layers]

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward_cost(self, layer_name: str) -> LayerCost:
        """Backward latency/power/energy for one *trainable* layer."""
        layer = self.spec.layer(layer_name)
        nvm_resident = self.is_nvm_resident(layer_name)
        weight_bits = layer.weight_count * self.spec.weight_bits
        if isinstance(layer, FCSpec):
            mapping = map_fc_layer(layer, self.array, self.spec.weight_bits)
            passes = 2
            if nvm_resident:
                passes += 2
            if self._gradient_spills(layer):
                passes += 2
            cycles = passes * mapping.stream_cycles(self.array)
            cycles *= self.calibration.fc_backward_overhead
            cycles += passes * (layer.in_features + layer.out_features) / (
                self.array.pe.words_per_link_beat
            )
            active = mapping.active_pes
        elif isinstance(layer, ConvSpec):
            mapping = map_conv_layer(layer, self.array)
            active = _PAPER_BWD_ACTIVE_PES.get(layer_name, mapping.compute_pes)
            # dW and dX GEMMs: 2x forward MACs at the calibrated
            # backward utilisation.
            ideal = 2 * layer.macs / max(active, 1)
            cycles = ideal * self.calibration.conv_bwd_eff(layer_name)
        else:  # pragma: no cover
            raise TypeError(f"unknown layer spec: {type(layer)!r}")
        latency = self.array.seconds(cycles)
        power = self.power.backward_power_w(active)
        energy = power * latency
        # Gradient accumulator traffic energy (SRAM) or spill (NVM).
        if isinstance(layer, FCSpec) and self._gradient_spills(layer):
            energy += self.nvm.write(weight_bits).energy_j
            energy += self.nvm.read(weight_bits).energy_j
        else:
            # Accumulator round trip: read the running sum, write it back.
            energy += self.buffer.read(weight_bits).energy_j
            energy += self.buffer.write(weight_bits).energy_j
        return LayerCost(
            layer=layer_name,
            direction="backward",
            latency_s=latency,
            active_pes=active,
            power_w=power,
            energy_j=energy,
            nvm_write=nvm_resident,
        )

    def trainable_layer_names(self) -> list[str]:
        """Trainable layers in backward execution order (output first)."""
        if self.config.is_end_to_end:
            names = [l.name for l in self.spec.layers]
        else:
            names = [l.name for l in self.spec.last_fc(self.config.last_k_fc)]
        return list(reversed(names))

    def backward_costs(self) -> list[LayerCost]:
        """Backward costs for the trainable layers, output to input."""
        return [self.backward_cost(name) for name in self.trainable_layer_names()]

    # ------------------------------------------------------------------
    # Weight update step
    # ------------------------------------------------------------------
    def update_cost(self) -> LayerCost:
        """Cost of applying the accumulated batch gradients.

        SRAM-resident weights update through the streaming port
        (``update_passes`` passes); NVM-resident trainable weights (E2E
        only) additionally pay the STT-MRAM write — the expense the
        co-design exists to avoid.
        """
        trainable = {name for name in self.trainable_layer_names()}
        sram_bits = 0
        nvm_bits = 0
        for layer in self.spec.layers:
            if layer.name not in trainable:
                continue
            bits = layer.weight_count * self.spec.weight_bits
            if self.is_nvm_resident(layer.name):
                nvm_bits += bits
            else:
                sram_bits += bits
        cycles = (
            self.calibration.update_passes
            * (sram_bits + nvm_bits)
            / self.array.stream_bits_per_cycle
        )
        latency = self.array.seconds(cycles)
        energy = self.power.backward_power_w(self.array.total_pes) * latency
        if nvm_bits:
            write = self.nvm.write(nvm_bits)
            latency += write.latency_s
            energy += write.energy_j
        return LayerCost(
            layer="weight-update",
            direction="backward",
            latency_s=latency,
            active_pes=self.array.total_pes,
            power_w=self.power.backward_power_w(self.array.total_pes),
            energy_j=energy,
            nvm_write=nvm_bits > 0,
        )

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def forward_total(self) -> tuple[float, float]:
        """(latency_s, energy_j) of a full forward pass."""
        costs = self.forward_costs()
        return sum(c.latency_s for c in costs), sum(c.energy_j for c in costs)

    def energy_breakdown(self) -> dict[str, float]:
        """Split one image's fwd+bwd energy into compute vs memory (J).

        ``compute`` is the PE-array switching energy (power model x
        latency); ``nvm`` and ``sram`` are the access energies charged
        against the devices while costing the passes.  Resets the two
        devices' access counters as a side effect.
        """
        self.nvm.reset_counters()
        self.buffer.reset_counters()
        costs = self.forward_costs() + self.backward_costs()
        compute = sum(c.power_w * c.latency_s for c in costs)
        return {
            "compute": compute,
            "nvm": self.nvm.counters.total_energy_j,
            "sram": self.buffer.counters.total_energy_j,
        }

    def backward_total(self) -> tuple[float, float]:
        """(latency_s, energy_j) of a backward pass over trainable layers."""
        costs = self.backward_costs()
        return sum(c.latency_s for c in costs), sum(c.energy_j for c in costs)
